#include "core/verification.hpp"

#include "words/label.hpp"

namespace hring::core {

std::string VerificationReport::to_string() const {
  if (ok) return "ok";
  std::string out = "FAILED:";
  for (const auto& e : errors) {
    out += "\n  - " + e;
  }
  return out;
}

VerificationReport verify_election(const ring::LabeledRing& ring,
                                   const sim::RunResult& result,
                                   bool check_true_leader) {
  VerificationReport report;
  if (result.outcome != sim::Outcome::kTerminated) {
    report.fail(std::string("outcome is ") + outcome_name(result.outcome) +
                ", expected terminated");
  }
  for (const auto& v : result.violations) {
    report.fail("spec violation: " + v);
  }
  if (result.processes.size() != ring.size()) {
    report.fail("snapshot count mismatch");
    return report;
  }

  std::size_t leaders = 0;
  std::optional<sim::ProcessId> leader_pid;
  for (const auto& p : result.processes) {
    if (p.is_leader) {
      ++leaders;
      leader_pid = p.pid;
    }
  }
  if (leaders != 1) {
    report.fail("expected exactly 1 leader, found " +
                std::to_string(leaders));
    return report;
  }

  const words::Label leader_label = ring.label(*leader_pid);
  for (const auto& p : result.processes) {
    const std::string who = "p" + std::to_string(p.pid);
    if (!p.done) report.fail(who + " not done in terminal configuration");
    if (!p.halted) report.fail(who + " not halted in terminal configuration");
    if (!p.leader.has_value()) {
      report.fail(who + ".leader unset in terminal configuration");
    } else if (!(*p.leader == leader_label)) {
      report.fail(who + ".leader = " + words::to_string(*p.leader) +
                  " but L.id = " + words::to_string(leader_label));
    }
  }

  if (check_true_leader) {
    const ring::ProcessIndex expected = ring.true_leader();
    if (*leader_pid != expected) {
      report.fail("elected p" + std::to_string(*leader_pid) +
                  " but the true leader is p" + std::to_string(expected));
    }
  }
  return report;
}

}  // namespace hring::core
