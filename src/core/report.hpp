// JSON serialization of election results, for plotting pipelines and
// external tooling (the CLI's --json).
#pragma once

#include <iosfwd>

#include "core/election_driver.hpp"
#include "core/verification.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/run_result.hpp"

namespace hring::core {

/// Writes one run as a JSON object:
/// { "ring": {...}, "config": {...}, "outcome": "...", "stats": {...},
///   "processes": [...], "violations": [...], "verification": {...} }
void write_json_report(std::ostream& out, const ring::LabeledRing& ring,
                       const ElectionConfig& config,
                       const sim::RunResult& result,
                       const VerificationReport& verification);

}  // namespace hring::core
