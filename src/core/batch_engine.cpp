#include "core/batch_engine.hpp"

#include "words/label.hpp"

namespace hring::core {

template <class Algo>
void BatchRunner<Algo>::configure(const BatchConfig& config) {
  HRING_EXPECTS(config.slots >= 1);
  HRING_EXPECTS(config.n >= 1);
  config_ = config;
  n_ = config.n;
  algo_.configure(config.slots, n_, config.algorithm);
  links_.reset(config.slots * n_);
  slots_.clear();
  slots_.resize(config.slots);
  age_.assign(config.slots * n_, 0);
  free_.clear();
  // LIFO free list, lowest slot on top: a lightly loaded runner keeps
  // re-using the same few slots (warm caches) instead of striding the
  // whole arena.
  for (std::size_t s = config.slots; s-- > 0;) free_.push_back(s);
  active_count_ = 0;
  enabled_buf_.reserve(n_);
  chosen_buf_.reserve(n_);
}

template <class Algo>
void BatchRunner<Algo>::activate(std::size_t cell,
                                 const ring::LabeledRing& ring,
                                 std::uint64_t election_seed,
                                 std::optional<sim::ProcessId> expected_leader) {
  HRING_EXPECTS(!free_.empty());
  HRING_EXPECTS(ring.size() == n_);
  const std::size_t s = free_.back();
  free_.pop_back();
  ++active_count_;

  Slot& slot = slots_[s];
  slot.active = true;
  slot.cell = cell;
  slot.step = 0;
  slot.label_bits = ring.label_bits();
  slot.stats.reset(n_);
  slot.scheduler.reset(config_.scheduler, election_seed);
  slot.expected_leader = expected_leader;

  algo_.reset_slot(s, ring);
  const std::size_t base = s * n_;
  for (std::size_t pid = 0; pid < n_; ++pid) {
    links_.reset_link(base + pid);
    age_[base + pid] = 0;
    // Initial-space accounting, as in ExecutionCore::begin_run.
    slot.stats.peak_space_bits = std::max(
        slot.stats.peak_space_bits,
        algo_.space_bits(base + pid, slot.label_bits));
  }
}

// hring-lint: hot-path
template <class Algo>
bool BatchRunner<Algo>::step_slot(std::size_t s) {
  Slot& slot = slots_[s];
  const std::size_t base = s * n_;

  enabled_buf_.clear();
  for (sim::ProcessId pid = 0; pid < n_; ++pid) {
    const std::size_t g = base + pid;
    const sim::Message* head = links_.peek(in_link(s, pid));
    if (!algo_.spec().halted.test(g) && algo_.enabled(g, head)) {
      enabled_buf_.push_back(pid);
    } else {
      age_[g] = 0;
    }
  }
  if (enabled_buf_.empty()) return false;

  chosen_buf_.clear();
  for (const sim::ProcessId pid : enabled_buf_) {
    if (age_[base + pid] >= config_.fairness_bound) {
      chosen_buf_.push_back(pid);
    }
  }
  slot.scheduler.select(enabled_buf_, chosen_buf_);
  std::sort(chosen_buf_.begin(), chosen_buf_.end());
  chosen_buf_.erase(std::unique(chosen_buf_.begin(), chosen_buf_.end()),
                    chosen_buf_.end());
  HRING_ASSERT(!chosen_buf_.empty());

  for (const sim::ProcessId pid : chosen_buf_) {
    const std::size_t g = base + pid;
    // Recompute the head: an earlier firing in this step may have changed
    // the in-link — but only by appending, never by popping another
    // process's head, so the head seen here is the one γ prescribes
    // (same argument as StepEngine::step_once).
    const sim::Message* head = links_.peek(in_link(s, pid));
    HRING_ASSERT(!algo_.spec().halted.test(g));
    HRING_ASSERT(algo_.enabled(g, head));
    election::BatchFireContext ctx(slot.stats, links_, in_link(s, pid),
                                   out_link(s, pid), pid, slot.label_bits,
                                   head);
    algo_.fire(g, head, ctx);
    ++slot.stats.actions;
    slot.stats.peak_space_bits = std::max(
        slot.stats.peak_space_bits, algo_.space_bits(g, slot.label_bits));
    age_[g] = 0;
  }
  for (const sim::ProcessId pid : enabled_buf_) {
    if (!std::binary_search(chosen_buf_.begin(), chosen_buf_.end(), pid)) {
      ++age_[base + pid];
    }
  }
  ++slot.step;
  slot.stats.steps = slot.step;
  slot.stats.time_units = static_cast<double>(slot.step);
  return true;
}

template <class Algo>
bool BatchRunner<Algo>::slot_is_clean(std::size_t s) const {
  const std::size_t base = s * n_;
  for (std::size_t pid = 0; pid < n_; ++pid) {
    if (!algo_.spec().halted.test(base + pid)) return false;
  }
  for (std::size_t pid = 0; pid < n_; ++pid) {
    if (!links_.empty(base + pid)) return false;
  }
  return true;
}

template <class Algo>
BatchCellResult BatchRunner<Algo>::finish_slot(std::size_t s,
                                               sim::Outcome outcome) {
  Slot& slot = slots_[s];
  const std::size_t base = s * n_;
  const election::SpecPlanes& spec = algo_.spec();

  // Close the statistics (make_result's epilogue; label_comparisons was
  // accumulated per step in step_all).
  for (std::size_t pid = 0; pid < n_; ++pid) {
    slot.stats.peak_link_occupancy = std::max(
        slot.stats.peak_link_occupancy, links_.high_water(base + pid));
  }

  BatchCellResult result;
  result.cell = slot.cell;
  result.outcome = outcome;
  result.stats = &slot.stats;

  std::size_t leaders = 0;
  for (std::size_t pid = 0; pid < n_; ++pid) {
    if (spec.leader.test(base + pid)) {
      ++leaders;
      result.leader = pid;
    }
  }
  if (leaders != 1) result.leader.reset();

  if (config_.verify) {
    // Terminal-configuration checks, mirroring verify_election (raw label
    // compares: engine self-checks never count toward the statistic).
    bool ok = outcome == sim::Outcome::kTerminated && leaders == 1;
    if (ok) {
      const sim::Label leader_label = spec.id[base + *result.leader];
      for (std::size_t pid = 0; ok && pid < n_; ++pid) {
        const std::size_t g = base + pid;
        ok = spec.done.test(g) && spec.halted.test(g) &&
             spec.has_leader.test(g) &&
             spec.leader_label[g].value() == leader_label.value();
      }
      if (ok && config_.check_true_leader) {
        ok = slot.expected_leader.has_value() &&
             *result.leader == *slot.expected_leader;
      }
    }
    result.verified = ok;
  }

  slot.active = false;
  --active_count_;
  free_.push_back(s);
  return result;
}

// hring-lint: hot-path
template <class Algo>
void BatchRunner<Algo>::step_all(std::vector<BatchCellResult>& done) {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].active) continue;
    Slot& slot = slots_[s];
    if (slot.step >= config_.budget) {
      done.push_back(finish_slot(s, sim::Outcome::kBudgetExhausted));
      continue;
    }
    // Slots interleave on one thread, so the thread-local comparison
    // counter is sliced into per-slot deltas around each slot's step.
    const std::uint64_t comparisons_before = sim::Label::comparison_count();
    const bool progressed = step_slot(s);
    slot.stats.label_comparisons +=
        sim::Label::comparison_count() - comparisons_before;
    if (!progressed) {
      done.push_back(finish_slot(s, slot_is_clean(s)
                                        ? sim::Outcome::kTerminated
                                        : sim::Outcome::kDeadlock));
    }
  }
}

template class BatchRunner<election::BatchAk>;
template class BatchRunner<election::BatchChangRoberts>;

}  // namespace hring::core
