#include "core/report.hpp"

#include <ostream>

#include "ring/classes.hpp"
#include "support/json.hpp"

namespace hring::core {

void write_json_report(std::ostream& out, const ring::LabeledRing& ring,
                       const ElectionConfig& config,
                       const sim::RunResult& result,
                       const VerificationReport& verification) {
  support::JsonWriter json(out);
  json.begin_object();

  json.key("ring").begin_object();
  json.key("labels").begin_array();
  for (const auto label : ring.labels()) {
    json.value(label.value());
  }
  json.end_array();
  json.key("n").value(static_cast<std::uint64_t>(ring.size()));
  const auto classes = ring::classify(ring);
  json.key("distinct_labels")
      .value(static_cast<std::uint64_t>(classes.distinct_labels));
  json.key("max_multiplicity")
      .value(static_cast<std::uint64_t>(classes.max_multiplicity));
  json.key("asymmetric").value(classes.asymmetric);
  json.key("has_unique_label").value(classes.has_unique_label);
  json.end_object();

  json.key("config").begin_object();
  json.key("algorithm").value(election::algorithm_name(config.algorithm.id));
  json.key("k").value(static_cast<std::uint64_t>(config.algorithm.k));
  json.key("engine").value(config.engine == EngineKind::kStep ? "step"
                                                              : "event");
  json.key("scheduler").value(scheduler_kind_name(config.scheduler));
  json.key("delay").value(delay_kind_name(config.delay));
  json.key("seed").value(config.seed);
  json.end_object();

  json.key("outcome").value(sim::outcome_name(result.outcome));

  json.key("stats");
  result.stats.to_json(json);

  json.key("processes").begin_array();
  for (const auto& p : result.processes) {
    json.begin_object();
    json.key("pid").value(static_cast<std::uint64_t>(p.pid));
    json.key("id").value(p.id.value());
    json.key("is_leader").value(p.is_leader);
    json.key("done").value(p.done);
    json.key("halted").value(p.halted);
    if (p.leader.has_value()) {
      json.key("leader").value(p.leader->value());
    } else {
      json.key("leader").null();
    }
    json.key("state").value(p.debug);
    json.end_object();
  }
  json.end_array();

  json.key("violations").begin_array();
  for (const auto& v : result.violations) json.value(v);
  json.end_array();

  json.key("verification").begin_object();
  json.key("ok").value(verification.ok);
  json.key("errors").begin_array();
  for (const auto& e : verification.errors) json.value(e);
  json.end_array();
  json.end_object();

  json.end_object();
  out << '\n';
}

}  // namespace hring::core
