#include "core/model_checker.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>

#include "sim/process.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace hring::core {
namespace {

using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

/// Flat FIFO message queue of the working configuration. pop is a head
/// bump; restore() rebuilds the queue in place, keeping capacity.
struct CheckLink {
  std::vector<Message> queue;
  std::size_t head = 0;

  [[nodiscard]] bool empty() const { return head == queue.size(); }
  [[nodiscard]] std::size_t size() const { return queue.size() - head; }
  [[nodiscard]] const Message& front() const { return queue[head]; }
  void pop_front() { ++head; }
  void push_back(const Message& msg) { queue.push_back(msg); }
  void clear() {
    queue.clear();
    head = 0;
  }
};

/// Context for one firing inside the working configuration.
class CheckContext final : public sim::Context {
 public:
  CheckContext(std::vector<CheckLink>& links, ProcessId pid)
      : links_(links), pid_(pid) {}

  Message consume() override {
    CheckLink& link = links_[pid_ == 0 ? links_.size() - 1 : pid_ - 1];
    HRING_EXPECTS(!link.empty());
    HRING_EXPECTS(!consumed_);
    consumed_ = true;
    const Message msg = link.front();
    link.pop_front();
    return msg;
  }

  void send(const Message& msg) override { links_[pid_].push_back(msg); }

  void note_action(std::string_view) override {}

 private:
  std::vector<CheckLink>& links_;
  ProcessId pid_;
  bool consumed_ = false;
};

class Checker {
 public:
  Checker(const ring::LabeledRing& ring,
          const election::AlgorithmConfig& algorithm,
          const ModelCheckConfig& config)
      : ring_(ring), config_(config) {
    // The enabled set per configuration is a single word-wide bitmask.
    HRING_EXPECTS(ring.size() <= 64);
    const auto factory = election::make_factory(algorithm);
    links_.resize(ring.size());
    for (ProcessId pid = 0; pid < ring.size(); ++pid) {
      procs_.push_back(factory(pid, ring.label(pid)));
    }
    if (config_.check_true_leader) {
      expected_leader_ = ring.true_leader();
    }
  }

  ModelCheckReport run() {
    check_safety("initial configuration");
    encode_snapshot();
    visited_.insert(hash_from(0));
    report_.configurations = 1;
    explore(/*depth=*/0, /*base=*/0);
    report_.complete = !budget_exhausted_;
    return report_;
  }

 private:
  static constexpr std::uint64_t kSeparator = 0x5E9A7A70A11C0DEULL;

  void fail(const std::string& what) {
    report_.ok = false;
    if (report_.violations.size() < 16) report_.violations.push_back(what);
  }

  [[nodiscard]] const Message* head_of(ProcessId pid) const {
    const CheckLink& link = links_[pid == 0 ? links_.size() - 1 : pid - 1];
    return link.empty() ? nullptr : &link.front();
  }

  [[nodiscard]] bool enabled(ProcessId pid) const {
    const Process& p = *procs_[pid];
    return !p.halted() && p.enabled(head_of(pid));
  }

  /// Appends the working configuration's snapshot to the arena: per
  /// process the encode() words plus a separator (a parse-time integrity
  /// check), per link its in-flight count followed by (kind, label) pairs.
  void encode_snapshot() {
    for (const auto& p : procs_) {
      p->encode(arena_);
      arena_.push_back(kSeparator);
    }
    for (const CheckLink& link : links_) {
      arena_.push_back(link.size());
      for (std::size_t i = link.head; i < link.queue.size(); ++i) {
        arena_.push_back(static_cast<std::uint64_t>(link.queue[i].kind));
        arena_.push_back(link.queue[i].label.value());
      }
    }
  }

  /// Rewinds the working configuration to the snapshot at arena offset
  /// `base`, reusing every buffer.
  void restore_snapshot(std::size_t base) {
    const std::uint64_t* it = arena_.data() + base;
    const std::uint64_t* const end = arena_.data() + arena_.size();
    for (const auto& p : procs_) {
      const bool restored = p->decode(it, end);
      // The factory's processes must support restoration (A_k, B_k and
      // the identified-ring baselines implement decode()).
      HRING_EXPECTS(restored);
      HRING_EXPECTS(it != end && *it == kSeparator);
      ++it;
    }
    for (CheckLink& link : links_) {
      HRING_EXPECTS(it != end);
      const std::uint64_t count = *it++;
      HRING_EXPECTS(static_cast<std::uint64_t>(end - it) >= 2 * count);
      link.clear();
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto kind = static_cast<sim::MsgKind>(*it++);
        const Label label(static_cast<Label::rep_type>(*it++));
        link.push_back(Message{kind, label});
      }
    }
  }

  /// splitmix64 chain over the snapshot words starting at `base`.
  [[nodiscard]] std::uint64_t hash_from(std::size_t base) const {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = base; i < arena_.size(); ++i) {
      std::uint64_t mixed = state ^ arena_[i];
      state = support::splitmix64(mixed);
    }
    return state;
  }

  /// Per-configuration safety on the working configuration (spec bullets 1
  /// and 3/4 state parts).
  void check_safety(const std::string& where) {
    std::size_t leaders = 0;
    for (const auto& p : procs_) {
      if (p->is_leader()) ++leaders;
      if (p->halted() && !p->done()) {
        fail("halted before done at " + where);
      }
      if (p->done()) {
        if (!p->leader().has_value()) {
          fail("done without leader label at " + where);
          continue;
        }
        bool matched = false;
        for (const auto& q : procs_) {
          if (q->is_leader() && q->id() == *p->leader()) matched = true;
        }
        if (!matched) {
          fail("done but no leader carries the believed label at " + where);
        }
      }
    }
    if (leaders > 1) {
      fail(std::to_string(leaders) + " simultaneous leaders at " + where);
    }
  }

  /// Spec-variable values of one process, captured before a firing so
  /// irrevocability can be checked after it.
  struct SpecBits {
    bool is_leader;
    bool done;
    bool halted;
  };

  /// Transition-local irrevocability (the fired process only; others are
  /// untouched by construction).
  void check_transition(const SpecBits& before, const Process& after,
                        const std::string& where) {
    if (before.is_leader && !after.is_leader()) {
      fail("isLeader reverted at " + where);
    }
    if (before.done && !after.done()) fail("done reverted at " + where);
    if (before.halted && !after.halted()) {
      fail("halt reverted at " + where);
    }
  }

  void check_terminal() {
    ++report_.terminal_configurations;
    const std::string where = "terminal configuration";
    std::size_t leaders = 0;
    ProcessId leader_pid = 0;
    for (const auto& p : procs_) {
      if (p->is_leader()) {
        ++leaders;
        leader_pid = p->pid();
      }
      if (!p->halted()) fail("process not halted at " + where);
      if (!p->done()) fail("process not done at " + where);
    }
    for (const CheckLink& link : links_) {
      if (!link.empty()) fail("message left in flight at " + where);
    }
    if (leaders != 1) {
      fail(std::to_string(leaders) + " leaders at " + where);
      return;
    }
    const auto leader_label = ring_.label(leader_pid);
    for (const auto& p : procs_) {
      if (!p->leader().has_value() || !(*p->leader() == leader_label)) {
        fail("disagreement on the leader label at " + where);
      }
    }
    if (expected_leader_.has_value() && leader_pid != *expected_leader_) {
      fail("elected p" + std::to_string(leader_pid) +
           " but the true leader is p" + std::to_string(*expected_leader_));
    }
  }

  /// Invariants at entry: the working configuration holds the node, whose
  /// snapshot occupies arena_[base..end) and is already in visited_. On
  /// return the arena is truncated back to its entry size; the working
  /// configuration is left at an arbitrary descendant (callers rewind
  /// before using it).
  void explore(std::size_t depth, std::size_t base) {
    report_.max_depth = std::max(report_.max_depth, depth);
    if (budget_exhausted_) return;

    std::uint64_t enabled_mask = 0;
    for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
      if (enabled(pid)) enabled_mask |= std::uint64_t{1} << pid;
    }
    if (enabled_mask == 0) {
      check_terminal();
      return;
    }

    for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
      if ((enabled_mask & (std::uint64_t{1} << pid)) == 0) continue;
      if (visited_.size() >= config_.max_configurations) {
        budget_exhausted_ = true;
        return;
      }
      restore_snapshot(base);
      const Process& fired = *procs_[pid];
      const SpecBits before{fired.is_leader(), fired.done(), fired.halted()};
      {
        CheckContext ctx(links_, pid);
        const Message* head = head_of(pid);
        procs_[pid]->fire(head, ctx);
      }
      ++report_.transitions;
      const std::size_t child_base = arena_.size();
      encode_snapshot();
      const std::uint64_t h = hash_from(child_base);
      if (!visited_.insert(h).second) {  // configuration seen
        arena_.resize(child_base);
        continue;
      }
      ++report_.configurations;
      check_transition(before, *procs_[pid],
                       "depth " + std::to_string(depth + 1));
      check_safety("depth " + std::to_string(depth + 1));
      explore(depth + 1, child_base);
      arena_.resize(child_base);
    }
  }

  const ring::LabeledRing& ring_;
  ModelCheckConfig config_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<CheckLink> links_;
  /// LIFO snapshot arena: one snapshot per node on the current DFS path,
  /// appended on descent and truncated on backtrack.
  std::vector<std::uint64_t> arena_;
  std::optional<ring::ProcessIndex> expected_leader_;
  std::unordered_set<std::uint64_t> visited_;
  ModelCheckReport report_;
  bool budget_exhausted_ = false;
};

}  // namespace

std::string ModelCheckReport::to_string() const {
  std::string out = ok ? "OK" : "VIOLATION";
  out += complete ? " (exhaustive)" : " (budget exhausted)";
  out += ": " + std::to_string(configurations) + " configurations, " +
         std::to_string(transitions) + " transitions, " +
         std::to_string(terminal_configurations) + " terminal, depth " +
         std::to_string(max_depth);
  for (const auto& v : violations) out += "\n  - " + v;
  return out;
}

ModelCheckReport check_all_schedules(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const ModelCheckConfig& config) {
  Checker checker(ring, algorithm, config);
  return checker.run();
}

}  // namespace hring::core
