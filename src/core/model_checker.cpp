#include "core/model_checker.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>

#include "sim/process.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace hring::core {
namespace {

using sim::Message;
using sim::Process;
using sim::ProcessId;

/// One global configuration: all local states plus all link contents.
struct Configuration {
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<std::deque<Message>> links;  // links[i]: p_i -> p_{i+1}

  [[nodiscard]] std::size_t size() const { return procs.size(); }

  [[nodiscard]] Configuration clone() const {
    Configuration out;
    out.procs.reserve(procs.size());
    for (const auto& p : procs) {
      auto copy = p->clone();
      HRING_EXPECTS(copy != nullptr);  // algorithm must support checking
      out.procs.push_back(std::move(copy));
    }
    out.links = links;
    return out;
  }

  [[nodiscard]] const std::deque<Message>& in_link(ProcessId pid) const {
    return links[(pid + links.size() - 1) % links.size()];
  }
  [[nodiscard]] std::deque<Message>& in_link(ProcessId pid) {
    return links[(pid + links.size() - 1) % links.size()];
  }

  [[nodiscard]] const Message* head(ProcessId pid) const {
    const auto& link = in_link(pid);
    return link.empty() ? nullptr : &link.front();
  }

  [[nodiscard]] bool enabled(ProcessId pid) const {
    const Process& p = *procs[pid];
    return !p.halted() && p.enabled(head(pid));
  }

  static constexpr std::uint64_t kSeparator = 0x5E9A7A70A11C0DEULL;

  [[nodiscard]] std::uint64_t hash() const {
    std::vector<std::uint64_t> words;
    for (const auto& p : procs) {
      p->encode(words);
      words.push_back(kSeparator);
    }
    for (const auto& link : links) {
      for (const Message& m : link) {
        words.push_back(static_cast<std::uint64_t>(m.kind));
        words.push_back(m.label.value());
      }
      words.push_back(kSeparator);
    }
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t w : words) {
      std::uint64_t mixed = state ^ w;
      state = support::splitmix64(mixed);
    }
    return state;
  }
};

/// Context for one firing inside a Configuration.
class CheckContext final : public sim::Context {
 public:
  CheckContext(Configuration& config, ProcessId pid)
      : config_(config), pid_(pid) {}

  Message consume() override {
    auto& link = config_.in_link(pid_);
    HRING_EXPECTS(!link.empty());
    HRING_EXPECTS(!consumed_);
    consumed_ = true;
    const Message msg = link.front();
    link.pop_front();
    return msg;
  }

  void send(const Message& msg) override {
    config_.links[pid_].push_back(msg);
  }

  void note_action(std::string_view) override {}

 private:
  Configuration& config_;
  ProcessId pid_;
  bool consumed_ = false;
};

class Checker {
 public:
  Checker(const ring::LabeledRing& ring,
          const election::AlgorithmConfig& algorithm,
          const ModelCheckConfig& config)
      : ring_(ring), config_(config) {
    const auto factory = election::make_factory(algorithm);
    initial_.links.resize(ring.size());
    for (ProcessId pid = 0; pid < ring.size(); ++pid) {
      initial_.procs.push_back(factory(pid, ring.label(pid)));
    }
    if (config_.check_true_leader) {
      expected_leader_ = ring.true_leader();
    }
  }

  ModelCheckReport run() {
    check_safety(initial_, "initial configuration");
    visited_.insert(initial_.hash());
    report_.configurations = 1;
    explore(initial_, 0);
    report_.complete = !budget_exhausted_;
    return report_;
  }

 private:
  void fail(const std::string& what) {
    report_.ok = false;
    if (report_.violations.size() < 16) report_.violations.push_back(what);
  }

  /// Per-configuration safety (spec bullets 1 and 3/4 state parts).
  void check_safety(const Configuration& config, const std::string& where) {
    std::size_t leaders = 0;
    for (const auto& p : config.procs) {
      if (p->is_leader()) ++leaders;
      if (p->halted() && !p->done()) {
        fail("halted before done at " + where);
      }
      if (p->done()) {
        if (!p->leader().has_value()) {
          fail("done without leader label at " + where);
          continue;
        }
        bool matched = false;
        for (const auto& q : config.procs) {
          if (q->is_leader() && q->id() == *p->leader()) matched = true;
        }
        if (!matched) {
          fail("done but no leader carries the believed label at " + where);
        }
      }
    }
    if (leaders > 1) {
      fail(std::to_string(leaders) + " simultaneous leaders at " + where);
    }
  }

  /// Transition-local irrevocability (the fired process only; others are
  /// untouched by construction).
  void check_transition(const Process& before, const Process& after,
                        const std::string& where) {
    if (before.is_leader() && !after.is_leader()) {
      fail("isLeader reverted at " + where);
    }
    if (before.done() && !after.done()) fail("done reverted at " + where);
    if (before.halted() && !after.halted()) {
      fail("halt reverted at " + where);
    }
  }

  void check_terminal(const Configuration& config) {
    ++report_.terminal_configurations;
    const std::string where = "terminal configuration";
    std::size_t leaders = 0;
    ProcessId leader_pid = 0;
    for (const auto& p : config.procs) {
      if (p->is_leader()) {
        ++leaders;
        leader_pid = p->pid();
      }
      if (!p->halted()) fail("process not halted at " + where);
      if (!p->done()) fail("process not done at " + where);
    }
    for (const auto& link : config.links) {
      if (!link.empty()) fail("message left in flight at " + where);
    }
    if (leaders != 1) {
      fail(std::to_string(leaders) + " leaders at " + where);
      return;
    }
    const auto leader_label = ring_.label(leader_pid);
    for (const auto& p : config.procs) {
      if (!p->leader().has_value() || !(*p->leader() == leader_label)) {
        fail("disagreement on the leader label at " + where);
      }
    }
    if (expected_leader_.has_value() && leader_pid != *expected_leader_) {
      fail("elected p" + std::to_string(leader_pid) +
           " but the true leader is p" + std::to_string(*expected_leader_));
    }
  }

  void explore(const Configuration& config, std::size_t depth) {
    report_.max_depth = std::max(report_.max_depth, depth);
    if (budget_exhausted_) return;

    bool any_enabled = false;
    for (ProcessId pid = 0; pid < config.size(); ++pid) {
      if (!config.enabled(pid)) continue;
      any_enabled = true;
      if (visited_.size() >= config_.max_configurations) {
        budget_exhausted_ = true;
        return;
      }
      Configuration next = config.clone();
      {
        CheckContext ctx(next, pid);
        const Message* head = next.head(pid);
        next.procs[pid]->fire(head, ctx);
      }
      ++report_.transitions;
      const std::uint64_t h = next.hash();
      if (!visited_.insert(h).second) continue;  // configuration seen
      ++report_.configurations;
      check_transition(*config.procs[pid], *next.procs[pid],
                       "depth " + std::to_string(depth + 1));
      check_safety(next, "depth " + std::to_string(depth + 1));
      explore(next, depth + 1);
    }
    if (!any_enabled) check_terminal(config);
  }

  const ring::LabeledRing& ring_;
  ModelCheckConfig config_;
  Configuration initial_;
  std::optional<ring::ProcessIndex> expected_leader_;
  std::unordered_set<std::uint64_t> visited_;
  ModelCheckReport report_;
  bool budget_exhausted_ = false;
};

}  // namespace

std::string ModelCheckReport::to_string() const {
  std::string out = ok ? "OK" : "VIOLATION";
  out += complete ? " (exhaustive)" : " (budget exhausted)";
  out += ": " + std::to_string(configurations) + " configurations, " +
         std::to_string(transitions) + " transitions, " +
         std::to_string(terminal_configurations) + " terminal, depth " +
         std::to_string(max_depth);
  for (const auto& v : violations) out += "\n  - " + v;
  return out;
}

ModelCheckReport check_all_schedules(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const ModelCheckConfig& config) {
  Checker checker(ring, algorithm, config);
  return checker.run();
}

}  // namespace hring::core
