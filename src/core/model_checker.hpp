// Exhaustive schedule exploration for small rings.
//
// The randomized daemons sample the space of asynchronous executions;
// this checker *enumerates* it. Starting from the initial configuration
// it explores every interleaving of single-process firings, deduplicating
// configurations by a hash of the complete global state (all local states
// plus all link contents), and checks on every reachable configuration:
//
//   * at most one process has isLeader (spec bullet 1);
//   * isLeader and done never revert, halting implies done (bullets 1/3/4);
//   * done implies a current leader carries the believed label (bullet 3);
//   * every terminal configuration is clean (all halted, links empty) and
//     elects the true leader with global agreement (bullet 2).
//
// Single-firing interleavings suffice: a §II step executes a set of
// enabled processes, but distinct processes touch disjoint state (a
// process pops only its own in-link head, appends only to its own
// out-link tail), so every subset step equals some sequence of single
// firings and reaches the same configuration — any safety violation a
// subset step could produce is visible at the end of that sequence.
//
// The state space of a terminating algorithm is finite (each message is
// received once), so exploration terminates; `max_configurations` bounds
// the search anyway and the report says whether it was exhaustive.
//
// The search works on ONE working configuration (processes built once from
// the factory, flat message queues) that is rewound between transitions
// from encode()-word snapshots kept in a LIFO arena — one contiguous
// std::uint64_t vector that grows on descent and truncates on backtrack.
// No process is ever cloned and steady-state exploration performs no
// allocation; algorithms opt into checking by implementing
// Process::decode (A_k, B_k and the three identified-ring baselines do).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"

namespace hring::core {

struct ModelCheckConfig {
  /// Bound on distinct configurations visited before giving up.
  std::uint64_t max_configurations = 1'000'000;
  /// Require terminal configurations to elect ring.true_leader().
  bool check_true_leader = true;
};

struct ModelCheckReport {
  /// True when the whole reachable configuration space was explored.
  bool complete = false;
  /// True when no violation was found (in the explored part).
  bool ok = true;
  std::vector<std::string> violations;
  std::uint64_t configurations = 0;  // distinct configurations visited
  std::uint64_t transitions = 0;     // firings explored
  std::uint64_t terminal_configurations = 0;
  std::size_t max_depth = 0;  // longest execution prefix explored

  [[nodiscard]] std::string to_string() const;
};

/// Explores every asynchronous schedule of `algorithm` on `ring`. The
/// algorithm's processes must support encode()/decode() restoration.
/// Requires ring.size() <= 64 (the enabled set is a word-wide bitmask).
[[nodiscard]] ModelCheckReport check_all_schedules(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const ModelCheckConfig& config = {});

}  // namespace hring::core
