// Dynamic §II model-conformance auditor.
//
// The engines trust a Process to be a guarded-action program of the model:
// deterministic, local (a firing reads and writes only the firing
// process's own variables), exchanging O(b)-bit messages over FIFO links,
// and — for A_k and B_k — staying inside the space bounds of Theorems 2
// and 4. Nothing enforces that trust: a Process is arbitrary C++.
// audit_algorithm() closes the gap by instrumenting real runs and checking
// each obligation dynamically:
//
//   [replay]        the same delivery sequence executed twice produces an
//                   identical transition log (pid, action, consumed
//                   message, sent messages per firing);
//   [locality]      no firing changes any other process's observable state
//                   (state hashes of all n-1 bystanders are compared
//                   across every firing);
//   [message-width] every sent payload fits in the ring's b label bits —
//                   the model's messages carry labels of the ring, not
//                   arbitrary integers;
//   [send-burst]    a single firing sends at most a small constant number
//                   of messages (§II statements are straight-line; every
//                   algorithm of the paper sends <= 2 per firing);
//   [fifo]          the receive sequence on every link is exactly the send
//                   sequence of its producer, reconstructed independently
//                   of the engine's own queues;
//   [space]         peak space_bits stays within the paper's bound —
//                   (2k+1)·n·b + 2b + 3 for A_k (Theorem 2),
//                   2⌈log k⌉ + 3b + 5 for B_k (Theorem 4);
//   [spec]          the §II election specification (SpecMonitor);
//   [termination]   the run reaches a clean terminal configuration.
//
// A report with ok() == false names every violated obligation; mock
// algorithms that break locality or message bounds are rejected (see
// tests/integration/spec_audit_test.cpp for the negative fixtures).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/election_driver.hpp"
#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "sim/run_result.hpp"

namespace hring::core {

struct SpecAuditConfig {
  /// Daemon driving the audited runs. Any kind works: the randomized ones
  /// are seeded, so the replay check still sees identical schedules.
  SchedulerKind scheduler = SchedulerKind::kRandomSubset;
  std::uint64_t seed = 1;
  /// When set, overrides `scheduler`/`seed`: every audited run gets a
  /// fresh scheduler from this factory. The conformance harness passes
  /// ReplayScheduler factories here, so the auditor's checks run over a
  /// schedule linearized from a real concurrent execution. The factory
  /// must produce identically-behaving schedulers on every call (the
  /// replay check runs twice).
  std::function<std::unique_ptr<sim::Scheduler>()> scheduler_factory;
  /// Step budget per audited run.
  std::uint64_t max_steps = 1'000'000;
  /// Step-engine fairness bound. Replay audits must set this above the
  /// schedule length: force-including an aged process would diverge from
  /// the recorded schedule (the recorded run already was fair).
  std::size_t fairness_bound = 128;
  /// [send-burst] bound on messages per firing.
  std::size_t max_sends_per_firing = 4;
  /// Individual checks; all on by default.
  bool check_replay = true;
  bool check_locality = true;
  bool check_message_width = true;
  bool check_fifo = true;
  bool check_space_bound = true;
  /// Require Outcome::kTerminated (off when auditing deliberately
  /// non-terminating fixtures).
  bool require_termination = true;
};

struct SpecAuditReport {
  /// Violations, each prefixed with its check name ("[locality] ...").
  std::vector<std::string> violations;
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::uint64_t firings = 0;
  std::uint64_t messages = 0;
  /// Peak process space observed / the paper bound it was checked against
  /// (unset for algorithms the paper states no bound for).
  std::size_t peak_space_bits = 0;
  std::optional<std::size_t> space_bound_bits;
  /// Widest message observed / the model's cap (tag + b payload bits).
  std::size_t peak_message_bits = 0;
  std::size_t message_bits_bound = 0;
  /// True when the second (replay) run actually executed.
  bool replay_ran = false;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// "ok: 57 firings, 31 msgs, space 23/23 bits" — one-line rendering.
  [[nodiscard]] std::string summary() const;
};

/// Space bound the paper promises for `algorithm` on an n-process ring
/// with b-bit labels: Theorem 2 for A_k, Theorem 4 for B_k. nullopt for
/// the baselines (the paper states no bound for them).
[[nodiscard]] std::optional<std::size_t> paper_space_bound_bits(
    const election::AlgorithmConfig& algorithm, std::size_t n,
    std::size_t b);

/// Audits one registered algorithm on `ring`. The space bound is derived
/// from the paper's theorems via paper_space_bound_bits().
[[nodiscard]] SpecAuditReport audit_algorithm(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const SpecAuditConfig& config = {});

/// Audits an arbitrary process factory (mocks, prototypes) against an
/// optional explicit space bound in bits.
[[nodiscard]] SpecAuditReport audit_factory(
    const ring::LabeledRing& ring, const sim::ProcessFactory& factory,
    const SpecAuditConfig& config = {},
    std::optional<std::size_t> space_bound_bits = std::nullopt);

}  // namespace hring::core
