#include "core/election_driver.hpp"

#include <memory>

#include "sim/delay_model.hpp"
#include "sim/engine.hpp"
#include "sim/event_engine.hpp"
#include "sim/invariants.hpp"
#include "sim/scheduler.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace hring::core {

std::unique_ptr<sim::Scheduler> make_scheduler(SchedulerKind kind,
                                               std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return std::make_unique<sim::SynchronousScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<sim::RoundRobinScheduler>();
    case SchedulerKind::kRandomSingle:
      return std::make_unique<sim::RandomSingleScheduler>(
          support::Rng(seed));
    case SchedulerKind::kRandomSubset:
      return std::make_unique<sim::RandomSubsetScheduler>(support::Rng(seed),
                                                          0.5);
    case SchedulerKind::kConvoy:
      return std::make_unique<sim::ConvoyScheduler>();
  }
  HRING_ASSERT(false);
}

namespace {

std::unique_ptr<sim::DelayModel> make_delay_model(DelayKind kind,
                                                  std::uint64_t seed,
                                                  std::size_t n) {
  switch (kind) {
    case DelayKind::kWorstCase:
      return std::make_unique<sim::ConstantDelay>(1.0);
    case DelayKind::kUniformRandom:
      return std::make_unique<sim::UniformDelay>(support::Rng(seed), 0.05,
                                                 1.0);
    case DelayKind::kSlowLink:
      return std::make_unique<sim::SlowLinkDelay>(
          static_cast<sim::ProcessId>(seed % n), 0.05);
  }
  HRING_ASSERT(false);
}

}  // namespace

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandomSingle:
      return "random-single";
    case SchedulerKind::kRandomSubset:
      return "random-subset";
    case SchedulerKind::kConvoy:
      return "convoy";
  }
  HRING_ASSERT(false);
}

const char* delay_kind_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kWorstCase:
      return "worst-case";
    case DelayKind::kUniformRandom:
      return "uniform-random";
    case DelayKind::kSlowLink:
      return "slow-link";
  }
  HRING_ASSERT(false);
}

sim::RunResult run_election(const ring::LabeledRing& ring,
                            const ElectionConfig& config) {
  const sim::ProcessFactory factory =
      election::make_factory(config.algorithm);
  sim::SpecMonitor monitor;

  const auto wire = [&](sim::ExecutionCore& engine) {
    if (config.monitor_spec) {
      engine.add_observer(&monitor);
      if (config.stop_on_violation) {
        engine.set_stop_hook(&monitor, [](void* ctx) {
          return static_cast<sim::SpecMonitor*>(ctx)->violated();
        });
      }
    }
    for (sim::Observer* obs : config.extra_observers) {
      if (obs != nullptr) engine.add_observer(obs);
    }
  };

  // One engine of each kind per thread, recycled across calls: sweeps run
  // thousands of cells through run_election, and prepare() rebinds the
  // engine without reallocating links, counters or the wake heap.
  sim::RunResult result;
  if (config.engine == EngineKind::kStep) {
    const auto scheduler = make_scheduler(config.scheduler, config.seed);
    sim::StepConfig step_config;
    step_config.max_steps = config.budget;
    static thread_local sim::StepEngine engine;
    engine.prepare(ring, factory, *scheduler, step_config);
    wire(engine);
    result = engine.run();
  } else {
    const auto delay =
        make_delay_model(config.delay, config.seed, ring.size());
    sim::EventConfig event_config;
    event_config.max_actions = config.budget;
    static thread_local sim::EventEngine engine;
    engine.prepare(ring, factory, *delay, event_config);
    wire(engine);
    result = engine.run();
  }
  result.violations = monitor.violations();
  if (!result.violations.empty() && result.outcome == sim::Outcome::kTerminated) {
    result.outcome = sim::Outcome::kViolation;
  }
  return result;
}

}  // namespace hring::core
