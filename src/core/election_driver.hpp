// High-level driver: the library's main entry point.
//
// run_election() wires together a ring, an algorithm, an engine, a
// scheduler or delay model, and the spec monitor, runs to completion, and
// returns the outcome plus statistics and any observed violations.
//
//   auto ring = hring::ring::LabeledRing::from_values({1, 2, 2});
//   hring::core::ElectionConfig config;
//   config.algorithm = {hring::election::AlgorithmId::kAk, /*k=*/2};
//   auto result = hring::core::run_election(ring, config);
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/observer.hpp"
#include "sim/run_result.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace hring::core {

enum class EngineKind : std::uint8_t {
  /// Configuration-step semantics with a scheduler (§II step model).
  kStep,
  /// Discrete-event timing with a delay model (§II normalized time).
  kEvent,
};

enum class SchedulerKind : std::uint8_t {
  kSynchronous,
  kRoundRobin,
  kRandomSingle,
  kRandomSubset,
  kConvoy,
};

enum class DelayKind : std::uint8_t {
  /// Every message takes the full time unit — the worst case of the
  /// theorems' statements.
  kWorstCase,
  kUniformRandom,
  kSlowLink,
};

[[nodiscard]] const char* scheduler_kind_name(SchedulerKind kind);
[[nodiscard]] const char* delay_kind_name(DelayKind kind);

/// Scheduler instance for `kind`; the randomized kinds are seeded with
/// `seed` (deterministic: the same kind+seed replays the same schedule).
/// Shared by run_election() and the spec auditor.
[[nodiscard]] std::unique_ptr<sim::Scheduler> make_scheduler(
    SchedulerKind kind, std::uint64_t seed);

struct ElectionConfig {
  election::AlgorithmConfig algorithm;
  EngineKind engine = EngineKind::kStep;
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  DelayKind delay = DelayKind::kWorstCase;
  /// Seed for randomized schedulers / delay models.
  std::uint64_t seed = 1;
  /// Step budget (step engine) / action budget (event engine).
  std::uint64_t budget = 10'000'000;
  /// Attach the §II spec monitor (cheap: O(n) per step).
  bool monitor_spec = true;
  /// Stop the run at the first observed spec violation instead of letting
  /// the execution continue (E2 keeps this on to report violation steps).
  bool stop_on_violation = true;
  /// Additional observers (not owned; may be nullptr).
  std::vector<sim::Observer*> extra_observers;
};

/// Runs one complete election. The returned RunResult carries outcome,
/// statistics, per-process final states and any spec violations.
[[nodiscard]] sim::RunResult run_election(const ring::LabeledRing& ring,
                                          const ElectionConfig& config);

/// Per-cell seeds derived from one campaign seed.
struct CellSeeds {
  /// Seeds the ring generator when the campaign draws a fresh ring per
  /// cell (RingSource kinds other than kFixed).
  std::uint64_t ring_seed = 0;
  /// Becomes ElectionConfig::seed for the cell (randomized schedulers /
  /// delay models).
  std::uint64_t election_seed = 0;
};

/// The library's one seed convention: every replicated experiment —
/// campaigns (core/campaign.hpp), the CLI sweep, the grid benches — holds
/// a single campaign-level seed and derives each cell's seeds from
/// (campaign_seed, cell index) alone. Derivation is two draws from a
/// splitmix64 stream whose state mixes the index with an odd constant, so
/// per-cell seeds are decorrelated, any cell is reproducible in isolation
/// ("replay cell 17" needs only the campaign seed and 17), and results are
/// independent of worker count and execution order.
[[nodiscard]] inline CellSeeds derive_cell_seeds(std::uint64_t campaign_seed,
                                                 std::size_t cell) {
  std::uint64_t state =
      campaign_seed ^ (0xA0761D6478BD642FULL * (static_cast<std::uint64_t>(cell) + 1));
  CellSeeds seeds;
  seeds.ring_seed = support::splitmix64(state);
  seeds.election_seed = support::splitmix64(state);
  return seeds;
}

}  // namespace hring::core
