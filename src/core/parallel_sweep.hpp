// Parallel experiment sweeps.
//
// Benches and tests evaluate grids of independent (ring, config) cells;
// each cell is a self-contained simulation, so the grid is embarrassingly
// parallel. parallel_map runs an indexed task set on a worker pool with
// dynamic (atomic-counter) scheduling and returns results in task order —
// the output is bit-identical regardless of the worker count, provided
// each task derives its randomness from its own index/seed (every
// generator in this library takes an explicit Rng for exactly this
// reason).
//
// Engine state is thread-confined: one task runs one engine on one
// worker, and the Label comparison counter is thread_local, so per-run
// statistics stay exact under parallel execution.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hring::core {

/// Number of workers to use by default: the hardware concurrency, at
/// least 1.
[[nodiscard]] inline std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Evaluates `task(i)` for i in [0, task_count) on `workers` threads and
/// returns the results indexed by i. `task` is any callable taking the
/// task index; it is dispatched statically, so per-cell invocation pays no
/// std::function indirection on top of the work itself. It must be safe to
/// call concurrently for distinct i. The first exception thrown by any
/// task is rethrown on the caller after all workers stop picking up new
/// tasks.
template <class Result, class Task>
std::vector<Result> parallel_map(std::size_t task_count, Task&& task,
                                 std::size_t workers = 0) {
  if (workers == 0) workers = default_worker_count();
  std::vector<Result> results(task_count);
  if (task_count == 0) return results;
  workers = std::min(workers, task_count);

  if (workers == 1) {
    for (std::size_t i = 0; i < task_count; ++i) results[i] = task(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task_count || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        results[i] = task(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace hring::core
