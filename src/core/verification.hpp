// Terminal-state verifier for the §II leader-election specification.
//
// The SpecMonitor checks the safety bullets during the run; this verifier
// checks the terminal configuration: exactly one leader, every process
// done, halted and agreeing on the leader's label (bullet 2), all links
// drained — and, for the paper's algorithms, that the elected process is
// the *true leader* (the Lyndon-word process of §IV).
#pragma once

#include <string>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/run_result.hpp"

namespace hring::core {

struct VerificationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string what) {
    ok = false;
    errors.push_back(std::move(what));
  }

  [[nodiscard]] std::string to_string() const;
};

/// Verifies `result` against the specification for `ring`.
/// `check_true_leader` additionally requires the elected process to be
/// ring.true_leader() — pass elects_true_leader(algorithm) (and only for
/// asymmetric rings).
[[nodiscard]] VerificationReport verify_election(
    const ring::LabeledRing& ring, const sim::RunResult& result,
    bool check_true_leader);

}  // namespace hring::core
