#include "core/ringspec.hpp"

#include <istream>
#include <sstream>

#include "support/assert.hpp"

namespace hring::core {
namespace {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r')) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

RingSpecResult parse_ringspec(std::istream& in) {
  std::optional<words::LabelSequence> labels;
  ElectionConfig config;
  std::optional<std::size_t> explicit_k;
  std::optional<election::AlgorithmId> algo;

  const auto fail = [](std::size_t line, std::string message) {
    RingSpecResult result;
    result.error = RingSpecError{line, std::move(message)};
    return result;
  };

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(line_no, "expected 'key = value'");
    }
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty() || value.empty()) {
      return fail(line_no, "empty key or value");
    }

    if (key == "ring") {
      words::LabelSequence seq;
      std::stringstream items(value);
      std::string item;
      while (std::getline(items, item, ',')) {
        const auto v = parse_u64(trim(item));
        if (!v.has_value()) {
          return fail(line_no, "bad label '" + trim(item) + "'");
        }
        seq.emplace_back(*v);
      }
      if (seq.size() < 2) {
        return fail(line_no, "ring needs at least 2 labels");
      }
      labels = std::move(seq);
    } else if (key == "algo") {
      algo = election::algorithm_from_name(value);
      if (!algo.has_value()) {
        return fail(line_no, "unknown algorithm '" + value + "'");
      }
    } else if (key == "k") {
      const auto v = parse_u64(value);
      if (!v.has_value() || *v == 0) {
        return fail(line_no, "k must be a positive integer");
      }
      explicit_k = static_cast<std::size_t>(*v);
    } else if (key == "engine") {
      if (value == "step") {
        config.engine = EngineKind::kStep;
      } else if (value == "event") {
        config.engine = EngineKind::kEvent;
      } else {
        return fail(line_no, "engine must be 'step' or 'event'");
      }
    } else if (key == "sched") {
      if (value == "synchronous") {
        config.scheduler = SchedulerKind::kSynchronous;
      } else if (value == "round-robin") {
        config.scheduler = SchedulerKind::kRoundRobin;
      } else if (value == "random-single") {
        config.scheduler = SchedulerKind::kRandomSingle;
      } else if (value == "random-subset") {
        config.scheduler = SchedulerKind::kRandomSubset;
      } else if (value == "convoy") {
        config.scheduler = SchedulerKind::kConvoy;
      } else {
        return fail(line_no, "unknown scheduler '" + value + "'");
      }
    } else if (key == "delay") {
      if (value == "worst-case") {
        config.delay = DelayKind::kWorstCase;
      } else if (value == "uniform") {
        config.delay = DelayKind::kUniformRandom;
      } else if (value == "slow-link") {
        config.delay = DelayKind::kSlowLink;
      } else {
        return fail(line_no, "unknown delay model '" + value + "'");
      }
    } else if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v.has_value()) return fail(line_no, "bad seed");
      config.seed = *v;
    } else if (key == "budget") {
      const auto v = parse_u64(value);
      if (!v.has_value() || *v == 0) return fail(line_no, "bad budget");
      config.budget = *v;
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }

  if (!labels.has_value()) {
    return fail(0, "missing required key 'ring'");
  }
  RingSpecResult result;
  ring::LabeledRing ring(*labels);
  config.algorithm.id = algo.value_or(election::AlgorithmId::kAk);
  config.algorithm.k =
      explicit_k.value_or(std::max<std::size_t>(1, ring.max_multiplicity()));
  result.spec = RingSpec{std::move(ring), config};
  return result;
}

RingSpecResult parse_ringspec(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_ringspec(in);
}

}  // namespace hring::core
