// Campaigns: many independent elections as one first-class experiment.
//
// A campaign evaluates `cells` elections of one (algorithm, scheduler,
// ring-source) configuration, fans the cells out over a worker pool fed by
// a lock-free CellQueue, and aggregates every cell's Stats into merged
// percentile histograms plus a merged telemetry::MetricsRegistry. The CLI
// sweep and the grid benches are thin wrappers over run_campaign().
//
// Backends. Cells execute either on the scalar engine (run_election, one
// recycled StepEngine/EventEngine per worker thread) or on the batch
// engine (core/batch_engine.hpp, `batch_slots` rings stepped per arena).
// The batch backend covers the step engine with A_k and Chang–Roberts;
// kAuto picks it whenever it applies and the scalar engine otherwise, and
// both produce byte-identical per-cell Stats (the batch engine's
// correctness obligation — tests/integration/batch_engine_test).
//
// Campaigns measure; they do not monitor. run_election's SpecMonitor (and
// extra observers) exist for debugging single runs — a campaign forces
// monitor_spec off on every backend so the two backends see identical
// executions, and relies on terminal-state verification (`verify`)
// instead. Telemetry observers can still be attached per cell on the
// scalar backend via `collect_telemetry`.
//
// Determinism. Every cell derives its ring and election seeds from
// (SweepConfig::seed, cell index) alone — derive_cell_seeds in
// core/election_driver.hpp — so each cell is reproducible in isolation and
// the merged result is invariant under worker count, batch slot count and
// scheduling of the queue (campaign histograms record integers, whose
// double sums stay exact far beyond any realistic campaign size).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "core/election_driver.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/run_result.hpp"
#include "telemetry/metrics.hpp"

namespace hring::core {

enum class CampaignBackend : std::uint8_t {
  /// Batch when the configuration supports it, scalar otherwise.
  kAuto,
  /// Batch engine; run_campaign throws std::invalid_argument if the
  /// configuration is outside its coverage (see resolve_backend).
  kBatch,
  /// Scalar engine for every cell.
  kScalar,
};

[[nodiscard]] const char* campaign_backend_name(CampaignBackend backend);

/// Where each cell's ring comes from. All kinds produce rings of one fixed
/// size (campaigns sweep seeds and instances, not n — sweep n by running
/// one campaign per size, as the benches do).
struct RingSource {
  enum class Kind : std::uint8_t {
    /// Every cell runs the same ring; only the schedule randomness varies.
    kFixed,
    /// Random permutation of the distinct labels 1..n per cell (K_1).
    kDistinct,
    /// Random asymmetric ring with multiplicity <= algorithm.k per cell
    /// (A ∩ K_k), via ring::random_asymmetric_ring.
    kRandomAsymmetric,
    /// Uniform random labels from {1..alphabet} per cell; may be symmetric
    /// and outside every class (stress source — true-leader checking is
    /// skipped for it).
    kUniformRandom,
  };

  Kind kind = Kind::kDistinct;
  /// Ring size for the generated kinds (kFixed takes it from the ring).
  std::size_t n = 8;
  /// Label alphabet for kRandomAsymmetric / kUniformRandom; 0 picks the
  /// per-kind default (the CLI's asymmetric-sampling alphabet, resp. n).
  std::size_t alphabet = 0;
  /// The ring of kFixed.
  std::optional<ring::LabeledRing> ring;

  [[nodiscard]] static RingSource fixed(ring::LabeledRing r);
  [[nodiscard]] static RingSource distinct(std::size_t n);
  [[nodiscard]] static RingSource random_asymmetric(std::size_t n,
                                                    std::size_t alphabet = 0);
  [[nodiscard]] static RingSource uniform_random(std::size_t n,
                                                 std::size_t alphabet = 0);

  [[nodiscard]] std::size_t ring_size() const {
    return kind == Kind::kFixed ? ring->size() : n;
  }
};

/// One completed cell, streamed to SweepConfig::cell_sink. `stats` is a
/// view into the executing worker's arena, valid only during the sink
/// call — copy what you keep.
struct CellView {
  std::size_t cell = 0;
  /// The cell's derived election seed (reproduce with run_election).
  std::uint64_t election_seed = 0;
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::optional<sim::ProcessId> leader;
  bool verified = false;
  const sim::Stats& stats;
};

struct SweepConfig {
  /// Per-cell election template. `seed` is ignored (cells derive their own
  /// from the campaign seed); `monitor_spec` is forced off (see header
  /// comment); `extra_observers` force the scalar backend.
  ElectionConfig election;
  RingSource source;
  std::size_t cells = 16;
  /// Campaign seed — the only seed a campaign has (derive_cell_seeds).
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  CampaignBackend backend = CampaignBackend::kAuto;
  /// Verify each terminal configuration (verify_election's checks).
  bool verify = true;
  /// Additionally require the elected process to be ring.true_leader().
  /// Only meaningful for sources whose rings are asymmetric; ignored for
  /// kUniformRandom.
  bool check_true_leader = false;
  /// Scalar backend only: attach a TelemetryObserver per cell and merge
  /// the per-run registries into CampaignResult::metrics (the CLI's
  /// --metrics-out semantics). Forces the scalar backend under kAuto.
  bool collect_telemetry = false;
  /// Rings stepped concurrently per batch-backend worker.
  std::size_t batch_slots = 64;
  /// Cells per queue claim; 0 = auto (see CellQueue).
  std::size_t queue_grain = 0;
  /// Optional per-cell callback, invoked once per cell from the worker
  /// that ran it (concurrently for distinct cells — synchronize or write
  /// to disjoint state, e.g. index into a pre-sized vector).
  std::function<void(const CellView&)> cell_sink;
};

/// Merged campaign outcome: counts, throughput, and one histogram per
/// Stats field (name "campaign.<field>", unit-width buckets to 256 then
/// power-of-two buckets) inside `metrics`.
struct CampaignResult {
  std::size_t cells = 0;
  std::size_t workers = 0;
  /// The backend that actually ran (kAuto resolved).
  CampaignBackend backend = CampaignBackend::kScalar;
  /// Indexed by sim::Outcome's enumerators.
  std::array<std::uint64_t, 4> outcome_counts{};
  std::uint64_t verify_failures = 0;
  double elapsed_seconds = 0.0;
  double elections_per_second = 0.0;
  /// campaign.* histograms/counters, plus the merged per-run telemetry
  /// registries when collect_telemetry was set.
  telemetry::MetricsRegistry metrics;

  [[nodiscard]] std::uint64_t outcome_count(sim::Outcome outcome) const {
    return outcome_counts[static_cast<std::size_t>(outcome)];
  }
  [[nodiscard]] bool all_verified() const { return verify_failures == 0; }
  /// q-quantile of the per-cell distribution of a Stats field ("steps",
  /// "messages_sent", ...); exact for values < 256, interpolated above.
  [[nodiscard]] double quantile(std::string_view stat, double q) const;
};

/// The backend a config will run on: resolves kAuto, validates kBatch
/// (throws std::invalid_argument with the unsupported feature named).
[[nodiscard]] CampaignBackend resolve_backend(const SweepConfig& config);

/// Runs the campaign. Deterministic in everything but the timing fields.
[[nodiscard]] CampaignResult run_campaign(const SweepConfig& config);

}  // namespace hring::core
