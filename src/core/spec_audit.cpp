#include "core/spec_audit.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/invariants.hpp"
#include "sim/message.hpp"
#include "support/assert.hpp"

namespace hring::core {
namespace {

using sim::ActionEvent;
using sim::ExecutionView;
using sim::Label;
using sim::Message;
using sim::MsgKind;
using sim::Process;
using sim::ProcessId;

/// FNV-1a over a process's observable state: the encode() words (spec
/// variables plus whatever the implementation appends) and the
/// debug_state() rendering (which every algorithm keeps faithful to its
/// internal variables). Collisions would mask a locality violation, but a
/// 64-bit accidental collision on a mutated state is not a realistic miss.
std::uint64_t state_hash(const Process& proc) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  };
  std::vector<std::uint64_t> encoded;
  proc.encode(encoded);
  for (const std::uint64_t word : encoded) mix(word);
  for (const char c : proc.debug_state()) mix(static_cast<std::uint8_t>(c));
  return h;
}

/// One line per firing: "p2 A3 <TOKEN,5> -> <TOKEN,5> <FINISH>". The
/// replay check compares these lines; keeping them human-readable makes
/// the divergence report directly actionable.
std::string firing_line(const ActionEvent& event) {
  std::string line = "p" + std::to_string(event.pid);
  if (!event.action.empty()) {
    line += ' ';
    line += event.action;
  }
  if (event.consumed.has_value()) line += " " + to_string(*event.consumed);
  line += " ->";
  for (const Message& msg : event.sent) line += " " + to_string(msg);
  return line;
}

/// Raw-representation message equality: the auditor's own bookkeeping must
/// not count toward the algorithm's label-comparison statistic.
bool same_message(const Message& a, const Message& b) {
  return a.kind == b.kind && a.label.value() == b.label.value();
}

/// Observer implementing the per-firing checks. `record_only` turns every
/// check off and keeps just the transition log (the replay run).
class AuditObserver final : public sim::Observer {
 public:
  AuditObserver(const SpecAuditConfig& config, std::size_t label_bits,
                std::optional<std::size_t> space_bound_bits,
                bool record_only)
      : config_(config),
        label_bits_(label_bits),
        space_bound_bits_(space_bound_bits),
        record_only_(record_only) {}

  void on_start(const ExecutionView& view) override {
    const std::size_t n = view.process_count();
    shadow_links_.assign(n, {});
    hashes_.resize(n);
    for (ProcessId pid = 0; pid < n; ++pid) {
      hashes_[pid] = state_hash(view.process(pid));
    }
  }

  void on_action(const ExecutionView& view, const ActionEvent& event) override {
    ++firings_;
    messages_ += event.sent.size();
    log_.push_back(firing_line(event));
    if (record_only_) return;

    const std::size_t n = view.process_count();
    const std::string who = "p" + std::to_string(event.pid);

    if (config_.check_fifo) audit_fifo(event, n, who);

    if (config_.check_message_width) {
      for (const Message& msg : event.sent) {
        peak_message_bits_ =
            std::max(peak_message_bits_, message_bits(msg, label_bits_));
        if (msg.kind != MsgKind::kFinish && label_bits_ < 64 &&
            (msg.label.value() >> label_bits_) != 0) {
          report("[message-width] " + who + " sent " + to_string(msg) +
                 " whose payload does not fit the ring's b=" +
                 std::to_string(label_bits_) + " label bits");
        }
      }
    }

    if (event.sent.size() > config_.max_sends_per_firing) {
      report("[send-burst] " + who + " sent " +
             std::to_string(event.sent.size()) +
             " messages in one firing (bound " +
             std::to_string(config_.max_sends_per_firing) + ")");
    }

    if (config_.check_locality) {
      for (ProcessId q = 0; q < n; ++q) {
        if (q == event.pid) continue;
        const std::uint64_t h = state_hash(view.process(q));
        if (h != hashes_[q]) {
          report("[locality] firing of " + who + " (step " +
                 std::to_string(event.step) + ") mutated p" +
                 std::to_string(q) + "'s state");
          hashes_[q] = h;  // report each remote mutation once
        }
      }
      hashes_[event.pid] = state_hash(view.process(event.pid));
    }

    const std::size_t space =
        view.process(event.pid).space_bits(label_bits_);
    peak_space_bits_ = std::max(peak_space_bits_, space);
    if (config_.check_space_bound && space_bound_bits_.has_value() &&
        space > *space_bound_bits_ && !space_reported_) {
      space_reported_ = true;
      report("[space] " + who + " reached " + std::to_string(space) +
             " bits, above the paper's bound of " +
             std::to_string(*space_bound_bits_) + " bits");
    }
  }

  void on_finish(const ExecutionView& view) override {
    if (record_only_ || !config_.check_fifo) return;
    // Messages left in a shadow queue at the end of a *clean* run would
    // mean the engine delivered something the sender never sent; cross-
    // check against the real links instead of assuming.
    for (ProcessId pid = 0; pid < view.process_count(); ++pid) {
      if (shadow_links_[pid].size() != view.out_link(pid).size()) {
        report("[fifo] link p" + std::to_string(pid) +
               " holds " + std::to_string(view.out_link(pid).size()) +
               " messages but " + std::to_string(shadow_links_[pid].size()) +
               " were sent and not received");
      }
    }
  }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }
  [[nodiscard]] std::uint64_t firings() const { return firings_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::size_t peak_space_bits() const {
    return peak_space_bits_;
  }
  [[nodiscard]] std::size_t peak_message_bits() const {
    return peak_message_bits_;
  }

 private:
  void audit_fifo(const ActionEvent& event, std::size_t n,
                  const std::string& who) {
    if (event.consumed.has_value()) {
      auto& in_shadow = shadow_links_[(event.pid + n - 1) % n];
      if (in_shadow.empty()) {
        report("[fifo] " + who + " received " + to_string(*event.consumed) +
               " but its in-link's send log is empty");
      } else {
        const Message expected = in_shadow.front();
        in_shadow.erase(in_shadow.begin());
        if (!same_message(expected, *event.consumed)) {
          report("[fifo] " + who + " received " +
                 to_string(*event.consumed) + " but FIFO order expected " +
                 to_string(expected));
        }
      }
    }
    auto& out_shadow = shadow_links_[event.pid];
    out_shadow.insert(out_shadow.end(), event.sent.begin(),
                      event.sent.end());
  }

  void report(std::string what) {
    if (violations_.size() < kMaxViolations) {
      violations_.push_back(std::move(what));
    }
  }

  static constexpr std::size_t kMaxViolations = 64;

  const SpecAuditConfig& config_;
  std::size_t label_bits_;
  std::optional<std::size_t> space_bound_bits_;
  bool record_only_;

  std::vector<std::vector<Message>> shadow_links_;  // [i]: p_i -> p_{i+1}
  std::vector<std::uint64_t> hashes_;
  std::vector<std::string> log_;
  std::vector<std::string> violations_;
  std::uint64_t firings_ = 0;
  std::uint64_t messages_ = 0;
  std::size_t peak_space_bits_ = 0;
  std::size_t peak_message_bits_ = 0;
  bool space_reported_ = false;
};

sim::RunResult run_once(sim::StepEngine& engine, const ring::LabeledRing& ring,
                        const sim::ProcessFactory& factory,
                        const SpecAuditConfig& config,
                        AuditObserver& auditor, sim::SpecMonitor* monitor) {
  auto scheduler = config.scheduler_factory
                       ? config.scheduler_factory()
                       : make_scheduler(config.scheduler, config.seed);
  HRING_ASSERT(scheduler != nullptr);
  sim::StepConfig step_config;
  step_config.max_steps = config.max_steps;
  step_config.fairness_bound = config.fairness_bound;
  engine.prepare(ring, factory, *scheduler, step_config);
  engine.add_observer(&auditor);
  if (monitor != nullptr) engine.add_observer(monitor);
  return engine.run();
}

}  // namespace

std::string SpecAuditReport::summary() const {
  std::string out = ok() ? "ok" : "FAIL(" +
                                      std::to_string(violations.size()) +
                                      " violations)";
  out += " | outcome=" + std::string(sim::outcome_name(outcome));
  out += " firings=" + std::to_string(firings);
  out += " messages=" + std::to_string(messages);
  out += " space=" + std::to_string(peak_space_bits);
  if (space_bound_bits.has_value()) {
    out += "/" + std::to_string(*space_bound_bits);
  }
  out += " bits, msg<=" + std::to_string(peak_message_bits) + "/" +
         std::to_string(message_bits_bound) + " bits";
  if (replay_ran) out += ", replayed";
  return out;
}

std::optional<std::size_t> paper_space_bound_bits(
    const election::AlgorithmConfig& algorithm, std::size_t n,
    std::size_t b) {
  switch (algorithm.id) {
    case election::AlgorithmId::kAk:
      // Theorem 2: (2k+1)·n·b + 2b + 3.
      return (2 * algorithm.k + 1) * n * b + 2 * b + 3;
    case election::AlgorithmId::kBk: {
      // Theorem 4: 2⌈log k⌉ + 3b + 5.
      std::size_t log_k = 0;
      while ((std::size_t{1} << log_k) < algorithm.k) ++log_k;
      return 2 * log_k + 3 * b + 5;
    }
    case election::AlgorithmId::kChangRoberts:
    case election::AlgorithmId::kLeLann:
    case election::AlgorithmId::kPeterson:
      return std::nullopt;
  }
  HRING_ASSERT(false);
}

SpecAuditReport audit_factory(const ring::LabeledRing& ring,
                              const sim::ProcessFactory& factory,
                              const SpecAuditConfig& config,
                              std::optional<std::size_t> space_bound_bits) {
  HRING_EXPECTS(factory != nullptr);
  const std::size_t b = ring.label_bits();

  // One engine serves both the primary and the replay run: the replay
  // recycles the primary's links, counters and firing buffers, and doubles
  // as a test that recycled executions behave identically to fresh ones.
  sim::StepEngine engine;
  AuditObserver auditor(config, b, space_bound_bits, /*record_only=*/false);
  sim::SpecMonitor monitor;
  const sim::RunResult result =
      run_once(engine, ring, factory, config, auditor, &monitor);

  SpecAuditReport report;
  report.outcome = result.outcome;
  report.firings = auditor.firings();
  report.messages = auditor.messages();
  report.peak_space_bits = auditor.peak_space_bits();
  report.space_bound_bits = space_bound_bits;
  report.peak_message_bits = auditor.peak_message_bits();
  report.message_bits_bound = message_bits(Message::token(Label{}), b);
  report.violations = auditor.violations();
  for (const std::string& v : monitor.violations()) {
    report.violations.push_back("[spec] " + v);
  }
  if (config.require_termination &&
      result.outcome != sim::Outcome::kTerminated) {
    report.violations.push_back(
        "[termination] run ended with outcome=" +
        std::string(sim::outcome_name(result.outcome)) +
        " instead of a clean terminal configuration");
  }

  if (config.check_replay) {
    AuditObserver replay(config, b, space_bound_bits, /*record_only=*/true);
    (void)run_once(engine, ring, factory, config, replay, nullptr);
    report.replay_ran = true;
    const auto& first = auditor.log();
    const auto& second = replay.log();
    const std::size_t common = std::min(first.size(), second.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (first[i] != second[i]) {
        report.violations.push_back(
            "[replay] firing " + std::to_string(i) + " diverged: \"" +
            first[i] + "\" vs \"" + second[i] + "\"");
        break;
      }
    }
    if (first.size() != second.size()) {
      report.violations.push_back(
          "[replay] transition logs have different lengths (" +
          std::to_string(first.size()) + " vs " +
          std::to_string(second.size()) + " firings)");
    }
  }
  return report;
}

SpecAuditReport audit_algorithm(const ring::LabeledRing& ring,
                                const election::AlgorithmConfig& algorithm,
                                const SpecAuditConfig& config) {
  return audit_factory(
      ring, election::make_factory(algorithm), config,
      paper_space_bound_bits(algorithm, ring.size(), ring.label_bits()));
}

}  // namespace hring::core
