#include "core/campaign.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/cell_queue.hpp"
#include "core/parallel_sweep.hpp"
#include "core/verification.hpp"
#include "ring/generator.hpp"
#include "support/assert.hpp"
#include "telemetry/telemetry_observer.hpp"

namespace hring::core {

const char* campaign_backend_name(CampaignBackend backend) {
  switch (backend) {
    case CampaignBackend::kAuto:
      return "auto";
    case CampaignBackend::kBatch:
      return "batch";
    case CampaignBackend::kScalar:
      return "scalar";
  }
  HRING_ASSERT(false);
}

RingSource RingSource::fixed(ring::LabeledRing r) {
  RingSource source;
  source.kind = Kind::kFixed;
  source.n = r.size();
  source.ring = std::move(r);
  return source;
}

RingSource RingSource::distinct(std::size_t n) {
  RingSource source;
  source.kind = Kind::kDistinct;
  source.n = n;
  return source;
}

RingSource RingSource::random_asymmetric(std::size_t n,
                                         std::size_t alphabet) {
  RingSource source;
  source.kind = Kind::kRandomAsymmetric;
  source.n = n;
  source.alphabet = alphabet;
  return source;
}

RingSource RingSource::uniform_random(std::size_t n, std::size_t alphabet) {
  RingSource source;
  source.kind = Kind::kUniformRandom;
  source.n = n;
  source.alphabet = alphabet;
  return source;
}

namespace {

/// One ring for one cell, from the cell's derived ring seed alone.
ring::LabeledRing make_cell_ring(const RingSource& source,
                                 std::uint64_t ring_seed, std::size_t k) {
  support::Rng rng(ring_seed);
  switch (source.kind) {
    case RingSource::Kind::kFixed:
      return *source.ring;
    case RingSource::Kind::kDistinct:
      return ring::distinct_ring(source.n, rng);
    case RingSource::Kind::kRandomAsymmetric: {
      // Default alphabet: the CLI's asymmetric-sampling headroom.
      const std::size_t alphabet = source.alphabet != 0
                                       ? source.alphabet
                                       : (source.n + k - 1) / k + 2;
      auto r = ring::random_asymmetric_ring(source.n, k, alphabet, rng);
      if (!r.has_value()) {
        throw std::runtime_error(
            "campaign: could not sample an asymmetric ring (raise the "
            "alphabet)");
      }
      return std::move(*r);
    }
    case RingSource::Kind::kUniformRandom: {
      const std::size_t alphabet =
          source.alphabet != 0 ? source.alphabet
                               : std::max<std::size_t>(source.n, 2);
      return ring::uniform_random_ring(source.n, alphabet, rng);
    }
  }
  HRING_ASSERT(false);
}

/// Shared bucket edges of every campaign.* histogram: unit-width buckets
/// for values < 256 (exact quantiles for the common small-n range), then
/// power-of-two buckets to 2^40. Fixed layout = merge across workers.
std::vector<double> campaign_edges() {
  std::vector<double> edges;
  edges.reserve(257 + 32);
  for (std::size_t v = 0; v <= 256; ++v) {
    edges.push_back(static_cast<double>(v));
  }
  for (std::uint64_t p = 512; p <= (std::uint64_t{1} << 40); p *= 2) {
    edges.push_back(static_cast<double>(p));
  }
  return edges;
}

constexpr std::array<std::string_view, 8> kStatNames = {
    "steps",          "actions",
    "time_units",     "messages_sent",
    "message_bits_sent", "peak_space_bits",
    "peak_link_occupancy", "label_comparisons",
};

/// Per-worker accumulation: one registry, metric ids resolved once.
struct WorkerState {
  telemetry::MetricsRegistry registry;
  telemetry::CounterId cells_counter;
  telemetry::CounterId verify_fail_counter;
  std::array<telemetry::CounterId, 4> outcome_counters;
  std::array<telemetry::HistogramId, kStatNames.size()> stat_hists;

  explicit WorkerState(const std::vector<double>& edges) {
    cells_counter = registry.counter("campaign.cells");
    verify_fail_counter = registry.counter("campaign.verify_failures");
    for (std::size_t o = 0; o < outcome_counters.size(); ++o) {
      outcome_counters[o] = registry.counter(
          std::string("campaign.outcome.") +
          sim::outcome_name(static_cast<sim::Outcome>(o)));
    }
    for (std::size_t i = 0; i < kStatNames.size(); ++i) {
      stat_hists[i] = registry.histogram(
          std::string("campaign.") + std::string(kStatNames[i]), edges);
    }
  }

  void record_cell(const SweepConfig& config, std::size_t cell,
                   std::uint64_t election_seed, sim::Outcome outcome,
                   std::optional<sim::ProcessId> leader,
                   const sim::Stats& stats, bool verified) {
    registry.add(cells_counter);
    registry.add(outcome_counters[static_cast<std::size_t>(outcome)]);
    if (config.verify && !verified) registry.add(verify_fail_counter);
    const std::array<double, kStatNames.size()> values = {
        static_cast<double>(stats.steps),
        static_cast<double>(stats.actions),
        stats.time_units,
        static_cast<double>(stats.messages_sent),
        static_cast<double>(stats.message_bits_sent),
        static_cast<double>(stats.peak_space_bits),
        static_cast<double>(stats.peak_link_occupancy),
        static_cast<double>(stats.label_comparisons),
    };
    for (std::size_t i = 0; i < values.size(); ++i) {
      registry.record(stat_hists[i], values[i]);
    }
    if (config.cell_sink) {
      config.cell_sink(
          CellView{cell, election_seed, outcome, leader, verified, stats});
    }
  }
};

/// True-leader checking, with the uniform source (possibly symmetric — no
/// true leader to speak of) opted out.
bool effective_check_true_leader(const SweepConfig& config) {
  return config.check_true_leader &&
         config.source.kind != RingSource::Kind::kUniformRandom;
}

void run_scalar_cell(const SweepConfig& config, bool check_true,
                     std::size_t cell, WorkerState& ws) {
  const CellSeeds seeds = derive_cell_seeds(config.seed, cell);
  std::optional<ring::LabeledRing> generated;
  if (config.source.kind != RingSource::Kind::kFixed) {
    generated = make_cell_ring(config.source, seeds.ring_seed,
                               config.election.algorithm.k);
  }
  const ring::LabeledRing& ring =
      generated.has_value() ? *generated : *config.source.ring;

  ElectionConfig cell_config = config.election;
  cell_config.seed = seeds.election_seed;
  cell_config.monitor_spec = false;  // campaigns measure, they don't monitor
  cell_config.stop_on_violation = false;
  telemetry::TelemetryObserver observer;
  if (config.collect_telemetry) {
    cell_config.extra_observers.push_back(&observer);
  }

  const sim::RunResult result = run_election(ring, cell_config);
  bool verified = false;
  if (config.verify) {
    verified = verify_election(ring, result, check_true).ok;
  }
  ws.record_cell(config, cell, seeds.election_seed, result.outcome,
                 result.leader_pid(), result.stats, verified);
  if (config.collect_telemetry) ws.registry.merge(observer.metrics());
}

template <class Algo>
void run_batch_worker(const SweepConfig& config, bool check_true,
                      std::optional<sim::ProcessId> fixed_expected,
                      CellQueue& queue, WorkerState& ws) {
  BatchConfig batch_config;
  batch_config.slots = std::max<std::size_t>(config.batch_slots, 1);
  batch_config.n = config.source.ring_size();
  batch_config.algorithm = config.election.algorithm;
  batch_config.scheduler = config.election.scheduler;
  batch_config.budget = config.election.budget;
  batch_config.verify = config.verify;
  batch_config.check_true_leader = check_true;
  BatchRunner<Algo> runner;
  runner.configure(batch_config);

  const bool fixed = config.source.kind == RingSource::Kind::kFixed;
  std::vector<BatchCellResult> done;
  CellQueue::Span span;
  std::size_t next = 0;
  bool exhausted = false;
  for (;;) {
    // Refill free slots from the queue, a span of cells at a time.
    while (runner.free_slots() > 0 && !exhausted) {
      if (next >= span.end) {
        span = queue.pop();
        if (span.empty()) {
          exhausted = true;
          break;
        }
        next = span.begin;
      }
      const std::size_t cell = next++;
      const CellSeeds seeds = derive_cell_seeds(config.seed, cell);
      if (fixed) {
        runner.activate(cell, *config.source.ring, seeds.election_seed,
                        fixed_expected);
      } else {
        const ring::LabeledRing ring = make_cell_ring(
            config.source, seeds.ring_seed, config.election.algorithm.k);
        std::optional<sim::ProcessId> expected;
        if (check_true) expected = ring.true_leader();
        runner.activate(cell, ring, seeds.election_seed, expected);
      }
    }
    if (!runner.has_active()) break;
    done.clear();
    runner.step_all(done);
    for (const BatchCellResult& r : done) {
      const CellSeeds seeds = derive_cell_seeds(config.seed, r.cell);
      ws.record_cell(config, r.cell, seeds.election_seed, r.outcome,
                     r.leader, *r.stats, r.verified);
    }
  }
}

void run_scalar_worker(const SweepConfig& config, bool check_true,
                       CellQueue& queue, WorkerState& ws) {
  for (;;) {
    const CellQueue::Span span = queue.pop();
    if (span.empty()) return;
    for (std::size_t cell = span.begin; cell < span.end; ++cell) {
      run_scalar_cell(config, check_true, cell, ws);
    }
  }
}

}  // namespace

CampaignBackend resolve_backend(const SweepConfig& config) {
  const auto unsupported = [&]() -> const char* {
    if (config.election.engine != EngineKind::kStep) {
      return "the event engine";
    }
    const election::AlgorithmId id = config.election.algorithm.id;
    if (id != election::AlgorithmId::kAk &&
        id != election::AlgorithmId::kChangRoberts) {
      return "this algorithm";
    }
    if (!config.election.extra_observers.empty()) return "extra observers";
    if (config.collect_telemetry) return "per-cell telemetry";
    return nullptr;
  };
  switch (config.backend) {
    case CampaignBackend::kScalar:
      return CampaignBackend::kScalar;
    case CampaignBackend::kBatch:
      if (const char* why = unsupported()) {
        throw std::invalid_argument(
            std::string("campaign: the batch backend does not support ") +
            why + "; use backend=scalar");
      }
      return CampaignBackend::kBatch;
    case CampaignBackend::kAuto:
      return unsupported() == nullptr ? CampaignBackend::kBatch
                                      : CampaignBackend::kScalar;
  }
  HRING_ASSERT(false);
}

double CampaignResult::quantile(std::string_view stat, double q) const {
  const telemetry::Histogram* hist =
      metrics.find_histogram(std::string("campaign.") + std::string(stat));
  return hist == nullptr ? 0.0 : telemetry::histogram_quantile(*hist, q);
}

CampaignResult run_campaign(const SweepConfig& config) {
  HRING_EXPECTS(config.source.kind != RingSource::Kind::kFixed ||
                config.source.ring.has_value());
  const CampaignBackend backend = resolve_backend(config);
  std::size_t workers =
      config.workers == 0 ? default_worker_count() : config.workers;
  workers = std::min(workers, std::max<std::size_t>(config.cells, 1));
  const bool check_true = effective_check_true_leader(config);
  std::optional<sim::ProcessId> fixed_expected;
  if (check_true && config.source.kind == RingSource::Kind::kFixed) {
    fixed_expected = config.source.ring->true_leader();
  }

  const std::vector<double> edges = campaign_edges();
  std::vector<WorkerState> states;
  states.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) states.emplace_back(edges);

  CellQueue queue(config.cells, workers, config.queue_grain);

  const auto worker_fn = [&](WorkerState& ws) {
    if (backend == CampaignBackend::kScalar) {
      run_scalar_worker(config, check_true, queue, ws);
    } else if (config.election.algorithm.id == election::AlgorithmId::kAk) {
      run_batch_worker<election::BatchAk>(config, check_true, fixed_expected,
                                          queue, ws);
    } else {
      run_batch_worker<election::BatchChangRoberts>(
          config, check_true, fixed_expected, queue, ws);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (workers == 1) {
    worker_fn(states[0]);
  } else {
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          worker_fn(states[w]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);

  CampaignResult result;
  result.cells = config.cells;
  result.workers = workers;
  result.backend = backend;
  for (const WorkerState& ws : states) result.metrics.merge(ws.registry);
  for (std::size_t o = 0; o < result.outcome_counts.size(); ++o) {
    const telemetry::Counter* counter = result.metrics.find_counter(
        std::string("campaign.outcome.") +
        sim::outcome_name(static_cast<sim::Outcome>(o)));
    result.outcome_counts[o] = counter == nullptr ? 0 : counter->value;
  }
  if (const telemetry::Counter* fails =
          result.metrics.find_counter("campaign.verify_failures")) {
    result.verify_failures = fails->value;
  }
  result.elapsed_seconds = elapsed.count();
  result.elections_per_second =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.cells) / result.elapsed_seconds
          : 0.0;
  return result;
}

}  // namespace hring::core
