#include "core/experiment.hpp"

#include "support/assert.hpp"

namespace hring::core {

double ak_time_bound(std::size_t n, std::size_t k) {
  return static_cast<double>((2 * k + 2) * n);
}

std::uint64_t ak_message_bound(std::size_t n, std::size_t k) {
  const auto nn = static_cast<std::uint64_t>(n);
  const auto kk = static_cast<std::uint64_t>(k);
  return nn * nn * (2 * kk + 1) + nn;
}

std::size_t ak_space_bound(std::size_t n, std::size_t k, std::size_t b) {
  return (2 * k + 1) * n * b + 2 * b + 3;
}

std::size_t bk_space_bound(std::size_t k, std::size_t b) {
  std::size_t log_k = 0;
  while ((std::size_t{1} << log_k) < k) ++log_k;
  return 2 * log_k + 3 * b + 5;
}

std::size_t bk_phase_bound(std::size_t n, std::size_t k) {
  return (k + 1) * n;
}

std::uint64_t lower_bound_steps(std::size_t n, std::size_t k) {
  HRING_EXPECTS(k >= 2);
  return 1 + static_cast<std::uint64_t>((k - 2) * n);
}

Measurement measure(const ring::LabeledRing& ring,
                    const ElectionConfig& config) {
  Measurement m;
  m.result = run_election(ring, config);
  const bool check_true_leader =
      election::elects_true_leader(config.algorithm.id);
  m.verification = verify_election(ring, m.result, check_true_leader);
  return m;
}

}  // namespace hring::core
