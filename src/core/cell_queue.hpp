// Lock-free cell queue for campaign workers.
//
// A campaign is an indexed set of independent cells [0, cells). Workers
// claim contiguous spans with one atomic fetch_add — wait-free, no locks,
// no per-cell allocation — and run every cell of a claimed span before
// claiming again. Span claiming replaces parallel_map's one-index-per-claim
// task model for campaigns: at a million elections per second, claiming a
// cache line of cells at a time keeps the atomic off the per-election path
// while preserving dynamic load balance.
//
// Because cells are identified by index and every cell derives its
// randomness from (campaign seed, index) alone (derive_cell_seeds), the
// partition produced by any interleaving of pop() calls yields the same
// per-cell results — worker-count invariance, enforced by
// tests/integration/cell_queue_test and campaign_test.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "support/assert.hpp"

namespace hring::core {

class CellQueue {
 public:
  /// Half-open range of claimed cell indices.
  struct Span {
    std::size_t begin = 0;
    std::size_t end = 0;
    [[nodiscard]] bool empty() const { return begin == end; }
  };

  /// Queue over [0, cells). `grain` is the number of cells per claim; 0
  /// picks a grain that gives each worker several claims (dynamic load
  /// balance) without contending on every cell.
  CellQueue(std::size_t cells, std::size_t workers, std::size_t grain = 0)
      : cells_(cells), grain_(grain) {
    if (grain_ == 0) {
      const std::size_t per_worker =
          cells_ / (std::max<std::size_t>(workers, 1) * 8);
      grain_ = std::clamp<std::size_t>(per_worker, 1, 1024);
    }
    HRING_ENSURES(grain_ >= 1);
  }

  /// Claims the next span; empty() once the queue is exhausted. Wait-free:
  /// one fetch_add per claim.
  // hring-role: consumer
  [[nodiscard]] Span pop() {
    const std::size_t begin =
        next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= cells_) return Span{cells_, cells_};
    return Span{begin, std::min(begin + grain_, cells_)};
  }

  [[nodiscard]] std::size_t cells() const { return cells_; }
  [[nodiscard]] std::size_t grain() const { return grain_; }

 private:
  std::size_t cells_;
  std::size_t grain_;
  // Every worker fetch_adds this cursor; keep it off the cache line that
  // holds the read-only cells_/grain_ configuration.
  // hring-shared: consumer
  alignas(64) std::atomic<std::size_t> next_{0};
};

}  // namespace hring::core
