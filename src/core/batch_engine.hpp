// Batched step engine: many small-n elections per arena.
//
// The scalar StepEngine runs one ring at a time over heap-allocated
// Process objects. A campaign runs millions of small rings, where the
// per-cell fixed costs (process construction, engine rebinding, scheduler
// allocation) dominate the handful of microseconds the election itself
// takes. BatchRunner amortizes them away: it packs `slots` rings of n
// nodes into one arena — bit/label planes for node state (BitPlane,
// SpecPlanes), one LinkPlane for every link of every ring, one flat age
// plane — and steps all active slots in a loop, recycling each slot for
// the next cell the moment its election completes. No per-node heap
// objects, no virtual dispatch on the stepping path, no allocation after
// the arena warms up.
//
// Semantics are the scalar engine's, mirrored exactly: the same enabled
// set construction, fairness forcing, scheduler selection (BatchScheduler
// embeds the same concrete scheduler types by value) and firing-order
// rules as StepEngine::step_once, over batch algorithms
// (election/batch_step.hpp) whose actions mirror the scalar processes.
// Per-cell Stats are byte-identical to a scalar run of the same
// (ring, config, seed) — the batch-vs-scalar cross-check grid in
// tests/integration/batch_engine_test enforces it field by field,
// including the Label-comparison count, which is captured per slot as a
// delta of the thread-local counter around each slot's step.
//
// One BatchRunner is single-threaded; campaign workers each own one
// (core/campaign.cpp) and pull cells from a shared CellQueue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/election_driver.hpp"
#include "election/batch_step.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/batch_link.hpp"
#include "sim/run_result.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace hring::core {

/// The step-engine schedulers, embedded by value and tag-dispatched — a
/// recycled slot re-seeds its scheduler without touching the allocator
/// (make_scheduler, by contrast, heap-allocates one per run).
class BatchScheduler {
 public:
  /// Re-arms the scheduler for a new cell; mirrors make_scheduler's
  /// construction (including RandomSubset's p = 0.5).
  void reset(SchedulerKind kind, std::uint64_t seed) {
    kind_ = kind;
    switch (kind) {
      case SchedulerKind::kSynchronous:
      case SchedulerKind::kConvoy:
        break;  // stateless
      case SchedulerKind::kRoundRobin:
        round_robin_ = sim::RoundRobinScheduler();
        break;
      case SchedulerKind::kRandomSingle:
        random_single_ = sim::RandomSingleScheduler(support::Rng(seed));
        break;
      case SchedulerKind::kRandomSubset:
        random_subset_ =
            sim::RandomSubsetScheduler(support::Rng(seed), 0.5);
        break;
    }
  }

  // hring-lint: hot-path
  void select(const std::vector<sim::ProcessId>& enabled,
              std::vector<sim::ProcessId>& out) {
    switch (kind_) {
      case SchedulerKind::kSynchronous:
        synchronous_.select(enabled, out);
        return;
      case SchedulerKind::kRoundRobin:
        round_robin_.select(enabled, out);
        return;
      case SchedulerKind::kRandomSingle:
        random_single_.select(enabled, out);
        return;
      case SchedulerKind::kRandomSubset:
        random_subset_.select(enabled, out);
        return;
      case SchedulerKind::kConvoy:
        convoy_.select(enabled, out);
        return;
    }
    HRING_ASSERT(false);
  }

 private:
  SchedulerKind kind_ = SchedulerKind::kSynchronous;
  sim::SynchronousScheduler synchronous_;
  sim::RoundRobinScheduler round_robin_;
  sim::RandomSingleScheduler random_single_{support::Rng(0)};
  sim::RandomSubsetScheduler random_subset_{support::Rng(0), 0.5};
  sim::ConvoyScheduler convoy_;
};

/// Completed cell, reported by BatchRunner::step_all. `stats` points into
/// the runner and stays valid until the producing slot is re-activated.
struct BatchCellResult {
  std::size_t cell = 0;
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::optional<sim::ProcessId> leader;
  bool verified = false;
  const sim::Stats* stats = nullptr;
};

/// Arena-wide configuration; every cell of a campaign shares it.
struct BatchConfig {
  std::size_t slots = 64;
  /// Ring size — fixed across the batch (campaigns sweep seeds, not n).
  std::size_t n = 0;
  election::AlgorithmConfig algorithm;
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  std::uint64_t budget = 10'000'000;
  std::size_t fairness_bound = 128;  // sim::StepConfig's default
  /// Check the terminal configuration (§II bullets) per cell.
  bool verify = true;
  /// With verify: also require the elected process to be the precomputed
  /// expected leader passed to activate().
  bool check_true_leader = false;
};

template <class Algo>
class BatchRunner {
 public:
  void configure(const BatchConfig& config);

  /// Binds a free slot to cell `cell` over `ring` (size must equal
  /// config.n), with the cell's election seed. `expected_leader` is the
  /// true leader to verify against (ignored unless check_true_leader).
  void activate(std::size_t cell, const ring::LabeledRing& ring,
                std::uint64_t election_seed,
                std::optional<sim::ProcessId> expected_leader);

  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }
  [[nodiscard]] bool has_active() const { return active_count_ > 0; }

  /// One configuration step for every active slot. Cells that complete are
  /// appended to `done` (not cleared here) and their slots freed; drain
  /// `done` before the next activate() — each result's `stats` pointer is
  /// valid only until its slot is re-activated.
  void step_all(std::vector<BatchCellResult>& done);

 private:
  struct Slot {
    bool active = false;
    std::size_t cell = 0;
    std::uint64_t step = 0;
    std::size_t label_bits = 0;
    sim::Stats stats;
    BatchScheduler scheduler;
    std::optional<sim::ProcessId> expected_leader;
  };

  [[nodiscard]] std::size_t in_link(std::size_t slot,
                                    sim::ProcessId pid) const {
    return slot * n_ + (pid == 0 ? n_ - 1 : pid - 1);
  }
  [[nodiscard]] std::size_t out_link(std::size_t slot,
                                     sim::ProcessId pid) const {
    return slot * n_ + pid;
  }

  /// Mirrors StepEngine::step_once for one slot; false when no process is
  /// enabled (terminal or deadlock).
  [[nodiscard]] bool step_slot(std::size_t s);

  /// True iff slot `s` halted cleanly: all nodes halted, all links empty.
  [[nodiscard]] bool slot_is_clean(std::size_t s) const;

  /// Closes the slot's statistics and verifies the terminal configuration;
  /// mirrors make_result + verify_election.
  [[nodiscard]] BatchCellResult finish_slot(std::size_t s,
                                            sim::Outcome outcome);

  BatchConfig config_;
  std::size_t n_ = 0;
  Algo algo_;
  sim::LinkPlane links_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> age_;  // slots * n, same indexing as planes
  std::vector<std::size_t> free_;   // free slot indices (LIFO)
  std::size_t active_count_ = 0;
  // Shared scratch for the per-slot enabled/chosen sets (one runner is
  // single-threaded, so one pair serves every slot).
  std::vector<sim::ProcessId> enabled_buf_;
  std::vector<sim::ProcessId> chosen_buf_;
};

using BatchAkRunner = BatchRunner<election::BatchAk>;
using BatchChangRobertsRunner = BatchRunner<election::BatchChangRoberts>;

extern template class BatchRunner<election::BatchAk>;
extern template class BatchRunner<election::BatchChangRoberts>;

}  // namespace hring::core
