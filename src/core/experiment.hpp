// Shared experiment plumbing for the benchmark harness (E1-E9): theorem
// bound formulas and a run-and-verify helper, so every bench reports
// measured values against the paper's predicted ceilings the same way.
#pragma once

#include <cstdint>
#include <string>

#include "core/election_driver.hpp"
#include "core/verification.hpp"

namespace hring::core {

// -- Theorem 2 (A_k) ------------------------------------------------------
/// Time upper bound: (2k+2)·n time units.
[[nodiscard]] double ak_time_bound(std::size_t n, std::size_t k);
/// Message upper bound: n²(2k+1) + n.
[[nodiscard]] std::uint64_t ak_message_bound(std::size_t n, std::size_t k);
/// Space upper bound: (2k+1)·n·b + 2b + 3 bits per process.
[[nodiscard]] std::size_t ak_space_bound(std::size_t n, std::size_t k,
                                         std::size_t b);

// -- Theorem 4 (B_k) ------------------------------------------------------
/// Space bound: 2⌈log₂ k⌉ + 3b + 5 bits per process (exact, not just O(·)).
[[nodiscard]] std::size_t bk_space_bound(std::size_t k, std::size_t b);
/// Phase-count bound: X <= (k+1)·n.
[[nodiscard]] std::size_t bk_phase_bound(std::size_t n, std::size_t k);

// -- Lemma 1 / Corollary 2 ------------------------------------------------
/// Minimum synchronous steps of any U* ∩ K_k algorithm on a K_1 ring:
/// 1 + (k-2)·n (k >= 2).
[[nodiscard]] std::uint64_t lower_bound_steps(std::size_t n, std::size_t k);

/// One verified run: executes run_election and checks the terminal state.
/// True-leader conformance is required exactly when the algorithm is one
/// of the paper's (A_k/B_k).
struct Measurement {
  sim::RunResult result;
  VerificationReport verification;
  [[nodiscard]] bool ok() const { return verification.ok; }
};

[[nodiscard]] Measurement measure(const ring::LabeledRing& ring,
                                  const ElectionConfig& config);

}  // namespace hring::core
