// Ringspec: a small text format describing an experiment — ring labels,
// algorithm, daemon, engine — so scenarios can be versioned as files and
// replayed exactly (CLI: --spec).
//
//   # three homonym servers, B_2 under the convoy daemon
//   ring   = 1,2,2
//   algo   = Bk
//   k      = 2
//   engine = step
//   sched  = convoy
//   seed   = 7
//
// Grammar: one `key = value` per line; `#` starts a comment; unknown keys
// and malformed values are errors (with line numbers). `ring` is
// required; everything else defaults as in ElectionConfig.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/election_driver.hpp"
#include "ring/labeled_ring.hpp"

namespace hring::core {

struct RingSpec {
  ring::LabeledRing ring;
  ElectionConfig config;
};

struct RingSpecError {
  std::size_t line = 0;  // 1-based; 0 for file-level errors
  std::string message;

  [[nodiscard]] std::string to_string() const {
    if (line == 0) return message;
    return "line " + std::to_string(line) + ": " + message;
  }
};

/// Parses a spec from a stream. Returns the spec or the first error.
/// (No std::expected on this toolchain; exactly one of the optionals is
/// engaged.)
struct RingSpecResult {
  std::optional<RingSpec> spec;
  std::optional<RingSpecError> error;
};

[[nodiscard]] RingSpecResult parse_ringspec(std::istream& in);
[[nodiscard]] RingSpecResult parse_ringspec(std::string_view text);

}  // namespace hring::core
