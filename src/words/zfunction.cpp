#include "words/zfunction.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::words {

std::vector<std::size_t> z_array(const LabelSequence& seq) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> z(n, 0);
  if (n == 0) return z;
  z[0] = n;
  // [l, r) is the rightmost Z-box seen so far.
  std::size_t l = 0;
  std::size_t r = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (i < r) z[i] = std::min(r - i, z[i - l]);
    while (i + z[i] < n && seq[z[i]] == seq[i + z[i]]) ++z[i];
    if (i + z[i] > r) {
      l = i;
      r = i + z[i];
    }
  }
  return z;
}

std::vector<std::size_t> z_array_naive(const LabelSequence& seq) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> z(n, 0);
  if (n == 0) return z;
  z[0] = n;
  for (std::size_t i = 1; i < n; ++i) {
    while (i + z[i] < n && seq[z[i]] == seq[i + z[i]]) ++z[i];
  }
  return z;
}

std::size_t smallest_period_z(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  const auto z = z_array(seq);
  const std::size_t n = seq.size();
  for (std::size_t p = 1; p < n; ++p) {
    if (p + z[p] == n) return p;
  }
  return n;
}

std::vector<std::size_t> all_periods(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  const auto z = z_array(seq);
  const std::size_t n = seq.size();
  std::vector<std::size_t> periods;
  for (std::size_t p = 1; p < n; ++p) {
    if (p + z[p] == n) periods.push_back(p);
  }
  periods.push_back(n);
  return periods;
}

}  // namespace hring::words
