#include "words/periodicity.hpp"

#include "support/assert.hpp"

namespace hring::words {

std::vector<std::size_t> border_array(const LabelSequence& seq) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> border(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t len = border[i - 1];
    while (len > 0 && !(seq[i] == seq[len])) len = border[len - 1];
    if (seq[i] == seq[len]) ++len;
    border[i] = len;
  }
  return border;
}

std::size_t smallest_period(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  const auto border = border_array(seq);
  return seq.size() - border.back();
}

bool is_period(const LabelSequence& seq, std::size_t period) {
  HRING_EXPECTS(period >= 1);
  for (std::size_t i = period; i < seq.size(); ++i) {
    if (!(seq[i] == seq[i - period])) return false;
  }
  return true;
}

std::size_t smallest_period_naive(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  for (std::size_t m = 1; m < seq.size(); ++m) {
    if (is_period(seq, m)) return m;
  }
  return seq.size();
}

LabelSequence srp(const LabelSequence& seq) {
  const std::size_t m = smallest_period(seq);
  return LabelSequence(seq.begin(),
                       seq.begin() + static_cast<std::ptrdiff_t>(m));
}

void IncrementalPeriod::push_back(Label label) {
  seq_.push_back(label);
  if (seq_.size() == 1) {
    border_.push_back(0);
    return;
  }
  std::size_t len = border_.back();
  while (len > 0 && !(label == seq_[len])) len = border_[len - 1];
  if (label == seq_[len]) ++len;
  border_.push_back(len);
}

std::size_t IncrementalPeriod::period() const {
  HRING_EXPECTS(!seq_.empty());
  return seq_.size() - border_.back();
}

}  // namespace hring::words
