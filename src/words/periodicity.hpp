// Periods and repeating prefixes of label sequences (§IV, "Sequences of
// Labels").
//
// The paper defines: π = σ_m (the length-m prefix) is a *repeating prefix*
// of σ if σ[i] = π[1 + (i-1) mod m] for all i, i.e. σ is a truncation of the
// infinite repetition πππ…  srp(σ) is the repeating prefix of minimum
// length. A prefix of length m is repeating exactly when m is a *period* of
// σ in the classical string sense (σ[i] = σ[i+m] whenever both sides exist),
// so |srp(σ)| is the smallest period, computable from the KMP border array
// as |σ| − border(σ).
#pragma once

#include <cstddef>
#include <vector>

#include "words/label.hpp"

namespace hring::words {

/// KMP border (failure-function) array: out[i] = length of the longest
/// proper border of the prefix of length i+1, for i in [0, n).
[[nodiscard]] std::vector<std::size_t> border_array(const LabelSequence& seq);

/// Smallest period of `seq` (= |srp(seq)|). Requires a non-empty sequence.
[[nodiscard]] std::size_t smallest_period(const LabelSequence& seq);

/// Reference O(n^2) smallest period: tries each m = 1..n in order and
/// returns the first m with is_period(seq, m). For cross-checking.
[[nodiscard]] std::size_t smallest_period_naive(const LabelSequence& seq);

/// The paper's srp(σ): the shortest repeating prefix, as a copy.
/// Requires a non-empty sequence.
[[nodiscard]] LabelSequence srp(const LabelSequence& seq);

/// True iff `period` is a period of `seq` (direct definitional check).
/// Requires 1 <= period.
[[nodiscard]] bool is_period(const LabelSequence& seq, std::size_t period);

/// Maintains the smallest period of a growing sequence online. push_back is
/// amortized O(1); A_k consults period() after every received token, so the
/// naive per-message recomputation would cost O(|σ|) each (ablated in
/// bench_micro).
class IncrementalPeriod {
 public:
  IncrementalPeriod() = default;

  /// Appends one label, updating the border array incrementally.
  void push_back(Label label);

  /// Rewinds to the empty sequence, keeping both buffers' capacity
  /// (AkProcess::decode rebuilds strings into a recycled process).
  void clear() {
    seq_.clear();
    border_.clear();
  }

  [[nodiscard]] std::size_t size() const { return seq_.size(); }
  [[nodiscard]] const LabelSequence& sequence() const { return seq_; }

  /// Smallest period of the current sequence. Requires size() > 0.
  [[nodiscard]] std::size_t period() const;

  /// Smallest period of the length-`len` prefix — the border array stores
  /// every prefix border, so this is a lookup, not a recomputation.
  /// Requires 0 < len <= size().
  [[nodiscard]] std::size_t prefix_period(std::size_t len) const {
    return len - border_[len - 1];
  }

  /// Border length of the whole current sequence (0 for empty).
  [[nodiscard]] std::size_t border() const {
    return border_.empty() ? 0 : border_.back();
  }

 private:
  LabelSequence seq_;
  std::vector<std::size_t> border_;
};

}  // namespace hring::words
