// Z-function: an independent periodicity primitive.
//
// z[i] = length of the longest common prefix of σ and σ[i..). The Z array
// yields the smallest period as min{ p >= 1 : p + z[p] == n } (or n if
// none) — a derivation independent of the KMP border array, used as a
// cross-check of the srp machinery A_k's correctness rides on, and as an
// alternative backend where prefix matching is the natural phrasing.
#pragma once

#include <cstddef>
#include <vector>

#include "words/label.hpp"

namespace hring::words {

/// Z array of `seq`; z[0] = n by convention. Empty for empty input. O(n).
[[nodiscard]] std::vector<std::size_t> z_array(const LabelSequence& seq);

/// Reference O(n^2) Z computation, for cross-checking.
[[nodiscard]] std::vector<std::size_t> z_array_naive(
    const LabelSequence& seq);

/// Smallest period computed from the Z array; must equal
/// periodicity.hpp's smallest_period. Requires a non-empty sequence.
[[nodiscard]] std::size_t smallest_period_z(const LabelSequence& seq);

/// All periods of `seq` (ascending, ends with |seq|), from the Z array.
[[nodiscard]] std::vector<std::size_t> all_periods(const LabelSequence& seq);

}  // namespace hring::words
