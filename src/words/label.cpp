#include "words/label.hpp"

#include <algorithm>
#include <bit>

namespace hring::words {

thread_local std::uint64_t Label::comparison_count_ = 0;

std::string to_string(Label label) { return std::to_string(label.value()); }

std::string to_string(const LabelSequence& seq) {
  std::string out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) out += '.';
    out += to_string(seq[i]);
  }
  return out;
}

LabelSequence make_sequence(std::initializer_list<Label::rep_type> values) {
  LabelSequence seq;
  seq.reserve(values.size());
  for (const auto v : values) seq.emplace_back(v);
  return seq;
}

std::size_t count_occurrences(const LabelSequence& seq, Label label) {
  return static_cast<std::size_t>(
      std::count(seq.begin(), seq.end(), label));
}

std::size_t label_bits(const LabelSequence& seq) {
  Label::rep_type max_value = 0;
  for (const Label l : seq) max_value = std::max(max_value, l.value());
  return std::max<std::size_t>(1, std::bit_width(max_value));
}

}  // namespace hring::words
