// Lyndon words and rotations (§IV, "True Leader").
//
// The true leader of an asymmetric ring R is the process L whose
// counter-clockwise label sequence LLabels(L)^n is a Lyndon word — a
// non-empty sequence strictly smaller, in lexicographic order, than all of
// its non-trivial rotations [Lyndon 1954]. LW(σ) denotes the rotation of σ
// that is a Lyndon word; it exists and is unique exactly when σ is
// rotationally aperiodic (which §IV guarantees, since R is asymmetric).
#pragma once

#include <cstddef>
#include <vector>

#include "words/label.hpp"

namespace hring::words {

/// Index of the lexicographically least rotation of `seq` (Booth's
/// algorithm, O(n)). Among tied minimal rotations, returns the smallest
/// starting index. Requires a non-empty sequence.
[[nodiscard]] std::size_t least_rotation_index(const LabelSequence& seq);

/// Same, on a raw label range — lets callers test a prefix of a larger
/// sequence without copying it. Requires n > 0.
[[nodiscard]] std::size_t least_rotation_index(const Label* seq,
                                               std::size_t n);

/// Reference O(n^2) least rotation index, for cross-checking.
[[nodiscard]] std::size_t least_rotation_index_naive(const LabelSequence& seq);

/// The rotation of `seq` starting at `start` (cyclic copy).
[[nodiscard]] LabelSequence rotate(const LabelSequence& seq,
                                   std::size_t start);

/// True iff `seq` has a non-trivial rotational symmetry, i.e. some rotation
/// by d in (0, n) maps it to itself. (A labeled ring is *symmetric* exactly
/// when its label sequence has this property.)
[[nodiscard]] bool has_rotational_symmetry(const LabelSequence& seq);

/// True iff `seq` is a Lyndon word: non-empty and strictly smaller than
/// every non-trivial rotation of itself.
[[nodiscard]] bool is_lyndon(const LabelSequence& seq);

/// Reference definitional is_lyndon (compares against all n-1 rotations).
[[nodiscard]] bool is_lyndon_naive(const LabelSequence& seq);

/// The paper's LW(σ): the unique rotation of σ that is a Lyndon word.
/// Requires σ non-empty and rotationally aperiodic.
[[nodiscard]] LabelSequence lyndon_rotation(const LabelSequence& seq);

/// First label of LW(σ) without materializing the rotation; this is the
/// quantity A_k's action A4 assigns to p.leader: LW(srp(p.string))[1].
[[nodiscard]] Label lyndon_rotation_first(const LabelSequence& seq);

/// Same, on a raw label range — A_k evaluates LW(srp(p.string))[1] on the
/// length-|srp| prefix of its grown string without copying it.
[[nodiscard]] Label lyndon_rotation_first(const Label* seq, std::size_t n);

/// Chen–Fox–Lyndon factorization via Duval's algorithm: σ = w1 w2 … wm with
/// each wi Lyndon and w1 >= w2 >= … >= wm. Returned as the list of factor
/// lengths (sums to |σ|). Requires a non-empty sequence.
[[nodiscard]] std::vector<std::size_t> duval_factorization(
    const LabelSequence& seq);

/// Lexicographic comparison of two rotations of the same sequence, by
/// cyclic scan over at most n positions; used by the naive references and
/// the ring ground-truth cross-checks.
[[nodiscard]] std::strong_ordering compare_rotations(const LabelSequence& seq,
                                                     std::size_t a,
                                                     std::size_t b);

}  // namespace hring::words
