// Process labels (the paper's homonym identifiers).
//
// The model of §II permits exactly two operations on labels: equality and
// order comparison. Label is a strong type enforcing that discipline: it has
// no arithmetic, and every comparison is routed through compare() so the
// benches can report the number of label comparisons an algorithm performs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace hring::words {

class Label {
 public:
  using rep_type = std::uint64_t;

  constexpr Label() = default;
  explicit constexpr Label(rep_type value) : value_(value) {}

  /// Raw representation; for hashing, printing and space accounting only —
  /// algorithm code must restrict itself to comparisons.
  [[nodiscard]] constexpr rep_type value() const { return value_; }

  friend std::strong_ordering operator<=>(Label a, Label b) {
    ++comparison_count_;
    return a.value_ <=> b.value_;
  }
  friend bool operator==(Label a, Label b) {
    ++comparison_count_;
    return a.value_ == b.value_;
  }

  /// Comparisons performed since the last reset_comparison_count(). The
  /// counter is thread-local: concurrent experiment sweeps do not interfere.
  [[nodiscard]] static std::uint64_t comparison_count() {
    return comparison_count_;
  }
  static void reset_comparison_count() { comparison_count_ = 0; }

 private:
  rep_type value_ = 0;
  static thread_local std::uint64_t comparison_count_;
};

/// A finite word over labels. LLabels(p) prefixes, ring label sequences and
/// A_k's `string` variable are all LabelSequences.
using LabelSequence = std::vector<Label>;

/// Renders a label ("7") for traces and error messages.
[[nodiscard]] std::string to_string(Label label);

/// Renders a sequence ("1.3.1.2") for traces and error messages.
[[nodiscard]] std::string to_string(const LabelSequence& seq);

/// Builds a sequence from raw values; test/bench convenience.
[[nodiscard]] LabelSequence make_sequence(
    std::initializer_list<Label::rep_type> values);

/// Number of occurrences of `label` in `seq`.
[[nodiscard]] std::size_t count_occurrences(const LabelSequence& seq,
                                            Label label);

/// Smallest number of bits sufficient to store any label of `seq` by its raw
/// representation: max(1, bit_width(max value)). This is the paper's `b`.
[[nodiscard]] std::size_t label_bits(const LabelSequence& seq);

}  // namespace hring::words
