#include "words/lyndon.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "words/periodicity.hpp"

namespace hring::words {

std::size_t least_rotation_index(const LabelSequence& seq) {
  return least_rotation_index(seq.data(), seq.size());
}

std::size_t least_rotation_index(const Label* seq, std::size_t n) {
  HRING_EXPECTS(n > 0);
  // Booth's least-rotation algorithm: candidates i and j race with a shared
  // match length k; a mismatch eliminates the candidate holding the larger
  // label together with the k positions behind it. Indices i+k and j+k lie
  // in [0, 2n), so one conditional subtraction replaces the modulo.
  std::size_t i = 0;
  std::size_t j = 1;
  std::size_t k = 0;
  while (i < n && j < n && k < n) {
    std::size_t ia = i + k;
    if (ia >= n) ia -= n;
    std::size_t jb = j + k;
    if (jb >= n) jb -= n;
    const Label a = seq[ia];
    const Label b = seq[jb];
    if (a == b) {
      ++k;
      continue;
    }
    if (a > b) {
      i = i + k + 1;
      if (i == j) ++i;
    } else {
      j = j + k + 1;
      if (j == i) ++j;
    }
    k = 0;
  }
  return std::min(i, j);
}

std::strong_ordering compare_rotations(const LabelSequence& seq,
                                       std::size_t a, std::size_t b) {
  const std::size_t n = seq.size();
  HRING_EXPECTS(a < n && b < n);
  for (std::size_t t = 0; t < n; ++t) {
    const Label x = seq[(a + t) % n];
    const Label y = seq[(b + t) % n];
    const auto cmp = x <=> y;
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return std::strong_ordering::equal;
}

std::size_t least_rotation_index_naive(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (compare_rotations(seq, i, best) == std::strong_ordering::less) {
      best = i;
    }
  }
  return best;
}

LabelSequence rotate(const LabelSequence& seq, std::size_t start) {
  const std::size_t n = seq.size();
  HRING_EXPECTS(start < n || (n == 0 && start == 0));
  LabelSequence out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) out.push_back(seq[(start + t) % n]);
  return out;
}

bool has_rotational_symmetry(const LabelSequence& seq) {
  if (seq.empty()) return false;
  const std::size_t n = seq.size();
  // A rotation by d fixes the sequence iff gcd(d, n) does, so it suffices to
  // test proper divisors of n; d is a cyclic period iff it is a linear
  // period that divides n.
  const std::size_t p = smallest_period(seq);
  return p < n && n % p == 0;
}

bool is_lyndon(const LabelSequence& seq) {
  if (seq.empty()) return false;
  if (has_rotational_symmetry(seq)) return false;  // some rotation ties it
  return least_rotation_index(seq) == 0;
}

bool is_lyndon_naive(const LabelSequence& seq) {
  if (seq.empty()) return false;
  for (std::size_t d = 1; d < seq.size(); ++d) {
    if (compare_rotations(seq, 0, d) != std::strong_ordering::less) {
      return false;
    }
  }
  return true;
}

LabelSequence lyndon_rotation(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  HRING_EXPECTS(!has_rotational_symmetry(seq));
  return rotate(seq, least_rotation_index(seq));
}

Label lyndon_rotation_first(const LabelSequence& seq) {
  return lyndon_rotation_first(seq.data(), seq.size());
}

Label lyndon_rotation_first(const Label* seq, std::size_t n) {
  HRING_EXPECTS(n > 0);
  return seq[least_rotation_index(seq, n)];
}

std::vector<std::size_t> duval_factorization(const LabelSequence& seq) {
  HRING_EXPECTS(!seq.empty());
  const std::size_t n = seq.size();
  std::vector<std::size_t> lengths;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    std::size_t k = i;
    while (j < n && !(seq[j] < seq[k])) {
      if (seq[k] < seq[j]) {
        k = i;  // strictly growing: restart the period scan
      } else {
        ++k;  // equal: continue the periodic run
      }
      ++j;
    }
    // The run seq[i..j) is (j-k) - periodic; emit whole Lyndon factors.
    const std::size_t factor = j - k;
    while (i + factor <= j) {
      lengths.push_back(factor);
      i += factor;
    }
  }
  HRING_ENSURES(!lengths.empty());
  return lengths;
}

}  // namespace hring::words
