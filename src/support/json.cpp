#include "support/json.hpp"

#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace hring::support {

JsonWriter::~JsonWriter() {
  // Destruction with open containers indicates a logic error upstream,
  // but aborting in a destructor during unwinding would be worse; the
  // complete() accessor lets tests assert proper use.
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    HRING_EXPECTS(!top_level_written_);
    top_level_written_ = true;
    return;
  }
  if (stack_.back() == Frame::kObject) {
    HRING_EXPECTS(pending_key_);  // object members need key() first
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HRING_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  HRING_EXPECTS(!pending_key_);
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HRING_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  HRING_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  HRING_EXPECTS(!pending_key_);
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  write_escaped(name);
  out_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

bool JsonWriter::complete() const {
  return stack_.empty() && top_level_written_;
}

void JsonWriter::write_escaped(std::string_view v) {
  out_ << '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\r':
        out_ << "\\r";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace hring::support
