#include "support/rng.hpp"

// Header-only; this translation unit exists so the library has an archive
// member and the header is compiled standalone at least once.
namespace hring::support {
static_assert(Rng::min() == 0);
}  // namespace hring::support
