// Console table printer used by the benchmark harness to emit the
// paper-style tables (EXPERIMENTS.md rows). Columns are right-aligned,
// widths are computed from the data, and the output is stable so bench
// output files diff cleanly between runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hring::support {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  /// Fixed-point with `digits` decimals (benches use 2-3).
  Table& cell(double value, int digits = 2);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the table (header, rule, rows) to `out`.
  void print(std::ostream& out) const;

  /// Renders as CSV (header row first). Cells containing commas, quotes
  /// or newlines are quoted per RFC 4180.
  void print_csv(std::ostream& out) const;

  /// Renders as a JSON array of row objects keyed by header. Cells that
  /// parse completely as finite numbers are emitted unquoted, so
  /// downstream tooling gets real numbers without a schema.
  void print_json(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hring::support
