// Dense bit planes for the batch execution arena.
//
// The batch engine keeps one Boolean per (ring, node) cell — INIT, isLeader,
// done, halted, … — for hundreds of independent rings at once. Storing each
// plane as packed 64-bit words keeps the whole per-node state of a batch in
// a handful of cache lines (the BitVectorState idiom: wide words, one plane
// per variable, no per-node objects).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace hring::support {

class BitPlane {
 public:
  /// Resizes to `bits` cells, all false. Keeps the word buffer's capacity,
  /// so a recycled arena re-sizes without touching the allocator.
  void reset(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return bits_; }

  // hring-lint: hot-path
  [[nodiscard]] bool test(std::size_t i) const {
    HRING_EXPECTS(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  // hring-lint: hot-path
  void set(std::size_t i) {
    HRING_EXPECTS(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  // hring-lint: hot-path
  void clear(std::size_t i) {
    HRING_EXPECTS(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  // hring-lint: hot-path
  void assign(std::size_t i, bool v) {
    if (v) {
      set(i);
    } else {
      clear(i);
    }
  }

  /// Clears the cells [begin, begin + count) — one slot's worth of state
  /// when a batch slot is recycled for a new ring.
  void clear_range(std::size_t begin, std::size_t count) {
    for (std::size_t i = begin; i < begin + count; ++i) clear(i);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hring::support
