// Checked assertion macros used throughout the library.
//
// Unlike <cassert>, these stay enabled in every build type: the simulator is
// the experimental instrument, and a silently-corrupt instrument produces
// plausible-but-wrong tables. Violations abort with file/line context.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hring::support {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "hring: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace hring::support

// Precondition on a public API boundary.
#define HRING_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                           \
          : ::hring::support::assert_fail("precondition", #cond, __FILE__, \
                                          __LINE__))

// Postcondition / internal result check.
#define HRING_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::hring::support::assert_fail("postcondition", #cond, __FILE__, \
                                          __LINE__))

// Internal invariant.
#define HRING_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::hring::support::assert_fail("invariant", #cond, __FILE__, \
                                          __LINE__))
