#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "support/assert.hpp"

namespace hring::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HRING_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  HRING_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return cell(std::string(buf));
}

void Table::print(std::ostream& out) const {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      // Right-align within the column width.
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
      out << cells[c];
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << '|' << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& out) const {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  const auto emit_cell = [&out](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      out << cell;
      return;
    }
    out << '"';
    for (const char c : cell) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      emit_cell(cells[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_json(std::ostream& out) const {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  const auto is_numeric = [](const std::string& cell) {
    if (cell.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size() && std::isfinite(v);
  };
  const auto emit_string = [&out](const std::string& s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out << buf;
          } else {
            out << c;
          }
      }
    }
    out << '"';
  };
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "  {";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c != 0) out << ", ";
      emit_string(headers_[c]);
      out << ": ";
      if (is_numeric(rows_[r][c])) {
        out << rows_[r][c];
      } else {
        emit_string(rows_[r][c]);
      }
    }
    out << (r + 1 == rows_.size() ? "}\n" : "},\n");
  }
  out << "]\n";
}

}  // namespace hring::support
