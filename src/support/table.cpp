#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace hring::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HRING_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  HRING_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return cell(std::string(buf));
}

void Table::print(std::ostream& out) const {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      // Right-align within the column width.
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
      out << cells[c];
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << '|' << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& out) const {
  HRING_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  const auto emit_cell = [&out](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      out << cell;
      return;
    }
    out << '"';
    for (const char c : cell) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      emit_cell(cells[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
}

}  // namespace hring::support
