// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (ring generators, schedulers,
// delay models) draws from an explicitly-seeded Rng so that each experiment
// row and each test is reproducible from its printed seed. The generator is
// xoshiro256** seeded via splitmix64, implemented from the public-domain
// reference algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hring::support {

/// Splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased via
  /// rejection (Lemire-style threshold on the modulus).
  constexpr std::uint64_t below(std::uint64_t bound) {
    // threshold = 2^64 mod bound, computed without 128-bit arithmetic.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  constexpr std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  constexpr bool chance(double p) { return unit() < p; }

  /// Derives an independent child generator (for per-component streams).
  constexpr Rng fork() {
    const std::uint64_t a = (*this)();
    const std::uint64_t b = (*this)();
    return Rng(a ^ rotl(b, 32));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle of a random-access container.
template <class Container>
void shuffle(Container& items, Rng& rng) {
  const std::size_t n = items.size();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.below(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace hring::support
