// Minimal JSON writer.
//
// Enough JSON to serialize run reports: objects, arrays, strings (with
// escaping), integers, doubles and booleans, emitted directly to a
// stream. Writer state is a stack of containers so misuse (closing the
// wrong container, forgetting a key) trips an assertion rather than
// emitting garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hring::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. At the top level exactly one value must be written.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value; required inside objects, forbidden elsewhere.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(double v);
  JsonWriter& null();

  /// True once a single complete top-level value has been emitted.
  [[nodiscard]] bool complete() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void write_escaped(std::string_view v);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
  bool top_level_written_ = false;
};

}  // namespace hring::support
