#include "telemetry/metrics.hpp"

#include <stdexcept>

#include "support/json.hpp"

namespace hring::telemetry {
namespace {

[[nodiscard]] std::string edges_summary(std::span<const double> edges) {
  std::string text = "[" + std::to_string(edges.size()) + " edges";
  if (!edges.empty()) {
    text += ": " + std::to_string(edges.front()) + " .. " +
            std::to_string(edges.back());
  }
  text += "]";
  return text;
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> edges)
    : name_(std::move(name)),
      edges_(std::move(edges)),
      buckets_(edges_.size() + 1, 0) {
  HRING_EXPECTS(!edges_.empty());
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    HRING_EXPECTS(edges_[i - 1] < edges_[i]);
  }
}

void Histogram::merge(const Histogram& other) {
  if (!same_layout(other)) {
    throw std::invalid_argument(
        "Histogram::merge: layout mismatch for '" + name_ + "' vs '" +
        other.name_ + "': " + edges_summary(edges_) + " vs " +
        edges_summary(other.edges_));
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double histogram_quantile(const Histogram& hist, double q) {
  HRING_EXPECTS(q >= 0.0 && q <= 1.0);
  if (hist.count() == 0) return 0.0;
  const double target = q * static_cast<double>(hist.count());
  std::uint64_t cum = 0;
  for (std::size_t slot = 0; slot < hist.slots(); ++slot) {
    const std::uint64_t in_bucket = hist.bucket(slot);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(in_bucket) >= target) {
      double lo = slot == 0 ? hist.min() : hist.edges()[slot - 1];
      double hi =
          slot == hist.slots() - 1 ? hist.max() : hist.edges()[slot];
      if (lo < hist.min()) lo = hist.min();
      if (hi > hist.max()) hi = hist.max();
      if (hi < lo) hi = lo;
      double within =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      if (within < 0.0) within = 0.0;
      if (within > 1.0) within = 1.0;
      return lo + (hi - lo) * within;
    }
    cum += in_bucket;
  }
  return hist.max();
}

CounterId MetricsRegistry::counter(std::string_view name) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) return CounterId{i};
  }
  counters_.push_back(Counter{std::string(name), 0});
  return CounterId{counters_.size() - 1};
}

HistogramId MetricsRegistry::histogram(std::string_view name,
                                       std::span<const double> edges) {
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name() == name) {
      bool same = histograms_[i].edges().size() == edges.size();
      for (std::size_t j = 0; same && j < edges.size(); ++j) {
        same = histograms_[i].edges()[j] == edges[j];
      }
      if (!same) {
        throw std::invalid_argument(
            "MetricsRegistry::histogram: '" + std::string(name) +
            "' re-registered with different edges: " +
            edges_summary(histograms_[i].edges()) + " vs " +
            edges_summary(edges));
      }
      return HistogramId{i};
    }
  }
  histograms_.emplace_back(std::string(name),
                           std::vector<double>(edges.begin(), edges.end()));
  return HistogramId{histograms_.size() - 1};
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  for (const Counter& c : counters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  for (const Histogram& h : histograms_) {
    if (h.name() == name) return &h;
  }
  return nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Counter& c : other.counters_) {
    add(counter(c.name), c.value);
  }
  for (const Histogram& h : other.histograms_) {
    const HistogramId id = histogram(h.name(), h.edges());
    histograms_[id.index].merge(h);
  }
}

void MetricsRegistry::to_json(support::JsonWriter& json) const {
  json.begin_object();
  json.key("counters").begin_object();
  for (const Counter& c : counters_) {
    json.key(c.name).value(c.value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const Histogram& h : histograms_) {
    json.key(h.name()).begin_object();
    json.key("edges").begin_array();
    for (const double e : h.edges()) json.value(e);
    json.end_array();
    json.key("underflow").value(h.underflow());
    json.key("buckets").begin_array();
    for (std::size_t i = 1; i + 1 < h.slots(); ++i) json.value(h.bucket(i));
    json.end_array();
    json.key("overflow").value(h.overflow());
    json.key("count").value(h.count());
    json.key("sum").value(h.sum());
    if (h.count() > 0) {
      json.key("min").value(h.min());
      json.key("max").value(h.max());
      json.key("mean").value(h.mean());
    }
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace hring::telemetry
