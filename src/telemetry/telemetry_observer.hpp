// hring-telemetry: the observer that turns a run into timelines.
//
// TelemetryObserver plugs into the engines' ObserverList (both the step
// engine and the discrete-event engine) and distills every firing into
//
//   * counters      — per-action firing counts ("action.B3", ...),
//                     matched/unmatched message receives;
//   * histograms    — message latency in normalized time units, link queue
//                     depth at each send, per-process space_bits, B_k phase
//                     durations (the quantities Theorems 2 and 4 bound);
//   * spans         — B_k `phase` spans per process (opened on phase entry
//                     via the B1/B6/B8/B9 action labels, closed on phase
//                     advance or halt) and `message` spans from send to
//                     receive, matched through the links' FIFO discipline;
//   * markers       — B4 deactivations and B5 barrier starts.
//
// Detached, it costs nothing: the engines never materialize an ActionEvent
// when no observer is registered. Attached, the recording path is
// allocation-free after the first occurrence of each action label
// (registration is the cold path; see metrics.hpp), which hring-lint's
// hot-path-alloc check enforces over the annotated methods.
//
// The metrics registry is cumulative across runs (re-attach the same
// observer to aggregate a sweep); spans, markers and samples are rewound
// at every on_start so they always describe the latest run.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/message.hpp"
#include "sim/observer.hpp"
#include "telemetry/metrics.hpp"

namespace hring::telemetry {

/// One per-process B_k phase: [begin, end) in both step index and
/// normalized time. `closed` is false for spans still open when the run
/// stopped (their end fields hold the finish time).
struct PhaseSpan {
  sim::ProcessId pid = 0;
  /// 1-based phase number, matching BkProcess::phase().
  std::size_t phase = 0;
  /// Guest label held through this phase (raw label value).
  std::uint64_t guest = 0;
  /// True when the process entered the phase still competing (Figure 1's
  /// white nodes), false for passive entries (black nodes).
  bool active = false;
  bool closed = false;
  double begin_time = 0.0;
  double end_time = 0.0;
  std::uint64_t begin_step = 0;
  std::uint64_t end_step = 0;
};

/// One message's life on the wire: sent by `from` (received by the
/// clockwise neighbor), matched send-to-receive via link FIFO order.
struct MessageSpan {
  sim::ProcessId from = 0;
  sim::MsgKind kind = sim::MsgKind::kToken;
  std::uint64_t label = 0;
  double send_time = 0.0;
  double recv_time = 0.0;
};

/// Instantaneous event worth a timeline tick.
struct Marker {
  enum class Kind : std::uint8_t {
    kDeactivate,  // B4: an active process turned passive
    kBarrier,     // B5: a process initiated the PHASE_SHIFT barrier
  };
  Kind kind = Kind::kDeactivate;
  sim::ProcessId pid = 0;
  double time = 0.0;
  std::uint64_t step = 0;
};

/// Recorded whenever a process's space_bits changes (plus one seed sample
/// per process at start) — the per-process space-over-time series.
struct SpaceSample {
  sim::ProcessId pid = 0;
  double time = 0.0;
  std::size_t bits = 0;
};

class TelemetryObserver : public sim::Observer {
 public:
  struct Config {
    /// Bound on stored message spans (runaway-run guard; metrics keep
    /// counting past it, only span storage stops).
    std::size_t max_message_spans = std::size_t{1} << 16;
    /// Record per-message spans at all. Histograms are unaffected.
    bool message_spans = true;
  };

  TelemetryObserver() : TelemetryObserver(Config{}) {}
  explicit TelemetryObserver(Config config);

  void on_start(const sim::ExecutionView& view) override;
  void on_action(const sim::ExecutionView& view,
                 const sim::ActionEvent& event) override;
  void on_finish(const sim::ExecutionView& view) override;

  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

  [[nodiscard]] const std::vector<PhaseSpan>& phase_spans() const {
    return phase_spans_;
  }
  [[nodiscard]] const std::vector<MessageSpan>& message_spans() const {
    return message_spans_;
  }
  [[nodiscard]] const std::vector<Marker>& markers() const {
    return markers_;
  }
  [[nodiscard]] const std::vector<SpaceSample>& space_samples() const {
    return space_samples_;
  }
  /// Message spans beyond Config::max_message_spans (counted, not stored).
  [[nodiscard]] std::uint64_t dropped_message_spans() const {
    return dropped_message_spans_;
  }

  // Run geometry captured at on_start, for exporters.
  [[nodiscard]] std::size_t process_count() const { return labels_.size(); }
  [[nodiscard]] std::uint64_t process_label(sim::ProcessId pid) const {
    HRING_EXPECTS(pid < labels_.size());
    return labels_[pid];
  }
  [[nodiscard]] double finish_time() const { return finish_time_; }
  [[nodiscard]] std::uint64_t finish_step() const { return finish_step_; }

  // Histogram names registered by this observer (exported documents and
  // tests key on these).
  static constexpr std::string_view kMessageLatencyHistogram =
      "message_latency_time_units";
  static constexpr std::string_view kLinkDepthHistogram = "link_queue_depth";
  static constexpr std::string_view kSpaceBitsHistogram =
      "process_space_bits";
  static constexpr std::string_view kPhaseDurationHistogram =
      "bk_phase_duration_time_units";

 private:
  /// Send-side record waiting for its FIFO-matched receive.
  struct PendingSend {
    double time = 0.0;
    std::uint64_t label = 0;
    sim::MsgKind kind = sim::MsgKind::kToken;
  };

  /// Grow-only power-of-two ring buffer of pending sends, one per link —
  /// the same storage discipline as sim::Link, so steady-state recording
  /// stays off the allocator.
  class PendingQueue {
   public:
    void reset() {
      head_ = 0;
      count_ = 0;
    }
    void push(const PendingSend& s);
    PendingSend pop();
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }

   private:
    void grow();

    std::vector<PendingSend> buf_;  // capacity; a power of two (or empty)
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  /// Per-process B_k phase tracking state.
  struct PhaseTrack {
    std::size_t open_span = kNoSpan;  // index into phase_spans_
    std::size_t phase = 0;
  };
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  /// 1..11 for the B_k action labels "B1".."B11", 0 otherwise.
  [[nodiscard]] static int bk_action_number(std::string_view action);

  /// Cold path: registers the per-action counter for a first-seen label.
  CounterId action_counter_slow(std::string_view action);

  void open_phase(sim::ProcessId pid, std::uint64_t guest, bool active,
                  double time, std::uint64_t step);
  void close_phase(sim::ProcessId pid, double time, std::uint64_t step);

  Config config_;
  MetricsRegistry metrics_;

  // Pre-registered ids (bound at first on_start).
  bool ids_bound_ = false;
  HistogramId latency_hist_{};
  HistogramId link_depth_hist_{};
  HistogramId space_hist_{};
  HistogramId phase_hist_{};
  CounterId actions_counter_{};
  CounterId unmatched_receives_{};

  /// Interned action-name pointer -> counter id. Interned names are
  /// pointer-stable and unique per spelling, so the hot-path lookup is a
  /// pointer scan over a handful of slots.
  struct ActionSlot {
    const char* key = nullptr;
    CounterId id{};
  };
  std::vector<ActionSlot> action_slots_;

  std::vector<std::uint64_t> labels_;
  std::size_t label_bits_ = 0;
  std::vector<PendingQueue> pending_;       // pending_[i]: link p_i -> p_{i+1}
  std::vector<PhaseTrack> phase_tracks_;
  std::vector<std::size_t> last_space_bits_;

  std::vector<PhaseSpan> phase_spans_;
  std::vector<MessageSpan> message_spans_;
  std::vector<Marker> markers_;
  std::vector<SpaceSample> space_samples_;
  std::uint64_t dropped_message_spans_ = 0;
  double finish_time_ = 0.0;
  std::uint64_t finish_step_ = 0;
};

}  // namespace hring::telemetry
