// hring-telemetry: shared Chrome trace-event machinery.
//
// TraceEventWriter is the common substrate under every Perfetto-loadable
// document the repo emits: the simulator timeline exporter
// (trace_export.cpp) and the in-host runtime's flight-recorder trace
// (runtime/inhost/forensics.cpp). It owns the document envelope
// ({"displayTimeUnit":"ms","traceEvents":[...]}), track naming metadata,
// and the common per-event head (name/ph/ts/pid/tid); callers append
// event-specific keys through json() and close with end_event().
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

#include "support/json.hpp"

namespace hring::telemetry {

class TraceEventWriter {
 public:
  /// Opens the trace document on `out`.
  explicit TraceEventWriter(std::ostream& out) : json_(out) {
    json_.begin_object();
    json_.key("displayTimeUnit").value("ms");
    json_.key("traceEvents").begin_array();
  }

  /// Closes the traceEvents array and the document, then writes a final
  /// newline. Call exactly once, after the last event.
  void finish(std::ostream& out) {
    json_.end_array();
    json_.end_object();
    out << '\n';
  }

  /// Names a trace-pid group (a "process" in the Chrome trace model —
  /// rendered by Perfetto as one collapsible lane).
  void name_group(int pid, std::string_view label) {
    metadata_event("process_name", pid, 0, false, label);
  }

  /// Names one track (a "thread") inside a group.
  void name_track(int pid, std::uint64_t tid, std::string_view label) {
    metadata_event("thread_name", pid, tid, true, label);
  }

  /// Opens one event with the common head. Append event-specific keys
  /// (dur, cat, args, ...) through the returned writer, then call
  /// end_event().
  support::JsonWriter& begin_event(std::string_view name, const char* ph,
                                   double ts_micros, int pid,
                                   std::uint64_t tid) {
    json_.begin_object();
    json_.key("name").value(name);
    json_.key("ph").value(ph);
    json_.key("ts").value(ts_micros);
    json_.key("pid").value(pid);
    json_.key("tid").value(tid);
    return json_;
  }

  void end_event() { json_.end_object(); }

  /// The underlying writer, for event-specific keys between begin_event
  /// and end_event.
  [[nodiscard]] support::JsonWriter& json() { return json_; }

 private:
  void metadata_event(const char* kind, int pid, std::uint64_t tid,
                      bool with_tid, std::string_view label) {
    json_.begin_object();
    json_.key("name").value(kind);
    json_.key("ph").value("M");
    json_.key("pid").value(pid);
    if (with_tid) json_.key("tid").value(tid);
    json_.key("args").begin_object();
    json_.key("name").value(label);
    json_.end_object();
    json_.end_object();
  }

  support::JsonWriter json_;
};

}  // namespace hring::telemetry
