// hring-telemetry: the flight recorder.
//
// A per-thread, fixed-capacity, allocation-free ring buffer of timestamped
// events — the black box the in-host runtime (runtime/inhost/) carries so
// that when the watchdog declares a stall, the run dies *with* a record of
// what every thread was doing instead of just merged end-of-run counters.
//
// Concurrency is the same Lamport single-writer discipline the SPSC byte
// queues use: each ring has exactly one writer (the owning worker thread),
// which reads its own cursor relaxed and publishes it with release after
// writing the slot; the forensic reader (the watchdog, or the main thread
// after join) loads the cursor acquire and walks the slots backward. Slot
// payloads are themselves relaxed atomics, so a reader racing an active
// writer can observe a torn *pair* (timestamp from one event, payload from
// another) on the slot currently being overwritten — never undefined
// behavior — and in practice forensic reads happen when the ring is
// quiescent (the owner is parked, wedged, or joined). Recording is two
// relaxed stores plus one release store: cheap enough to leave attached.
//
// The buffer *overwrites*: once `capacity` events have been recorded, each
// new event replaces the oldest. A stall dump therefore shows the last-K
// events per thread, which is exactly the forensic question ("what was
// this thread doing when the ring went quiet?").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/assert.hpp"

namespace hring::telemetry {

/// What happened. The vocabulary covers the in-host runtime's worker loop
/// (runtime/inhost/inhost_ring.cpp); `arg` is kind-specific (see each
/// entry).
enum class FlightEventKind : std::uint8_t {
  kJoin,             ///< membership join announced; arg = pid
  kStart,            ///< start_election observed; arg = 0
  kFire,             ///< one firing begins; arg = global firing seq
  kSend,             ///< frame enqueued; arg = the frame's send_ts_ns
  kRecv,             ///< frame consumed; arg = the frame's send_ts_ns
  kWireReject,       ///< decoder refused a frame; arg = running reject count
  kBeat,             ///< liveness beat (coalesced: first beat per idle spell)
  kBackoffEscalate,  ///< spin/yield ladder exhausted; arg = 0
  kPark,             ///< about to futex-park on the doorbell; arg = ticket
  kDoorbellWake,     ///< doorbell wait returned; arg = ticket observed
  kHalt,             ///< the process halted; arg = 0
  kExit,             ///< worker loop exits; arg = 0
};

inline constexpr std::size_t kNumFlightEventKinds = 12;

/// "park", "doorbell-wake", ... — stable names for dumps and tests.
[[nodiscard]] const char* flight_event_kind_name(FlightEventKind kind);

/// One decoded event, as returned to forensic readers.
struct FlightEvent {
  std::uint64_t ts_ns = 0;  ///< monotonic clock at record time
  FlightEventKind kind = FlightEventKind::kJoin;
  std::uint64_t arg = 0;  ///< kind-specific payload (56 significant bits)
};

/// One thread's overwriting event ring. Single writer (the owning
/// thread); any thread may read a snapshot.
class FlightRing {
 public:
  /// Rebinds to `capacity` slots (rounded up to a power of two, minimum
  /// 16). Not thread-safe: call before the writer starts.
  void reset(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Writer side: records one event. Two relaxed stores into the slot,
  /// one release store publishing the cursor — no allocation, no fence
  /// beyond the publication, safe to call at firing rate.
  // hring-lint: hot-path
  // hring-role: consumer
  void record(FlightEventKind kind, std::uint64_t arg) {
    const std::uint64_t at = cursor_.load(std::memory_order_relaxed);
    Slot& slot = slots_[static_cast<std::size_t>(at) & mask_];
    slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
    slot.word.store(pack(kind, arg), std::memory_order_relaxed);
    cursor_.store(at + 1, std::memory_order_release);
  }

  /// Events ever recorded (not capped by capacity). Reader side.
  // hring-role: watchdog
  [[nodiscard]] std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_acquire);
  }

  /// Reader side: the retained events, oldest first (at most capacity()
  /// of them). See the header comment for the tearing caveat on a ring
  /// whose writer is still running.
  // hring-role: watchdog
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Reader side: the kind of the last published event, or kJoin on an
  /// empty ring. One acquire load plus one relaxed slot read — cheap
  /// enough for the watchdog to poll. The slot behind the published
  /// cursor is stable (the writer's next store targets the slot *at*
  /// the cursor), so this never reads a half-written event.
  // hring-role: watchdog
  [[nodiscard]] FlightEventKind last_kind() const {
    const std::uint64_t end = cursor_.load(std::memory_order_acquire);
    if (end == 0) return FlightEventKind::kJoin;
    const Slot& slot = slots_[static_cast<std::size_t>(end - 1) & mask_];
    return static_cast<FlightEventKind>(
        slot.word.load(std::memory_order_relaxed) & 0xFF);
  }

 private:
  /// kind in the low byte, arg (truncated to 56 bits) above it — one
  /// atomic word, so kind and arg can never tear against each other.
  [[nodiscard]] static std::uint64_t pack(FlightEventKind kind,
                                          std::uint64_t arg) {
    return (arg << 8) | static_cast<std::uint64_t>(kind);
  }

  [[nodiscard]] static std::uint64_t now_ns();

  struct Slot {
    // hring-shared: consumer,watchdog
    std::atomic<std::uint64_t> ts_ns{0};
    // hring-shared: consumer,watchdog
    std::atomic<std::uint64_t> word{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  /// Monotonic event count; slot index is cursor & mask. Own cache line:
  /// the reader polls it while the writer publishes.
  // hring-shared: consumer->watchdog
  alignas(64) std::atomic<std::uint64_t> cursor_{0};
};

/// The per-run recorder: one FlightRing per worker thread. Detached (the
/// default) it holds no storage and recording is skipped entirely; the
/// runtime only dereferences rings when attached.
class FlightRecorder {
 public:
  /// Attaches `threads` rings of `capacity` events each.
  void reset(std::size_t threads, std::size_t capacity);

  /// Back to the detached state (drops all storage).
  void detach();

  [[nodiscard]] bool attached() const { return threads_ > 0; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  [[nodiscard]] FlightRing& ring(std::size_t tid) {
    HRING_EXPECTS(tid < threads_);
    return rings_[tid];
  }
  [[nodiscard]] const FlightRing& ring(std::size_t tid) const {
    HRING_EXPECTS(tid < threads_);
    return rings_[tid];
  }

 private:
  std::unique_ptr<FlightRing[]> rings_;
  std::size_t threads_ = 0;
};

}  // namespace hring::telemetry
