#include "telemetry/flight_recorder.hpp"

#include <chrono>

namespace hring::telemetry {
namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t value) {
  std::size_t pow2 = 16;
  while (pow2 < value) pow2 <<= 1U;
  return pow2;
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kJoin:
      return "join";
    case FlightEventKind::kStart:
      return "start";
    case FlightEventKind::kFire:
      return "fire";
    case FlightEventKind::kSend:
      return "send";
    case FlightEventKind::kRecv:
      return "recv";
    case FlightEventKind::kWireReject:
      return "wire-reject";
    case FlightEventKind::kBeat:
      return "beat";
    case FlightEventKind::kBackoffEscalate:
      return "backoff-escalate";
    case FlightEventKind::kPark:
      return "park";
    case FlightEventKind::kDoorbellWake:
      return "doorbell-wake";
    case FlightEventKind::kHalt:
      return "halt";
    case FlightEventKind::kExit:
      return "exit";
  }
  return "unknown";
}

void FlightRing::reset(std::size_t capacity) {
  const std::size_t slots = round_up_pow2(capacity);
  slots_ = std::make_unique<Slot[]>(slots);
  mask_ = slots - 1;
  cursor_.store(0, std::memory_order_release);
}

std::uint64_t FlightRing::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  std::vector<FlightEvent> events;
  if (!slots_) return events;
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t retained =
      end < static_cast<std::uint64_t>(capacity())
          ? end
          : static_cast<std::uint64_t>(capacity());
  events.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t at = end - retained; at != end; ++at) {
    const Slot& slot = slots_[static_cast<std::size_t>(at) & mask_];
    FlightEvent event;
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const std::uint64_t word = slot.word.load(std::memory_order_relaxed);
    event.kind = static_cast<FlightEventKind>(word & 0xFFU);
    event.arg = word >> 8U;
    events.push_back(event);
  }
  return events;
}

void FlightRecorder::reset(std::size_t threads, std::size_t capacity) {
  rings_ = std::make_unique<FlightRing[]>(threads);
  threads_ = threads;
  for (std::size_t tid = 0; tid < threads; ++tid) rings_[tid].reset(capacity);
}

void FlightRecorder::detach() {
  rings_.reset();
  threads_ = 0;
}

}  // namespace hring::telemetry
