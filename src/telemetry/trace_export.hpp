// hring-telemetry: exporters.
//
// write_trace_json emits a Chrome trace-event JSON document (the format
// chrome://tracing and ui.perfetto.dev load directly): per-process tracks
// carrying B_k phase spans and deactivation/barrier ticks, per-link tracks
// carrying message spans, counter tracks for the active-process census and
// per-process space_bits. One normalized time unit is rendered as one
// millisecond.
//
// write_metrics_json emits the metrics registry as a standalone JSON
// document (see MetricsRegistry::to_json for the schema).
#pragma once

#include <iosfwd>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry_observer.hpp"

namespace hring::telemetry {

/// Trace-event pid namespaces used by write_trace_json: process timelines
/// live under trace pid 1, link timelines under trace pid 2.
inline constexpr int kTraceProcessGroup = 1;
inline constexpr int kTraceLinkGroup = 2;

/// Microseconds per normalized time unit in the exported trace (1 unit =
/// 1 ms, so Perfetto's "ms" display reads directly in time units).
inline constexpr double kTraceMicrosPerTimeUnit = 1000.0;

void write_trace_json(std::ostream& out, const TelemetryObserver& telemetry);

void write_metrics_json(std::ostream& out, const MetricsRegistry& registry);

}  // namespace hring::telemetry
