#include "telemetry/trace_export.hpp"

#include <ostream>
#include <string>

#include "support/json.hpp"

namespace hring::telemetry {

namespace {

using support::JsonWriter;

double to_micros(double time_units) {
  return time_units * kTraceMicrosPerTimeUnit;
}

/// Common prefix of every event: name/ph/ts plus the track coordinates.
void event_head(JsonWriter& json, std::string_view name, const char* ph,
                double ts_micros, int pid, std::uint64_t tid) {
  json.begin_object();
  json.key("name").value(name);
  json.key("ph").value(ph);
  json.key("ts").value(ts_micros);
  json.key("pid").value(pid);
  json.key("tid").value(tid);
}

void metadata_event(JsonWriter& json, const char* kind, int pid,
                    std::uint64_t tid, bool with_tid,
                    std::string_view label) {
  json.begin_object();
  json.key("name").value(kind);
  json.key("ph").value("M");
  json.key("pid").value(pid);
  if (with_tid) json.key("tid").value(tid);
  json.key("args").begin_object();
  json.key("name").value(label);
  json.end_object();
  json.end_object();
}

}  // namespace

void write_trace_json(std::ostream& out,
                      const TelemetryObserver& telemetry) {
  JsonWriter json(out);
  const std::size_t n = telemetry.process_count();

  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();

  // Track naming. Processes and links are separate trace-pid groups so
  // Perfetto renders them as two collapsible lanes.
  metadata_event(json, "process_name", kTraceProcessGroup, 0, false,
                 "processes");
  metadata_event(json, "process_name", kTraceLinkGroup, 0, false, "links");
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    const std::string proc_name = "p" + std::to_string(pid) + " (label " +
                                  std::to_string(telemetry.process_label(pid)) +
                                  ")";
    metadata_event(json, "thread_name", kTraceProcessGroup, pid, true,
                   proc_name);
    const std::string link_name =
        "link p" + std::to_string(pid) + " -> p" +
        std::to_string(pid + 1 == n ? 0 : pid + 1);
    metadata_event(json, "thread_name", kTraceLinkGroup, pid, true,
                   link_name);
  }

  // B_k phase spans: complete ("X") events on the owning process's track.
  for (const PhaseSpan& span : telemetry.phase_spans()) {
    const std::string name = "phase " + std::to_string(span.phase) + " g=" +
                             std::to_string(span.guest) +
                             (span.active ? "*" : "");
    event_head(json, name, "X", to_micros(span.begin_time),
               kTraceProcessGroup, span.pid);
    json.key("dur").value(to_micros(span.end_time - span.begin_time));
    json.key("cat").value("phase");
    json.key("args").begin_object();
    json.key("phase").value(static_cast<std::uint64_t>(span.phase));
    json.key("guest").value(span.guest);
    json.key("active").value(span.active);
    json.key("closed").value(span.closed);
    json.end_object();
    json.end_object();
  }

  // Deactivations and barrier starts: instant ("i") ticks.
  for (const Marker& marker : telemetry.markers()) {
    const bool deactivate = marker.kind == Marker::Kind::kDeactivate;
    event_head(json, deactivate ? "deactivate" : "phase barrier", "i",
               to_micros(marker.time), kTraceProcessGroup, marker.pid);
    json.key("s").value("t");
    json.key("cat").value("marker");
    json.end_object();
  }

  // Active-process census as a counter track: starts at the number of
  // phase-1 entries and steps down at each deactivation (markers are
  // recorded in firing order, i.e. chronologically).
  std::uint64_t active = 0;
  for (const PhaseSpan& span : telemetry.phase_spans()) {
    if (span.phase == 1) ++active;
  }
  if (active > 0) {
    const auto emit_active = [&](double time, std::uint64_t value) {
      event_head(json, "active processes", "C", to_micros(time),
                 kTraceProcessGroup, 0);
      json.key("args").begin_object();
      json.key("active").value(value);
      json.end_object();
      json.end_object();
    };
    emit_active(0.0, active);
    for (const Marker& marker : telemetry.markers()) {
      if (marker.kind != Marker::Kind::kDeactivate) continue;
      if (active > 0) --active;
      emit_active(marker.time, active);
    }
  }

  // Per-process space_bits as counter tracks (sampled on change).
  for (const SpaceSample& sample : telemetry.space_samples()) {
    const std::string name = "space_bits p" + std::to_string(sample.pid);
    event_head(json, name, "C", to_micros(sample.time), kTraceProcessGroup,
               sample.pid);
    json.key("args").begin_object();
    json.key("bits").value(static_cast<std::uint64_t>(sample.bits));
    json.end_object();
    json.end_object();
  }

  // Message spans: complete events on the carrying link's track. A span
  // with equal send and receive times (step engine, same-step delivery)
  // still renders as a zero-width slice.
  for (const MessageSpan& span : telemetry.message_spans()) {
    event_head(json, sim::kind_name(span.kind), "X",
               to_micros(span.send_time), kTraceLinkGroup, span.from);
    json.key("dur").value(to_micros(span.recv_time - span.send_time));
    json.key("cat").value("message");
    json.key("args").begin_object();
    json.key("label").value(span.label);
    json.end_object();
    json.end_object();
  }

  json.end_array();
  json.end_object();
  out << '\n';
}

void write_metrics_json(std::ostream& out, const MetricsRegistry& registry) {
  JsonWriter json(out);
  registry.to_json(json);
  out << '\n';
}

}  // namespace hring::telemetry
