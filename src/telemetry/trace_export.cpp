#include "telemetry/trace_export.hpp"

#include <ostream>
#include <string>

#include "support/json.hpp"
#include "telemetry/trace_writer.hpp"

namespace hring::telemetry {

namespace {

using support::JsonWriter;

double to_micros(double time_units) {
  return time_units * kTraceMicrosPerTimeUnit;
}

}  // namespace

void write_trace_json(std::ostream& out,
                      const TelemetryObserver& telemetry) {
  TraceEventWriter trace(out);
  const std::size_t n = telemetry.process_count();

  // Track naming. Processes and links are separate trace-pid groups so
  // Perfetto renders them as two collapsible lanes.
  trace.name_group(kTraceProcessGroup, "processes");
  trace.name_group(kTraceLinkGroup, "links");
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    const std::string proc_name = "p" + std::to_string(pid) + " (label " +
                                  std::to_string(telemetry.process_label(pid)) +
                                  ")";
    trace.name_track(kTraceProcessGroup, pid, proc_name);
    const std::string link_name =
        "link p" + std::to_string(pid) + " -> p" +
        std::to_string(pid + 1 == n ? 0 : pid + 1);
    trace.name_track(kTraceLinkGroup, pid, link_name);
  }

  // B_k phase spans: complete ("X") events on the owning process's track.
  for (const PhaseSpan& span : telemetry.phase_spans()) {
    const std::string name = "phase " + std::to_string(span.phase) + " g=" +
                             std::to_string(span.guest) +
                             (span.active ? "*" : "");
    JsonWriter& json = trace.begin_event(
        name, "X", to_micros(span.begin_time), kTraceProcessGroup, span.pid);
    json.key("dur").value(to_micros(span.end_time - span.begin_time));
    json.key("cat").value("phase");
    json.key("args").begin_object();
    json.key("phase").value(static_cast<std::uint64_t>(span.phase));
    json.key("guest").value(span.guest);
    json.key("active").value(span.active);
    json.key("closed").value(span.closed);
    json.end_object();
    trace.end_event();
  }

  // Deactivations and barrier starts: instant ("i") ticks.
  for (const Marker& marker : telemetry.markers()) {
    const bool deactivate = marker.kind == Marker::Kind::kDeactivate;
    JsonWriter& json =
        trace.begin_event(deactivate ? "deactivate" : "phase barrier", "i",
                          to_micros(marker.time), kTraceProcessGroup,
                          marker.pid);
    json.key("s").value("t");
    json.key("cat").value("marker");
    trace.end_event();
  }

  // Active-process census as a counter track: starts at the number of
  // phase-1 entries and steps down at each deactivation (markers are
  // recorded in firing order, i.e. chronologically).
  std::uint64_t active = 0;
  for (const PhaseSpan& span : telemetry.phase_spans()) {
    if (span.phase == 1) ++active;
  }
  if (active > 0) {
    const auto emit_active = [&](double time, std::uint64_t value) {
      JsonWriter& json = trace.begin_event("active processes", "C",
                                           to_micros(time), kTraceProcessGroup,
                                           0);
      json.key("args").begin_object();
      json.key("active").value(value);
      json.end_object();
      trace.end_event();
    };
    emit_active(0.0, active);
    for (const Marker& marker : telemetry.markers()) {
      if (marker.kind != Marker::Kind::kDeactivate) continue;
      if (active > 0) --active;
      emit_active(marker.time, active);
    }
  }

  // Per-process space_bits as counter tracks (sampled on change).
  for (const SpaceSample& sample : telemetry.space_samples()) {
    const std::string name = "space_bits p" + std::to_string(sample.pid);
    JsonWriter& json = trace.begin_event(name, "C", to_micros(sample.time),
                                         kTraceProcessGroup, sample.pid);
    json.key("args").begin_object();
    json.key("bits").value(static_cast<std::uint64_t>(sample.bits));
    json.end_object();
    trace.end_event();
  }

  // Message spans: complete events on the carrying link's track. A span
  // with equal send and receive times (step engine, same-step delivery)
  // still renders as a zero-width slice.
  for (const MessageSpan& span : telemetry.message_spans()) {
    JsonWriter& json =
        trace.begin_event(sim::kind_name(span.kind), "X",
                          to_micros(span.send_time), kTraceLinkGroup,
                          span.from);
    json.key("dur").value(to_micros(span.recv_time - span.send_time));
    json.key("cat").value("message");
    json.key("args").begin_object();
    json.key("label").value(span.label);
    json.end_object();
    trace.end_event();
  }

  trace.finish(out);
}

void write_metrics_json(std::ostream& out, const MetricsRegistry& registry) {
  JsonWriter json(out);
  registry.to_json(json);
  out << '\n';
}

}  // namespace hring::telemetry
