// hring-telemetry: metrics registry.
//
// Counters and fixed-bucket histograms for run instrumentation. The design
// splits registration from recording: registering a metric (cold path, at
// observer start) may allocate and returns a dense id; recording through
// that id (hot path, once per firing / per step) is a bounds-checked index
// plus an increment and never touches the allocator — the same discipline
// the engines follow, enforced by hring-lint's hot-path-alloc check.
//
// Registries from parallel sweep workers merge by metric name (counters
// add, histograms add bucket-wise), so a fan-out of runs aggregates into
// one document. Serialization reuses support/json.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/assert.hpp"

namespace hring::support {
class JsonWriter;
}

namespace hring::telemetry {

/// Dense handle into a registry's counter table.
struct CounterId {
  std::size_t index = 0;
};

/// Dense handle into a registry's histogram table.
struct HistogramId {
  std::size_t index = 0;
};

struct Counter {
  std::string name;
  std::uint64_t value = 0;
};

/// Fixed-bucket histogram over doubles.
///
/// The bucket layout is defined by a strictly increasing edge sequence
/// e_0 < e_1 < ... < e_{m-1}:
///
///   slot 0      — underflow:  v < e_0
///   slot i      — interior:   e_{i-1} <= v < e_i   (1 <= i <= m-1)
///   slot m      — overflow:   v >= e_{m-1}
///
/// A value exactly on an edge lands in the bucket whose *lower* edge it is
/// (lower-inclusive). Edges are fixed at registration: recording never
/// rebalances, so the hot path is one binary search plus an increment.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> edges);

  // hring-lint: hot-path
  void record(double v) {
    std::size_t lo = 0;
    std::size_t hi = edges_.size();
    // First edge strictly greater than v == the slot index (see layout).
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (edges_[mid] <= v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ++buckets_[lo];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// Number of bucket slots: edges().size() + 1 (underflow + interior +
  /// overflow).
  [[nodiscard]] std::size_t slots() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t slot) const {
    HRING_EXPECTS(slot < buckets_.size());
    return buckets_[slot];
  }
  [[nodiscard]] std::uint64_t underflow() const { return buckets_.front(); }
  [[nodiscard]] std::uint64_t overflow() const { return buckets_.back(); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Smallest / largest recorded value; only meaningful when count() > 0.
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// True iff `other` has the same name and the same edge sequence — the
  /// precondition for merge().
  [[nodiscard]] bool same_layout(const Histogram& other) const {
    return name_ == other.name_ && edges_ == other.edges_;
  }

  /// Adds `other`'s buckets and moments into this histogram. Throws
  /// std::invalid_argument (naming both layouts) unless
  /// same_layout(other) — bucket-wise addition over different edge
  /// sequences would silently produce nonsense.
  void merge(const Histogram& other);

 private:
  std::string name_;
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Approximate q-quantile (0 <= q <= 1) of a histogram's recorded
/// distribution: linear interpolation within the bucket containing the
/// target rank, with the end buckets tightened to the observed min/max.
/// Exact at q=0 (min) and q=1 (max); interior quantiles are exact whenever
/// each bucket holds a single value (e.g. unit-width integer buckets).
/// Returns 0 for an empty histogram.
[[nodiscard]] double histogram_quantile(const Histogram& hist, double q);

/// Named counters and histograms for one run (or one worker's worth of
/// runs). Registration is find-or-create by name; ids stay valid for the
/// registry's lifetime (tables only grow).
class MetricsRegistry {
 public:
  /// Finds or creates the counter `name`.
  CounterId counter(std::string_view name);

  /// Finds or creates the histogram `name` with the given bucket edges
  /// (strictly increasing, non-empty). Re-registering an existing name
  /// with different edges throws std::invalid_argument — two metrics
  /// sharing a name but not a bucket layout is a caller bug the merge
  /// path must be able to reject cleanly (registries cross worker and
  /// even process boundaries).
  HistogramId histogram(std::string_view name, std::span<const double> edges);

  // hring-lint: hot-path
  void add(CounterId id, std::uint64_t delta = 1) {
    HRING_EXPECTS(id.index < counters_.size());
    counters_[id.index].value += delta;
  }

  // hring-lint: hot-path
  void record(HistogramId id, double v) {
    HRING_EXPECTS(id.index < histograms_.size());
    histograms_[id.index].record(v);
  }

  [[nodiscard]] const std::vector<Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<Histogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Folds `other` into this registry by metric name: counters add,
  /// histograms merge bucket-wise, metrics missing here are created. The
  /// aggregation step of a parallel sweep. A histogram name carried by
  /// both registries with different edges throws std::invalid_argument
  /// (from histogram()); this registry keeps whatever was merged before
  /// the mismatching entry.
  void merge(const MetricsRegistry& other);

  /// Emits the registry as one JSON object value:
  ///   {"counters": {...}, "histograms": {name: {edges, buckets, ...}}}
  void to_json(support::JsonWriter& json) const;

 private:
  std::vector<Counter> counters_;
  std::vector<Histogram> histograms_;
};

}  // namespace hring::telemetry
