#include "telemetry/telemetry_observer.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <string>

namespace hring::telemetry {

namespace {

// Fixed bucket layouts. Latencies: one normalized time unit is the §II
// worst case per hop, so [1, 2) is the theorems' adversary bucket and the
// sub-unit buckets resolve the randomized delay models; the step engine
// records hop latency in configuration steps, spilling into the powers of
// two. Depths/space/durations: power-of-two ladders wide enough for the
// benchmark grids.
constexpr std::array<double, 9> kLatencyEdges = {0.125, 0.25, 0.5,  0.75, 1.0,
                                                2.0,   4.0,  8.0, 16.0};
constexpr std::array<double, 9> kLinkDepthEdges = {1,  2,  4,   8,  16,
                                                   32, 64, 128, 256};
constexpr std::array<double, 10> kSpaceEdges = {8,   16,  32,   64,   128,
                                                256, 512, 1024, 2048, 4096};
constexpr std::array<double, 10> kPhaseDurationEdges = {1,  2,  4,   8,   16,
                                                        32, 64, 128, 256, 512};

}  // namespace

// ---------------------------------------------------------------------------
// PendingQueue

void TelemetryObserver::PendingQueue::grow() {
  const std::size_t new_cap = buf_.empty() ? 16 : buf_.size() * 2;
  std::vector<PendingSend> next(new_cap);
  for (std::size_t i = 0; i < count_; ++i) {
    next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
  }
  buf_ = std::move(next);
  head_ = 0;
}

void TelemetryObserver::PendingQueue::push(const PendingSend& s) {
  if (count_ == buf_.size()) grow();
  buf_[(head_ + count_) & (buf_.size() - 1)] = s;
  ++count_;
}

TelemetryObserver::PendingSend TelemetryObserver::PendingQueue::pop() {
  HRING_EXPECTS(count_ > 0);
  const PendingSend s = buf_[head_];
  head_ = (head_ + 1) & (buf_.size() - 1);
  --count_;
  return s;
}

// ---------------------------------------------------------------------------
// TelemetryObserver

TelemetryObserver::TelemetryObserver(Config config) : config_(config) {}

int TelemetryObserver::bk_action_number(std::string_view action) {
  if (action.size() < 2 || action.size() > 3 || action[0] != 'B') return 0;
  if (action[1] < '0' || action[1] > '9') return 0;
  int number = action[1] - '0';
  if (action.size() == 3) {
    if (action[2] < '0' || action[2] > '9') return 0;
    number = number * 10 + (action[2] - '0');
  }
  return number >= 1 && number <= 11 ? number : 0;
}

CounterId TelemetryObserver::action_counter_slow(std::string_view action) {
  std::string name = "action.";
  name += action;
  const CounterId id = metrics_.counter(name);
  action_slots_.push_back(ActionSlot{action.data(), id});
  return id;
}

void TelemetryObserver::on_start(const sim::ExecutionView& view) {
  const std::size_t n = view.process_count();
  if (!ids_bound_) {
    latency_hist_ =
        metrics_.histogram(kMessageLatencyHistogram, kLatencyEdges);
    link_depth_hist_ =
        metrics_.histogram(kLinkDepthHistogram, kLinkDepthEdges);
    space_hist_ = metrics_.histogram(kSpaceBitsHistogram, kSpaceEdges);
    phase_hist_ =
        metrics_.histogram(kPhaseDurationHistogram, kPhaseDurationEdges);
    actions_counter_ = metrics_.counter("actions");
    unmatched_receives_ = metrics_.counter("telemetry.unmatched_receives");
    action_slots_.reserve(32);
    ids_bound_ = true;
  }

  labels_.assign(n, 0);
  std::uint64_t max_label = 0;
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    labels_[pid] = view.process(pid).id().value();
    max_label = std::max(max_label, labels_[pid]);
  }
  label_bits_ = std::max<std::size_t>(1, std::bit_width(max_label));

  pending_.resize(n);
  for (PendingQueue& q : pending_) q.reset();
  phase_tracks_.assign(n, PhaseTrack{});
  last_space_bits_.assign(n, 0);

  phase_spans_.clear();
  phase_spans_.reserve(4 * n);
  message_spans_.clear();
  markers_.clear();
  space_samples_.clear();
  space_samples_.reserve(2 * n);
  dropped_message_spans_ = 0;
  finish_time_ = 0.0;
  finish_step_ = 0;

  // Seed the space series: every process occupies its initial footprint
  // before the first firing.
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    const std::size_t bits = view.process(pid).space_bits(label_bits_);
    last_space_bits_[pid] = bits;
    space_samples_.push_back(SpaceSample{pid, view.current_time(), bits});
    metrics_.record(space_hist_, static_cast<double>(bits));
  }
}

void TelemetryObserver::open_phase(sim::ProcessId pid, std::uint64_t guest,
                                   bool active, double time,
                                   std::uint64_t step) {
  PhaseTrack& track = phase_tracks_[pid];
  ++track.phase;
  track.open_span = phase_spans_.size();
  PhaseSpan span;
  span.pid = pid;
  span.phase = track.phase;
  span.guest = guest;
  span.active = active;
  span.begin_time = time;
  span.begin_step = step;
  phase_spans_.push_back(span);
}

void TelemetryObserver::close_phase(sim::ProcessId pid, double time,
                                    std::uint64_t step) {
  PhaseTrack& track = phase_tracks_[pid];
  if (track.open_span == kNoSpan) return;
  PhaseSpan& span = phase_spans_[track.open_span];
  span.end_time = time;
  span.end_step = step;
  span.closed = true;
  track.open_span = kNoSpan;
  metrics_.record(phase_hist_, time - span.begin_time);
}

// hring-lint: hot-path
void TelemetryObserver::on_action(const sim::ExecutionView& view,
                                  const sim::ActionEvent& event) {
  const sim::ProcessId pid = event.pid;
  metrics_.add(actions_counter_);

  // Per-action firing counter. Interned names make the common case a
  // pointer scan; the slow path runs once per distinct label.
  if (!event.action.empty()) {
    CounterId action_id{};
    bool found = false;
    const char* key = event.action.data();
    for (const ActionSlot& slot : action_slots_) {
      if (slot.key == key) {
        action_id = slot.id;
        found = true;
        break;
      }
    }
    if (!found) action_id = action_counter_slow(event.action);
    metrics_.add(action_id);
  }

  // Message receive: FIFO-match against the mirrored send queue of the
  // incoming link (p_{pid-1} -> p_pid).
  if (event.consumed.has_value()) {
    const std::size_t in_link = pid == 0 ? pending_.size() - 1 : pid - 1;
    PendingQueue& queue = pending_[in_link];
    if (queue.empty()) {
      // A fault model rewrote the wire under us (drops/duplicates desync
      // the mirror); count instead of guessing a latency.
      metrics_.add(unmatched_receives_);
    } else {
      const PendingSend sent = queue.pop();
      metrics_.record(latency_hist_, event.time - sent.time);
      if (config_.message_spans) {
        if (message_spans_.size() < config_.max_message_spans) {
          MessageSpan span;
          span.from = in_link;
          span.kind = sent.kind;
          span.label = sent.label;
          span.send_time = sent.time;
          span.recv_time = event.time;
          message_spans_.push_back(span);
        } else {
          ++dropped_message_spans_;
        }
      }
    }
  }

  // Message sends: mirror onto the out-link queue for later matching, and
  // sample the out-link's depth. The engines append before notifying and
  // nothing pops this link until the observer returns, so the sample sees
  // the occupancy at its post-send maximum — the histogram's max equals
  // Stats::peak_link_occupancy exactly. Sampling here (once per sending
  // action, O(1)) rather than scanning every link at each step end keeps
  // the attached cost flat on the event engine, where a "step" is a
  // single process drain.
  if (!event.sent.empty()) {
    for (const sim::Message& msg : event.sent) {
      PendingSend send;
      send.time = event.time;
      send.label = msg.label.value();
      send.kind = msg.kind;
      pending_[pid].push(send);
    }
    metrics_.record(link_depth_hist_,
                    static_cast<double>(view.out_link(pid).size()));
  }

  // B_k phase structure, reconstructed purely from the note_action labels
  // and the consumed/sent payloads (no downcast into the algorithm).
  switch (bk_action_number(event.action)) {
    case 1:  // B1: enter phase 1 holding the own label, active.
      open_phase(pid, labels_[pid], /*active=*/true, event.time, event.step);
      break;
    case 4:  // B4: deactivation — the process leaves the competition.
      markers_.push_back(
          Marker{Marker::Kind::kDeactivate, pid, event.time, event.step});
      break;
    case 5:  // B5: this process starts the PHASE_SHIFT barrier.
      markers_.push_back(
          Marker{Marker::Kind::kBarrier, pid, event.time, event.step});
      break;
    case 6:  // B6: adopt the shifted guest, still active.
      close_phase(pid, event.time, event.step);
      if (event.consumed.has_value()) {
        open_phase(pid, event.consumed->label.value(), /*active=*/true,
                   event.time, event.step);
      }
      break;
    case 8:  // B8: adopt the shifted guest, passive.
      close_phase(pid, event.time, event.step);
      if (event.consumed.has_value()) {
        open_phase(pid, event.consumed->label.value(), /*active=*/false,
                   event.time, event.step);
      }
      break;
    case 9:  // B9: the winner's final phase (guest back to the own label).
      close_phase(pid, event.time, event.step);
      open_phase(pid, labels_[pid], /*active=*/true, event.time, event.step);
      break;
    case 10:  // B10/B11: the process halts; its phase timeline ends.
    case 11:
      close_phase(pid, event.time, event.step);
      break;
    default:
      break;
  }

  // Space-over-time series: sample on change only.
  const std::size_t bits = view.process(pid).space_bits(label_bits_);
  if (bits != last_space_bits_[pid]) {
    last_space_bits_[pid] = bits;
    space_samples_.push_back(SpaceSample{pid, event.time, bits});
    metrics_.record(space_hist_, static_cast<double>(bits));
  }
}

void TelemetryObserver::on_finish(const sim::ExecutionView& view) {
  finish_time_ = view.current_time();
  finish_step_ = view.current_step();
  // Phases still open when the run stopped keep closed == false but get
  // the finish timestamp as their end, so exported spans stay bounded.
  for (sim::ProcessId pid = 0; pid < phase_tracks_.size(); ++pid) {
    const PhaseTrack& track = phase_tracks_[pid];
    if (track.open_span != kNoSpan) {
      PhaseSpan& span = phase_spans_[track.open_span];
      span.end_time = finish_time_;
      span.end_step = finish_step_;
    }
  }
}

}  // namespace hring::telemetry
