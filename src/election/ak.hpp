// Algorithm A_k (§IV, Table 1): time-optimal leader election for A ∩ K_k.
//
// Every process initiates a token carrying its label; tokens circulate
// forever during the string-growth phase, and each process appends every
// received label to its `string`, a growing prefix of LLabels(p). By
// Lemma 6, once the string holds 2k+1 copies of some label it determines
// the whole ring: srp(string) = LLabels(p)^n. The process whose srp is a
// Lyndon word — the true leader — elects itself (action A3) and floods
// ⟨FINISH⟩; everyone else learns the leader's label as LW(srp(string))[1]
// (action A4) and halts, while the leader swallows the remaining tokens
// (A5) and halts when ⟨FINISH⟩ returns (A6).
//
// Bounds (Theorem 2): time ≤ (2k+2)n, messages ≤ n²(2k+1) + n, space per
// process ≤ (2k+1)·n·b + 2b + 3 bits.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "words/periodicity.hpp"

namespace hring::election {

using sim::Context;
using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

/// The paper's Leader(σ) predicate: σ contains at least 2k+1 copies of
/// some label and srp(σ) = LW(srp(σ)) (i.e. srp(σ) is a Lyndon word).
/// Exposed standalone for unit tests; AkProcess evaluates it incrementally.
[[nodiscard]] bool leader_predicate(const words::LabelSequence& sigma,
                                    std::size_t k);

// hring-algorithm: Ak space=(2*k+1)*n*b+2*b+3
// (Theorem 2: A_k elects in K_k with (2k+1)·n·b + 2b + 3 bits per process.)
class AkProcess final : public Process {
 public:
  /// Requires k >= 1: the multiplicity bound the class A ∩ K_k promises.
  AkProcess(ProcessId pid, Label id, std::size_t k);

  [[nodiscard]] bool enabled(const Message* head) const override;
  void fire(const Message* head, Context& ctx) override;
  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override;
  [[nodiscard]] std::string debug_state() const override;
  [[nodiscard]] std::unique_ptr<Process> clone() const override;
  void encode(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode(const std::uint64_t*& it,
                            const std::uint64_t* end) override;

  /// Current contents of p.string (a prefix of LLabels(p)).
  [[nodiscard]] const words::LabelSequence& grown_string() const {
    return string_.sequence();
  }

  /// Factory for the engines: every process runs A_k with the same k.
  [[nodiscard]] static sim::ProcessFactory factory(std::size_t k);

 private:
  /// Appends x to string and returns Leader(string) for the new string —
  /// exactly Leader(p.string . x) of the guards of A2/A3.
  bool append_and_test(Label x);

  /// Occurrence count of `value`, creating a zero entry on first sight.
  [[nodiscard]] std::size_t& count_slot(Label::rep_type value);

  // hring-state: excluded(a-priori knowledge: every process knows k)
  std::size_t k_;
  bool init_ = true;
  /// p.string plus its incrementally-maintained border array (the border
  /// array is an accelerator, not algorithm state: srp could be recomputed
  /// from the string at every step with identical behaviour).
  // hring-state: bits=(2*k+1)*n*b
  words::IncrementalPeriod string_;
  /// Occurrence count per label, for the 2k+1 threshold. A flat vector:
  /// a ring holds at most n distinct labels, so the linear scan beats a
  /// node-based map on the per-token hot path, and clear() keeps capacity
  /// across the model checker's decode-based restores.
  // hring-state: excluded(accelerator: recomputable from string_)
  std::vector<std::pair<Label::rep_type, std::size_t>> counts_;
  // hring-state: excluded(accelerator: recomputable from string_)
  std::size_t max_count_ = 0;
};

}  // namespace hring::election
