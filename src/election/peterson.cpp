#include "election/peterson.hpp"

#include <memory>

#include "support/assert.hpp"

namespace hring::election {

bool PetersonProcess::enabled(const Message* head) const {
  switch (mode_) {
    case Mode::kInit:
      return true;
    case Mode::kActive:
      // Probes alternate strictly per phase; announcements never reach an
      // active process before it wins or relays.
      return head != nullptr &&
             head->kind == (expecting_second_ ? sim::MsgKind::kProbeTwo
                                              : sim::MsgKind::kProbeOne);
    case Mode::kRelay:
      return head != nullptr;
    case Mode::kWon:
      return head != nullptr &&
             head->kind == sim::MsgKind::kFinishLabel;
    case Mode::kHalted:
      return false;
  }
  HRING_ASSERT(false);
}

void PetersonProcess::fire(const Message* head, Context& ctx) {
  if (mode_ == Mode::kInit) {
    ctx.note_action("P-start");
    mode_ = Mode::kActive;
    expecting_second_ = false;
    ctx.send(Message::probe_one(tid_));
    return;
  }
  HRING_EXPECTS(head != nullptr);

  if (mode_ == Mode::kActive) {
    if (!expecting_second_) {
      HRING_EXPECTS(head->kind == sim::MsgKind::kProbeOne);
      ntid_ = ctx.consume().label;
      if (ntid_ == tid_) {
        // Our probe circled the whole ring: we are the only active
        // process left. Elect ourselves and announce our own label.
        ctx.note_action("P-elect");
        mode_ = Mode::kWon;
        declare_leader();
        set_leader_label(id());
        set_done();
        ctx.send(Message::finish_label(id()));
      } else {
        ctx.note_action("P-probe2");
        expecting_second_ = true;
        ctx.send(Message::probe_two(ntid_));
      }
      return;
    }
    HRING_EXPECTS(head->kind == sim::MsgKind::kProbeTwo);
    const Label nntid = ctx.consume().label;
    if (tid_ < ntid_ && nntid < ntid_) {
      // ntid is a local maximum among the active tids: survive with it.
      ctx.note_action("P-survive");
      tid_ = ntid_;
      expecting_second_ = false;
      ctx.send(Message::probe_one(tid_));
    } else {
      ctx.note_action("P-demote");
      mode_ = Mode::kRelay;
    }
    return;
  }

  if (mode_ == Mode::kRelay) {
    const Message msg = ctx.consume();
    switch (msg.kind) {
      case sim::MsgKind::kProbeOne:
      case sim::MsgKind::kProbeTwo:
        ctx.note_action("P-relay");
        ctx.send(msg);
        return;
      case sim::MsgKind::kFinishLabel:
        ctx.note_action("P-learn");
        set_leader_label(msg.label);
        set_done();
        ctx.send(msg);
        mode_ = Mode::kHalted;
        halt_self();
        return;
      default:
        HRING_ASSERT(false);  // no other kinds are ever sent
    }
  }

  HRING_EXPECTS(mode_ == Mode::kWon);
  HRING_EXPECTS(head->kind == sim::MsgKind::kFinishLabel);
  ctx.consume();
  ctx.note_action("P-halt");
  mode_ = Mode::kHalted;
  halt_self();
}

std::size_t PetersonProcess::space_bits(std::size_t label_bits) const {
  // id + tid + ntid + leader labels, a 5-valued mode (3 bits), the
  // expecting flag, and isLeader/done.
  return 4 * label_bits + 3 + 1 + 2;
}

std::string PetersonProcess::debug_state() const {
  const char* mode = "?";
  switch (mode_) {
    case Mode::kInit:
      mode = "INIT";
      break;
    case Mode::kActive:
      mode = "ACTIVE";
      break;
    case Mode::kRelay:
      mode = "RELAY";
      break;
    case Mode::kWon:
      mode = "WON";
      break;
    case Mode::kHalted:
      mode = "HALTED";
      break;
  }
  std::string out = mode;
  out += " tid=" + words::to_string(tid_);
  if (done()) out += " done";
  return out;
}

std::unique_ptr<Process> PetersonProcess::clone() const {
  return std::unique_ptr<Process>(new PetersonProcess(*this));
}

void PetersonProcess::encode(std::vector<std::uint64_t>& out) const {
  Process::encode(out);
  out.push_back((static_cast<std::uint64_t>(expecting_second_) << 0) |
                (static_cast<std::uint64_t>(mode_) << 1));
  out.push_back(tid_.value());
  out.push_back(ntid_.value());
}

bool PetersonProcess::decode(const std::uint64_t*& it,
                             const std::uint64_t* end) {
  if (!decode_spec_vars(it, end)) return false;
  if (end - it < 3) return false;
  const std::uint64_t packed = *it++;
  // Bit 0 is the expecting flag, bits 1+ the 5-valued mode; any word
  // outside that range is not a PetersonProcess snapshot.
  if ((packed >> 1) > static_cast<std::uint64_t>(Mode::kHalted)) return false;
  expecting_second_ = (packed & 1U) != 0;
  mode_ = static_cast<Mode>(packed >> 1);
  tid_ = Label(static_cast<Label::rep_type>(*it++));
  ntid_ = Label(static_cast<Label::rep_type>(*it++));
  return true;
}

sim::ProcessFactory PetersonProcess::factory() {
  return [](ProcessId pid, Label id) {
    return std::make_unique<PetersonProcess>(pid, id);
  };
}

}  // namespace hring::election
