#include "election/chang_roberts.hpp"

#include <memory>

#include "support/assert.hpp"

namespace hring::election {

bool ChangRobertsProcess::enabled(const Message* head) const {
  if (init_) return true;
  return head != nullptr;
}

void ChangRobertsProcess::fire(const Message* head, Context& ctx) {
  if (init_) {
    ctx.note_action("CR1");
    init_ = false;
    ctx.send(Message::token(id()));
    return;
  }
  HRING_EXPECTS(head != nullptr);
  switch (head->kind) {
    case sim::MsgKind::kToken: {
      const Label x = ctx.consume().label;
      if (is_leader()) {
        // Leftover candidates are swallowed by the elected leader.
        ctx.note_action("CR-drain");
        return;
      }
      if (x > id()) {
        ctx.note_action("CR-forward");
        ctx.send(Message::token(x));
      } else if (x == id()) {
        // Our candidate survived a full loop: all labels are smaller.
        ctx.note_action("CR-elect");
        declare_leader();
        set_leader_label(id());
        set_done();
        ctx.send(Message::finish_label(id()));
      } else {
        ctx.note_action("CR-swallow");
      }
      return;
    }
    case sim::MsgKind::kFinishLabel: {
      const Label x = ctx.consume().label;
      if (is_leader()) {
        ctx.note_action("CR-halt");
        halt_self();
      } else {
        ctx.note_action("CR-learn");
        set_leader_label(x);
        set_done();
        ctx.send(Message::finish_label(x));
        halt_self();
      }
      return;
    }
    default:
      HRING_ASSERT(false);  // no other kinds are ever sent
  }
}

std::size_t ChangRobertsProcess::space_bits(std::size_t label_bits) const {
  // id + leader labels, plus INIT/isLeader/done Booleans.
  return 2 * label_bits + 3;
}

std::string ChangRobertsProcess::debug_state() const {
  std::string out = init_ ? "INIT" : (is_leader() ? "LEADER" : "RELAY");
  if (done()) out += " done";
  return out;
}

std::unique_ptr<Process> ChangRobertsProcess::clone() const {
  return std::unique_ptr<Process>(new ChangRobertsProcess(*this));
}

void ChangRobertsProcess::encode(std::vector<std::uint64_t>& out) const {
  Process::encode(out);
  out.push_back(init_ ? 1 : 0);
}

bool ChangRobertsProcess::decode(const std::uint64_t*& it,
                                 const std::uint64_t* end) {
  if (!decode_spec_vars(it, end)) return false;
  if (end - it < 1) return false;
  const std::uint64_t init_word = *it++;
  if (init_word > 1) return false;  // encoded as exactly 0 or 1
  init_ = (init_word != 0);
  return true;
}

sim::ProcessFactory ChangRobertsProcess::factory() {
  return [](ProcessId pid, Label id) {
    return std::make_unique<ChangRobertsProcess>(pid, id);
  };
}

}  // namespace hring::election
