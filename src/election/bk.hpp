// Algorithm B_k (§V, Table 2, Figure 2): space-frugal leader election for
// A ∩ K_k.
//
// B_k computes the lexicographic minimum of the LLabels sequences one
// position per phase. In phase i every still-active process p holds
// p.guest = LLabels(p)[i]; guests circulate among the active processes, an
// active process that sees a smaller guest turns passive (B4), and a
// process that has seen its own guest k times knows the phase is over (B5)
// and triggers the ⟨PHASE_SHIFT⟩ barrier, which shifts every guest one
// step clockwise (B6/B8). A process whose guest has been its own label
// k+1 times (p.outer) has survived more than n phases and is the true
// leader (B9); ⟨FINISH, id⟩ then circulates and everyone halts (B10/B11).
//
// Bounds (Theorem 4): time O(k²n²), messages O(k²n²), space per process
// 2⌈log k⌉ + 3b + 5 bits.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace hring::election {

using sim::Context;
using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

enum class BkState : std::uint8_t {
  kInit,
  kCompute,
  kShift,
  kPassive,
  kWin,
  kHalt,
};

[[nodiscard]] const char* bk_state_name(BkState state);

// hring-algorithm: Bk space=2*log_k+3*b+5
// (Theorem 4: B_k elects in U* ∩ K_k with 2⌈log k⌉ + 3b + 5 bits per
// process.)
class BkProcess final : public Process {
 public:
  /// One row of the phase history (Figure 1 reproduction): the state of
  /// this process at the start of phase `phase`.
  struct PhaseRecord {
    std::size_t phase = 0;
    Label guest{};
    /// True when the process enters the phase still competing (COMPUTE or
    /// WIN), false when it enters passive.
    bool active = false;
  };

  /// Requires k >= 1. The paper states B_k for k >= 2; k = 1 also works
  /// (then U* ∩ K_1 = K_1) and is exercised by tests.
  /// `record_history` enables the per-phase log used by E5; it is
  /// instrumentation and never part of the space accounting.
  BkProcess(ProcessId pid, Label id, std::size_t k,
            bool record_history = false);

  [[nodiscard]] bool enabled(const Message* head) const override;
  void fire(const Message* head, Context& ctx) override;
  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override;
  [[nodiscard]] std::string debug_state() const override;
  [[nodiscard]] std::unique_ptr<Process> clone() const override;
  void encode(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode(const std::uint64_t*& it,
                            const std::uint64_t* end) override;

  [[nodiscard]] BkState state() const { return state_; }
  [[nodiscard]] Label guest() const { return guest_; }
  [[nodiscard]] std::size_t inner() const { return inner_; }
  [[nodiscard]] std::size_t outer() const { return outer_; }
  /// Phase the process is currently in (1-based; 0 before B1 fires).
  [[nodiscard]] std::size_t phase() const { return phase_; }
  [[nodiscard]] const std::vector<PhaseRecord>& history() const {
    return history_;
  }

  [[nodiscard]] static sim::ProcessFactory factory(std::size_t k,
                                                   bool record_history =
                                                       false);

 private:
  void enter_phase(Label new_guest, bool active);

  // hring-state: excluded(a-priori knowledge: every process knows k)
  std::size_t k_;
  BkState state_ = BkState::kInit;
  Label guest_{};
  // hring-state: bits=log_k
  std::size_t inner_ = 1;  // occurrences of guest seen this phase
  // hring-state: bits=log_k
  std::size_t outer_ = 1;  // phases whose guest was the own label

  // Instrumentation (excluded from space accounting):
  // hring-state: excluded(instrumentation: Figure 1 phase counter)
  std::size_t phase_ = 0;
  // hring-state: excluded(instrumentation: history toggle)
  bool record_history_;
  // hring-state: excluded(instrumentation: Figure 1 phase log)
  std::vector<PhaseRecord> history_;
};

}  // namespace hring::election
