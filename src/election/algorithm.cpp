#include "election/algorithm.hpp"

#include <vector>

#include "election/ak.hpp"
#include "election/bk.hpp"
#include "election/chang_roberts.hpp"
#include "election/lelann.hpp"
#include "election/peterson.hpp"
#include "ring/classes.hpp"
#include "support/assert.hpp"

namespace hring::election {

const char* algorithm_name(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kAk:
      return "Ak";
    case AlgorithmId::kBk:
      return "Bk";
    case AlgorithmId::kChangRoberts:
      return "ChangRoberts";
    case AlgorithmId::kLeLann:
      return "LeLann";
    case AlgorithmId::kPeterson:
      return "Peterson";
  }
  HRING_ASSERT(false);
}

std::optional<AlgorithmId> algorithm_from_name(std::string_view name) {
  for (const AlgorithmId id : all_algorithms()) {
    if (name == algorithm_name(id)) return id;
  }
  return std::nullopt;
}

const std::vector<AlgorithmId>& all_algorithms() {
  static const std::vector<AlgorithmId> kAll = {
      AlgorithmId::kAk, AlgorithmId::kBk, AlgorithmId::kChangRoberts,
      AlgorithmId::kLeLann, AlgorithmId::kPeterson};
  return kAll;
}

sim::ProcessFactory make_factory(const AlgorithmConfig& config) {
  switch (config.id) {
    case AlgorithmId::kAk:
      return AkProcess::factory(config.k);
    case AlgorithmId::kBk:
      return BkProcess::factory(config.k, config.record_history);
    case AlgorithmId::kChangRoberts:
      return ChangRobertsProcess::factory();
    case AlgorithmId::kLeLann:
      return LeLannProcess::factory();
    case AlgorithmId::kPeterson:
      return PetersonProcess::factory();
  }
  HRING_ASSERT(false);
}

bool ring_in_algorithm_class(const AlgorithmConfig& config,
                             const ring::LabeledRing& ring) {
  switch (config.id) {
    case AlgorithmId::kAk:
    case AlgorithmId::kBk:
      return ring::in_class_A(ring) && ring::in_class_Kk(ring, config.k);
    case AlgorithmId::kChangRoberts:
    case AlgorithmId::kLeLann:
    case AlgorithmId::kPeterson:
      return ring::in_class_K1(ring);
  }
  HRING_ASSERT(false);
}

bool elects_true_leader(AlgorithmId id) {
  return id == AlgorithmId::kAk || id == AlgorithmId::kBk;
}

}  // namespace hring::election
