// Algorithm registry: uniform naming, construction and applicability rules
// for every election algorithm in the library.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"

namespace hring::election {

enum class AlgorithmId : std::uint8_t {
  kAk,            // §IV — A ∩ K_k, time-optimal
  kBk,            // §V  — A ∩ K_k, space-frugal
  kChangRoberts,  // baseline — K_1
  kLeLann,        // baseline — K_1
  kPeterson,      // baseline — K_1
};

/// Stable short name: "Ak", "Bk", "ChangRoberts", "LeLann", "Peterson".
[[nodiscard]] const char* algorithm_name(AlgorithmId id);

/// Inverse of algorithm_name (case-sensitive).
[[nodiscard]] std::optional<AlgorithmId> algorithm_from_name(
    std::string_view name);

/// All registered algorithm ids, for sweeps.
[[nodiscard]] const std::vector<AlgorithmId>& all_algorithms();

/// Parameters selecting a concrete algorithm instance. `k` is the
/// multiplicity bound known a priori by A_k/B_k (ignored by the
/// baselines). `record_history` enables B_k's phase log (E5).
struct AlgorithmConfig {
  AlgorithmId id = AlgorithmId::kAk;
  std::size_t k = 1;
  bool record_history = false;
};

/// Process factory for the configured algorithm.
[[nodiscard]] sim::ProcessFactory make_factory(const AlgorithmConfig& config);

/// True iff the algorithm's correctness class contains `ring` when
/// instantiated with config.k: A ∩ K_k for A_k/B_k, K_1 for the baselines.
/// Running an algorithm outside its class is allowed (that is experiment
/// E2) but nothing is guaranteed.
[[nodiscard]] bool ring_in_algorithm_class(const AlgorithmConfig& config,
                                           const ring::LabeledRing& ring);

/// True for the paper's algorithms, which elect the *true leader* (the
/// Lyndon-word process). Baselines elect by other rules.
[[nodiscard]] bool elects_true_leader(AlgorithmId id);

}  // namespace hring::election
