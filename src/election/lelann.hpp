// Le Lann (1977): the original ring election, for unidirectional rings with
// unique identifiers (class K_1).
//
// Every process launches a token with its label and forwards every other
// token exactly once; a token dies when it returns to its originator. FIFO
// links guarantee that by the time a process's own token returns it has
// seen every label in the ring, so it knows the maximum; the maximum
// process elects itself and floods the announcement. Exactly n² candidate
// messages — the deterministic-cost baseline of experiment E9.
#pragma once

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace hring::election {

using sim::Context;
using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

// hring-algorithm: LeLann
class LeLannProcess final : public Process {
 public:
  LeLannProcess(ProcessId pid, Label id) : Process(pid, id), best_(id) {}

  [[nodiscard]] bool enabled(const Message* head) const override;
  void fire(const Message* head, Context& ctx) override;
  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override;
  [[nodiscard]] std::string debug_state() const override;
  [[nodiscard]] std::unique_ptr<Process> clone() const override;
  void encode(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode(const std::uint64_t*& it,
                            const std::uint64_t* end) override;

  [[nodiscard]] static sim::ProcessFactory factory();

 private:
  bool init_ = true;
  Label best_;  // maximum label seen so far (starts at the own label)
};

}  // namespace hring::election
