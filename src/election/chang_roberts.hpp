// Chang–Roberts (1979): the classical leader election for unidirectional
// rings with *unique* identifiers (class K_1 ⊂ U* ∩ K_k).
//
// Every process launches a candidate token with its label; a process
// forwards tokens larger than its own label, swallows smaller ones, and
// elects itself when its own label returns. Average O(n log n) messages,
// worst case O(n²). Serves as the identified-ring baseline of experiment
// E9 (and stands in for the [10] comparison point, see DESIGN.md).
#pragma once

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace hring::election {

using sim::Context;
using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

// hring-algorithm: ChangRoberts
class ChangRobertsProcess final : public Process {
 public:
  ChangRobertsProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message* head) const override;
  void fire(const Message* head, Context& ctx) override;
  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override;
  [[nodiscard]] std::string debug_state() const override;
  [[nodiscard]] std::unique_ptr<Process> clone() const override;
  void encode(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode(const std::uint64_t*& it,
                            const std::uint64_t* end) override;

  [[nodiscard]] static sim::ProcessFactory factory();

 private:
  bool init_ = true;
};

}  // namespace hring::election
