#include "election/batch_step.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "words/lyndon.hpp"

namespace hring::election {

// ---------------------------------------------------------------------------
// Chang–Roberts

void BatchChangRoberts::configure(std::size_t slots, std::size_t n,
                                  const AlgorithmConfig& config) {
  HRING_EXPECTS(config.id == AlgorithmId::kChangRoberts);
  n_ = n;
  spec_.reset(slots * n);
}

void BatchChangRoberts::reset_slot(std::size_t slot,
                                   const ring::LabeledRing& ring) {
  HRING_EXPECTS(ring.size() == n_);
  spec_.reset_slot(slot * n_, ring);
}

// hring-lint: hot-path
void BatchChangRoberts::fire(std::size_t g, const sim::Message* head,
                             BatchFireContext& ctx) {
  if (spec_.init.test(g)) {
    // CR1
    spec_.init.clear(g);
    ctx.send(sim::Message::token(spec_.id[g]));
    return;
  }
  HRING_EXPECTS(head != nullptr);
  switch (head->kind) {
    case sim::MsgKind::kToken: {
      const Label x = ctx.consume().label;
      if (spec_.leader.test(g)) {
        // CR-drain: leftover candidates are swallowed by the elected leader.
        return;
      }
      if (x > spec_.id[g]) {
        // CR-forward
        ctx.send(sim::Message::token(x));
      } else if (x == spec_.id[g]) {
        // CR-elect: our candidate survived a full loop.
        spec_.leader.set(g);
        spec_.leader_label[g] = spec_.id[g];
        spec_.has_leader.set(g);
        spec_.done.set(g);
        ctx.send(sim::Message::finish_label(spec_.id[g]));
      }
      // else CR-swallow: a smaller candidate dies here.
      return;
    }
    case sim::MsgKind::kFinishLabel: {
      const Label x = ctx.consume().label;
      if (spec_.leader.test(g)) {
        // CR-halt
        spec_.halted.set(g);
      } else {
        // CR-learn
        spec_.leader_label[g] = x;
        spec_.has_leader.set(g);
        spec_.done.set(g);
        ctx.send(sim::Message::finish_label(x));
        spec_.halted.set(g);
      }
      return;
    }
    default:
      HRING_ASSERT(false);  // no other kinds are ever sent
  }
}

// ---------------------------------------------------------------------------
// A_k

void BatchAk::configure(std::size_t slots, std::size_t n,
                        const AlgorithmConfig& config) {
  HRING_EXPECTS(config.id == AlgorithmId::kAk);
  HRING_EXPECTS(config.k >= 1);
  n_ = n;
  k_ = config.k;
  spec_.reset(slots * n);
  // Growing the node vector default-constructs fresh strings; shrink never
  // happens, so recycled slots keep their buffer capacity.
  if (nodes_.size() < slots * n) nodes_.resize(slots * n);
}

void BatchAk::reset_slot(std::size_t slot, const ring::LabeledRing& ring) {
  HRING_EXPECTS(ring.size() == n_);
  spec_.reset_slot(slot * n_, ring);
  for (std::size_t pid = 0; pid < n_; ++pid) {
    Node& node = nodes_[slot * n_ + pid];
    node.string.clear();
    node.counts.clear();
    node.max_count = 0;
  }
}

// hring-lint: hot-path
std::size_t& BatchAk::count_slot(Node& node, sim::Label::rep_type value) {
  for (auto& [label, count] : node.counts) {
    if (label == value) return count;
  }
  node.counts.emplace_back(value, 0);
  return node.counts.back().second;
}

// hring-lint: hot-path
bool BatchAk::append_and_test(Node& node, sim::Label x) {
  node.string.push_back(x);
  node.max_count = std::max(node.max_count, ++count_slot(node, x.value()));
  if (node.max_count < 2 * k_ + 1) return false;
  const std::size_t period = node.string.period();
  const std::size_t sub = node.string.prefix_period(period);
  if (sub < period && period % sub == 0) return false;  // symmetric prefix
  return words::least_rotation_index(node.string.sequence().data(), period) ==
         0;
}

// hring-lint: hot-path
void BatchAk::fire(std::size_t g, const sim::Message* head,
                   BatchFireContext& ctx) {
  if (spec_.init.test(g)) {
    // A1: p.INIT <- FALSE, p.string <- p.id, send ⟨p.id⟩.
    spec_.init.clear(g);
    const bool elected_immediately = append_and_test(nodes_[g], spec_.id[g]);
    HRING_ASSERT(!elected_immediately);  // needs 2k+1 >= 3 copies
    ctx.send(sim::Message::token(spec_.id[g]));
    return;
  }
  HRING_EXPECTS(head != nullptr);
  if (head->kind == sim::MsgKind::kToken) {
    const sim::Message msg = ctx.consume();
    if (spec_.leader.test(g)) {
      // A5: the leader swallows circulating tokens.
      return;
    }
    if (!append_and_test(nodes_[g], msg.label)) {
      // A2: grow the string, forward the token.
      ctx.send(sim::Message::token(msg.label));
    } else {
      // A3: Leader(p.string . x) holds — elect self, flood ⟨FINISH⟩.
      spec_.leader.set(g);
      spec_.leader_label[g] = spec_.id[g];
      spec_.has_leader.set(g);
      spec_.done.set(g);
      ctx.send(sim::Message::finish());
    }
    return;
  }
  HRING_EXPECTS(head->kind == sim::MsgKind::kFinish);
  ctx.consume();
  if (!spec_.leader.test(g)) {
    // A4: learn the leader's label from the grown string and halt.
    spec_.leader_label[g] = words::lyndon_rotation_first(
        nodes_[g].string.sequence().data(), nodes_[g].string.period());
    spec_.has_leader.set(g);
    spec_.done.set(g);
    ctx.send(sim::Message::finish());
    spec_.halted.set(g);
  } else {
    // A6: ⟨FINISH⟩ returned to the leader — the execution is over.
    spec_.halted.set(g);
  }
}

}  // namespace hring::election
