// Peterson (1982): O(n log n)-message leader election for unidirectional
// rings with unique identifiers (class K_1).
//
// Active processes carry a temporary identifier tid. In each phase an
// active process sends its tid (probe 1), learns the tid of the nearest
// active process to its left (ntid), relays it (probe 2), and learns the
// tid two active hops away (nntid). It survives the phase — adopting
// ntid — exactly when ntid > max(tid, nntid); otherwise it becomes a
// relay. At least half of the active processes drop each phase. A process
// receiving a probe equal to its own tid is the last active one and elects
// itself. The O(n log n) baseline of experiment E9.
#pragma once

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace hring::election {

using sim::Context;
using sim::Label;
using sim::Message;
using sim::Process;
using sim::ProcessId;

// hring-algorithm: Peterson
class PetersonProcess final : public Process {
 public:
  PetersonProcess(ProcessId pid, Label id) : Process(pid, id), tid_(id) {}

  [[nodiscard]] bool enabled(const Message* head) const override;
  void fire(const Message* head, Context& ctx) override;
  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override;
  [[nodiscard]] std::string debug_state() const override;
  [[nodiscard]] std::unique_ptr<Process> clone() const override;
  void encode(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] bool decode(const std::uint64_t*& it,
                            const std::uint64_t* end) override;

  [[nodiscard]] static sim::ProcessFactory factory();

 private:
  enum class Mode : std::uint8_t { kInit, kActive, kRelay, kWon, kHalted };

  bool expecting_second_ = false;  // active: waiting for probe 2
  Mode mode_ = Mode::kInit;
  Label tid_;   // temporary identifier carried while active
  Label ntid_;  // tid of the nearest active process to the left
};

}  // namespace hring::election
