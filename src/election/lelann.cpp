#include "election/lelann.hpp"

#include <algorithm>
#include <memory>

#include "support/assert.hpp"

namespace hring::election {

bool LeLannProcess::enabled(const Message* head) const {
  if (init_) return true;
  return head != nullptr;
}

void LeLannProcess::fire(const Message* head, Context& ctx) {
  if (init_) {
    ctx.note_action("LL1");
    init_ = false;
    ctx.send(Message::token(id()));
    return;
  }
  HRING_EXPECTS(head != nullptr);
  switch (head->kind) {
    case sim::MsgKind::kToken: {
      const Label x = ctx.consume().label;
      best_ = std::max(best_, x);
      if (x == id()) {
        // Our token completed the loop: every label has passed us (FIFO
        // argument, see header). Elect the maximum.
        if (best_ == id()) {
          ctx.note_action("LL-elect");
          declare_leader();
          set_leader_label(id());
          set_done();
          ctx.send(Message::finish_label(id()));
        } else {
          // Somebody larger exists; wait for their announcement.
          ctx.note_action("LL-complete");
        }
      } else {
        ctx.note_action("LL-forward");
        ctx.send(Message::token(x));
      }
      return;
    }
    case sim::MsgKind::kFinishLabel: {
      const Label x = ctx.consume().label;
      if (is_leader()) {
        ctx.note_action("LL-halt");
        halt_self();
      } else {
        ctx.note_action("LL-learn");
        set_leader_label(x);
        set_done();
        ctx.send(Message::finish_label(x));
        halt_self();
      }
      return;
    }
    default:
      HRING_ASSERT(false);  // no other kinds are ever sent
  }
}

std::size_t LeLannProcess::space_bits(std::size_t label_bits) const {
  // id + best + leader labels, plus INIT/isLeader/done Booleans.
  return 3 * label_bits + 3;
}

std::string LeLannProcess::debug_state() const {
  std::string out = init_ ? "INIT" : (is_leader() ? "LEADER" : "RELAY");
  out += " best=" + words::to_string(best_);
  if (done()) out += " done";
  return out;
}

std::unique_ptr<Process> LeLannProcess::clone() const {
  return std::unique_ptr<Process>(new LeLannProcess(*this));
}

void LeLannProcess::encode(std::vector<std::uint64_t>& out) const {
  Process::encode(out);
  out.push_back(init_ ? 1 : 0);
  out.push_back(best_.value());
}

bool LeLannProcess::decode(const std::uint64_t*& it,
                           const std::uint64_t* end) {
  if (!decode_spec_vars(it, end)) return false;
  if (end - it < 2) return false;
  const std::uint64_t init_word = *it++;
  if (init_word > 1) return false;  // encoded as exactly 0 or 1
  init_ = (init_word != 0);
  best_ = Label(static_cast<Label::rep_type>(*it++));
  return true;
}

sim::ProcessFactory LeLannProcess::factory() {
  return [](ProcessId pid, Label id) {
    return std::make_unique<LeLannProcess>(pid, id);
  };
}

}  // namespace hring::election
