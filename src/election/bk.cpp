#include "election/bk.hpp"

#include <memory>

#include "support/assert.hpp"

namespace hring::election {

const char* bk_state_name(BkState state) {
  switch (state) {
    case BkState::kInit:
      return "INIT";
    case BkState::kCompute:
      return "COMPUTE";
    case BkState::kShift:
      return "SHIFT";
    case BkState::kPassive:
      return "PASSIVE";
    case BkState::kWin:
      return "WIN";
    case BkState::kHalt:
      return "HALT";
  }
  HRING_ASSERT(false);
}

BkProcess::BkProcess(ProcessId pid, Label id, std::size_t k,
                     bool record_history)
    : Process(pid, id), k_(k), record_history_(record_history) {
  HRING_EXPECTS(k >= 1);
}

bool BkProcess::enabled(const Message* head) const {
  switch (state_) {
    case BkState::kInit:
      // B1: the unique no-reception action.
      return true;
    case BkState::kCompute:
      // B2-B5 receive label tokens only; by Lemma 11 no other kind can be
      // at the head here in a legal execution — leaving such a message
      // unmatched makes the deadlock detectable instead of hiding it.
      return head != nullptr && head->kind == sim::MsgKind::kToken;
    case BkState::kShift:
      // B6/B9 receive ⟨PHASE_SHIFT, x⟩ only (Lemma 11 again).
      return head != nullptr && head->kind == sim::MsgKind::kPhaseShift;
    case BkState::kPassive:
      // B7 (tokens), B8 (phase shifts), B10 (finish) — everything matches.
      return head != nullptr;
    case BkState::kWin:
      // B11: only ⟨FINISH, x⟩ remains in flight for the winner.
      return head != nullptr && head->kind == sim::MsgKind::kFinishLabel;
    case BkState::kHalt:
      return false;  // also unreachable: halt_self() removes the process
  }
  HRING_ASSERT(false);
}

void BkProcess::enter_phase(Label new_guest, bool active) {
  guest_ = new_guest;
  ++phase_;
  if (record_history_) {
    history_.push_back(PhaseRecord{phase_, guest_, active});
  }
}

void BkProcess::fire(const Message* head, Context& ctx) {
  if (state_ == BkState::kInit) {
    // B1: state <- COMPUTE, guest <- id, inner <- 1, outer <- 1,
    //     send ⟨guest⟩.
    ctx.note_action("B1");
    state_ = BkState::kCompute;
    inner_ = 1;
    outer_ = 1;
    enter_phase(id(), /*active=*/true);
    ctx.send(Message::token(guest_));
    return;
  }
  HRING_EXPECTS(head != nullptr);

  if (state_ == BkState::kCompute) {
    HRING_EXPECTS(head->kind == sim::MsgKind::kToken);
    const Label x = ctx.consume().label;
    if (x > guest_) {
      // B2: a larger guest cannot be the minimum — discard it.
      ctx.note_action("B2");
    } else if (x == guest_ && inner_ < k_) {
      // B3: count an occurrence of our own guest and pass it on.
      ctx.note_action("B3");
      ++inner_;
      ctx.send(Message::token(x));
    } else if (x < guest_) {
      // B4: somebody holds a smaller guest — become passive (but forward).
      ctx.note_action("B4");
      state_ = BkState::kPassive;
      ctx.send(Message::token(x));
    } else {
      // B5: x == guest and inner == k — the phase is over for us; start
      // the barrier.
      HRING_ASSERT(x == guest_ && inner_ == k_);
      ctx.note_action("B5");
      state_ = BkState::kShift;
      ctx.send(Message::phase_shift(guest_));
    }
    return;
  }

  if (state_ == BkState::kShift) {
    HRING_EXPECTS(head->kind == sim::MsgKind::kPhaseShift);
    const Label x = ctx.consume().label;
    if (!(x == id()) || outer_ < k_) {
      // B6: adopt the shifted guest and start the next phase.
      ctx.note_action("B6");
      state_ = BkState::kCompute;
      if (x == id()) ++outer_;
      inner_ = 1;
      enter_phase(x, /*active=*/true);
      ctx.send(Message::token(guest_));
    } else {
      // B9: guest becomes the own label for the (k+1)-th time — more than
      // n phases have elapsed, so we are the true leader.
      ctx.note_action("B9");
      state_ = BkState::kWin;
      declare_leader();
      set_leader_label(id());
      enter_phase(id(), /*active=*/true);
      ctx.send(Message::finish_label(id()));
    }
    return;
  }

  if (state_ == BkState::kPassive) {
    switch (head->kind) {
      case sim::MsgKind::kToken: {
        // B7: passive processes forward phase tokens unchanged.
        const Label x = ctx.consume().label;
        ctx.note_action("B7");
        ctx.send(Message::token(x));
        return;
      }
      case sim::MsgKind::kPhaseShift: {
        // B8: forward the barrier carrying our previous guest, then adopt
        // the shifted one.
        const Label x = ctx.consume().label;
        ctx.note_action("B8");
        ctx.send(Message::phase_shift(guest_));
        enter_phase(x, /*active=*/false);
        return;
      }
      case sim::MsgKind::kFinishLabel: {
        // B10: learn the leader, forward the announcement, halt.
        const Label x = ctx.consume().label;
        ctx.note_action("B10");
        state_ = BkState::kHalt;
        ctx.send(Message::finish_label(x));
        set_leader_label(x);
        set_done();
        halt_self();
        return;
      }
      default:
        HRING_ASSERT(false);  // enabled() admitted an impossible kind
    }
  }

  HRING_EXPECTS(state_ == BkState::kWin);
  HRING_EXPECTS(head->kind == sim::MsgKind::kFinishLabel);
  // B11: the announcement returned to the winner.
  ctx.consume();
  ctx.note_action("B11");
  state_ = BkState::kHalt;
  set_done();
  halt_self();
}

std::size_t BkProcess::space_bits(std::size_t label_bits) const {
  // Paper accounting (Theorem 4): inner and outer are never incremented
  // past k (⌈log k⌉ bits each), three labels (id, guest, leader), the
  // 6-valued state (3 bits) plus isLeader and done (2 bits) = 5 bits.
  std::size_t log_k = 0;
  while ((std::size_t{1} << log_k) < k_) ++log_k;
  return 2 * log_k + 3 * label_bits + 5;
}

std::string BkProcess::debug_state() const {
  std::string out = bk_state_name(state_);
  out += " g=" + words::to_string(guest_);
  out += " in=" + std::to_string(inner_);
  out += " out=" + std::to_string(outer_);
  out += " ph=" + std::to_string(phase_);
  if (done()) out += " done";
  return out;
}

std::unique_ptr<Process> BkProcess::clone() const {
  return std::unique_ptr<Process>(new BkProcess(*this));
}

void BkProcess::encode(std::vector<std::uint64_t>& out) const {
  Process::encode(out);
  out.push_back(static_cast<std::uint64_t>(state_));
  out.push_back(guest_.value());
  out.push_back(inner_);
  out.push_back(outer_);
  // phase_/history_ are Figure 1 instrumentation, not behaviour: two
  // processes differing only there act identically, so they are omitted.
}

bool BkProcess::decode(const std::uint64_t*& it, const std::uint64_t* end) {
  if (!decode_spec_vars(it, end)) return false;
  if (end - it < 4) return false;
  const std::uint64_t state_word = *it++;
  if (state_word > static_cast<std::uint64_t>(BkState::kHalt)) return false;
  state_ = static_cast<BkState>(state_word);
  guest_ = Label(static_cast<Label::rep_type>(*it++));
  const std::uint64_t inner_word = *it++;
  const std::uint64_t outer_word = *it++;
  // Both counters count up to k and never past it (B3/B5 guards).
  if (inner_word > k_ || outer_word > k_) return false;
  inner_ = static_cast<std::size_t>(inner_word);
  outer_ = static_cast<std::size_t>(outer_word);
  // phase_/history_ are instrumentation (see encode) and stay untouched.
  return true;
}

sim::ProcessFactory BkProcess::factory(std::size_t k, bool record_history) {
  return [k, record_history](ProcessId pid, Label id) {
    return std::make_unique<BkProcess>(pid, id, k, record_history);
  };
}

}  // namespace hring::election
