// Batched stepping paths for the sweep engine (core/batch_engine.hpp).
//
// A batch algorithm holds the local state of every node of every ring in a
// batch as dense per-node planes — packed bit planes for the Booleans,
// flat label planes for the identifiers — instead of one heap-allocated
// Process per node. The guard/action logic mirrors the scalar Process
// implementations action for action (A1–A6, CR1–CR-halt), in the same
// order and through the same words:: machinery, so every statistic the
// engines collect — including the Label-comparison count — is
// byte-identical to a scalar run. That equivalence is enforced by the
// batch-vs-scalar cross-check grid in tests/integration/batch_engine_test.
//
// Only A_k and Chang–Roberts have batched paths; campaigns over the other
// algorithms fall back to the scalar ExecutionCore (core/campaign.hpp).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/batch_link.hpp"
#include "sim/message.hpp"
#include "sim/stats.hpp"
#include "support/bitplane.hpp"
#include "words/periodicity.hpp"

namespace hring::election {

using sim::Label;
using sim::Message;
using sim::ProcessId;

/// Per-firing execution context of the batch engine: the accounting of the
/// scalar FireContext (sim/engine.hpp) without observers or fault
/// injection, over arena links instead of per-ring Link objects.
class BatchFireContext {
 public:
  BatchFireContext(sim::Stats& stats, sim::LinkPlane& links,
                   std::size_t in_link, std::size_t out_link,
                   sim::ProcessId pid, std::size_t label_bits,
                   const sim::Message* head)
      : stats_(stats),
        links_(links),
        in_link_(in_link),
        out_link_(out_link),
        pid_(pid),
        label_bits_(label_bits),
        head_(head) {}

  // hring-lint: hot-path
  sim::Message consume() {
    HRING_EXPECTS(head_ != nullptr);  // guard matched a message
    HRING_EXPECTS(!consumed_);        // each message received exactly once
    consumed_ = true;
    const sim::Message msg = links_.pop(in_link_);
    // Raw-representation self-check, exactly as in the scalar engine: it
    // must not count toward the label-comparison statistic.
    HRING_ASSERT(msg.kind == head_->kind &&
                 msg.label.value() == head_->label.value());
    ++stats_.messages_received;
    ++stats_.received_by_kind[sim::kind_index(msg.kind)];
    ++stats_.received_by_process[pid_];
    return msg;
  }

  // hring-lint: hot-path
  void send(const sim::Message& msg) {
    ++stats_.messages_sent;
    ++stats_.sent_by_kind[sim::kind_index(msg.kind)];
    ++stats_.sent_by_process[pid_];
    stats_.message_bits_sent += sim::message_bits(msg, label_bits_);
    links_.send(out_link_, msg);
  }

  [[nodiscard]] bool consumed() const { return consumed_; }

 private:
  sim::Stats& stats_;
  sim::LinkPlane& links_;
  std::size_t in_link_;
  std::size_t out_link_;
  sim::ProcessId pid_;
  std::size_t label_bits_;
  const sim::Message* head_;
  bool consumed_ = false;
};

/// The §II spec variables of every node in the batch, as planes. Shared by
/// the batched algorithms; the campaign verifier reads the terminal state
/// through it.
struct SpecPlanes {
  support::BitPlane init;       // algorithm INIT flag (A1/CR1 pending)
  support::BitPlane leader;     // isLeader
  support::BitPlane done;       // done
  support::BitPlane halted;     // halted
  support::BitPlane has_leader; // p.leader set
  std::vector<sim::Label> id;           // node labels, clockwise per slot
  std::vector<sim::Label> leader_label; // p.leader (valid iff has_leader)

  void reset(std::size_t nodes) {
    init.reset(nodes);
    leader.reset(nodes);
    done.reset(nodes);
    halted.reset(nodes);
    has_leader.reset(nodes);
    id.assign(nodes, sim::Label{});
    leader_label.assign(nodes, sim::Label{});
  }

  /// Rebinds the nodes [base, base + n) to a fresh ring: INIT set, every
  /// other variable cleared, labels copied clockwise.
  void reset_slot(std::size_t base, const ring::LabeledRing& ring) {
    for (std::size_t pid = 0; pid < ring.size(); ++pid) {
      const std::size_t g = base + pid;
      init.set(g);
      leader.clear(g);
      done.clear(g);
      halted.clear(g);
      has_leader.clear(g);
      id[g] = ring.label(pid);
      leader_label[g] = sim::Label{};
    }
  }
};

/// Chang–Roberts, batched. Node state is exactly the scalar
/// ChangRobertsProcess's: the spec variables plus the INIT flag — all of it
/// lives in the planes; fire() mirrors chang_roberts.cpp branch for branch.
class BatchChangRoberts {
 public:
  /// Arena sizing for `slots` rings of `n` nodes each; k is ignored
  /// (Chang–Roberts takes no parameter).
  void configure(std::size_t slots, std::size_t n,
                 const AlgorithmConfig& config);

  /// Binds `slot` to a fresh ring (ring.size() must equal n).
  void reset_slot(std::size_t slot, const ring::LabeledRing& ring);

  // hring-lint: hot-path
  [[nodiscard]] bool enabled(std::size_t g, const sim::Message* head) const {
    if (spec_.init.test(g)) return true;
    return head != nullptr;
  }

  void fire(std::size_t g, const sim::Message* head, BatchFireContext& ctx);

  // hring-lint: hot-path
  [[nodiscard]] std::size_t space_bits(std::size_t /*g*/,
                                       std::size_t label_bits) const {
    // Mirrors ChangRobertsProcess::space_bits: id + leader labels plus
    // INIT/isLeader/done Booleans.
    return 2 * label_bits + 3;
  }

  [[nodiscard]] const SpecPlanes& spec() const { return spec_; }

 private:
  std::size_t n_ = 0;
  SpecPlanes spec_;
};

/// A_k (§IV), batched. The spec variables live in planes; the per-node
/// grown string keeps the scalar representation (words::IncrementalPeriod
/// plus the flat occurrence-count vector) in one arena vector, recycled
/// across cells with capacity kept — the same machinery AkProcess uses, so
/// the incremental Lyndon test performs the identical comparison sequence.
class BatchAk {
 public:
  void configure(std::size_t slots, std::size_t n,
                 const AlgorithmConfig& config);

  void reset_slot(std::size_t slot, const ring::LabeledRing& ring);

  // hring-lint: hot-path
  [[nodiscard]] bool enabled(std::size_t g, const sim::Message* head) const {
    if (spec_.init.test(g)) return true;
    return head != nullptr;
  }

  void fire(std::size_t g, const sim::Message* head, BatchFireContext& ctx);

  // hring-lint: hot-path
  [[nodiscard]] std::size_t space_bits(std::size_t g,
                                       std::size_t label_bits) const {
    // Mirrors AkProcess::space_bits: |string| labels + p.id + p.leader +
    // 3 Booleans; the border array is a recomputable accelerator.
    return (nodes_[g].string.size() + 2) * label_bits + 3;
  }

  [[nodiscard]] const SpecPlanes& spec() const { return spec_; }

 private:
  /// The growing part of one node's state; everything fixed-width lives in
  /// the planes.
  struct Node {
    words::IncrementalPeriod string;
    /// Occurrence count per label for the 2k+1 threshold — the same flat
    /// layout as AkProcess::counts_ (raw-value comparisons, uncounted).
    std::vector<std::pair<sim::Label::rep_type, std::size_t>> counts;
    std::size_t max_count = 0;
  };

  [[nodiscard]] std::size_t& count_slot(Node& node,
                                        sim::Label::rep_type value);
  /// Mirrors AkProcess::append_and_test — identical order of operations.
  [[nodiscard]] bool append_and_test(Node& node, sim::Label x);

  std::size_t n_ = 0;
  std::size_t k_ = 1;
  SpecPlanes spec_;
  std::vector<Node> nodes_;
};

}  // namespace hring::election
