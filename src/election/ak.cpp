#include "election/ak.hpp"

#include <map>
#include <memory>

#include "support/assert.hpp"
#include "words/lyndon.hpp"

namespace hring::election {

bool leader_predicate(const words::LabelSequence& sigma, std::size_t k) {
  HRING_EXPECTS(k >= 1);
  if (sigma.empty()) return false;
  std::map<Label::rep_type, std::size_t> counts;
  std::size_t max_count = 0;
  for (const Label l : sigma) {
    max_count = std::max(max_count, ++counts[l.value()]);
  }
  if (max_count < 2 * k + 1) return false;
  return words::is_lyndon(words::srp(sigma));
}

AkProcess::AkProcess(ProcessId pid, Label id, std::size_t k)
    : Process(pid, id), k_(k) {
  HRING_EXPECTS(k >= 1);
}

bool AkProcess::enabled(const Message* head) const {
  // A1 is the unique no-reception action; afterwards every incoming
  // message matches some guard: tokens match A2/A3 (not leader) or A5
  // (leader), ⟨FINISH⟩ matches A4 (not leader) or A6 (leader).
  if (init_) return true;
  return head != nullptr;
}

// hring-lint: hot-path
std::size_t& AkProcess::count_slot(Label::rep_type value) {
  for (auto& [label, count] : counts_) {
    if (label == value) return count;
  }
  counts_.emplace_back(value, 0);
  return counts_.back().second;
}

// hring-lint: hot-path
bool AkProcess::append_and_test(Label x) {
  string_.push_back(x);
  max_count_ = std::max(max_count_, ++count_slot(x.value()));
  if (max_count_ < 2 * k_ + 1) return false;
  // srp(string) is the prefix of length = smallest period. It is a Lyndon
  // word iff it is rotationally aperiodic and is its own least rotation;
  // its own smallest period comes straight out of the incremental border
  // array, so the whole test runs on the stored sequence with no copy.
  const std::size_t period = string_.period();
  const std::size_t sub = string_.prefix_period(period);
  if (sub < period && period % sub == 0) return false;  // symmetric prefix
  return words::least_rotation_index(string_.sequence().data(), period) == 0;
}

void AkProcess::fire(const Message* head, Context& ctx) {
  if (init_) {
    // A1: p.INIT <- FALSE, p.string <- p.id, send ⟨p.id⟩.
    ctx.note_action("A1");
    init_ = false;
    const bool elected_immediately = append_and_test(id());
    HRING_ASSERT(!elected_immediately);  // needs 2k+1 >= 3 copies
    ctx.send(Message::token(id()));
    return;
  }
  HRING_EXPECTS(head != nullptr);
  if (head->kind == sim::MsgKind::kToken) {
    const Message msg = ctx.consume();
    if (is_leader()) {
      // A5: the leader swallows circulating tokens.
      ctx.note_action("A5");
      return;
    }
    if (!append_and_test(msg.label)) {
      // A2: grow the string, forward the token.
      ctx.note_action("A2");
      ctx.send(Message::token(msg.label));
    } else {
      // A3: Leader(p.string . x) holds — elect self, flood ⟨FINISH⟩.
      ctx.note_action("A3");
      declare_leader();
      set_leader_label(id());
      set_done();
      ctx.send(Message::finish());
    }
    return;
  }
  HRING_EXPECTS(head->kind == sim::MsgKind::kFinish);
  ctx.consume();
  if (!is_leader()) {
    // A4: learn the leader's label from the grown string and halt.
    ctx.note_action("A4");
    // LW(srp(p.string))[1]: srp(string) is the length-period() prefix, so
    // the rotation scan runs on a view of the grown string — no copy.
    set_leader_label(words::lyndon_rotation_first(string_.sequence().data(),
                                                  string_.period()));
    set_done();
    ctx.send(Message::finish());
    halt_self();
  } else {
    // A6: ⟨FINISH⟩ returned to the leader — the execution is over.
    ctx.note_action("A6");
    halt_self();
  }
}

std::size_t AkProcess::space_bits(std::size_t label_bits) const {
  // Paper accounting: |string| labels + p.id + p.leader (2 labels) +
  // 3 Booleans (INIT, isLeader, done). The border array is excluded: it is
  // a recomputable accelerator (see header).
  return (string_.size() + 2) * label_bits + 3;
}

std::string AkProcess::debug_state() const {
  std::string out = init_ ? "INIT" : (is_leader() ? "LEADER" : "GROW");
  out += " |string|=" + std::to_string(string_.size());
  if (done()) out += " done";
  if (leader().has_value()) {
    out += " leader=" + words::to_string(*leader());
  }
  return out;
}

std::unique_ptr<Process> AkProcess::clone() const {
  return std::unique_ptr<Process>(new AkProcess(*this));
}

void AkProcess::encode(std::vector<std::uint64_t>& out) const {
  Process::encode(out);
  out.push_back(init_ ? 1 : 0);
  out.push_back(string_.size());
  for (const Label l : string_.sequence()) out.push_back(l.value());
  // counts_/max_count_/borders are functions of the string: no need to
  // encode them separately.
}

bool AkProcess::decode(const std::uint64_t*& it, const std::uint64_t* end) {
  if (!decode_spec_vars(it, end)) return false;
  if (end - it < 2) return false;
  const std::uint64_t init_word = *it++;
  if (init_word > 1) return false;  // encoded as exactly 0 or 1
  init_ = (init_word != 0);
  const std::uint64_t length = *it++;
  if (static_cast<std::uint64_t>(end - it) < length) return false;
  // Rebuild the string and its derived accelerators (borders, counts) from
  // the encoded labels; every buffer keeps its capacity across restores.
  string_.clear();
  counts_.clear();
  max_count_ = 0;
  for (std::uint64_t i = 0; i < length; ++i) {
    const Label label(static_cast<Label::rep_type>(*it++));
    string_.push_back(label);
    max_count_ = std::max(max_count_, ++count_slot(label.value()));
  }
  return true;
}

sim::ProcessFactory AkProcess::factory(std::size_t k) {
  return [k](ProcessId pid, Label id) {
    return std::make_unique<AkProcess>(pid, id, k);
  };
}

}  // namespace hring::election
