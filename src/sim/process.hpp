// Guarded-action processes (§II).
//
// A local algorithm is a list of actions ⟨guard⟩ → ⟨statement⟩. Guards may
// inspect the process's own variables and pattern-match the head message of
// the incoming link (the model's message-blocking rcv); statements assign
// variables, send messages, and possibly halt. Guard evaluation plus the
// statement execute as one atomic step.
//
// Process carries the spec variables of the leader-election specification
// (isLeader, leader, done) plus the halting flag, so the engines and the
// invariant monitor can observe them uniformly across algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/message.hpp"

namespace hring::sim {

/// Position of a process in the ring, in [0, n).
using ProcessId = std::size_t;

/// Execution context handed to a firing action: message consumption and
/// sending, plus action labeling for traces. Implemented by each engine.
class Context {
 public:
  virtual ~Context() = default;

  /// Receives (removes) the head message of the incoming link. An action
  /// whose guard matched a message must call this exactly once; an action
  /// triggerable without reception (A1/B1) must not call it.
  virtual Message consume() = 0;

  /// Sends `msg` to the right neighbor (appends to the outgoing link).
  virtual void send(const Message& msg) = 0;

  /// Records which action fired ("A3", "B6", …) for traces and the
  /// state-diagram conformance census. Call at most once per firing.
  virtual void note_action(std::string_view name) = 0;
};

class Process {
 public:
  Process(ProcessId pid, Label id) : pid_(pid), id_(id) {}
  virtual ~Process() = default;

  Process& operator=(const Process&) = delete;

  /// True iff some action of this process is enabled given the head message
  /// of the incoming link (nullptr when the link is empty or the head is
  /// still in transit). Must be side-effect free.
  [[nodiscard]] virtual bool enabled(const Message* head) const = 0;

  /// Atomically executes exactly one enabled action. `head` is the same
  /// pointer passed to the matching enabled() call.
  virtual void fire(const Message* head, Context& ctx) = 0;

  /// Space occupied by the process's variables, in bits, under the paper's
  /// conventions: `label_bits` per label variable, 1 per Boolean,
  /// ⌈log2 k⌉ per k-bounded counter. Excludes debugging instrumentation.
  [[nodiscard]] virtual std::size_t space_bits(
      std::size_t label_bits) const = 0;

  /// One-line state rendering for traces ("COMPUTE g=3 in=1 out=2").
  [[nodiscard]] virtual std::string debug_state() const = 0;

  /// Deep copy, for the exhaustive model checker's backtracking search
  /// (core/model_checker.hpp). Algorithms that do not support checking
  /// return nullptr (the default).
  [[nodiscard]] virtual std::unique_ptr<Process> clone() const {
    return nullptr;
  }

  /// Serializes the complete local state (spec variables included) into
  /// `out`, for configuration hashing/equality in the model checker. Two
  /// processes with equal encodings must behave identically. The default
  /// encodes only the spec variables — enough for the base class; clone()
  /// implementers must append their own fields.
  virtual void encode(std::vector<std::uint64_t>& out) const {
    out.push_back((static_cast<std::uint64_t>(is_leader_) << 0) |
                  (static_cast<std::uint64_t>(done_) << 1) |
                  (static_cast<std::uint64_t>(halted_) << 2) |
                  (static_cast<std::uint64_t>(leader_.has_value()) << 3));
    out.push_back(leader_.has_value() ? leader_->value() : 0);
  }

  /// Inverse of encode(): restores the complete local state from the words
  /// at `it` (reading at most up to `end`), advancing `it` past the
  /// consumed words. Returns false when the process does not support
  /// restoration (the default) or the input is truncated. Together with
  /// encode() this lets the model checker snapshot and rewind
  /// configurations without cloning processes (core/model_checker.hpp).
  [[nodiscard]] virtual bool decode(const std::uint64_t*& it,
                                    const std::uint64_t* end) {
    (void)it;
    (void)end;
    return false;
  }

  // -- spec variables ------------------------------------------------------
  // Virtual so that scripted test processes can present arbitrary spec
  // trajectories to the monitor/auditor (e.g. an isLeader revert, which no
  // protected mutator can produce). Real algorithms never override these.
  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] Label id() const { return id_; }
  [[nodiscard]] virtual bool is_leader() const { return is_leader_; }
  [[nodiscard]] virtual bool done() const { return done_; }
  [[nodiscard]] virtual std::optional<Label> leader() const { return leader_; }
  [[nodiscard]] virtual bool halted() const { return halted_; }

 protected:
  /// Copying is reserved for clone() implementations.
  Process(const Process&) = default;

  /// Restores the spec variables written by the base encode(); decode()
  /// implementers call this first, mirroring Process::encode. Returns
  /// false on truncated input.
  [[nodiscard]] bool decode_spec_vars(const std::uint64_t*& it,
                                      const std::uint64_t* end) {
    if (end - it < 2) return false;
    const std::uint64_t flags = *it++;
    // Exactly four flag bits exist; anything else marks a stream that was
    // truncated, reordered, or produced by a mismatched encode().
    if ((flags & ~std::uint64_t{0xF}) != 0) return false;
    is_leader_ = (flags & (1U << 0)) != 0;
    done_ = (flags & (1U << 1)) != 0;
    halted_ = (flags & (1U << 2)) != 0;
    const std::uint64_t leader_rep = *it++;
    if ((flags & (1U << 3)) != 0) {
      leader_ = Label(static_cast<Label::rep_type>(leader_rep));
    } else {
      leader_.reset();
    }
    return true;
  }

  // Mutators for implementations. Deliberately unchecked: the invariant
  // monitor (not the mutator) reports spec violations, so the impossibility
  // experiments can observe a faulty election instead of aborting.
  void declare_leader() { is_leader_ = true; }
  void set_leader_label(Label l) { leader_ = l; }
  void set_done() { done_ = true; }
  /// The model's (halt): the process never executes another action.
  void halt_self() { halted_ = true; }

 private:
  // hring-state: excluded(simulator addressing, not protocol state)
  ProcessId pid_;
  Label id_;
  bool is_leader_ = false;
  bool done_ = false;
  // hring-state: bits=b
  std::optional<Label> leader_;
  // hring-state: excluded(halt flag; halted processes leave the model)
  bool halted_ = false;
};

}  // namespace hring::sim
