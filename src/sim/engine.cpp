#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace hring::sim {

// ---------------------------------------------------------------------------
// ExecutionCore

ExecutionCore::ExecutionCore(const ring::LabeledRing& ring,
                             const ProcessFactory& factory) {
  reset_core(ring, factory);
}

void ExecutionCore::reset_core(const ring::LabeledRing& ring,
                               const ProcessFactory& factory) {
  HRING_EXPECTS(factory != nullptr);
  const std::size_t n = ring.size();
  label_bits_ = ring.label_bits();
  processes_.clear();
  processes_.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    processes_.push_back(factory(pid, ring.label(pid)));
    HRING_ENSURES(processes_.back() != nullptr);
    HRING_ENSURES(processes_.back()->pid() == pid);
  }
  links_.reset(n);
  stats_.reset(n);
  observers_.clear();
  stop_ctx_ = nullptr;
  stop_fn_ = nullptr;
  fault_model_ = nullptr;
  step_ = 0;
  time_ = 0.0;
}

const Process& ExecutionCore::process(ProcessId pid) const {
  HRING_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

const Link& ExecutionCore::out_link(ProcessId pid) const {
  HRING_EXPECTS(pid < links_.ports());
  return links_[pid];
}

Link& ExecutionCore::in_link_of(ProcessId pid) {
  HRING_EXPECTS(pid < links_.ports());
  // pid is already reduced mod n: branch instead of hardware modulo on the
  // per-firing hot path.
  return links_[pid == 0 ? links_.ports() - 1 : pid - 1];
}

Link& ExecutionCore::out_link_of(ProcessId pid) {
  HRING_EXPECTS(pid < links_.ports());
  return links_[pid];
}

Process& ExecutionCore::mutable_process(ProcessId pid) {
  HRING_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

// hring-lint: hot-path
const Message* ExecutionCore::deliverable_head(ProcessId pid,
                                               double now) const {
  return links_[pid == 0 ? links_.ports() - 1 : pid - 1].head(now);
}

bool ExecutionCore::terminal_is_clean() const {
  for (const auto& p : processes_) {
    if (!p->halted()) return false;
  }
  for (const Link& l : links_) {
    if (!l.empty()) return false;
  }
  return true;
}

void ExecutionCore::update_space(ProcessId pid) {
  stats_.peak_space_bits = std::max(
      stats_.peak_space_bits, processes_[pid]->space_bits(label_bits_));
}

void ExecutionCore::begin_run() {
  Label::reset_comparison_count();
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) update_space(pid);
  observers_.start(*this);
}

RunResult ExecutionCore::make_result(Outcome outcome) {
  observers_.finish(*this);
  stats_.label_comparisons = Label::comparison_count();
  for (const Link& l : links_) {
    stats_.peak_link_occupancy =
        std::max(stats_.peak_link_occupancy, l.high_water());
  }
  RunResult result;
  result.outcome = outcome;
  result.stats = stats_;
  result.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    ProcessSnapshot snap;
    snap.pid = p->pid();
    snap.id = p->id();
    snap.is_leader = p->is_leader();
    snap.done = p->done();
    snap.halted = p->halted();
    snap.leader = p->leader();
    snap.debug = p->debug_state();
    result.processes.push_back(std::move(snap));
  }
  return result;
}

// ---------------------------------------------------------------------------
// StepEngine

StepEngine::StepEngine(const ring::LabeledRing& ring,
                       const ProcessFactory& factory, Scheduler& scheduler,
                       StepConfig config)
    : ExecutionCore(ring, factory),
      scheduler_(&scheduler),
      config_(config),
      age_(ring.size(), 0) {}

void StepEngine::prepare(const ring::LabeledRing& ring,
                         const ProcessFactory& factory, Scheduler& scheduler,
                         StepConfig config) {
  reset_core(ring, factory);
  scheduler_ = &scheduler;
  config_ = config;
  age_.assign(ring.size(), 0);
}

RunResult StepEngine::run() {
  HRING_EXPECTS(scheduler_ != nullptr);  // bound via ctor or prepare()
  begin_run();
  for (;;) {
    if (step_ >= config_.max_steps) {
      return make_result(Outcome::kBudgetExhausted);
    }
    if (!step_once()) {
      return make_result(terminal_is_clean() ? Outcome::kTerminated
                                             : Outcome::kDeadlock);
    }
    observers_.step_end(*this);
    if (stop_requested()) {
      return make_result(Outcome::kViolation);
    }
  }
}

// hring-lint: hot-path
bool StepEngine::step_once() {
  // Enabled set in the current configuration γ. In the step engine every
  // queued message is deliverable (infinite `now`).
  constexpr double kNow = std::numeric_limits<double>::infinity();
  enabled_buf_.clear();
  for (ProcessId pid = 0; pid < process_count(); ++pid) {
    const Process& proc = process(pid);
    if (!proc.halted() && proc.enabled(deliverable_head(pid, kNow))) {
      enabled_buf_.push_back(pid);
    } else {
      age_[pid] = 0;
    }
  }
  if (enabled_buf_.empty()) return false;

  chosen_buf_.clear();
  // Fair activation: force any process continuously enabled for the bound.
  for (const ProcessId pid : enabled_buf_) {
    if (age_[pid] >= config_.fairness_bound) chosen_buf_.push_back(pid);
  }
  scheduler_->select(enabled_buf_, chosen_buf_);
  std::sort(chosen_buf_.begin(), chosen_buf_.end());
  chosen_buf_.erase(std::unique(chosen_buf_.begin(), chosen_buf_.end()),
                    chosen_buf_.end());
  HRING_ASSERT(!chosen_buf_.empty());

  // Execute the chosen processes. Firing order within a step is
  // immaterial: a process only pops its own in-link head (fixed in γ) and
  // only appends to its out-link tail, so each firing sees exactly the
  // state γ prescribed for it.
  const auto send_ready = [](ProcessId) { return 0.0; };
  for (const ProcessId pid : chosen_buf_) {
    const Message* head = deliverable_head(pid, kNow);
    const Process& proc = process(pid);
    HRING_ASSERT(!proc.halted());
    HRING_ASSERT(proc.enabled(head));
    fire_process(pid, head, send_ready);
    age_[pid] = 0;
  }
  // Age the enabled-but-skipped processes.
  for (const ProcessId pid : enabled_buf_) {
    if (!std::binary_search(chosen_buf_.begin(), chosen_buf_.end(), pid)) {
      ++age_[pid];
    }
  }
  ++step_;
  stats_.steps = step_;
  // Under the synchronous daemon each step is one normalized time unit;
  // other daemons must use the event engine for time measurements.
  time_ = static_cast<double>(step_);
  stats_.time_units = time_;
  return true;
}

}  // namespace hring::sim
