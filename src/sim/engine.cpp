#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace hring::sim {

// ---------------------------------------------------------------------------
// FireContext: the Context handed to a firing action.

class RingExecution::FireContext final : public Context {
 public:
  FireContext(RingExecution& exec, ProcessId pid, const Message* head,
              const std::function<double(ProcessId)>& send_ready)
      : exec_(exec), pid_(pid), head_(head), send_ready_(send_ready) {}

  Message consume() override {
    HRING_EXPECTS(head_ != nullptr);   // guard matched a message
    HRING_EXPECTS(!consumed_);         // each message received exactly once
    consumed_ = true;
    // Copy before pop: head_ points into the deque slot pop() destroys.
    const Message expected = *head_;
    Link& in = exec_.in_link_of(pid_);
    const Message msg = in.pop();
    // Compare raw representations: this engine self-check must not count
    // toward the algorithm's label-comparison statistic.
    HRING_ASSERT(msg.kind == expected.kind &&
                 msg.label.value() == expected.label.value());
    ++exec_.stats_.messages_received;
    ++exec_.stats_.received_by_kind[kind_index(msg.kind)];
    ++exec_.stats_.received_by_process[pid_];
    consumed_msg_ = msg;
    return msg;
  }

  void send(const Message& msg) override {
    FaultDecision fault;
    if (exec_.fault_model_ != nullptr) {
      fault =
          exec_.fault_model_->on_send(exec_.stats_.messages_sent, pid_, msg);
      if (fault.faulty()) ++exec_.stats_.faults_injected;
    }
    ++exec_.stats_.messages_sent;
    ++exec_.stats_.sent_by_kind[kind_index(msg.kind)];
    ++exec_.stats_.sent_by_process[pid_];
    exec_.stats_.message_bits_sent +=
        message_bits(msg, exec_.label_bits_);
    sent_.push_back(msg);
    if (fault.drop) return;  // the message vanishes on the wire

    Message to_send = msg;
    if (fault.corrupt_to.has_value()) to_send.label = *fault.corrupt_to;
    Link& out = exec_.out_link_of(pid_);
    const double ready =
        std::max(send_ready_(pid_), out.last_ready_time());
    out.push(to_send, ready);
    if (fault.duplicate) {
      // A second copy; its own delay, clamped to stay FIFO.
      const double ready2 =
          std::max(send_ready_(pid_), out.last_ready_time());
      out.push(to_send, ready2);
    }
    if (fault.reorder && out.size() >= 2) {
      out.swap_last_two_payloads();
    }
  }

  void note_action(std::string_view name) override {
    HRING_EXPECTS(action_.empty());
    action_ = std::string(name);
  }

  [[nodiscard]] bool consumed() const { return consumed_; }
  [[nodiscard]] const std::optional<Message>& consumed_msg() const {
    return consumed_msg_;
  }
  [[nodiscard]] const std::string& action() const { return action_; }
  [[nodiscard]] std::vector<Message>& sent() { return sent_; }

 private:
  RingExecution& exec_;
  ProcessId pid_;
  const Message* head_;
  const std::function<double(ProcessId)>& send_ready_;
  bool consumed_ = false;
  std::optional<Message> consumed_msg_;
  std::string action_;
  std::vector<Message> sent_;
};

// ---------------------------------------------------------------------------
// RingExecution

RingExecution::RingExecution(const ring::LabeledRing& ring,
                             const ProcessFactory& factory)
    : label_bits_(ring.label_bits()) {
  HRING_EXPECTS(factory != nullptr);
  const std::size_t n = ring.size();
  processes_.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    processes_.push_back(factory(pid, ring.label(pid)));
    HRING_ENSURES(processes_.back() != nullptr);
    HRING_ENSURES(processes_.back()->pid() == pid);
  }
  links_.resize(n);
  stats_.sent_by_process.assign(n, 0);
  stats_.received_by_process.assign(n, 0);
}

const Process& RingExecution::process(ProcessId pid) const {
  HRING_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

const Link& RingExecution::out_link(ProcessId pid) const {
  HRING_EXPECTS(pid < links_.size());
  return links_[pid];
}

Link& RingExecution::in_link_of(ProcessId pid) {
  HRING_EXPECTS(pid < links_.size());
  return links_[(pid + links_.size() - 1) % links_.size()];
}

Link& RingExecution::out_link_of(ProcessId pid) {
  HRING_EXPECTS(pid < links_.size());
  return links_[pid];
}

Process& RingExecution::mutable_process(ProcessId pid) {
  HRING_EXPECTS(pid < processes_.size());
  return *processes_[pid];
}

const Message* RingExecution::deliverable_head(ProcessId pid,
                                               double now) const {
  const std::size_t n = links_.size();
  return links_[(pid + n - 1) % n].head(now);
}

bool RingExecution::fire_process(
    ProcessId pid, const Message* head,
    const std::function<double(ProcessId from)>& send_ready) {
  Process& proc = mutable_process(pid);
  HRING_ASSERT(!proc.halted());
  FireContext ctx(*this, pid, head, send_ready);
  proc.fire(head, ctx);
  ++stats_.actions;
  update_space(pid);
  ActionEvent event;
  event.pid = pid;
  event.action = ctx.action();
  event.consumed = ctx.consumed_msg();
  event.sent = std::move(ctx.sent());
  event.step = step_;
  event.time = time_;
  observers_.action(*this, event);
  return ctx.consumed();
}

bool RingExecution::terminal_is_clean() const {
  for (const auto& p : processes_) {
    if (!p->halted()) return false;
  }
  for (const Link& l : links_) {
    if (!l.empty()) return false;
  }
  return true;
}

void RingExecution::update_space(ProcessId pid) {
  stats_.peak_space_bits = std::max(
      stats_.peak_space_bits, processes_[pid]->space_bits(label_bits_));
}

void RingExecution::begin_run() {
  Label::reset_comparison_count();
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) update_space(pid);
  observers_.start(*this);
}

RunResult RingExecution::make_result(Outcome outcome) {
  observers_.finish(*this);
  stats_.label_comparisons = Label::comparison_count();
  for (const Link& l : links_) {
    stats_.peak_link_occupancy =
        std::max(stats_.peak_link_occupancy, l.high_water());
  }
  RunResult result;
  result.outcome = outcome;
  result.stats = stats_;
  result.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    ProcessSnapshot snap;
    snap.pid = p->pid();
    snap.id = p->id();
    snap.is_leader = p->is_leader();
    snap.done = p->done();
    snap.halted = p->halted();
    snap.leader = p->leader();
    snap.debug = p->debug_state();
    result.processes.push_back(std::move(snap));
  }
  return result;
}

// ---------------------------------------------------------------------------
// StepEngine

StepEngine::StepEngine(const ring::LabeledRing& ring,
                       const ProcessFactory& factory, Scheduler& scheduler,
                       StepConfig config)
    : RingExecution(ring, factory),
      scheduler_(scheduler),
      config_(config),
      age_(ring.size(), 0) {}

RunResult StepEngine::run() {
  begin_run();
  for (;;) {
    if (step_ >= config_.max_steps) {
      return make_result(Outcome::kBudgetExhausted);
    }
    if (!step_once()) {
      return make_result(terminal_is_clean() ? Outcome::kTerminated
                                             : Outcome::kDeadlock);
    }
    observers_.step_end(*this);
    if (stop_predicate_ && stop_predicate_()) {
      return make_result(Outcome::kViolation);
    }
  }
}

bool StepEngine::step_once() {
  // Enabled set in the current configuration γ. In the step engine every
  // queued message is deliverable (infinite `now`).
  constexpr double kNow = std::numeric_limits<double>::infinity();
  enabled_buf_.clear();
  for (ProcessId pid = 0; pid < process_count(); ++pid) {
    const Process& proc = process(pid);
    if (!proc.halted() && proc.enabled(deliverable_head(pid, kNow))) {
      enabled_buf_.push_back(pid);
    } else {
      age_[pid] = 0;
    }
  }
  if (enabled_buf_.empty()) return false;

  chosen_buf_.clear();
  // Fair activation: force any process continuously enabled for the bound.
  for (const ProcessId pid : enabled_buf_) {
    if (age_[pid] >= config_.fairness_bound) chosen_buf_.push_back(pid);
  }
  scheduler_.select(enabled_buf_, chosen_buf_);
  std::sort(chosen_buf_.begin(), chosen_buf_.end());
  chosen_buf_.erase(std::unique(chosen_buf_.begin(), chosen_buf_.end()),
                    chosen_buf_.end());
  HRING_ASSERT(!chosen_buf_.empty());

  // Execute the chosen processes. Firing order within a step is
  // immaterial: a process only pops its own in-link head (fixed in γ) and
  // only appends to its out-link tail, so each firing sees exactly the
  // state γ prescribed for it.
  const auto send_ready = [](ProcessId) { return 0.0; };
  for (const ProcessId pid : chosen_buf_) {
    const Message* head = deliverable_head(pid, kNow);
    const Process& proc = process(pid);
    HRING_ASSERT(!proc.halted());
    HRING_ASSERT(proc.enabled(head));
    fire_process(pid, head, send_ready);
    age_[pid] = 0;
  }
  // Age the enabled-but-skipped processes.
  for (const ProcessId pid : enabled_buf_) {
    if (!std::binary_search(chosen_buf_.begin(), chosen_buf_.end(), pid)) {
      ++age_[pid];
    }
  }
  ++step_;
  stats_.steps = step_;
  // Under the synchronous daemon each step is one normalized time unit;
  // other daemons must use the event engine for time measurements.
  time_ = static_cast<double>(step_);
  stats_.time_units = time_;
  return true;
}

}  // namespace hring::sim
