#include "sim/message.hpp"

#include "support/assert.hpp"

namespace hring::sim {

const char* kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kToken:
      return "TOKEN";
    case MsgKind::kFinish:
      return "FINISH";
    case MsgKind::kPhaseShift:
      return "PHASE_SHIFT";
    case MsgKind::kFinishLabel:
      return "FINISH_LABEL";
    case MsgKind::kProbeOne:
      return "PROBE1";
    case MsgKind::kProbeTwo:
      return "PROBE2";
  }
  HRING_ASSERT(false);
}

std::size_t message_bits(const Message& msg, std::size_t label_bits) {
  constexpr std::size_t kTagBits = 3;  // ⌈log2(6)⌉
  return msg.kind == MsgKind::kFinish ? kTagBits : kTagBits + label_bits;
}

std::string to_string(const Message& msg) {
  std::string out = "<";
  out += kind_name(msg.kind);
  if (msg.kind != MsgKind::kFinish) {
    out += ',';
    out += words::to_string(msg.label);
  }
  out += '>';
  return out;
}

}  // namespace hring::sim
