#include "sim/scheduler.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::sim {

void SynchronousScheduler::select(const std::vector<ProcessId>& enabled,
                                  std::vector<ProcessId>& out) {
  out.insert(out.end(), enabled.begin(), enabled.end());
}

void RoundRobinScheduler::select(const std::vector<ProcessId>& enabled,
                                 std::vector<ProcessId>& out) {
  HRING_EXPECTS(!enabled.empty());
  // First enabled pid >= next_, else wrap to the smallest.
  const auto it = std::lower_bound(enabled.begin(), enabled.end(), next_);
  const ProcessId pick = (it == enabled.end()) ? enabled.front() : *it;
  out.push_back(pick);
  next_ = pick + 1;
}

void RandomSingleScheduler::select(const std::vector<ProcessId>& enabled,
                                   std::vector<ProcessId>& out) {
  HRING_EXPECTS(!enabled.empty());
  out.push_back(enabled[rng_.below(enabled.size())]);
}

void RandomSubsetScheduler::select(const std::vector<ProcessId>& enabled,
                                   std::vector<ProcessId>& out) {
  HRING_EXPECTS(!enabled.empty());
  const std::size_t before = out.size();
  for (const ProcessId pid : enabled) {
    if (rng_.chance(p_)) out.push_back(pid);
  }
  if (out.size() == before) {
    out.push_back(
        enabled[rng_.below(enabled.size())]);
  }
}

void ConvoyScheduler::select(const std::vector<ProcessId>& enabled,
                             std::vector<ProcessId>& out) {
  HRING_EXPECTS(!enabled.empty());
  out.push_back(enabled.front());
}

}  // namespace hring::sim
