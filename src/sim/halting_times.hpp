// Halting-time observer.
//
// Theorem 2's proof ends with "every process p halts after fewer than
// m + n time units": once the leader decides, the ⟨FINISH⟩ wave stops
// everyone within one ring traversal. This observer records, per process,
// the time (and step) of its decision (done := TRUE) and of its halt, so
// tests and benches can measure the decision-to-quiescence gap against
// that claim.
#pragma once

#include <optional>
#include <vector>

#include "sim/observer.hpp"

namespace hring::sim {

class HaltingTimes final : public Observer {
 public:
  struct Record {
    std::optional<double> done_time;
    std::optional<std::uint64_t> done_step;
    std::optional<double> halt_time;
    std::optional<std::uint64_t> halt_step;
  };

  void on_start(const ExecutionView& view) override {
    records_.assign(view.process_count(), Record{});
  }

  void on_action(const ExecutionView& view,
                 const ActionEvent& event) override {
    const Process& p = view.process(event.pid);
    Record& r = records_[event.pid];
    if (p.done() && !r.done_time.has_value()) {
      r.done_time = view.current_time();
      r.done_step = view.current_step();
    }
    if (p.halted() && !r.halt_time.has_value()) {
      r.halt_time = view.current_time();
      r.halt_step = view.current_step();
    }
  }

  [[nodiscard]] const std::vector<Record>& records() const {
    return records_;
  }

  /// Earliest decision time (the leader's, for A_k/B_k); nullopt when no
  /// process decided.
  [[nodiscard]] std::optional<double> first_decision() const {
    std::optional<double> best;
    for (const auto& r : records_) {
      if (r.done_time.has_value() &&
          (!best.has_value() || *r.done_time < *best)) {
        best = r.done_time;
      }
    }
    return best;
  }

  /// Latest halt time; nullopt when some process never halted.
  [[nodiscard]] std::optional<double> last_halt() const {
    std::optional<double> worst;
    for (const auto& r : records_) {
      if (!r.halt_time.has_value()) return std::nullopt;
      if (!worst.has_value() || *r.halt_time > *worst) {
        worst = r.halt_time;
      }
    }
    return worst;
  }

 private:
  std::vector<Record> records_;
};

}  // namespace hring::sim
