#include "sim/delay_model.hpp"

#include "support/assert.hpp"

namespace hring::sim {

ConstantDelay::ConstantDelay(double value) : value_(value) {
  HRING_EXPECTS(value > 0.0 && value <= 1.0);
}

UniformDelay::UniformDelay(support::Rng rng, double lo, double hi)
    : rng_(rng), lo_(lo), hi_(hi) {
  HRING_EXPECTS(lo > 0.0 && lo <= hi && hi <= 1.0);
}

double UniformDelay::delay(ProcessId) {
  return lo_ + (hi_ - lo_) * rng_.unit();
}

SlowLinkDelay::SlowLinkDelay(ProcessId slow_from, double fast)
    : slow_from_(slow_from), fast_(fast) {
  HRING_EXPECTS(fast > 0.0 && fast <= 1.0);
}

double SlowLinkDelay::delay(ProcessId from) {
  return from == slow_from_ ? 1.0 : fast_;
}

}  // namespace hring::sim
