// Messages of the §II model.
//
// The paper's algorithms exchange ⟨x⟩ label tokens, ⟨FINISH⟩, ⟨PHASE_SHIFT,x⟩
// and ⟨FINISH,x⟩; the baseline algorithms add probe/announce kinds. A single
// concrete Message type (tagged union) keeps the engine monomorphic while
// letting per-kind statistics and bit accounting work across algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "words/label.hpp"

namespace hring::sim {

using words::Label;

enum class MsgKind : std::uint8_t {
  kToken,        // ⟨x⟩           — A_k growth tokens, B_k phase labels
  kFinish,       // ⟨FINISH⟩      — A_k's termination wave
  kPhaseShift,   // ⟨PHASE_SHIFT, x⟩ — B_k's barrier between phases
  kFinishLabel,  // ⟨FINISH, x⟩   — B_k's termination wave (also used by
                 //                 baselines to announce the elected label)
  kProbeOne,     // baseline probe, first hop of a phase (label payload)
  kProbeTwo,     // baseline probe, second hop of a phase (label payload)
};

inline constexpr std::size_t kNumMsgKinds = 6;

/// Kind index for per-kind statistics arrays.
[[nodiscard]] constexpr std::size_t kind_index(MsgKind kind) {
  return static_cast<std::size_t>(kind);
}

[[nodiscard]] const char* kind_name(MsgKind kind);

struct Message {
  MsgKind kind = MsgKind::kToken;
  Label label{};  // payload label; meaningless for kFinish

  [[nodiscard]] static Message token(Label x) {
    return Message{MsgKind::kToken, x};
  }
  [[nodiscard]] static Message finish() {
    return Message{MsgKind::kFinish, Label{}};
  }
  [[nodiscard]] static Message phase_shift(Label x) {
    return Message{MsgKind::kPhaseShift, x};
  }
  [[nodiscard]] static Message finish_label(Label x) {
    return Message{MsgKind::kFinishLabel, x};
  }
  [[nodiscard]] static Message probe_one(Label x) {
    return Message{MsgKind::kProbeOne, x};
  }
  [[nodiscard]] static Message probe_two(Label x) {
    return Message{MsgKind::kProbeTwo, x};
  }

  friend bool operator==(const Message&, const Message&) = default;
};

/// Size of a message on the wire, in bits: a ⌈log2(#kinds)⌉-bit tag plus b
/// bits of label payload where present. Used by the message-bit statistic
/// (the paper counts messages; bits are reported as supplementary data).
[[nodiscard]] std::size_t message_bits(const Message& msg,
                                       std::size_t label_bits);

/// "⟨PHASE_SHIFT,3⟩" — rendering for traces.
[[nodiscard]] std::string to_string(const Message& msg);

}  // namespace hring::sim
