// Execution observers.
//
// Observers see every fired action and the end of every configuration step,
// through a read-only view of the execution. The invariant monitor, the
// trace recorder and the B_k phase/state censuses are observers; engines
// know nothing about what they check.
//
// Observation is zero-cost when nobody watches: an engine with no attached
// observer never materializes an ActionEvent (no action-name lookup, no
// consumed/sent bookkeeping). When observers are attached, the engine fills
// one reused scratch event per firing — see the ActionEvent lifetime notes
// below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/link.hpp"
#include "sim/process.hpp"

namespace hring::sim {

/// Read-only view of a running execution, implemented by both engines.
class ExecutionView {
 public:
  virtual ~ExecutionView() = default;
  [[nodiscard]] virtual std::size_t process_count() const = 0;
  [[nodiscard]] virtual const Process& process(ProcessId pid) const = 0;
  /// Link from p_i to p_{i+1}.
  [[nodiscard]] virtual const Link& out_link(ProcessId pid) const = 0;
  /// Current step index (step engine) and simulated time (event engine).
  [[nodiscard]] virtual std::uint64_t current_step() const = 0;
  [[nodiscard]] virtual double current_time() const = 0;
};

/// Interns an action name ("A3", "B6", …) into a process-lifetime pool and
/// returns a view of the pooled copy. The engines intern every observed
/// note_action name, so ActionEvent::action stays valid indefinitely even
/// when the caller passed a temporary. Thread-safe; the pool only grows
/// (action vocabularies are tiny and fixed).
[[nodiscard]] std::string_view intern_action_name(std::string_view name);

/// One fired action.
///
/// Lifetime: engines pass a scratch event that is overwritten by the next
/// firing. `action` points into the intern pool and stays valid forever;
/// `consumed`/`sent` are only valid during on_action — observers that keep
/// an event must copy it (copying copies the buffers).
struct ActionEvent {
  ProcessId pid = 0;
  /// Label recorded via Context::note_action ("A3", "B6", …); empty when
  /// the algorithm did not label the firing. Interned: valid forever.
  std::string_view action;
  /// Message consumed by the firing, if any.
  std::optional<Message> consumed;
  /// Messages sent by the firing, in send order (before any link fault).
  std::vector<Message> sent;
  std::uint64_t step = 0;
  double time = 0.0;
};

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called before the first step, after processes are constructed.
  virtual void on_start(const ExecutionView&) {}
  /// Called after each individual action firing.
  virtual void on_action(const ExecutionView&, const ActionEvent&) {}
  /// Called after each configuration step (step engine) or each event time
  /// at which at least one action fired (event engine).
  virtual void on_step_end(const ExecutionView&) {}
  /// Called once when the run stops, before snapshots are taken.
  virtual void on_finish(const ExecutionView&) {}
};

/// Fan-out helper used by the engines.
class ObserverList {
 public:
  void add(Observer* observer);
  /// Detaches every observer (ExecutionCore::reset: recycled executions
  /// start unobserved).
  void clear() { observers_.clear(); }
  void start(const ExecutionView& view) const;
  void action(const ExecutionView& view, const ActionEvent& event) const;
  void step_end(const ExecutionView& view) const;
  void finish(const ExecutionView& view) const;
  [[nodiscard]] bool empty() const { return observers_.empty(); }

 private:
  std::vector<Observer*> observers_;
};

}  // namespace hring::sim
