// Outcome of an execution.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "sim/stats.hpp"

namespace hring::sim {

enum class Outcome {
  /// Terminal configuration reached: every process halted, all links empty.
  kTerminated,
  /// No process enabled but the configuration is not a clean terminal one
  /// (un-received messages or non-halted disabled processes).
  kDeadlock,
  /// The step/event budget ran out first.
  kBudgetExhausted,
  /// The invariant monitor reported a specification violation and the
  /// engine was configured to stop on violation.
  kViolation,
};

[[nodiscard]] const char* outcome_name(Outcome outcome);

/// Final state of one process, copied out of the engine.
struct ProcessSnapshot {
  ProcessId pid = 0;
  Label id{};
  bool is_leader = false;
  bool done = false;
  bool halted = false;
  std::optional<Label> leader;
  std::string debug;
};

struct RunResult {
  Outcome outcome = Outcome::kDeadlock;
  Stats stats;
  std::vector<ProcessSnapshot> processes;
  /// Human-readable invariant violations, if any (also non-empty when the
  /// run continued past a violation with stop_on_violation = false).
  std::vector<std::string> violations;

  /// The unique leader's pid, if exactly one process has isLeader.
  [[nodiscard]] std::optional<ProcessId> leader_pid() const {
    std::optional<ProcessId> found;
    for (const auto& p : processes) {
      if (!p.is_leader) continue;
      if (found.has_value()) return std::nullopt;
      found = p.pid;
    }
    return found;
  }
};

inline const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kTerminated:
      return "terminated";
    case Outcome::kDeadlock:
      return "deadlock";
    case Outcome::kBudgetExhausted:
      return "budget-exhausted";
    case Outcome::kViolation:
      return "violation";
  }
  return "?";
}

}  // namespace hring::sim
