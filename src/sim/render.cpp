#include "sim/render.hpp"

#include <limits>
#include <ostream>

namespace hring::sim {

void render_configuration(const ExecutionView& view, std::ostream& out) {
  const std::size_t n = view.process_count();
  out << "step " << view.current_step() << " (t=" << view.current_time()
      << ")\n";
  for (ProcessId pid = 0; pid < n; ++pid) {
    const Process& p = view.process(pid);
    out << "  p" << pid << " [" << words::to_string(p.id()) << "]  "
        << p.debug_state();
    if (p.is_leader()) out << "  <- leader";
    if (p.halted()) out << "  (halted)";
    out << '\n';
  }
  for (ProcessId pid = 0; pid < n; ++pid) {
    const Link& link = view.out_link(pid);
    if (link.empty()) continue;
    out << "  p" << pid << " -> p" << (pid + 1) % n << " :";
    // Links expose only the head; re-rendering full contents would need a
    // scan API, so show occupancy plus the deliverable head.
    out << " " << link.size() << " in flight";
    if (const Message* head =
            link.head(std::numeric_limits<double>::infinity())) {
      out << ", head " << to_string(*head);
    }
    out << '\n';
  }
}

std::string render_summary(const ExecutionView& view) {
  const std::size_t n = view.process_count();
  std::size_t halted = 0;
  std::size_t leaders = 0;
  std::size_t done = 0;
  std::size_t in_flight = 0;
  for (ProcessId pid = 0; pid < n; ++pid) {
    const Process& p = view.process(pid);
    if (p.halted()) ++halted;
    if (p.is_leader()) ++leaders;
    if (p.done()) ++done;
    in_flight += view.out_link(pid).size();
  }
  std::string out = "step " + std::to_string(view.current_step()) + ": ";
  out += std::to_string(leaders) + " leader(s), ";
  out += std::to_string(done) + " done, ";
  out += std::to_string(halted) + " halted, ";
  out += std::to_string(in_flight) + " in flight";
  return out;
}

void WatchObserver::on_step_end(const ExecutionView& view) {
  if (view.current_step() % every_ != 0) return;
  render_configuration(view, out_);
}

}  // namespace hring::sim
