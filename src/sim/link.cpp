#include "sim/link.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::sim {

void Link::grow() {
  const std::size_t old_cap = buf_.size();
  const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
  std::vector<InFlight> next(new_cap);
  for (std::size_t i = 0; i < count_; ++i) next[i] = buf_[slot(i)];
  buf_ = std::move(next);
  head_ = 0;
}

void Link::push(const Message& msg, double ready_time) {
  HRING_EXPECTS(ready_time >= last_ready_time_);
  if (count_ == buf_.size()) grow();
  buf_[slot(count_)] = InFlight{msg, ready_time};
  ++count_;
  last_ready_time_ = ready_time;
  high_water_ = std::max(high_water_, count_);
}

const Message* Link::head(double now) const {
  if (count_ == 0 || buf_[head_].ready_time > now) return nullptr;
  return &buf_[head_].msg;
}

double Link::head_ready_time() const {
  HRING_EXPECTS(count_ > 0);
  return buf_[head_].ready_time;
}

void Link::swap_last_two_payloads() {
  HRING_EXPECTS(count_ >= 2);
  using std::swap;
  swap(buf_[slot(count_ - 1)].msg, buf_[slot(count_ - 2)].msg);
}

Message Link::pop() {
  HRING_EXPECTS(count_ > 0);
  const Message msg = buf_[head_].msg;
  head_ = slot(1);
  --count_;
  if (count_ == 0) head_ = 0;
  return msg;
}

void Link::reset() {
  head_ = 0;
  count_ = 0;
  high_water_ = 0;
  last_ready_time_ = 0.0;
}

}  // namespace hring::sim
