#include "sim/link.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::sim {

void Link::push(const Message& msg, double ready_time) {
  HRING_EXPECTS(ready_time >= last_ready_time_);
  queue_.push_back(InFlight{msg, ready_time});
  last_ready_time_ = ready_time;
  high_water_ = std::max(high_water_, queue_.size());
}

const Message* Link::head(double now) const {
  if (queue_.empty() || queue_.front().ready_time > now) return nullptr;
  return &queue_.front().msg;
}

double Link::head_ready_time() const {
  HRING_EXPECTS(!queue_.empty());
  return queue_.front().ready_time;
}

void Link::swap_last_two_payloads() {
  HRING_EXPECTS(queue_.size() >= 2);
  using std::swap;
  swap(queue_[queue_.size() - 1].msg, queue_[queue_.size() - 2].msg);
}

Message Link::pop() {
  HRING_EXPECTS(!queue_.empty());
  const Message msg = queue_.front().msg;
  queue_.pop_front();
  return msg;
}

}  // namespace hring::sim
