#include "sim/observer.hpp"

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.hpp"

namespace hring::sim {

namespace {

std::string_view intern_action_name_slow(std::string_view name) {
  // unordered_set never moves its elements, so views into pooled strings
  // stay valid across rehashes. The pool is per-process and only grows;
  // action vocabularies are a handful of short literals.
  static std::mutex mutex;
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();  // leaked: outlives all users
  const std::lock_guard<std::mutex> lock(mutex);
  return *pool->emplace(name).first;
}

}  // namespace

std::string_view intern_action_name(std::string_view name) {
  if (name.empty()) return {};
  // Observed runs intern one name per action: a thread-local cache keeps
  // the global mutex — and, via heterogeneous lookup, any allocation —
  // off that path after each vocabulary's first use. Keys are copies, so
  // cache hits don't depend on callers' storage.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Cache =
      std::unordered_map<std::string, std::string_view, Hash, std::equal_to<>>;
  // A value, not a leaked pointer: the cached views point into the global
  // pool, so destroying the cache at thread exit invalidates nothing.
  thread_local Cache cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(std::string(name), intern_action_name_slow(name))
             .first;
  }
  return it->second;
}

void ObserverList::add(Observer* observer) {
  HRING_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void ObserverList::start(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_start(view);
}

void ObserverList::action(const ExecutionView& view,
                          const ActionEvent& event) const {
  for (Observer* o : observers_) o->on_action(view, event);
}

void ObserverList::step_end(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_step_end(view);
}

void ObserverList::finish(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_finish(view);
}

}  // namespace hring::sim
