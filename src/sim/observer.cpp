#include "sim/observer.hpp"

#include "support/assert.hpp"

namespace hring::sim {

void ObserverList::add(Observer* observer) {
  HRING_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void ObserverList::start(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_start(view);
}

void ObserverList::action(const ExecutionView& view,
                          const ActionEvent& event) const {
  for (Observer* o : observers_) o->on_action(view, event);
}

void ObserverList::step_end(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_step_end(view);
}

void ObserverList::finish(const ExecutionView& view) const {
  for (Observer* o : observers_) o->on_finish(view);
}

}  // namespace hring::sim
