// Trace recording.
//
// Records every fired action (with its consumed message) and optional
// per-step state snapshots; used by the CLI, by the Figure 1 reproduction
// and by the state-diagram conformance tests (E5/E6).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace hring::sim {

class TraceRecorder : public Observer {
 public:
  struct Entry {
    ActionEvent event;
    /// debug_state() of the firing process right after the action.
    std::string state_after;
  };

  /// `max_entries` bounds memory on runaway executions; further actions are
  /// counted but not stored.
  explicit TraceRecorder(std::size_t max_entries = 1 << 20)
      : max_entries_(max_entries) {}

  void on_action(const ExecutionView& view, const ActionEvent& event) override;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Pretty-prints the trace, one line per action.
  void print(std::ostream& out) const;

  /// Census of fired action labels: ("A2", 117), … sorted by label.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  action_census() const;

 private:
  std::size_t max_entries_;
  std::vector<Entry> entries_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hring::sim
