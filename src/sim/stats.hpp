// Execution statistics collected by the engines.
//
// These are the quantities the paper's theorems bound: configuration steps
// and synchronous rounds (Lemma 1), normalized time units (Theorems 2/4),
// message counts (Theorems 2/4), and peak per-process space in bits
// (Theorems 2/4). Label comparisons and message bits are supplementary.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"

namespace hring::support {
class JsonWriter;
}

namespace hring::sim {

struct Stats {
  /// Configuration steps γ ↦ γ' taken (each may fire several processes).
  std::uint64_t steps = 0;
  /// Individual action firings.
  std::uint64_t actions = 0;
  /// Completion time in the paper's normalized time units. For the step
  /// engine under the synchronous scheduler this equals `steps`; the
  /// discrete-event engine reports the timestamp of the last action.
  double time_units = 0.0;

  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Per-process send/receive counts (indexed by pid). Theorem 2's proof
  /// argues the leader's receive count dominates: these expose it.
  std::vector<std::uint64_t> sent_by_process;
  std::vector<std::uint64_t> received_by_process;
  std::array<std::uint64_t, kNumMsgKinds> sent_by_kind{};
  std::array<std::uint64_t, kNumMsgKinds> received_by_kind{};
  /// Total payload+tag bits sent (supplementary; the paper counts messages).
  std::uint64_t message_bits_sent = 0;

  /// Peak over time of max over processes of Process::space_bits().
  std::size_t peak_space_bits = 0;
  /// Peak number of in-flight messages on any single link.
  std::size_t peak_link_occupancy = 0;
  /// Label comparisons performed during the run (thread-local counter).
  std::uint64_t label_comparisons = 0;
  /// Faults injected by an attached FaultModel (0 when links are honest).
  std::uint64_t faults_injected = 0;

  /// Field-wise equality: the batch engine's correctness obligation is
  /// *byte-identical* statistics against the scalar engine, and the
  /// cross-check tests state it through this operator.
  friend bool operator==(const Stats&, const Stats&) = default;

  [[nodiscard]] std::string summary() const;

  /// Emits the statistics as one JSON object value (the writer must be
  /// positioned where a value may appear). Shared by the run report, the
  /// sweep's per-run rows and the telemetry metrics document.
  void to_json(support::JsonWriter& json) const;

  /// Rewinds every counter for an n-process run, reusing the per-process
  /// vectors' storage (ExecutionCore::reset: recycled executions collect
  /// statistics without reallocating).
  void reset(std::size_t n) {
    steps = 0;
    actions = 0;
    time_units = 0.0;
    messages_sent = 0;
    messages_received = 0;
    sent_by_process.assign(n, 0);
    received_by_process.assign(n, 0);
    sent_by_kind.fill(0);
    received_by_kind.fill(0);
    message_bits_sent = 0;
    peak_space_bits = 0;
    peak_link_occupancy = 0;
    label_comparisons = 0;
    faults_injected = 0;
  }
};

}  // namespace hring::sim
