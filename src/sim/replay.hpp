// Schedule recording and exact replay.
//
// Any step-engine execution is fully determined by which processes fired
// at each configuration step (the algorithms are deterministic). The
// schedule can be reconstructed from a recorded trace and replayed with
// ReplayScheduler — bit-identical reruns of a randomized execution, for
// regression pinning and for sharing failing schedules.
#pragma once

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace hring::sim {

/// The chosen process set of each configuration step, in step order.
using Schedule = std::vector<std::vector<ProcessId>>;

/// Reconstructs the schedule from a recorded trace: step s fired exactly
/// the pids of the actions stamped with step s. (Steps are 0-based at
/// fire time; the trace must be complete — use an unbounded recorder.)
[[nodiscard]] Schedule schedule_from_trace(const TraceRecorder& trace);

/// Replays a recorded schedule verbatim. The engine's fairness forcing
/// must be effectively disabled (the replayed run already was fair), and
/// the scheduled set must be a subset of the enabled set at every step —
/// guaranteed when ring, algorithm and seed-independent inputs match the
/// recording. Selecting past the end of the schedule falls back to "all
/// enabled" (and records that it happened).
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(Schedule schedule)
      : schedule_(std::move(schedule)) {}

  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "replay"; }

  /// True when every select() so far was served from the recording.
  [[nodiscard]] bool faithful() const { return faithful_; }
  [[nodiscard]] std::size_t position() const { return next_; }

 private:
  Schedule schedule_;
  std::size_t next_ = 0;
  bool faithful_ = true;
};

}  // namespace hring::sim
