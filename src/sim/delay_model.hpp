// Message delay models for the discrete-event engine.
//
// §II normalizes time so that the longest message delay (transmission plus
// processing at the receiver) is one time unit and local processing takes
// zero time. Accordingly every model returns delays in (0, 1]; the
// worst-case model (delay ≡ 1) realizes the bound the theorems are stated
// against.
#pragma once

#include <vector>

#include "sim/process.hpp"
#include "support/rng.hpp"

namespace hring::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay, in (0, 1], of a message sent now on the link out of `from`.
  [[nodiscard]] virtual double delay(ProcessId from) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Every message takes exactly `value` time units (default: the worst-case
/// 1.0 of the complexity analyses).
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(double value = 1.0);
  [[nodiscard]] double delay(ProcessId) override { return value_; }
  [[nodiscard]] const char* name() const override { return "constant"; }

 private:
  double value_;
};

/// Uniform in [lo, hi] with 0 < lo <= hi <= 1.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(support::Rng rng, double lo, double hi);
  [[nodiscard]] double delay(ProcessId) override;
  [[nodiscard]] const char* name() const override { return "uniform"; }

 private:
  support::Rng rng_;
  double lo_;
  double hi_;
};

/// One designated slow link runs at the full unit delay while all others
/// run at `fast`; an adversarial heterogeneity stressor.
class SlowLinkDelay final : public DelayModel {
 public:
  SlowLinkDelay(ProcessId slow_from, double fast);
  [[nodiscard]] double delay(ProcessId from) override;
  [[nodiscard]] const char* name() const override { return "slow-link"; }

 private:
  ProcessId slow_from_;
  double fast_;
};

}  // namespace hring::sim
