// Execution engines.
//
// RingExecution owns the processes, links and statistics shared by the two
// engines. StepEngine implements the configuration-step semantics of §II
// (γ ↦ γ' executes a scheduler-chosen non-empty subset of the enabled
// processes, with fairness enforced by aging); it is the instrument for
// Lemma 1's synchronous step counts and for scheduler-adversarial testing.
// The discrete-event engine (event_engine.hpp) measures normalized time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "sim/fault_model.hpp"
#include "sim/link.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/run_result.hpp"
#include "sim/scheduler.hpp"

namespace hring::sim {

/// Builds the local algorithm of one process. The same factory is used for
/// every process — §II's "all local algorithms are identical, except maybe
/// for the labels".
using ProcessFactory =
    std::function<std::unique_ptr<Process>(ProcessId pid, Label id)>;

/// State and plumbing shared by both engines.
class RingExecution : public ExecutionView {
 public:
  RingExecution(const ring::LabeledRing& ring, const ProcessFactory& factory);

  // ExecutionView:
  [[nodiscard]] std::size_t process_count() const override {
    return processes_.size();
  }
  [[nodiscard]] const Process& process(ProcessId pid) const override;
  [[nodiscard]] const Link& out_link(ProcessId pid) const override;
  [[nodiscard]] std::uint64_t current_step() const override { return step_; }
  [[nodiscard]] double current_time() const override { return time_; }

  /// Registers an observer (not owned; must outlive the run).
  void add_observer(Observer* observer) { observers_.add(observer); }

  /// Attaches a link-layer fault injector (not owned; nullptr = reliable
  /// links, the §II default). See sim/fault_model.hpp.
  void set_fault_model(FaultModel* model) { fault_model_ = model; }

  /// Optional early-stop hook, polled after every step; a true return stops
  /// the run with Outcome::kViolation. The core driver wires the spec
  /// monitor in here.
  void set_stop_predicate(std::function<bool()> predicate) {
    stop_predicate_ = std::move(predicate);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  [[nodiscard]] Link& in_link_of(ProcessId pid);
  [[nodiscard]] Link& out_link_of(ProcessId pid);
  [[nodiscard]] Process& mutable_process(ProcessId pid);

  /// Head of pid's incoming link deliverable at `now`.
  [[nodiscard]] const Message* deliverable_head(ProcessId pid,
                                                double now) const;

  /// Fires one action of `pid` atomically. `head` must be the pointer the
  /// enabled() check saw. `send_ready` computes the delivery time of each
  /// sent message (the step engine passes "now"; the DES adds a delay and
  /// clamps to FIFO order). Returns true iff the action consumed a message.
  bool fire_process(ProcessId pid, const Message* head,
                    const std::function<double(ProcessId from)>& send_ready);

  /// True iff every process halted and every link is empty.
  [[nodiscard]] bool terminal_is_clean() const;

  /// Copies out final per-process state and closes the statistics
  /// (link high-waters, label comparisons).
  RunResult make_result(Outcome outcome);

  /// Seeds initial-space accounting and notifies observers; call once.
  void begin_run();

  std::uint64_t step_ = 0;
  double time_ = 0.0;
  ObserverList observers_;
  std::function<bool()> stop_predicate_;
  FaultModel* fault_model_ = nullptr;
  Stats stats_;

 private:
  class FireContext;

  void update_space(ProcessId pid);

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Link> links_;  // links_[i]: p_i -> p_{i+1}
  std::size_t label_bits_;
  /// Messages each process sent during the current firing, delivered on
  /// its out-link; bookkeeping lives in FireContext.
};

/// Step-engine tuning knobs.
struct StepConfig {
  /// Budget on configuration steps before giving up (livelock guard).
  std::uint64_t max_steps = 10'000'000;
  /// A process continuously enabled for this many steps is force-included
  /// in the next step (the model's fair activation).
  std::size_t fairness_bound = 128;
};

class StepEngine final : public RingExecution {
 public:
  /// `scheduler` is not owned and must outlive the engine.
  StepEngine(const ring::LabeledRing& ring, const ProcessFactory& factory,
             Scheduler& scheduler, StepConfig config = {});

  /// Runs to a terminal configuration (or budget/stop-predicate exit).
  RunResult run();

 private:
  /// Executes one configuration step; false when no process is enabled.
  bool step_once();

  Scheduler& scheduler_;
  StepConfig config_;
  std::vector<std::size_t> age_;  // consecutive steps enabled without firing
  std::vector<ProcessId> enabled_buf_;
  std::vector<ProcessId> chosen_buf_;
};

}  // namespace hring::sim
