// Execution engines.
//
// ExecutionCore owns the processes, links and statistics shared by the two
// engines, and keeps every hot-path buffer alive across runs: a core can be
// rebound to a new ring via the engines' prepare() so that sweeps, drivers
// and benchmarks recycle one execution arena instead of reallocating
// processes, links and per-process counters for every cell.
//
// StepEngine implements the configuration-step semantics of §II (γ ↦ γ'
// executes a scheduler-chosen non-empty subset of the enabled processes,
// with fairness enforced by aging); it is the instrument for Lemma 1's
// synchronous step counts and for scheduler-adversarial testing. The
// discrete-event engine (event_engine.hpp) measures normalized time.
//
// The firing path is allocation-free and statically dispatched: the
// per-message delivery-time policy is a template parameter (each engine
// passes its own callable, inlined at the call site), the early-stop hook is
// a plain function pointer, and the observer event is a reused scratch that
// is only filled when observers are attached.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "sim/fault_model.hpp"
#include "sim/link.hpp"
#include "sim/observer.hpp"
#include "sim/transport.hpp"
#include "sim/process.hpp"
#include "sim/run_result.hpp"
#include "sim/scheduler.hpp"
#include "support/assert.hpp"

namespace hring::sim {

/// Builds the local algorithm of one process. The same factory is used for
/// every process — §II's "all local algorithms are identical, except maybe
/// for the labels".
using ProcessFactory =
    std::function<std::unique_ptr<Process>(ProcessId pid, Label id)>;

/// State and plumbing shared by both engines.
class ExecutionCore : public ExecutionView {
 public:
  ExecutionCore(const ring::LabeledRing& ring, const ProcessFactory& factory);

  // ExecutionView:
  [[nodiscard]] std::size_t process_count() const override {
    return processes_.size();
  }
  [[nodiscard]] const Process& process(ProcessId pid) const override;
  [[nodiscard]] const Link& out_link(ProcessId pid) const override;
  [[nodiscard]] std::uint64_t current_step() const override { return step_; }
  [[nodiscard]] double current_time() const override { return time_; }

  /// Registers an observer (not owned; must outlive the run).
  void add_observer(Observer* observer) { observers_.add(observer); }

  /// Attaches a link-layer fault injector (not owned; nullptr = reliable
  /// links, the §II default). See sim/fault_model.hpp.
  void set_fault_model(FaultModel* model) { fault_model_ = model; }

  /// Optional early-stop hook, polled after every step; a true return stops
  /// the run with Outcome::kViolation. Statically dispatched: a plain
  /// function pointer plus context, so polling an absent hook costs one
  /// branch. The core driver wires the spec monitor in here.
  using StopFn = bool (*)(void* ctx);
  void set_stop_hook(void* ctx, StopFn fn) {
    stop_ctx_ = ctx;
    stop_fn_ = fn;
  }

  /// Convenience wrapper over set_stop_hook for a callable lvalue (a lambda
  /// variable, a monitor, …). The predicate is captured by address and must
  /// outlive the run.
  template <class Predicate>
  void set_stop_predicate(Predicate& predicate) {
    set_stop_hook(&predicate, [](void* ctx) -> bool {
      return (*static_cast<Predicate*>(ctx))();
    });
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  /// Builds an empty, unbound core; bind a cell later via the subclass's
  /// prepare(). Reusable engines start here.
  ExecutionCore() = default;

  /// Rebinds the core to a new ring, recycling link buffers, per-process
  /// counters and the observer scratch. Observers, the stop hook and the
  /// fault model are detached — the recycled execution starts clean; wire
  /// them again after prepare() if wanted.
  void reset_core(const ring::LabeledRing& ring, const ProcessFactory& factory);

  [[nodiscard]] Link& in_link_of(ProcessId pid);
  [[nodiscard]] Link& out_link_of(ProcessId pid);
  [[nodiscard]] Process& mutable_process(ProcessId pid);

  /// Head of pid's incoming link deliverable at `now`.
  [[nodiscard]] const Message* deliverable_head(ProcessId pid,
                                                double now) const;

  /// Fires one action of `pid` atomically. `head` must be the pointer the
  /// enabled() check saw. `send_ready` computes the delivery time of each
  /// sent message (the step engine passes "now"; the DES adds a delay and
  /// clamps to FIFO order); it is a template parameter so each engine's
  /// policy inlines into the firing loop. Returns true iff the action
  /// consumed a message.
  template <class SendReady>
  bool fire_process(ProcessId pid, const Message* head,
                    const SendReady& send_ready);

  /// True iff the stop hook is wired and asks to stop.
  [[nodiscard]] bool stop_requested() const {
    return stop_fn_ != nullptr && stop_fn_(stop_ctx_);
  }

  /// True iff every process halted and every link is empty.
  [[nodiscard]] bool terminal_is_clean() const;

  /// Copies out final per-process state and closes the statistics
  /// (link high-waters, label comparisons).
  RunResult make_result(Outcome outcome);

  /// Seeds initial-space accounting and notifies observers; call once.
  void begin_run();

  std::uint64_t step_ = 0;
  double time_ = 0.0;
  ObserverList observers_;
  void* stop_ctx_ = nullptr;
  StopFn stop_fn_ = nullptr;
  FaultModel* fault_model_ = nullptr;
  Stats stats_;

 private:
  template <class SendReady>
  class FireContext;

  void update_space(ProcessId pid);

  std::vector<std::unique_ptr<Process>> processes_;
  /// The engines' Transport backend (sim/transport.hpp): port i is the
  /// link p_i -> p_{i+1}.
  LinkArray links_;
  std::size_t label_bits_ = 0;
  /// Scratch event reused across firings; filled only when observers are
  /// attached (see ActionEvent's lifetime notes).
  ActionEvent event_scratch_;
};

// ---------------------------------------------------------------------------
// FireContext: the Context handed to a firing action. A member template so
// the engine-specific send_ready policy is dispatched statically.

template <class SendReady>
class ExecutionCore::FireContext final : public Context {
 public:
  FireContext(ExecutionCore& exec, ProcessId pid, const Message* head,
              const SendReady& send_ready, bool observed)
      : exec_(exec),
        pid_(pid),
        head_(head),
        send_ready_(send_ready),
        observed_(observed) {}

  // hring-lint: hot-path
  Message consume() override {
    HRING_EXPECTS(head_ != nullptr);   // guard matched a message
    HRING_EXPECTS(!consumed_);         // each message received exactly once
    consumed_ = true;
    // Copy before pop: head_ points into the ring slot pop() recycles.
    const Message expected = *head_;
    Link& in = exec_.in_link_of(pid_);
    const Message msg = in.pop();
    // Compare raw representations: this engine self-check must not count
    // toward the algorithm's label-comparison statistic.
    HRING_ASSERT(msg.kind == expected.kind &&
                 msg.label.value() == expected.label.value());
    ++exec_.stats_.messages_received;
    ++exec_.stats_.received_by_kind[kind_index(msg.kind)];
    ++exec_.stats_.received_by_process[pid_];
    if (observed_) exec_.event_scratch_.consumed = msg;
    return msg;
  }

  // hring-lint: hot-path
  void send(const Message& msg) override {
    FaultDecision fault;
    if (exec_.fault_model_ != nullptr) {
      fault =
          exec_.fault_model_->on_send(exec_.stats_.messages_sent, pid_, msg);
      if (fault.faulty()) ++exec_.stats_.faults_injected;
    }
    ++exec_.stats_.messages_sent;
    ++exec_.stats_.sent_by_kind[kind_index(msg.kind)];
    ++exec_.stats_.sent_by_process[pid_];
    exec_.stats_.message_bits_sent += message_bits(msg, exec_.label_bits_);
    if (observed_) exec_.event_scratch_.sent.push_back(msg);
    if (fault.drop) return;  // the message vanishes on the wire

    Message to_send = msg;
    if (fault.corrupt_to.has_value()) to_send.label = *fault.corrupt_to;
    Link& out = exec_.out_link_of(pid_);
    const double ready = std::max(send_ready_(pid_), out.last_ready_time());
    out.push(to_send, ready);
    if (fault.duplicate) {
      // A second copy; its own delay, clamped to stay FIFO.
      const double ready2 =
          std::max(send_ready_(pid_), out.last_ready_time());
      out.push(to_send, ready2);
    }
    if (fault.reorder && out.size() >= 2) {
      out.swap_last_two_payloads();
    }
  }

  // hring-lint: hot-path
  void note_action(std::string_view name) override {
    HRING_EXPECTS(!noted_);  // at most one label per firing
    noted_ = true;
    if (observed_) exec_.event_scratch_.action = intern_action_name(name);
  }

  [[nodiscard]] bool consumed() const { return consumed_; }

 private:
  ExecutionCore& exec_;
  ProcessId pid_;
  const Message* head_;
  const SendReady& send_ready_;
  bool observed_;
  bool consumed_ = false;
  bool noted_ = false;
};

// hring-lint: hot-path
template <class SendReady>
bool ExecutionCore::fire_process(ProcessId pid, const Message* head,
                                 const SendReady& send_ready) {
  Process& proc = mutable_process(pid);
  HRING_ASSERT(!proc.halted());
  const bool observed = !observers_.empty();
  if (observed) {
    // Rewind the scratch event; its buffers keep their capacity.
    event_scratch_.pid = pid;
    event_scratch_.action = {};
    event_scratch_.consumed.reset();
    event_scratch_.sent.clear();
    event_scratch_.step = step_;
    event_scratch_.time = time_;
  }
  FireContext<SendReady> ctx(*this, pid, head, send_ready, observed);
  proc.fire(head, ctx);
  ++stats_.actions;
  update_space(pid);
  if (observed) observers_.action(*this, event_scratch_);
  return ctx.consumed();
}

/// Step-engine tuning knobs.
struct StepConfig {
  /// Budget on configuration steps before giving up (livelock guard).
  std::uint64_t max_steps = 10'000'000;
  /// A process continuously enabled for this many steps is force-included
  /// in the next step (the model's fair activation).
  std::size_t fairness_bound = 128;
};

class StepEngine final : public ExecutionCore {
 public:
  /// `scheduler` is not owned and must outlive the engine.
  StepEngine(const ring::LabeledRing& ring, const ProcessFactory& factory,
             Scheduler& scheduler, StepConfig config = {});

  /// Builds an unbound engine; call prepare() before run(). This is the
  /// entry point for recycled engines (sweeps, drivers, audits).
  StepEngine() = default;

  /// Rebinds the engine to a new cell, recycling every buffer. Observers,
  /// the stop hook and the fault model are detached; wire them between
  /// prepare() and run().
  void prepare(const ring::LabeledRing& ring, const ProcessFactory& factory,
               Scheduler& scheduler, StepConfig config = {});

  /// Runs to a terminal configuration (or budget/stop-hook exit).
  RunResult run();

 private:
  /// Executes one configuration step; false when no process is enabled.
  bool step_once();

  Scheduler* scheduler_ = nullptr;
  StepConfig config_;
  std::vector<std::size_t> age_;  // consecutive steps enabled without firing
  std::vector<ProcessId> enabled_buf_;
  std::vector<ProcessId> chosen_buf_;
};

}  // namespace hring::sim
