// Discrete-event engine: the normalized-time instrument.
//
// §II measures time by normalizing executions so the longest message delay
// (transmission + processing at the receiver) is one time unit and local
// processing is instantaneous. The event engine realizes this directly:
// each sent message is assigned a delay in (0, 1] by a DelayModel (clamped
// so per-link delivery times stay FIFO), and a process fires as soon as an
// enabled guard has a delivered head message. The completion time of the
// run is exactly the §II time measure for that delay assignment; with the
// constant delay 1.0 it realizes the adversary the upper-bound theorems are
// stated against.
#pragma once

#include "sim/delay_model.hpp"
#include "sim/engine.hpp"

namespace hring::sim {

struct EventConfig {
  /// Budget on action firings before giving up (livelock guard).
  std::uint64_t max_actions = 50'000'000;
};

class EventEngine final : public ExecutionCore {
 public:
  /// `delay_model` is not owned and must outlive the engine.
  EventEngine(const ring::LabeledRing& ring, const ProcessFactory& factory,
              DelayModel& delay_model, EventConfig config = {});

  /// Builds an unbound engine; call prepare() before run(). This is the
  /// entry point for recycled engines (sweeps, drivers, benchmarks).
  EventEngine() = default;

  /// Rebinds the engine to a new cell, recycling every buffer including the
  /// wake heap. Observers, the stop hook and the fault model are detached;
  /// wire them between prepare() and run().
  void prepare(const ring::LabeledRing& ring, const ProcessFactory& factory,
               DelayModel& delay_model, EventConfig config = {});

  /// Runs to a terminal configuration (or budget/stop-hook exit).
  /// stats().time_units is the timestamp of the last fired action.
  RunResult run();

 private:
  struct Wake {
    double time;
    std::uint64_t seq;  // FIFO tiebreak for equal times
    ProcessId pid;
    friend bool operator>(const Wake& a, const Wake& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void schedule_wake(double time, ProcessId pid);
  /// Fires `pid` while an action is enabled at time `now`; returns the
  /// number of actions fired.
  std::size_t drain_process(ProcessId pid, double now);

  DelayModel* delay_model_ = nullptr;
  EventConfig config_;
  std::vector<Wake> heap_;  // min-heap via std::*_heap with greater
  std::uint64_t next_seq_ = 0;
};

}  // namespace hring::sim
