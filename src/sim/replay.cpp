#include "sim/replay.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::sim {

Schedule schedule_from_trace(const TraceRecorder& trace) {
  HRING_EXPECTS(trace.dropped() == 0);  // need the complete execution
  Schedule schedule;
  for (const auto& entry : trace.entries()) {
    const std::size_t step = entry.event.step;
    if (schedule.size() <= step) schedule.resize(step + 1);
    schedule[step].push_back(entry.event.pid);
  }
  for (auto& chosen : schedule) {
    std::sort(chosen.begin(), chosen.end());
    HRING_ENSURES(!chosen.empty());
  }
  return schedule;
}

void ReplayScheduler::select(const std::vector<ProcessId>& enabled,
                             std::vector<ProcessId>& out) {
  if (next_ >= schedule_.size()) {
    faithful_ = false;
    out.insert(out.end(), enabled.begin(), enabled.end());
    return;
  }
  const auto& chosen = schedule_[next_++];
  for (const ProcessId pid : chosen) {
    if (std::binary_search(enabled.begin(), enabled.end(), pid)) {
      out.push_back(pid);
    } else {
      faithful_ = false;  // divergence from the recorded run
    }
  }
  if (out.empty()) {
    faithful_ = false;
    out.push_back(enabled.front());
  }
}

}  // namespace hring::sim
