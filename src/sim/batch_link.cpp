#include "sim/batch_link.hpp"

namespace hring::sim {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace

void LinkPlane::reset(std::size_t links, std::size_t min_capacity) {
  links_ = links;
  if (stride_ < round_up_pow2(min_capacity < 2 ? 2 : min_capacity)) {
    stride_ = round_up_pow2(min_capacity < 2 ? 2 : min_capacity);
  }
  buf_.assign(links_ * stride_, Message{});
  head_.assign(links_, 0);
  count_.assign(links_, 0);
  high_.assign(links_, 0);
}

void LinkPlane::grow() {
  const std::size_t new_stride = stride_ == 0 ? 8 : stride_ * 2;
  std::vector<Message> next(links_ * new_stride);
  for (std::size_t link = 0; link < links_; ++link) {
    for (std::size_t i = 0; i < count_[link]; ++i) {
      next[link * new_stride + i] =
          buf_[link * stride_ + ((head_[link] + i) & (stride_ - 1))];
    }
    head_[link] = 0;
  }
  buf_ = std::move(next);
  stride_ = new_stride;
}

}  // namespace hring::sim
