// Schedulers (daemons) for the step engine.
//
// A step γ ↦ γ' executes a non-empty subset of the processes enabled in γ
// (§II). The scheduler chooses that subset; the engine separately enforces
// the model's fairness assumption by force-including any process that has
// been continuously enabled for `fairness_bound` steps.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/process.hpp"
#include "support/rng.hpp"

namespace hring::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Appends to `out` a non-empty subset of `enabled` (which is non-empty
  /// and sorted by pid). The engine deduplicates against forced picks.
  virtual void select(const std::vector<ProcessId>& enabled,
                      std::vector<ProcessId>& out) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Every enabled process executes — the synchronous daemon of §III. Under
/// this scheduler, steps coincide with the rounds counted by Lemma 1.
class SynchronousScheduler final : public Scheduler {
 public:
  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "synchronous"; }
};

/// Exactly one enabled process executes per step, scanned round-robin from
/// the pid after the previous pick (a fair sequential daemon).
class RoundRobinScheduler final : public Scheduler {
 public:
  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 private:
  ProcessId next_ = 0;
};

/// Exactly one uniformly random enabled process executes per step.
class RandomSingleScheduler final : public Scheduler {
 public:
  explicit RandomSingleScheduler(support::Rng rng) : rng_(rng) {}
  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "random-single"; }

 private:
  support::Rng rng_;
};

/// Each enabled process executes independently with probability `p`; if the
/// coin flips select nobody, one random enabled process is executed so the
/// step is non-empty.
class RandomSubsetScheduler final : public Scheduler {
 public:
  RandomSubsetScheduler(support::Rng rng, double p) : rng_(rng), p_(p) {}
  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "random-subset"; }

 private:
  support::Rng rng_;
  double p_;
};

/// Adversarial convoy daemon: starves the process with the largest pid
/// among the enabled (up to the engine's fairness forcing) by always
/// picking the smallest-pid enabled process. Stresses executions the
/// randomized daemons rarely produce.
class ConvoyScheduler final : public Scheduler {
 public:
  void select(const std::vector<ProcessId>& enabled,
              std::vector<ProcessId>& out) override;
  [[nodiscard]] const char* name() const override { return "convoy"; }
};

}  // namespace hring::sim
