// Fault injection at the link layer.
//
// §II assumes reliable FIFO links: nothing is lost, duplicated, corrupted
// or reordered. Those assumptions are load-bearing — A_k counts label
// copies and B_k's phases rely on FIFO barriers — and the fault models
// here let tests and demos show each assumption failing: inject a fault
// and watch the election deadlock, elect the wrong process, or violate
// the spec (always *detectably*; see tests/sim/fault_test.cpp).
//
// Faults apply at send time, before the message is enqueued. A reorder
// swaps the new message with the current link tail (payloads only, so the
// event engine's delivery times stay monotone).
#pragma once

#include <cstdint>
#include <optional>

#include "sim/message.hpp"
#include "sim/process.hpp"
#include "support/rng.hpp"

namespace hring::sim {

/// What to do with one sent message.
struct FaultDecision {
  bool drop = false;       // message vanishes
  bool duplicate = false;  // message enqueued twice
  bool reorder = false;    // swap with the link's current tail
  /// Replace the payload label (corruption).
  std::optional<Label> corrupt_to;

  [[nodiscard]] bool faulty() const {
    return drop || duplicate || reorder || corrupt_to.has_value();
  }

  [[nodiscard]] static FaultDecision dropped() {
    FaultDecision d;
    d.drop = true;
    return d;
  }
  [[nodiscard]] static FaultDecision duplicated() {
    FaultDecision d;
    d.duplicate = true;
    return d;
  }
  [[nodiscard]] static FaultDecision reordered() {
    FaultDecision d;
    d.reorder = true;
    return d;
  }
  [[nodiscard]] static FaultDecision corrupted(Label to) {
    FaultDecision d;
    d.corrupt_to = to;
    return d;
  }
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;
  /// Decision for the `index`-th send of the run (0-based, global) from
  /// process `from`.
  [[nodiscard]] virtual FaultDecision on_send(std::uint64_t index,
                                              ProcessId from,
                                              const Message& msg) = 0;
};

/// Injects exactly one fault, at the `target`-th send of the run;
/// deterministic, for pinpoint tests.
class SingleFault final : public FaultModel {
 public:
  SingleFault(std::uint64_t target, FaultDecision decision)
      : target_(target), decision_(decision) {}

  [[nodiscard]] FaultDecision on_send(std::uint64_t index, ProcessId,
                                      const Message&) override {
    return index == target_ ? decision_ : FaultDecision{};
  }

 private:
  std::uint64_t target_;
  FaultDecision decision_;
};

/// Independent per-message fault coins, with a cap on the total number of
/// injected faults so executions stay analyzable.
class ProbabilisticFaults final : public FaultModel {
 public:
  struct Rates {
    double drop = 0.0;
    double duplicate = 0.0;
    double reorder = 0.0;
    double corrupt = 0.0;
  };

  ProbabilisticFaults(support::Rng rng, Rates rates,
                      std::uint64_t max_faults)
      : rng_(rng), rates_(rates), max_faults_(max_faults) {}

  [[nodiscard]] FaultDecision on_send(std::uint64_t, ProcessId,
                                      const Message& msg) override {
    FaultDecision decision;
    if (injected_ >= max_faults_) return decision;
    if (rng_.chance(rates_.drop)) {
      decision.drop = true;
    } else if (rng_.chance(rates_.duplicate)) {
      decision.duplicate = true;
    } else if (rng_.chance(rates_.reorder)) {
      decision.reorder = true;
    } else if (msg.kind == MsgKind::kToken && rng_.chance(rates_.corrupt)) {
      decision.corrupt_to = Label(msg.label.value() + 1);
    }
    if (decision.faulty()) ++injected_;
    return decision;
  }

  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  support::Rng rng_;
  Rates rates_;
  std::uint64_t max_faults_;
  std::uint64_t injected_ = 0;
};

}  // namespace hring::sim
