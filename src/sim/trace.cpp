#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace hring::sim {

void TraceRecorder::on_action(const ExecutionView& view,
                              const ActionEvent& event) {
  if (entries_.size() >= max_entries_) {
    ++dropped_;
    return;
  }
  entries_.push_back(
      Entry{event, view.process(event.pid).debug_state()});
}

void TraceRecorder::print(std::ostream& out) const {
  for (const Entry& e : entries_) {
    out << "[step " << e.event.step << " t=" << e.event.time << "] p"
        << e.event.pid;
    if (!e.event.action.empty()) out << ' ' << e.event.action;
    if (e.event.consumed.has_value()) {
      out << " rcv " << to_string(*e.event.consumed);
    }
    out << " -> " << e.state_after << '\n';
  }
  if (dropped_ > 0) out << "(" << dropped_ << " actions dropped)\n";
}

std::vector<std::pair<std::string, std::uint64_t>>
TraceRecorder::action_census() const {
  std::map<std::string, std::uint64_t> census;
  for (const Entry& e : entries_) ++census[std::string(e.event.action)];
  return {census.begin(), census.end()};
}

}  // namespace hring::sim
