#include "sim/invariants.hpp"

#include "support/assert.hpp"

namespace hring::sim {

void SpecMonitor::on_start(const ExecutionView& view) {
  shadows_.assign(view.process_count(), Shadow{});
  for (ProcessId pid = 0; pid < view.process_count(); ++pid) {
    const Process& p = view.process(pid);
    // The spec requires isLeader and done to start FALSE.
    if (p.is_leader()) report(view, "p" + std::to_string(pid) +
                                        ".isLeader TRUE initially");
    if (p.done()) {
      report(view, "p" + std::to_string(pid) + ".done TRUE initially");
    }
  }
}

void SpecMonitor::on_step_end(const ExecutionView& view) {
  HRING_ASSERT(shadows_.size() == view.process_count());
  std::size_t leaders = 0;
  for (ProcessId pid = 0; pid < view.process_count(); ++pid) {
    const Process& p = view.process(pid);
    Shadow& shadow = shadows_[pid];
    const std::string who = "p" + std::to_string(pid);

    if (p.is_leader()) ++leaders;
    if (shadow.is_leader && !p.is_leader()) {
      report(view, who + ".isLeader reverted TRUE->FALSE");
    }
    if (shadow.done && !p.done()) {
      report(view, who + ".done reverted TRUE->FALSE");
    }
    if (shadow.halted && !p.halted()) {
      report(view, who + " resumed after halting");
    }
    if (p.halted() && !p.done()) {
      report(view, who + " halted before done");
    }
    if (p.done()) {
      if (!p.leader().has_value()) {
        report(view, who + ".done without p.leader set");
      } else {
        if (shadow.done && shadow.leader.has_value() &&
            !(*shadow.leader == *p.leader())) {
          report(view, who + ".leader changed after done");
        }
        // Some current leader must carry the label p believes in.
        bool matched = false;
        for (ProcessId q = 0; q < view.process_count(); ++q) {
          const Process& cand = view.process(q);
          if (cand.is_leader() && cand.id() == *p.leader()) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          report(view, who + ".done but no leader carries label " +
                           words::to_string(*p.leader()));
        }
      }
    }

    shadow.is_leader = p.is_leader();
    shadow.done = p.done();
    shadow.halted = p.halted();
    shadow.leader = p.leader();
  }
  if (leaders > 1) {
    report(view, std::to_string(leaders) + " simultaneous leaders");
  }
}

void SpecMonitor::report(const ExecutionView& view, const std::string& what) {
  if (!first_violation_step_.has_value()) {
    first_violation_step_ = view.current_step();
  }
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back("step " + std::to_string(view.current_step()) +
                          ": " + what);
  }
}

}  // namespace hring::sim
