// Reliable FIFO links (§II).
//
// S(p_i, p_{i+1}) is the ordered list of in-flight messages; send appends at
// the tail, rcv removes the head, nothing is lost or reordered. The
// discrete-event engine additionally stamps each message with its delivery
// time; in the step engine every queued message is immediately receivable.
//
// Storage is a flat ring buffer over one contiguous allocation. The buffer
// only ever grows; reset() rewinds the link to empty while keeping the
// capacity, so a recycled execution (ExecutionCore::reset) replays thousands
// of runs without touching the allocator on the hot path.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/message.hpp"

namespace hring::sim {

class Link {
 public:
  /// Appends `msg` at the tail with the given delivery time (step engine
  /// uses 0: always deliverable). Delivery times must be non-decreasing
  /// along the queue — the engines enforce this to preserve FIFO.
  void push(const Message& msg, double ready_time = 0.0);

  /// Head message, or nullptr when empty. `now` filters messages still in
  /// transit (DES); the default admits everything already queued.
  [[nodiscard]] const Message* head(
      double now = std::numeric_limits<double>::infinity()) const;

  /// Delivery time of the head message. Requires a non-empty link.
  [[nodiscard]] double head_ready_time() const;

  /// Removes and returns the head. Requires a non-empty link.
  Message pop();

  /// Swaps the payloads of the last two queued messages, keeping their
  /// delivery times in place (so per-link delivery stays monotone). Used
  /// only by the fault injector's reorder fault. Requires size() >= 2.
  void swap_last_two_payloads();

  /// Rewinds to the empty state — queue, high-water mark and delivery
  /// clock — without releasing the buffer. ExecutionCore::reset calls this
  /// so recycled executions start from S(p_i, p_{i+1}) = ∅ for free.
  void reset();

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Largest queue length ever observed since the last reset (link-state
  /// space metric).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Delivery time of the most recently pushed message (0 when none yet);
  /// the DES clamps new deliveries to at least this, keeping FIFO order.
  [[nodiscard]] double last_ready_time() const { return last_ready_time_; }

 private:
  struct InFlight {
    Message msg;
    double ready_time;
  };

  /// Buffer slot holding the i-th queued message (0 = head). The capacity
  /// is a power of two, so the wrap is a mask, not a division.
  [[nodiscard]] std::size_t slot(std::size_t i) const {
    return (head_ + i) & (buf_.size() - 1);
  }

  void grow();

  std::vector<InFlight> buf_;  // capacity; always a power of two (or empty)
  std::size_t head_ = 0;       // index of the head message when count_ > 0
  std::size_t count_ = 0;
  std::size_t high_water_ = 0;
  double last_ready_time_ = 0.0;
};

}  // namespace hring::sim
