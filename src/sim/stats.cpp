#include "sim/stats.hpp"

#include "support/json.hpp"

namespace hring::sim {

std::string Stats::summary() const {
  std::string out;
  out += "steps=" + std::to_string(steps);
  out += " actions=" + std::to_string(actions);
  out += " time=" + std::to_string(time_units);
  out += " sent=" + std::to_string(messages_sent);
  out += " recv=" + std::to_string(messages_received);
  out += " peak_space_bits=" + std::to_string(peak_space_bits);
  out += " peak_link=" + std::to_string(peak_link_occupancy);
  return out;
}

void Stats::to_json(support::JsonWriter& json) const {
  json.begin_object();
  json.key("steps").value(steps);
  json.key("actions").value(actions);
  json.key("time_units").value(time_units);
  json.key("messages_sent").value(messages_sent);
  json.key("messages_received").value(messages_received);
  json.key("message_bits_sent").value(message_bits_sent);
  json.key("peak_space_bits")
      .value(static_cast<std::uint64_t>(peak_space_bits));
  json.key("peak_link_occupancy")
      .value(static_cast<std::uint64_t>(peak_link_occupancy));
  json.key("label_comparisons").value(label_comparisons);
  json.key("faults_injected").value(faults_injected);
  json.key("sent_by_kind").begin_object();
  for (std::size_t i = 0; i < kNumMsgKinds; ++i) {
    if (sent_by_kind[i] == 0) continue;
    json.key(kind_name(static_cast<MsgKind>(i))).value(sent_by_kind[i]);
  }
  json.end_object();
  json.key("sent_by_process").begin_array();
  for (const auto count : sent_by_process) json.value(count);
  json.end_array();
  json.key("received_by_process").begin_array();
  for (const auto count : received_by_process) json.value(count);
  json.end_array();
  json.end_object();
}

}  // namespace hring::sim
