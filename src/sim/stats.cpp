#include "sim/stats.hpp"

namespace hring::sim {

std::string Stats::summary() const {
  std::string out;
  out += "steps=" + std::to_string(steps);
  out += " actions=" + std::to_string(actions);
  out += " time=" + std::to_string(time_units);
  out += " sent=" + std::to_string(messages_sent);
  out += " recv=" + std::to_string(messages_received);
  out += " peak_space_bits=" + std::to_string(peak_space_bits);
  out += " peak_link=" + std::to_string(peak_link_occupancy);
  return out;
}

}  // namespace hring::sim
