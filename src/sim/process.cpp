#include "sim/process.hpp"

// Interface-only translation unit; keeps the vtable anchored here.
namespace hring::sim {
static_assert(sizeof(Process) > 0);
}  // namespace hring::sim
