// Plain-text rendering of a running configuration, for the CLI's --watch
// mode and for debugging: one line per process (state, spec flags) and
// one per link (queued messages, oldest first).
//
//   p0 [1]  GROW |string|=4                <- leader
//   p0 -> p1 : <TOKEN,2> <TOKEN,1>
#pragma once

#include <iosfwd>
#include <string>

#include "sim/observer.hpp"

namespace hring::sim {

/// Renders the full configuration visible through `view`.
void render_configuration(const ExecutionView& view, std::ostream& out);

/// One-line summary: "step 17: 2 halted, 1 leader, 5 in flight".
[[nodiscard]] std::string render_summary(const ExecutionView& view);

/// Observer printing the configuration after every step — the CLI's
/// --watch. `every` thins the output (print each `every`-th step).
class WatchObserver final : public Observer {
 public:
  WatchObserver(std::ostream& out, std::uint64_t every = 1)
      : out_(out), every_(every == 0 ? 1 : every) {}

  void on_step_end(const ExecutionView& view) override;

 private:
  std::ostream& out_;
  std::uint64_t every_;
};

}  // namespace hring::sim
