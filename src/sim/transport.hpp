// The Transport seam: one concept under every message-carrying layer.
//
// Four backends move messages between ring neighbors:
//
//   * LinkArray   (this header)        — per-link ring buffers, the scalar
//                                        step/event engines' storage;
//   * LinkPlane   (sim/batch_link.hpp) — one arena for every link of every
//                                        ring in a batch (batch engine);
//   * ChannelRing (runtime/channel.hpp)— mutex+cv blocking channels, the
//                                        threaded stress runtime;
//   * InHostLinks (runtime/inhost/)    — lock-free SPSC *byte* queues with
//                                        messages crossing as wire frames
//                                        (runtime/wire.hpp), the first real
//                                        asynchronous backend.
//
// All four model the §II unidirectional link S(p_i, p_{i+1}) and satisfy
// the Transport concept below: port i carries messages from p_i to
// p_{i+1}, send appends at the tail, try_recv removes the head, peek
// exposes the head for guard evaluation (the model's message-blocking
// rcv), depth is the number of in-flight messages. The seam is static —
// a concept over value types, not a virtual interface — so each engine's
// allocation-free hot path monomorphizes exactly as before.
//
// The concept states the step-engine regime (every queued message is
// receivable). The discrete-event engine additionally stamps per-message
// delivery times through Link's wider interface; a backend may offer more
// than the concept, never less.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <vector>

#include "sim/link.hpp"
#include "sim/message.hpp"
#include "support/assert.hpp"

namespace hring::sim {

/// The unified message-transport concept. `port` indexes the ring's
/// unidirectional links: port i is S(p_i, p_{i+1}).
template <class T>
concept Transport = requires(T t, const T& ct, std::size_t port,
                             const Message& msg) {
  // Appends `msg` at the tail of `port` (may block or apply backpressure
  // policy in concurrent backends).
  { t.send(port, msg) };
  // Removes and returns the head of `port`; nullopt when empty.
  { t.try_recv(port) } -> std::same_as<std::optional<Message>>;
  // Head of `port` without consuming it, nullptr when empty. The pointer
  // stays valid until the next try_recv/send on the same port by the
  // port's consumer (single-consumer discipline).
  { t.peek(port) } -> std::same_as<const Message*>;
  // Number of in-flight messages on `port`.
  { ct.depth(port) } -> std::convertible_to<std::size_t>;
  // Number of ports (= ring size n).
  { ct.ports() } -> std::convertible_to<std::size_t>;
};

/// The scalar engines' transport: one sim::Link per port. A thin owner of
/// the link vector ExecutionCore used to hold inline; the engines keep
/// addressing individual Links (delivery times, high-water marks, fault
/// surgery) through link()/operator[], while sweeps and tests can drive it
/// through the uniform Transport face.
class LinkArray {
 public:
  /// Rebinds to `ports` links, all empty, keeping every buffer's capacity
  /// (Link::reset) — the recycled-execution contract of ExecutionCore.
  void reset(std::size_t ports) {
    if (links_.size() != ports) links_.resize(ports);
    for (Link& link : links_) link.reset();
  }

  [[nodiscard]] Link& operator[](std::size_t port) {
    HRING_EXPECTS(port < links_.size());
    return links_[port];
  }
  [[nodiscard]] const Link& operator[](std::size_t port) const {
    HRING_EXPECTS(port < links_.size());
    return links_[port];
  }

  [[nodiscard]] auto begin() const { return links_.begin(); }
  [[nodiscard]] auto end() const { return links_.end(); }

  // -- Transport face (step-engine regime: delivery time 0) ----------------
  // hring-lint: hot-path
  void send(std::size_t port, const Message& msg) {
    HRING_EXPECTS(port < links_.size());
    links_[port].push(msg);
  }

  // hring-lint: hot-path
  [[nodiscard]] const Message* peek(std::size_t port) const {
    HRING_EXPECTS(port < links_.size());
    return links_[port].head();
  }

  [[nodiscard]] std::optional<Message> try_recv(std::size_t port) {
    HRING_EXPECTS(port < links_.size());
    if (links_[port].empty()) return std::nullopt;
    return links_[port].pop();
  }

  [[nodiscard]] std::size_t depth(std::size_t port) const {
    HRING_EXPECTS(port < links_.size());
    return links_[port].size();
  }

  [[nodiscard]] std::size_t ports() const { return links_.size(); }

 private:
  std::vector<Link> links_;
};

static_assert(Transport<LinkArray>);

}  // namespace hring::sim
