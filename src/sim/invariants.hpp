// Runtime monitor for the leader-election specification (§II, bullets 1-4).
//
// Checked after every configuration step:
//   1. at most one process has isLeader = TRUE, and isLeader never reverts
//      TRUE → FALSE (irrevocability);
//   3. done never reverts; once p.done holds, some process L has
//      isLeader = TRUE with L.id = p.leader, and p.leader never changes
//      afterwards;
//   4. a process only halts after its done is TRUE.
// (Bullet 2 — every p.leader equals the elected label in the terminal
// configuration — is a terminal-state property checked by core::verify.)
//
// The monitor records violations instead of aborting: the impossibility
// experiments (E2) deliberately drive algorithms outside their class and
// observe exactly these violations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace hring::sim {

class SpecMonitor : public Observer {
 public:
  void on_start(const ExecutionView& view) override;
  void on_step_end(const ExecutionView& view) override;

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool violated() const { return !violations_.empty(); }

  /// Step index of the first violation, if any.
  [[nodiscard]] std::optional<std::uint64_t> first_violation_step() const {
    return first_violation_step_;
  }

 private:
  struct Shadow {
    bool is_leader = false;
    bool done = false;
    bool halted = false;
    std::optional<Label> leader;
  };

  void report(const ExecutionView& view, const std::string& what);

  std::vector<Shadow> shadows_;
  std::vector<std::string> violations_;
  std::optional<std::uint64_t> first_violation_step_;
  static constexpr std::size_t kMaxRecorded = 32;
};

}  // namespace hring::sim
