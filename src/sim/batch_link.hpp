// Batched FIFO links: every link of every ring in a batch, one arena.
//
// The batch engine (core/batch_engine.hpp) steps hundreds of independent
// rings at once; giving each of their n links its own heap-backed Link
// would scatter the hot state across allocations. LinkPlane instead packs
// all `links` queues into one contiguous buffer with a fixed power-of-two
// stride per link, plus dense head/count/high-water planes — the same
// ring-buffer semantics as sim::Link (FIFO, capacity-keeping reset,
// high-water tracking), restricted to the step engine's "every queued
// message is deliverable" regime (no per-message delivery times).
//
// The stride only ever grows: when any link outgrows it, the whole plane
// re-lays out at double the stride (cold path, amortized away in recycled
// arenas exactly like Link::grow).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/transport.hpp"
#include "support/assert.hpp"

namespace hring::sim {

class LinkPlane {
 public:
  /// Resizes to `links` queues, all empty, with at least `min_capacity`
  /// slots per link (rounded up to a power of two). Buffers keep their
  /// capacity across reset calls, so recycled arenas stay allocation-free.
  void reset(std::size_t links, std::size_t min_capacity = 8);

  /// Rewinds one link to empty (queue, high-water mark), keeping the
  /// stride — the per-slot recycle when a batch cell completes.
  void reset_link(std::size_t link) {
    HRING_EXPECTS(link < links_);
    head_[link] = 0;
    count_[link] = 0;
    high_[link] = 0;
  }

  [[nodiscard]] std::size_t links() const { return links_; }
  [[nodiscard]] std::size_t capacity() const { return stride_; }

  // hring-lint: hot-path
  [[nodiscard]] bool empty(std::size_t link) const {
    HRING_EXPECTS(link < links_);
    return count_[link] == 0;
  }

  [[nodiscard]] std::size_t size(std::size_t link) const {
    HRING_EXPECTS(link < links_);
    return count_[link];
  }

  /// Largest queue length observed since the link's last reset.
  [[nodiscard]] std::size_t high_water(std::size_t link) const {
    HRING_EXPECTS(link < links_);
    return high_[link];
  }

  /// Head message of `link`, or nullptr when empty. Step-engine semantics:
  /// everything queued is deliverable.
  // hring-lint: hot-path
  [[nodiscard]] const Message* head(std::size_t link) const {
    HRING_EXPECTS(link < links_);
    if (count_[link] == 0) return nullptr;
    return &buf_[link * stride_ + head_[link]];
  }

  /// Appends `msg` at the tail of `link`; grows the stride when full.
  // hring-lint: hot-path
  void push(std::size_t link, const Message& msg) {
    HRING_EXPECTS(link < links_);
    if (count_[link] == stride_) grow();
    buf_[link * stride_ + ((head_[link] + count_[link]) & (stride_ - 1))] =
        msg;
    ++count_[link];
    if (count_[link] > high_[link]) high_[link] = count_[link];
  }

  /// Removes and returns the head of `link`. Requires a non-empty link.
  // hring-lint: hot-path
  Message pop(std::size_t link) {
    HRING_EXPECTS(link < links_);
    HRING_EXPECTS(count_[link] > 0);
    const std::size_t at = link * stride_ + head_[link];
    const Message msg = buf_[at];
    head_[link] = static_cast<std::uint32_t>((head_[link] + 1U) & (stride_ - 1));
    --count_[link];
    if (count_[link] == 0) head_[link] = 0;
    return msg;
  }

  // -- Transport face (sim/transport.hpp) ----------------------------------
  // The arena is port-indexed already; these spell the uniform vocabulary
  // over the same inlined ring-buffer operations.
  // hring-lint: hot-path
  void send(std::size_t link, const Message& msg) { push(link, msg); }

  // hring-lint: hot-path
  [[nodiscard]] const Message* peek(std::size_t link) const {
    return head(link);
  }

  [[nodiscard]] std::optional<Message> try_recv(std::size_t link) {
    if (empty(link)) return std::nullopt;
    return pop(link);
  }

  [[nodiscard]] std::size_t depth(std::size_t link) const {
    return size(link);
  }

  [[nodiscard]] std::size_t ports() const { return links_; }

 private:
  void grow();

  std::vector<Message> buf_;         // links_ * stride_ slots
  std::vector<std::uint32_t> head_;  // index of the head message per link
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> high_;
  std::size_t links_ = 0;
  std::size_t stride_ = 0;  // slots per link; always a power of two
};

static_assert(Transport<LinkPlane>);

}  // namespace hring::sim
