#include "sim/event_engine.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace hring::sim {

EventEngine::EventEngine(const ring::LabeledRing& ring,
                         const ProcessFactory& factory,
                         DelayModel& delay_model, EventConfig config)
    : ExecutionCore(ring, factory),
      delay_model_(&delay_model),
      config_(config) {}

void EventEngine::prepare(const ring::LabeledRing& ring,
                          const ProcessFactory& factory,
                          DelayModel& delay_model, EventConfig config) {
  reset_core(ring, factory);
  delay_model_ = &delay_model;
  config_ = config;
  heap_.clear();
  next_seq_ = 0;
}

void EventEngine::schedule_wake(double time, ProcessId pid) {
  heap_.push_back(Wake{time, next_seq_++, pid});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

// hring-lint: hot-path
std::size_t EventEngine::drain_process(ProcessId pid, double now) {
  std::size_t fired = 0;
  // Delivery time of a message sent at `now`: now + delay, clamped so the
  // link's delivery order stays FIFO. A wake is scheduled for the receiver
  // at that time — one wake per message, so none can be missed.
  const auto send_ready = [this, now](ProcessId from) {
    const double d = delay_model_->delay(from);
    HRING_ASSERT(d > 0.0 && d <= 1.0);
    const double ready =
        std::max(now + d, out_link(from).last_ready_time());
    const ProcessId receiver = from + 1 == process_count() ? 0 : from + 1;
    schedule_wake(ready, receiver);
    return ready;
  };
  for (;;) {
    Process& proc = mutable_process(pid);
    if (proc.halted()) break;
    const Message* head = deliverable_head(pid, now);
    if (!proc.enabled(head)) break;
    fire_process(pid, head, send_ready);
    ++fired;
    if (stats_.actions >= config_.max_actions) break;
  }
  return fired;
}

RunResult EventEngine::run() {
  HRING_EXPECTS(delay_model_ != nullptr);  // bound via ctor or prepare()
  begin_run();
  // The paper's unique no-reception action runs first in all executions:
  // every process gets a wake at time 0.
  for (ProcessId pid = 0; pid < process_count(); ++pid) {
    schedule_wake(0.0, pid);
  }
  while (!heap_.empty()) {
    if (stats_.actions >= config_.max_actions) {
      return make_result(Outcome::kBudgetExhausted);
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Wake wake = heap_.back();
    heap_.pop_back();
    HRING_ASSERT(wake.time >= time_);
    time_ = wake.time;

    if (drain_process(wake.pid, time_) > 0) {
      ++step_;
      stats_.steps = step_;
      stats_.time_units = time_;
      observers_.step_end(*this);
      if (stop_requested()) {
        return make_result(Outcome::kViolation);
      }
    }
  }
  return make_result(terminal_is_clean() ? Outcome::kTerminated
                                         : Outcome::kDeadlock);
}

}  // namespace hring::sim
