#include "runtime/threaded_ring.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "runtime/channel.hpp"
#include "support/assert.hpp"

namespace hring::runtime {
namespace {

using sim::Message;
using sim::Process;
using sim::ProcessId;

/// Shared run state: the channel ring, processes, counters, shutdown flag.
struct Shared {
  std::vector<std::unique_ptr<Process>> procs;
  ChannelRing links;  // port i: p_i -> p_{i+1}
  alignas(64) std::atomic<std::uint64_t> actions{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::size_t> workers_alive{0};
  std::atomic<bool> shutdown{false};
  std::atomic<bool> budget_hit{false};

  [[nodiscard]] Channel& in_channel(ProcessId pid) {
    return links.channel((pid + links.ports() - 1) % links.ports());
  }
  [[nodiscard]] Channel& out_channel(ProcessId pid) {
    return links.channel(pid);
  }

  void kick_all() { links.kick_all(); }
};

/// Context for one firing on a worker thread. Sends take the neighbor's
/// channel lock only — the worker holds no lock while firing, so the
/// ring's lock graph stays acyclic.
class ThreadedContext final : public sim::Context {
 public:
  ThreadedContext(Shared& shared, ProcessId pid)
      : shared_(shared), pid_(pid) {}

  Message consume() override {
    HRING_EXPECTS(!consumed_);
    consumed_ = true;
    shared_.received.fetch_add(1, std::memory_order_relaxed);
    return shared_.in_channel(pid_).pop();
  }

  void send(const Message& msg) override {
    shared_.sent.fetch_add(1, std::memory_order_relaxed);
    // Bounded channel, kBlock policy: a full out-link parks this worker
    // until the neighbor drains — unless the run is shutting down, in
    // which case the send is abandoned (the run's result no longer
    // depends on it; kick_all has already woken every parked waiter).
    const bool pushed = shared_.out_channel(pid_).push(msg, [this] {
      return shared_.shutdown.load(std::memory_order_relaxed);
    });
    if (!pushed) {
      shared_.sent.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void note_action(std::string_view) override {}

 private:
  Shared& shared_;
  ProcessId pid_;
  bool consumed_ = false;
};

void worker_loop(Shared& shared, ProcessId pid,
                 const ThreadedConfig& config) {
  Process& proc = *shared.procs[pid];
  Channel& in = shared.in_channel(pid);
  std::uint64_t fired = 0;
  std::size_t seen_size = 0;
  while (!shared.shutdown.load(std::memory_order_relaxed)) {
    if (proc.halted()) break;
    // Only this thread pops from `in`, so the peeked head remains the
    // head until we consume it ourselves.
    const std::optional<Message> head = in.peek();
    const Message* head_ptr = head.has_value() ? &*head : nullptr;
    if (proc.enabled(head_ptr)) {
      ThreadedContext ctx(shared, pid);
      proc.fire(head_ptr, ctx);
      shared.actions.fetch_add(1, std::memory_order_relaxed);
      if (++fired >= config.max_actions_per_process) {
        shared.budget_hit.store(true, std::memory_order_relaxed);
        shared.shutdown.store(true, std::memory_order_relaxed);
        shared.kick_all();
        break;
      }
      continue;
    }
    // Not enabled: a new message can only matter once the queue length
    // changes (guards see the head; the head changes only when we pop,
    // and an empty queue becomes enabled on arrival). Park.
    seen_size = head.has_value() ? in.size() : 0;
    in.wait_for_change(seen_size, [&] {
      return shared.shutdown.load(std::memory_order_relaxed);
    });
  }
  shared.workers_alive.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace

std::optional<sim::ProcessId> ThreadedResult::leader_pid() const {
  std::optional<sim::ProcessId> found;
  for (const auto& p : processes) {
    if (!p.is_leader) continue;
    if (found.has_value()) return std::nullopt;
    found = p.pid;
  }
  return found;
}

ThreadedResult run_threaded(const ring::LabeledRing& ring,
                            const sim::ProcessFactory& factory,
                            const ThreadedConfig& config) {
  HRING_EXPECTS(factory != nullptr);
  const std::size_t n = ring.size();
  Shared shared;
  shared.procs.reserve(n);
  // Channel capacity: in every algorithm here a link carries O(1)
  // in-flight messages per process at a time; 2n+8 is far above any
  // reachable depth while still bounding a runaway (a bug would hit
  // backpressure, then the watchdog, instead of exhausting memory).
  ChannelConfig channel_config;
  channel_config.capacity =
      config.channel_capacity > 0 ? config.channel_capacity : 2 * n + 8;
  channel_config.policy = Backpressure::kBlock;
  shared.links.reset(n, channel_config);
  for (ProcessId pid = 0; pid < n; ++pid) {
    shared.procs.push_back(factory(pid, ring.label(pid)));
  }
  shared.workers_alive.store(n, std::memory_order_relaxed);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    workers.emplace_back(worker_loop, std::ref(shared), pid,
                         std::cref(config));
  }

  // Watchdog: finished when all workers exited; deadlocked when nothing
  // fired for the quiet period while workers are still parked.
  std::uint64_t last_actions = shared.actions.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    if (shared.workers_alive.load(std::memory_order_acquire) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t now_actions =
        shared.actions.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (now_actions != last_actions) {
      last_actions = now_actions;
      last_progress = now;
      continue;
    }
    if (now - last_progress >
        std::chrono::milliseconds(config.quiet_period_ms)) {
      shared.shutdown.store(true, std::memory_order_relaxed);
      shared.kick_all();
    }
  }
  for (auto& worker : workers) worker.join();

  ThreadedResult result;
  // Workers have joined: these are the final values; relaxed suffices.
  result.actions = shared.actions.load(std::memory_order_relaxed);
  result.messages_sent = shared.sent.load(std::memory_order_relaxed);
  result.messages_received = shared.received.load(std::memory_order_relaxed);

  bool clean = true;
  for (ProcessId pid = 0; pid < n; ++pid) {
    const Process& p = *shared.procs[pid];
    sim::ProcessSnapshot snap;
    snap.pid = p.pid();
    snap.id = p.id();
    snap.is_leader = p.is_leader();
    snap.done = p.done();
    snap.halted = p.halted();
    snap.leader = p.leader();
    snap.debug = p.debug_state();
    result.processes.push_back(std::move(snap));
    if (!p.halted()) clean = false;
    if (shared.links.depth(pid) != 0) clean = false;
  }
  if (shared.budget_hit.load(std::memory_order_relaxed)) {
    result.outcome = sim::Outcome::kBudgetExhausted;
  } else {
    result.outcome =
        clean ? sim::Outcome::kTerminated : sim::Outcome::kDeadlock;
  }
  return result;
}

}  // namespace hring::runtime
