// Simulator ↔ runtime conformance harness.
//
// The in-host runtime (runtime/inhost/) must be *the same algorithm* the
// simulator proves things about — not a lookalike. This harness makes
// that an executable obligation, in three stages:
//
//   1. Reference: run the election in the step engine (synchronous
//      daemon) and record the leader the theory predicts (the ring's
//      true leader for the paper's algorithms).
//   2. Real run: execute the same RingSpec cell on the in-host runtime —
//      real threads, byte frames, OS scheduling.
//   3. Replay + audit: sort the runtime's firing records by their global
//      stamps (a valid sequential schedule — every consumed message was
//      sent by an earlier-stamped firing; see inhost_ring.hpp) and
//      re-execute it in the step engine as singleton steps through
//      ReplayScheduler, with the full spec auditor attached. The audit's
//      obligations (locality, FIFO, message width, Theorem 2/4 space,
//      the §II spec, termination) are thereby checked over the *observed
//      concurrent execution*, and the replayed run's leader, action and
//      message counts must match the runtime's own counters exactly.
//
// A conformance pass therefore certifies: the concurrent execution is a
// linearizable §II execution, its statistics agree with the simulator's
// accounting, and its space stayed within the paper's bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/spec_audit.hpp"
#include "election/algorithm.hpp"
#include "ring/labeled_ring.hpp"
#include "runtime/inhost/inhost_ring.hpp"

namespace hring::runtime {

struct ConformanceConfig {
  /// Runtime knobs for stage 2 (record_trace is forced on).
  InHostConfig inhost;
  /// Require the elected leader to be the ring's true leader — applied
  /// only to algorithms that contractually elect it (A_k and B_k; the
  /// baselines elect *a* leader). Simulator/runtime leader equality is
  /// checked for every algorithm regardless.
  bool check_true_leader = true;
  /// When non-empty, the flight recorder is attached to stage 2 and, if
  /// the check diverges, the forensic report (verdict re-stamped to
  /// "divergence") is written here as hring-forensics/1 JSON. The report
  /// also stays available as inhost.forensics either way.
  std::string flight_out;
};

struct ConformanceReport {
  /// Divergences, each prefixed with its stage ("[replay] ...").
  std::vector<std::string> divergences;
  /// Stage 2's result (the real run).
  InHostResult inhost;
  /// Stage 3's audit over the replayed schedule.
  core::SpecAuditReport audit;
  /// Leader elected by the reference simulator run.
  std::optional<sim::ProcessId> simulator_leader;
  /// Paper bound the runtime's peak space was checked against (unset for
  /// baseline algorithms — the paper states no bound for them).
  std::optional<std::size_t> space_bound_bits;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Runs the three-stage conformance check for `algorithm` on `ring`.
[[nodiscard]] ConformanceReport check_conformance(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const ConformanceConfig& config = {});

}  // namespace hring::runtime
