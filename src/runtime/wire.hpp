// Wire frames: sim::Message serialized for a real transport.
//
// The simulator moves Message values between in-memory queues; the
// in-host runtime (runtime/inhost/) moves *bytes* — each message crosses
// a link as one fixed-size frame, so the runtime exercises the codec
// path a distributed deployment would. The decoder applies the snapshot
// codecs' hardening discipline (tests/election/codec_test.cpp): a frame
// is either accepted bit-exactly or refused with a reason — short reads,
// out-of-range tags, non-canonical payloads and over-wide labels are all
// rejections, never undefined behavior. The mutation tests in
// tests/runtime/wire_test.cpp attack every field.
//
// Layout (17 bytes, little-endian):
//
//   offset 0      kind tag       (1 byte; < sim::kNumMsgKinds)
//   offset 1..8   label payload  (u64; must be 0 for payload-less kinds,
//                                 and fit the ring's label_bits)
//   offset 9..16  send timestamp (u64 nanoseconds; latency telemetry,
//                                 not validated beyond being carried)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/message.hpp"

namespace hring::runtime::wire {

/// Fixed frame size; every message occupies exactly this many bytes.
inline constexpr std::size_t kFrameBytes = 17;

using Frame = std::array<std::uint8_t, kFrameBytes>;

/// Decode outcome; everything but kOk is a hardened rejection.
enum class DecodeError : std::uint8_t {
  kOk,
  kShortFrame,      ///< fewer than kFrameBytes presented
  kBadTag,          ///< kind tag >= sim::kNumMsgKinds
  kNonCanonical,    ///< payload-less kind with a non-zero label field
  kLabelOverflow,   ///< label does not fit the ring's label_bits
};

[[nodiscard]] const char* decode_error_name(DecodeError error);

/// True iff messages of `kind` carry a label payload. ⟨FINISH⟩ is the one
/// payload-less kind; its label field must be zero on the wire
/// (canonical encoding — a mutated payload must not decode as valid).
[[nodiscard]] constexpr bool kind_has_payload(sim::MsgKind kind) {
  return kind != sim::MsgKind::kFinish;
}

/// Encodes `msg` into `out`. `send_ts_ns` is the sender's clock at
/// enqueue time, carried for the receiver's latency histogram.
void encode(const sim::Message& msg, std::uint64_t send_ts_ns, Frame& out);

/// Decodes one frame from `bytes`. On kOk fills `msg` and `send_ts_ns`;
/// on any rejection both outputs are untouched. `label_bits` is the
/// ring's b: a label needing more bits than every ring label is not a
/// message of the model (§II messages carry labels of the ring) and is
/// refused — the runtime analogue of the auditor's [message-width]
/// obligation.
[[nodiscard]] DecodeError decode(std::span<const std::uint8_t> bytes,
                                 std::size_t label_bits, sim::Message& msg,
                                 std::uint64_t& send_ts_ns);

}  // namespace hring::runtime::wire
