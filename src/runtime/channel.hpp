// Blocking FIFO channel between two ring neighbors (threaded runtime).
//
// The §II link, realized with a mutex + condition variable instead of a
// simulated queue. Single consumer (the right neighbor), single producer
// (the left neighbor) — but the implementation tolerates any number of
// producers. Only the consumer pops, so a peeked head stays the head
// until the consumer itself removes it; that property lets the worker
// evaluate guards outside the lock.
//
// Capacity is explicit: every channel is bounded, and a full channel
// applies the configured Backpressure policy — kBlock parks the producer
// until the consumer drains (the default; matches a real bounded pipe),
// kFail refuses the message immediately (for callers that would rather
// count drops than stall). Unbounded growth was the old behavior and is
// deliberately gone: a runaway producer now surfaces as backpressure,
// not as an out-of-memory kill minutes later.
//
// ChannelRing at the bottom arranges n channels into the ring's
// unidirectional links and exposes the sim::Transport face
// (sim/transport.hpp), so the same port vocabulary drives the simulator
// engines and this concurrent backend.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/message.hpp"
#include "sim/transport.hpp"
#include "support/assert.hpp"

namespace hring::runtime {

using sim::Message;

/// What a producer experiences when the channel is full.
enum class Backpressure {
  kBlock,  ///< wait until the consumer makes room (or the push is canceled)
  kFail,   ///< refuse the message immediately; push returns false
};

struct ChannelConfig {
  /// Maximum queued messages. Must be positive — a zero-capacity channel
  /// could never deliver anything (rendezvous is not this channel's model).
  std::size_t capacity = 1024;
  Backpressure policy = Backpressure::kBlock;
};

class Channel {
 public:
  Channel() : Channel(ChannelConfig{}) {}
  explicit Channel(ChannelConfig config) : config_(config) {
    HRING_EXPECTS(config.capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] Backpressure policy() const { return config_.policy; }

  /// Appends a message and wakes the consumer. When full: kFail returns
  /// false at once; kBlock waits until the consumer makes room or
  /// `cancel` returns true (re-checked on every wakeup — pair it with
  /// kick() from the canceling thread). Returns true iff enqueued.
  template <class Cancel>
  [[nodiscard]] bool push(const Message& msg, Cancel cancel) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.size() >= config_.capacity) {
        if (config_.policy == Backpressure::kFail) return false;
        // Parking here is the point of kBlock: backpressure stops the
        // producer until the consumer makes room or cancel() fires.
        cv_.wait(lock, [&] {  // hring-nolint(no-block-in-hot-path): backpressure park
          return queue_.size() < config_.capacity || cancel();
        });
        if (queue_.size() >= config_.capacity) return false;  // canceled
      }
      queue_.push_back(msg);
    }
    cv_.notify_all();
    return true;
  }

  /// Uncancelable push: under kBlock it always succeeds (waiting as long
  /// as it takes); under kFail it returns false when full.
  bool push(const Message& msg) {
    return push(msg, [] { return false; });
  }

  /// Copy of the head message, if any.
  [[nodiscard]] std::optional<Message> peek() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    return queue_.front();
  }

  /// Removes and returns the head. Requires a non-empty channel (the
  /// consumer just peeked it; nobody else pops). The precondition is
  /// checked under the lock: popping an empty deque is UB that would
  /// otherwise corrupt the queue silently instead of failing the
  /// sanitizer runs loudly.
  Message pop() {
    Message msg = [&] {
      const std::lock_guard<std::mutex> lock(mutex_);
      HRING_EXPECTS(!queue_.empty());
      const Message front = queue_.front();
      queue_.pop_front();
      return front;
    }();
    // Wake producers parked on a full channel (and size-change waiters).
    cv_.notify_all();
    return msg;
  }

  /// Blocks until the queue length differs from `seen_size` or `wake`
  /// returns true. Returns the current length.
  template <class Predicate>
  std::size_t wait_for_change(std::size_t seen_size, Predicate wake) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [&] { return queue_.size() != seen_size || wake(); });
    return queue_.size();
  }

  /// Wakes any waiter (used for shutdown and push cancellation).
  void kick() { cv_.notify_all(); }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  ChannelConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// The threaded backend's transport: n blocking channels arranged as the
/// ring's links, port i = S(p_i, p_{i+1}). Satisfies sim::Transport; the
/// concurrent caveats are inherited from Channel — send applies the
/// configured backpressure policy, and peek's returned pointer (into a
/// per-port scratch slot) obeys the single-consumer discipline the
/// concept states: it stays valid until the port's consumer next calls
/// try_recv/peek on that port.
class ChannelRing {
 public:
  /// Rebinds to `ports` channels, all empty, each with `config`'s
  /// capacity and policy.
  void reset(std::size_t ports, ChannelConfig config = {}) {
    channels_.clear();
    channels_.reserve(ports);
    for (std::size_t i = 0; i < ports; ++i) {
      channels_.push_back(std::make_unique<Channel>(config));
    }
    peek_scratch_.assign(ports, std::nullopt);
  }

  [[nodiscard]] Channel& channel(std::size_t port) {
    HRING_EXPECTS(port < channels_.size());
    return *channels_[port];
  }
  [[nodiscard]] const Channel& channel(std::size_t port) const {
    HRING_EXPECTS(port < channels_.size());
    return *channels_[port];
  }

  /// Wakes every waiter on every channel (shutdown broadcast).
  void kick_all() const {
    for (const auto& channel : channels_) channel->kick();
  }

  // -- Transport face (sim/transport.hpp) ----------------------------------
  /// Uncancelable send; kBlock waits for room, kFail may drop (the
  /// transport face has no drop-reporting — runtime callers that must
  /// distinguish use channel(port).push(msg, cancel) directly).
  void send(std::size_t port, const Message& msg) {
    HRING_EXPECTS(port < channels_.size());
    (void)channels_[port]->push(msg);
  }

  [[nodiscard]] const Message* peek(std::size_t port) {
    HRING_EXPECTS(port < channels_.size());
    peek_scratch_[port] = channels_[port]->peek();
    if (!peek_scratch_[port].has_value()) return nullptr;
    return &*peek_scratch_[port];
  }

  [[nodiscard]] std::optional<Message> try_recv(std::size_t port) {
    HRING_EXPECTS(port < channels_.size());
    if (!channels_[port]->peek().has_value()) return std::nullopt;
    // Single consumer: the head we just saw is still the head.
    return channels_[port]->pop();
  }

  [[nodiscard]] std::size_t depth(std::size_t port) const {
    HRING_EXPECTS(port < channels_.size());
    return channels_[port]->size();
  }

  [[nodiscard]] std::size_t ports() const { return channels_.size(); }

 private:
  std::vector<std::unique_ptr<Channel>> channels_;
  /// Per-port peek scratch: peek() must hand out a pointer, Channel::peek
  /// returns by value (the head lives behind the lock). Each slot is only
  /// touched by its port's single consumer.
  std::vector<std::optional<Message>> peek_scratch_;
};

static_assert(sim::Transport<ChannelRing>);

}  // namespace hring::runtime
