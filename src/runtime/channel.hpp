// Blocking FIFO channel between two ring neighbors (threaded runtime).
//
// The §II link, realized with a mutex + condition variable instead of a
// simulated queue. Single consumer (the right neighbor), single producer
// (the left neighbor) — but the implementation tolerates any number of
// producers. Only the consumer pops, so a peeked head stays the head
// until the consumer itself removes it; that property lets the worker
// evaluate guards outside the lock.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "sim/message.hpp"
#include "support/assert.hpp"

namespace hring::runtime {

using sim::Message;

class Channel {
 public:
  /// Appends a message and wakes the consumer.
  void push(const Message& msg) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(msg);
    }
    cv_.notify_all();
  }

  /// Copy of the head message, if any.
  [[nodiscard]] std::optional<Message> peek() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    return queue_.front();
  }

  /// Removes and returns the head. Requires a non-empty channel (the
  /// consumer just peeked it; nobody else pops). The precondition is
  /// checked under the lock: popping an empty deque is UB that would
  /// otherwise corrupt the queue silently instead of failing the
  /// sanitizer runs loudly.
  Message pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    HRING_EXPECTS(!queue_.empty());
    const Message msg = queue_.front();
    queue_.pop_front();
    return msg;
  }

  /// Blocks until the queue length differs from `seen_size` or `wake`
  /// returns true. Returns the current length.
  template <class Predicate>
  std::size_t wait_for_change(std::size_t seen_size, Predicate wake) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [&] { return queue_.size() != seen_size || wake(); });
    return queue_.size();
  }

  /// Wakes any waiter (used for shutdown).
  void kick() { cv_.notify_all(); }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace hring::runtime
