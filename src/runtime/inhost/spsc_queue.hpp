// Lock-free single-producer/single-consumer byte queue.
//
// The in-host runtime's unidirectional link: the left neighbor's worker
// thread writes wire frames (runtime/wire.hpp) at the tail, the right
// neighbor's worker reads them at the head, and nobody ever takes a
// lock — progress is wait-free on both sides (a full/empty queue makes
// try_write/try_read return false; parking policy lives in the caller,
// see Backoff below).
//
// Correctness is the classic Lamport ring buffer with C++11 orderings:
// head_ is written only by the consumer, tail_ only by the producer;
// each side reads its own index relaxed and the opposite index acquire,
// and publishes its update with release. The release store of tail_
// after the buffer write is what makes the consumer's acquire load see
// complete frames — the byte copy happens-before the index publication.
// Indices increase monotonically and are masked on access (capacity is a
// power of two), so wraparound is free and a u64 cannot overflow in any
// realistic run.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace hring::runtime {

class SpscByteQueue {
 public:
  /// `capacity` in bytes; rounded up to a power of two, minimum 64.
  explicit SpscByteQueue(std::size_t capacity) {
    HRING_EXPECTS(capacity > 0);
    std::size_t cap = 64;
    while (cap < capacity) cap *= 2;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Bytes currently queued, as seen by the consumer (exact for the
  /// consumer; a lower bound for anyone else — the producer may be
  /// mid-publication).
  // hring-lint: hot-path
  // hring-role: consumer
  [[nodiscard]] std::size_t readable() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_relaxed);
  }

  /// Free space, as seen by the producer (exact for the producer).
  // hring-lint: hot-path
  // hring-role: producer
  [[nodiscard]] std::size_t writable() const {
    return buf_.size() - (tail_.load(std::memory_order_relaxed) -
                          head_.load(std::memory_order_acquire));
  }

  /// Producer side: appends all `len` bytes or nothing. Returns false
  /// when fewer than `len` bytes are free.
  // hring-lint: hot-path
  // hring-role: producer
  [[nodiscard]] bool try_write(const std::uint8_t* data, std::size_t len) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (buf_.size() - static_cast<std::size_t>(tail - head) < len) {
      return false;
    }
    for (std::size_t i = 0; i < len; ++i) {
      buf_[static_cast<std::size_t>(tail + i) & mask_] = data[i];
    }
    tail_.store(tail + len, std::memory_order_release);
    return true;
  }

  /// Consumer side: copies the next `len` bytes into `out` without
  /// consuming them. Returns false when fewer than `len` are queued.
  /// Only the consumer may call this (it reads at head_).
  // hring-lint: hot-path
  // hring-role: consumer
  [[nodiscard]] bool try_peek(std::uint8_t* out, std::size_t len) const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (static_cast<std::size_t>(tail - head) < len) return false;
    for (std::size_t i = 0; i < len; ++i) {
      out[i] = buf_[static_cast<std::size_t>(head + i) & mask_];
    }
    return true;
  }

  /// Consumer side: removes and copies the next `len` bytes, or nothing.
  // hring-lint: hot-path
  // hring-role: consumer
  [[nodiscard]] bool try_read(std::uint8_t* out, std::size_t len) {
    if (!try_peek(out, len)) return false;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    head_.store(head + len, std::memory_order_release);
    return true;
  }

  /// Consumer side: drops `len` bytes already seen via try_peek.
  // hring-lint: hot-path
  // hring-role: consumer
  void discard(std::size_t len) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    HRING_EXPECTS(static_cast<std::size_t>(
                      tail_.load(std::memory_order_acquire) - head) >= len);
    head_.store(head + len, std::memory_order_release);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t mask_ = 0;
  /// Producer and consumer indices on their own cache lines: the tight
  /// SPSC loop would otherwise ping-pong one line between two cores.
  // hring-shared: consumer->producer
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // hring-shared: producer->consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/// Default parking hooks for BasicBackoff: real scheduler yields and
/// real sleeps. Tests inject a recording policy instead to pin down the
/// exact escalation thresholds without wall-clock time.
struct ThreadPark {
  static void yield() {
    // The ladder's yield rung is the parking policy itself, not a stall
    // on a hot path.
    std::this_thread::yield();  // hring-nolint(no-block-in-hot-path): ladder rung
  }
  static void sleep_us(std::uint32_t us) {
    // Same: the sleep rung is deliberate de-scheduling.
    std::this_thread::sleep_for(std::chrono::microseconds(us));  // hring-nolint(no-block-in-hot-path): ladder rung
  }
};

/// Adaptive parking for queue-full / queue-empty waits: spin briefly
/// (the common case resolves in nanoseconds), then yield, then sleep —
/// at 1000 workers per host the sleepers keep the run from melting the
/// scheduler while the spin phase keeps small rings fast.
///
/// `Park` supplies the two escalation primitives (see ThreadPark); the
/// ladder logic itself is deterministic and unit-testable.
template <class Park = ThreadPark>
class BasicBackoff {
 public:
  static constexpr std::uint32_t kSpinLimit = 64;
  static constexpr std::uint32_t kYieldLimit = 64;
  static constexpr std::uint32_t kSleepStartUs = 50;
  static constexpr std::uint32_t kSleepCapUs = 2000;

  // hring-lint: hot-path
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      return;
    }
    if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      Park::yield();
      return;
    }
    // Doubling sleep, capped: long-idle workers (a 1000-ring process
    // waiting for a token half the ring away) stop burning scheduler
    // time, while a fresh waiter still reacts within microseconds.
    Park::sleep_us(sleep_us_);
    sleep_us_ = std::min(sleep_us_ * 2, kSleepCapUs);
  }

  void reset() {
    spins_ = 0;
    sleep_us_ = kSleepStartUs;
  }

  /// True once the spin and yield phases are spent — the caller should
  /// switch to real blocking (doorbell futex) instead of sleeping.
  [[nodiscard]] bool exhausted() const {
    return spins_ >= kSpinLimit + kYieldLimit;
  }

 private:
  std::uint32_t spins_ = 0;
  std::uint32_t sleep_us_ = kSleepStartUs;
};

using Backoff = BasicBackoff<>;

}  // namespace hring::runtime
