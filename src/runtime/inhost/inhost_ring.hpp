// The first real ring runtime: one OS thread per process, lock-free SPSC
// byte links, messages as hardened wire frames.
//
// Where runtime/threaded_ring.hpp demonstrates the algorithms on mutex
// channels, this backend is the deployment-shaped one: a membership
// bootstrap (join → set_next → start_election) brings the ring up, the
// data plane is runtime/inhost/inhost_links.hpp (no locks, no in-memory
// Message hand-off — every message is encoded to bytes and decoded back),
// workers emit liveness beats, and a watchdog declares deadlock after a
// quiet period exactly like the threaded runtime.
//
// Every firing is stamped from one global sequence counter *before* it
// consumes or sends. If firing B consumes a message sent by firing A,
// A's stamp happens-before B's (A's stamp is sequenced before its
// release-publication of the frame; B's acquire-read of the frame is
// sequenced before B's stamp; RMW coherence then orders the stamps), so
// sorting the firing records by stamp yields a sequential schedule every
// consumed message precedes — the linearization the conformance harness
// (runtime/conformance.hpp) replays through the step engine and audits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "runtime/inhost/forensics.hpp"
#include "sim/engine.hpp"
#include "sim/run_result.hpp"
#include "telemetry/metrics.hpp"

namespace hring::runtime {

class InHostLinks;

struct InHostConfig {
  /// Per-process firing budget (livelock guard).
  std::uint64_t max_actions_per_process = 1'000'000;
  /// Watchdog quiet period (milliseconds of global inactivity) before a
  /// stalled run is declared deadlocked. Treated as a floor: the runtime
  /// raises it to 4ms × n so that scheduling latency on an oversubscribed
  /// host is never mistaken for a deadlock.
  std::uint64_t quiet_period_ms = 500;
  /// Per-link queue capacity in bytes; 0 picks the default (enough for
  /// 4n+16 frames). A full link backpressures the sender (adaptive
  /// spin/yield/sleep, canceled by shutdown).
  std::size_t queue_capacity_bytes = 0;
  /// Record (seq, pid) firing records for conformance replay. Costs one
  /// vector push per firing; disable for pure throughput runs.
  bool record_trace = true;
  /// Attach the per-thread flight recorder (telemetry/flight_recorder.hpp).
  /// Recording costs a few relaxed stores per loop event; on watchdog
  /// stall or run completion the rings are merged into
  /// InHostResult::forensics.
  bool flight_recorder = false;
  /// Retained events per thread when the recorder is attached (rounded up
  /// to a power of two; the ring overwrites its oldest beyond this).
  std::size_t flight_capacity = 256;
  /// Test hook: invoked with the sized data plane before any worker
  /// starts — the wire-path mutation tests pre-seed corrupted frames
  /// here. Election code never sets this.
  std::function<void(InHostLinks&)> pre_start_poke;
  /// Test hook: each worker calls this right after the election starts,
  /// before its first firing; the second argument polls the shutdown
  /// flag. The injected-stall forensics tests wedge a worker here (spin
  /// on the poll without beating). Election code never sets this.
  std::function<void(sim::ProcessId, const std::function<bool()>&)>
      post_start_hook;
};

/// One firing, stamped by the global sequence counter at firing start.
struct FiringRecord {
  std::uint64_t seq = 0;
  sim::ProcessId pid = 0;
};

struct InHostResult {
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::vector<sim::ProcessSnapshot> processes;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t actions = 0;
  /// Frames the hardened decoder refused (0 on healthy links; mutation
  /// tests inject and count them here).
  std::uint64_t wire_rejects = 0;
  /// Sends abandoned because shutdown arrived while backpressured.
  std::uint64_t sends_abandoned = 0;
  /// Peak per-process space over the run, in bits (Theorem 2/4 metric).
  std::size_t peak_space_bits = 0;
  /// Wall-clock duration of the election (start_election to last worker
  /// exit), in nanoseconds.
  std::uint64_t elapsed_ns = 0;
  /// Merged per-worker telemetry: inhost_message_latency_ns histogram,
  /// reject/abandon counters.
  telemetry::MetricsRegistry metrics;
  /// Firing records sorted by seq (empty unless config.record_trace).
  std::vector<FiringRecord> trace;
  /// Present iff config.flight_recorder: the merged per-thread flight
  /// rings plus the watchdog's verdict. Collected at stall-detection time
  /// (before workers are woken for shutdown, so the park picture is the
  /// stall picture) or, on a clean finish, after the workers join.
  std::optional<ForensicReport> forensics;

  /// The unique leader's pid, if exactly one process has isLeader.
  [[nodiscard]] std::optional<sim::ProcessId> leader_pid() const;
};

/// Runs one election on the in-host runtime. Blocks until the run
/// finishes. Spawns ring.size() worker threads plus a watchdog.
[[nodiscard]] InHostResult run_inhost(const ring::LabeledRing& ring,
                                      const sim::ProcessFactory& factory,
                                      const InHostConfig& config = {});

}  // namespace hring::runtime
