#include "runtime/inhost/forensics.hpp"

#include <algorithm>
#include <optional>
#include <ostream>
#include <string>

#include "runtime/inhost/inhost_links.hpp"
#include "runtime/inhost/membership.hpp"
#include "support/json.hpp"
#include "telemetry/trace_writer.hpp"

namespace hring::runtime {
namespace {

using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::flight_event_kind_name;

/// The flight trace renders worker tracks under one trace-pid group.
constexpr int kFlightWorkerGroup = 1;

/// Width of the thin "send"/"recv"/"wake" slices, microseconds: wide
/// enough for Perfetto to bind flow arrows to them, narrow enough to read
/// as point events.
constexpr double kThinSliceUs = 1.0;

[[nodiscard]] double to_micros(std::uint64_t ts_ns, std::uint64_t base_ns) {
  return static_cast<double>(ts_ns - base_ns) / 1000.0;
}

/// Flow ids tie one frame's send, doorbell wake, and recv together:
/// "<link port>:<send_ts_ns>". The sender's out-port and the receiver's
/// in-port are the same link, so both sides compute the same id.
[[nodiscard]] std::string flow_id(std::size_t port, std::uint64_t send_ts) {
  return std::to_string(port) + ":" + std::to_string(send_ts);
}

void flow_event(telemetry::TraceEventWriter& trace, const char* ph,
                double ts_micros, std::uint64_t tid, const std::string& id) {
  support::JsonWriter& json =
      trace.begin_event("msg", ph, ts_micros, kFlightWorkerGroup, tid);
  json.key("cat").value("flow");
  json.key("id").value(id);
  if (ph[0] == 'f') json.key("bp").value("e");
  trace.end_event();
}

void thin_slice(telemetry::TraceEventWriter& trace, const char* name,
                double ts_micros, std::uint64_t tid, std::uint64_t arg) {
  support::JsonWriter& json =
      trace.begin_event(name, "X", ts_micros, kFlightWorkerGroup, tid);
  json.key("dur").value(kThinSliceUs);
  json.key("cat").value("event");
  json.key("args").begin_object();
  json.key("arg").value(arg);
  json.end_object();
  trace.end_event();
}

void span_slice(telemetry::TraceEventWriter& trace, const char* name,
                double begin_micros, double end_micros, std::uint64_t tid,
                bool unresolved) {
  support::JsonWriter& json = trace.begin_event(
      name, "X", begin_micros, kFlightWorkerGroup, tid);
  json.key("dur").value(std::max(0.0, end_micros - begin_micros));
  json.key("cat").value("state");
  json.key("args").begin_object();
  json.key("unresolved").value(unresolved);
  json.end_object();
  trace.end_event();
}

void instant(telemetry::TraceEventWriter& trace, const char* name,
             double ts_micros, std::uint64_t tid, std::uint64_t arg) {
  support::JsonWriter& json =
      trace.begin_event(name, "i", ts_micros, kFlightWorkerGroup, tid);
  json.key("s").value("t");
  json.key("cat").value("event");
  json.key("args").begin_object();
  json.key("arg").value(arg);
  json.end_object();
  trace.end_event();
}

}  // namespace

const char* ForensicThread::last_event_name() const {
  if (events.empty()) return "none";
  return flight_event_kind_name(events.back().kind);
}

std::string ForensicReport::summary() const {
  std::string line = verdict;
  if (!wedged.empty()) {
    line += ":";
    for (const sim::ProcessId pid : wedged) {
      const ForensicThread& thread = threads[pid];
      line += " p" + std::to_string(pid) + " wedged (last event: " +
              thread.last_event_name() + ")";
    }
  } else if (verdict == "stall") {
    line += ": all threads parked (protocol-level deadlock)";
  }
  std::size_t parked = 0;
  std::size_t exited = 0;
  for (const ForensicThread& thread : threads) {
    parked += thread.parked ? 1 : 0;
    exited += thread.exited ? 1 : 0;
  }
  line += "; " + std::to_string(parked) + "/" +
          std::to_string(threads.size()) + " parked, " +
          std::to_string(exited) + "/" + std::to_string(threads.size()) +
          " exited";
  return line;
}

ForensicReport collect_forensics(const telemetry::FlightRecorder& recorder,
                                 const InHostLinks& links,
                                 const RingMembership& membership,
                                 std::string verdict, std::uint64_t quiet_ms,
                                 const ForensicCounters& counters) {
  HRING_EXPECTS(recorder.attached());
  const std::size_t n = recorder.threads();
  ForensicReport report;
  report.verdict = std::move(verdict);
  report.quiet_ms = quiet_ms;
  report.collected_at_ns = monotonic_ns();
  report.counters = counters;
  report.threads.reserve(n);
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    const std::size_t in_port = (pid + n - 1) % n;
    ForensicThread thread;
    thread.pid = pid;
    thread.beats = membership.beats(pid);
    thread.events = recorder.ring(pid).snapshot();
    thread.events_recorded = recorder.ring(pid).recorded();
    thread.events_dropped = thread.events_recorded - thread.events.size();
    thread.in_depth = links.depth(in_port);
    thread.out_depth = links.depth(pid);
    thread.in_pending_bytes = links.pending_bytes(in_port);
    thread.wire_rejects = links.rejects(in_port);
    if (!thread.events.empty()) {
      const FlightEventKind last = thread.events.back().kind;
      thread.parked = last == FlightEventKind::kPark;
      thread.exited = last == FlightEventKind::kExit;
    }
    if (!thread.parked && !thread.exited) report.wedged.push_back(pid);
    report.threads.push_back(std::move(thread));
  }
  return report;
}

void write_forensics_json(std::ostream& out, const ForensicReport& report) {
  support::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hring-forensics/1");
  json.key("verdict").value(report.verdict);
  json.key("summary").value(report.summary());
  json.key("quiet_ms").value(report.quiet_ms);
  json.key("collected_at_ns").value(report.collected_at_ns);
  json.key("counters").begin_object();
  json.key("actions").value(report.counters.actions);
  json.key("messages_sent").value(report.counters.messages_sent);
  json.key("messages_received").value(report.counters.messages_received);
  json.key("wire_rejects").value(report.counters.wire_rejects);
  json.end_object();
  json.key("wedged").begin_array();
  for (const sim::ProcessId pid : report.wedged) {
    json.value(static_cast<std::uint64_t>(pid));
  }
  json.end_array();
  json.key("threads").begin_array();
  for (const ForensicThread& thread : report.threads) {
    json.begin_object();
    json.key("pid").value(static_cast<std::uint64_t>(thread.pid));
    json.key("beats").value(thread.beats);
    json.key("events_recorded").value(thread.events_recorded);
    json.key("events_dropped").value(thread.events_dropped);
    json.key("in_depth").value(thread.in_depth);
    json.key("out_depth").value(thread.out_depth);
    json.key("in_pending_bytes").value(thread.in_pending_bytes);
    json.key("wire_rejects").value(thread.wire_rejects);
    json.key("parked").value(thread.parked);
    json.key("exited").value(thread.exited);
    json.key("last_event").value(thread.last_event_name());
    json.key("events").begin_array();
    for (const FlightEvent& event : thread.events) {
      json.begin_object();
      json.key("ts_ns").value(event.ts_ns);
      json.key("kind").value(flight_event_kind_name(event.kind));
      json.key("arg").value(event.arg);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

void write_flight_trace_json(std::ostream& out,
                             const ForensicReport& report) {
  telemetry::TraceEventWriter trace(out);
  const std::size_t n = report.threads.size();

  // Normalize timestamps so the trace starts at 0 even though the clock
  // is raw monotonic nanoseconds.
  std::uint64_t base_ns = report.collected_at_ns;
  for (const ForensicThread& thread : report.threads) {
    for (const FlightEvent& event : thread.events) {
      base_ns = std::min(base_ns, event.ts_ns);
    }
  }
  const double end_micros = to_micros(report.collected_at_ns, base_ns);

  trace.name_group(kFlightWorkerGroup, "workers (" + report.verdict + ")");
  for (const ForensicThread& thread : report.threads) {
    std::string label = "p" + std::to_string(thread.pid);
    if (std::find(report.wedged.begin(), report.wedged.end(), thread.pid) !=
        report.wedged.end()) {
      label += " [WEDGED]";
    }
    trace.name_track(kFlightWorkerGroup, thread.pid, label);
  }

  for (const ForensicThread& thread : report.threads) {
    const std::uint64_t tid = thread.pid;
    const std::size_t in_port = (thread.pid + n - 1) % n;
    const std::size_t out_port = thread.pid;
    // Open park/backoff intervals, closed by the matching wake/park (or
    // by the collection edge when the run died inside one).
    std::optional<double> backoff_begin;
    std::optional<double> park_begin;
    // The doorbell wake whose causing frame hasn't been received yet: the
    // first recv after a wake closes the send → wake → recv flow chain.
    std::optional<double> pending_wake;
    for (const FlightEvent& event : thread.events) {
      const double ts = to_micros(event.ts_ns, base_ns);
      switch (event.kind) {
        case FlightEventKind::kSend: {
          thin_slice(trace, "send", ts, tid, event.arg);
          flow_event(trace, "s", ts, tid, flow_id(out_port, event.arg));
          break;
        }
        case FlightEventKind::kRecv: {
          thin_slice(trace, "recv", ts, tid, event.arg);
          const std::string id = flow_id(in_port, event.arg);
          if (pending_wake.has_value()) {
            // Attribute the wake to this frame: the frame at the head
            // right after waking is the one whose publication rang the
            // doorbell.
            flow_event(trace, "t", *pending_wake, tid, id);
            pending_wake.reset();
          }
          flow_event(trace, "f", ts, tid, id);
          break;
        }
        case FlightEventKind::kBackoffEscalate: {
          backoff_begin = ts;
          break;
        }
        case FlightEventKind::kPark: {
          if (backoff_begin.has_value()) {
            span_slice(trace, "backoff", *backoff_begin, ts, tid, false);
            backoff_begin.reset();
          }
          park_begin = ts;
          break;
        }
        case FlightEventKind::kDoorbellWake: {
          if (park_begin.has_value()) {
            span_slice(trace, "parked", *park_begin, ts, tid, false);
            park_begin.reset();
          }
          thin_slice(trace, "wake", ts, tid, event.arg);
          pending_wake = ts;
          break;
        }
        case FlightEventKind::kFire:
        case FlightEventKind::kJoin:
        case FlightEventKind::kStart:
        case FlightEventKind::kWireReject:
        case FlightEventKind::kBeat:
        case FlightEventKind::kHalt:
        case FlightEventKind::kExit: {
          instant(trace, flight_event_kind_name(event.kind), ts, tid,
                  event.arg);
          break;
        }
      }
    }
    // A thread that died parked (the normal stall picture) or mid-backoff
    // renders as a span running to the collection edge.
    if (park_begin.has_value()) {
      span_slice(trace, "parked", *park_begin, end_micros, tid, true);
    }
    if (backoff_begin.has_value()) {
      span_slice(trace, "backoff", *backoff_begin, end_micros, tid, true);
    }
    // Queue depth at collection time, as a counter sample per track.
    support::JsonWriter& json = trace.begin_event(
        "in_depth p" + std::to_string(thread.pid), "C", end_micros,
        kFlightWorkerGroup, tid);
    json.key("args").begin_object();
    json.key("frames").value(thread.in_depth);
    json.end_object();
    trace.end_event();
  }

  trace.finish(out);
}

}  // namespace hring::runtime
