#include "runtime/inhost/inhost_ring.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "runtime/inhost/inhost_links.hpp"
#include "runtime/inhost/membership.hpp"
#include "support/assert.hpp"
#include "telemetry/flight_recorder.hpp"

namespace hring::runtime {
namespace {

using sim::Message;
using sim::Process;
using sim::ProcessId;
using telemetry::FlightEventKind;
using telemetry::FlightRing;

/// Flight-recorder store, skipped entirely when detached (`ring` null).
// hring-lint: hot-path
void rec(FlightRing* ring, FlightEventKind kind, std::uint64_t arg) {
  if (ring != nullptr) ring->record(kind, arg);
}

/// Latency histogram bucket edges, nanoseconds (decade scale: an in-host
/// hop lands in the 100ns..100µs range; the tails catch scheduler noise).
constexpr std::array<double, 8> kLatencyEdgesNs = {
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};

/// Shared run state.
struct Shared {
  std::vector<std::unique_ptr<Process>> procs;
  InHostLinks links;  // port i: p_i -> p_{i+1}
  RingMembership membership;
  /// Detached unless config.flight_recorder; each worker writes only its
  /// own ring (telemetry/flight_recorder.hpp's single-writer discipline).
  telemetry::FlightRecorder flight;
  alignas(64) std::atomic<std::uint64_t> seq{0};  // global firing stamps
  alignas(64) std::atomic<std::uint64_t> actions{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::size_t> workers_alive{0};
  std::atomic<bool> shutdown{false};
  std::atomic<bool> budget_hit{false};

  explicit Shared(std::size_t n) : membership(n) {}

  [[nodiscard]] std::size_t in_port(ProcessId pid) const {
    return (pid + links.ports() - 1) % links.ports();
  }
  [[nodiscard]] std::size_t out_port(ProcessId pid) const { return pid; }

  [[nodiscard]] bool shutting_down() const {
    return shutdown.load(std::memory_order_relaxed);
  }
};

/// Per-worker private state, merged by the main thread after join.
struct WorkerLocal {
  telemetry::MetricsRegistry metrics;
  std::vector<FiringRecord> trace;
  std::size_t peak_space_bits = 0;
  std::uint64_t fired = 0;
};

/// Context for one firing on an in-host worker: consume pops the peeked
/// wire frame (recording its latency), send encodes onto the out-queue
/// with shutdown-cancelable backpressure.
class InHostContext final : public sim::Context {
 public:
  InHostContext(Shared& shared, WorkerLocal& local,
                telemetry::HistogramId latency_hist, ProcessId pid,
                FlightRing* flight)
      : shared_(shared),
        local_(local),
        latency_hist_(latency_hist),
        pid_(pid),
        flight_(flight) {}

  Message consume() override {
    HRING_EXPECTS(!consumed_);
    consumed_ = true;
    std::uint64_t send_ts_ns = 0;
    const Message msg =
        shared_.links.recv_peeked(shared_.in_port(pid_), send_ts_ns);
    rec(flight_, FlightEventKind::kRecv, send_ts_ns);
    const std::uint64_t now = monotonic_ns();
    local_.metrics.record(
        latency_hist_,
        static_cast<double>(now >= send_ts_ns ? now - send_ts_ns : 0));
    shared_.received.fetch_add(1, std::memory_order_relaxed);
    return msg;
  }

  void send(const Message& msg) override {
    std::uint64_t send_ts_ns = 0;
    const bool pushed = shared_.links.send_cancelable(
        shared_.out_port(pid_), msg,
        [this] { return shared_.shutting_down(); }, &send_ts_ns);
    if (pushed) {
      rec(flight_, FlightEventKind::kSend, send_ts_ns);
      shared_.sent.fetch_add(1, std::memory_order_relaxed);
    } else {
      shared_.abandoned.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void note_action(std::string_view) override {}

 private:
  Shared& shared_;
  WorkerLocal& local_;
  telemetry::HistogramId latency_hist_;
  ProcessId pid_;
  FlightRing* flight_;
  bool consumed_ = false;
};

void worker_loop(Shared& shared, WorkerLocal& local, ProcessId pid,
                 const InHostConfig& config, std::size_t label_bits) {
  FlightRing* flight =
      shared.flight.attached() ? &shared.flight.ring(pid) : nullptr;
  // Bootstrap: announce, then hold until the control plane starts the
  // election (or aborts the run).
  rec(flight, FlightEventKind::kJoin, pid);
  shared.membership.join(pid);
  if (!shared.membership.await_start(
          [&] { return shared.shutting_down(); })) {
    rec(flight, FlightEventKind::kExit, 0);
    shared.workers_alive.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  rec(flight, FlightEventKind::kStart, 0);
  if (config.post_start_hook) {
    config.post_start_hook(pid, [&] { return shared.shutting_down(); });
  }

  Process& proc = *shared.procs[pid];
  const telemetry::HistogramId latency_hist = local.metrics.histogram(
      "inhost_message_latency_ns",
      std::span<const double>(kLatencyEdgesNs));
  const std::size_t in_port = shared.in_port(pid);
  local.peak_space_bits = proc.space_bits(label_bits);  // initial space
  Backoff backoff;
  // Event coalescing: one kBeat per idle spell (not per loop iteration —
  // that would flush the whole ring between firings) and one
  // kBackoffEscalate per ladder exhaustion.
  std::uint64_t rejects_seen = shared.links.rejects(in_port);
  bool beat_recorded = false;
  bool escalation_recorded = false;

  while (!shared.shutting_down()) {
    if (proc.halted()) {
      rec(flight, FlightEventKind::kHalt, 0);
      break;
    }
    // Single consumer of in_port: the peeked head stays the head until
    // we consume it ourselves.
    const Message* head = shared.links.peek(in_port);
    if (flight != nullptr) {
      const std::uint64_t rejects_now = shared.links.rejects(in_port);
      if (rejects_now != rejects_seen) {
        rec(flight, FlightEventKind::kWireReject, rejects_now);
        rejects_seen = rejects_now;
      }
    }
    if (proc.enabled(head)) {
      // Stamp before consuming/sending — the linearization invariant
      // (see inhost_ring.hpp's header comment).
      const std::uint64_t seq =
          shared.seq.fetch_add(1, std::memory_order_relaxed);
      rec(flight, FlightEventKind::kFire, seq);
      InHostContext ctx(shared, local, latency_hist, pid, flight);
      proc.fire(head, ctx);
      shared.actions.fetch_add(1, std::memory_order_relaxed);
      if (config.record_trace) local.trace.push_back({seq, pid});
      local.peak_space_bits =
          std::max(local.peak_space_bits, proc.space_bits(label_bits));
      backoff.reset();
      beat_recorded = false;
      escalation_recorded = false;
      if (++local.fired >= config.max_actions_per_process) {
        shared.budget_hit.store(true, std::memory_order_relaxed);
        shared.shutdown.store(true, std::memory_order_relaxed);
        shared.links.ring_all();  // wake parked peers to observe shutdown
        break;
      }
      continue;
    }
    // Not enabled: spin/yield briefly (small rings resolve in ns), then
    // park on the in-port doorbell — a futex sleep the producer's next
    // send (or shutdown's ring_all) ends directly. Beats let the
    // watchdog tell "parked, ring quiet" from "never got here".
    shared.membership.beat(pid);
    if (!beat_recorded) {
      rec(flight, FlightEventKind::kBeat, local.fired);
      beat_recorded = true;
    }
    if (!backoff.exhausted()) {
      backoff.pause();
      continue;
    }
    if (!escalation_recorded) {
      rec(flight, FlightEventKind::kBackoffEscalate, 0);
      escalation_recorded = true;
    }
    const std::uint64_t ticket = shared.links.doorbell(in_port);
    // Re-check enabledness after taking the ticket: a frame published
    // before the ticket read would otherwise be slept through. Parking
    // while disabled is sound even with a frame queued — a disabled
    // process can only become enabled through a state change (it cannot
    // fire) or a new message (which rings the doorbell).
    if (!proc.enabled(shared.links.peek(in_port)) &&
        !shared.shutting_down()) {
      rec(flight, FlightEventKind::kPark, ticket);
      shared.links.doorbell_wait(in_port, ticket);
      rec(flight, FlightEventKind::kDoorbellWake,
          shared.links.doorbell(in_port));
      beat_recorded = false;  // next idle spell logs a fresh beat
    }
  }
  rec(flight, FlightEventKind::kExit, 0);
  shared.workers_alive.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace

std::optional<sim::ProcessId> InHostResult::leader_pid() const {
  std::optional<sim::ProcessId> found;
  for (const auto& p : processes) {
    if (!p.is_leader) continue;
    if (found.has_value()) return std::nullopt;
    found = p.pid;
  }
  return found;
}

InHostResult run_inhost(const ring::LabeledRing& ring,
                        const sim::ProcessFactory& factory,
                        const InHostConfig& config) {
  HRING_EXPECTS(factory != nullptr);
  const std::size_t n = ring.size();
  const std::size_t label_bits = ring.label_bits();
  Shared shared(n);
  shared.procs.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    shared.procs.push_back(factory(pid, ring.label(pid)));
  }
  // Queue capacity: every algorithm here keeps O(1) frames in flight per
  // process; 4n+16 frames bounds a runaway at backpressure instead of
  // memory exhaustion (same rationale as the threaded runtime's 2n+8).
  const std::size_t capacity_bytes =
      config.queue_capacity_bytes > 0
          ? config.queue_capacity_bytes
          : (4 * n + 16) * wire::kFrameBytes;
  shared.links.reset(n, label_bits, capacity_bytes);
  if (config.flight_recorder) {
    shared.flight.reset(n, config.flight_capacity);
  }
  // Pre-spawn, so the pokes are ordered before all worker reads.
  if (config.pre_start_poke) config.pre_start_poke(shared.links);
  shared.workers_alive.store(n, std::memory_order_relaxed);

  std::vector<WorkerLocal> locals(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    workers.emplace_back(worker_loop, std::ref(shared),
                         std::ref(locals[pid]), pid, std::cref(config),
                         label_bits);
  }

  // Control plane: wait for every join, wire the unidirectional ring,
  // release the workers.
  const bool joined =
      shared.membership.await_joined([&] { return shared.shutting_down(); });
  HRING_ASSERT(joined);  // in-host workers always reach join()
  for (ProcessId pid = 0; pid < n; ++pid) {
    shared.membership.set_next(pid, (pid + 1) % n);
  }
  const std::uint64_t started_ns = monotonic_ns();
  shared.membership.start_election();

  // Watchdog: finished when all workers exited; deadlocked when nothing
  // fired for the quiet period while workers are still parked. The
  // period scales with the worker count — on an oversubscribed host the
  // scheduling latency of the one enabled worker among n sleepers is
  // itself O(n) timeslices, and the watchdog must outwait it.
  const std::uint64_t quiet_ms = std::max<std::uint64_t>(
      config.quiet_period_ms, static_cast<std::uint64_t>(4 * n));
  std::uint64_t last_actions = shared.actions.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  // Beat counters read at the previous elapsed quiet period (empty until
  // the first one elapses) — see the confirmation pass below.
  std::vector<std::uint64_t> quiet_beats;
  std::optional<ForensicReport> forensics;
  const auto snapshot_counters = [&shared] {
    ForensicCounters counters;
    counters.actions = shared.actions.load(std::memory_order_relaxed);
    counters.messages_sent = shared.sent.load(std::memory_order_relaxed);
    counters.messages_received =
        shared.received.load(std::memory_order_relaxed);
    counters.wire_rejects = shared.links.total_rejects();
    return counters;
  };
  for (;;) {
    if (shared.workers_alive.load(std::memory_order_acquire) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t now_actions =
        shared.actions.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (now_actions != last_actions) {
      last_actions = now_actions;
      last_progress = now;
      continue;
    }
    if (now - last_progress > std::chrono::milliseconds(quiet_ms)) {
      // With the recorder attached, the stall verdict takes a
      // confirmation pass. A quiet period can elapse on an
      // oversubscribed host while innocent workers are still climbing
      // the backoff ladder toward the park, and a single snapshot would
      // misfile them as wedged. The verdict waits until every worker is
      // *settled* (last event a park or exit) or *beat-frozen* (its
      // liveness counter did not advance across the whole previous
      // quiet period — a worker that never reached the idle loop, i.e.
      // genuinely wedged). An unsettled beating worker is alive and
      // merely idle; it either fires (progress resets the watch above)
      // or parks within its ladder's O(ms) horizon, so each granted
      // period makes monotone progress toward the settled picture and
      // confirmation terminates.
      if (shared.flight.attached()) {
        std::vector<std::uint64_t> beats_now(n);
        bool settled_or_frozen = true;
        for (ProcessId pid = 0; pid < n; ++pid) {
          beats_now[pid] = shared.membership.beats(pid);
          const FlightEventKind last = shared.flight.ring(pid).last_kind();
          const bool settled = last == FlightEventKind::kPark ||
                               last == FlightEventKind::kExit;
          const bool frozen =
              !quiet_beats.empty() && beats_now[pid] == quiet_beats[pid];
          if (!settled && !frozen) settled_or_frozen = false;
        }
        const bool first_read = quiet_beats.empty();
        quiet_beats = std::move(beats_now);
        if (first_read || !settled_or_frozen) {
          last_progress = now;
          continue;
        }
      }
      // Freeze the forensic evidence *before* waking anyone: the park
      // picture at this instant is the stall picture; ring_all would
      // append wake/exit events and repaint it.
      if (shared.flight.attached() && !forensics.has_value()) {
        forensics = collect_forensics(shared.flight, shared.links,
                                      shared.membership, "stall", quiet_ms,
                                      snapshot_counters());
      }
      shared.shutdown.store(true, std::memory_order_relaxed);
      shared.membership.kick();
      shared.links.ring_all();
    }
  }
  for (auto& worker : workers) worker.join();
  const std::uint64_t finished_ns = monotonic_ns();

  InHostResult result;
  // Workers have joined: final values, relaxed suffices.
  result.actions = shared.actions.load(std::memory_order_relaxed);
  result.messages_sent = shared.sent.load(std::memory_order_relaxed);
  result.messages_received =
      shared.received.load(std::memory_order_relaxed);
  result.sends_abandoned = shared.abandoned.load(std::memory_order_relaxed);
  result.wire_rejects = shared.links.total_rejects();
  result.elapsed_ns =
      finished_ns >= started_ns ? finished_ns - started_ns : 0;

  bool clean = true;
  for (ProcessId pid = 0; pid < n; ++pid) {
    const Process& p = *shared.procs[pid];
    sim::ProcessSnapshot snap;
    snap.pid = p.pid();
    snap.id = p.id();
    snap.is_leader = p.is_leader();
    snap.done = p.done();
    snap.halted = p.halted();
    snap.leader = p.leader();
    snap.debug = p.debug_state();
    result.processes.push_back(std::move(snap));
    if (!p.halted()) clean = false;
    if (shared.links.pending_bytes(pid) != 0) clean = false;
  }
  if (shared.budget_hit.load(std::memory_order_relaxed)) {
    result.outcome = sim::Outcome::kBudgetExhausted;
  } else {
    result.outcome =
        clean ? sim::Outcome::kTerminated : sim::Outcome::kDeadlock;
  }
  // A run the watchdog never flagged still yields a report when the
  // recorder is attached (the workers have joined, so the rings are
  // quiescent). The stall-time snapshot, when one exists, wins.
  if (shared.flight.attached() && !forensics.has_value()) {
    const char* verdict =
        result.outcome == sim::Outcome::kTerminated ? "completed"
        : result.outcome == sim::Outcome::kBudgetExhausted
            ? "budget-exhausted"
            : "deadlock";
    forensics = collect_forensics(shared.flight, shared.links,
                                  shared.membership, verdict, quiet_ms,
                                  snapshot_counters());
  }
  result.forensics = std::move(forensics);

  // Fold the per-worker views: metrics merge by name, space maxes,
  // traces concatenate and sort by the global stamps.
  std::size_t trace_len = 0;
  for (const WorkerLocal& local : locals) trace_len += local.trace.size();
  result.trace.reserve(trace_len);
  for (const WorkerLocal& local : locals) {
    result.metrics.merge(local.metrics);
    result.peak_space_bits =
        std::max(result.peak_space_bits, local.peak_space_bits);
    result.trace.insert(result.trace.end(), local.trace.begin(),
                        local.trace.end());
  }
  std::sort(result.trace.begin(), result.trace.end(),
            [](const FiringRecord& a, const FiringRecord& b) {
              return a.seq < b.seq;
            });
  const auto wire_rejects_id = result.metrics.counter("inhost_wire_rejects");
  result.metrics.add(wire_rejects_id, result.wire_rejects);
  const auto abandoned_id =
      result.metrics.counter("inhost_sends_abandoned");
  result.metrics.add(abandoned_id, result.sends_abandoned);
  return result;
}

}  // namespace hring::runtime
