// Ring-membership bootstrap and liveness beats for the in-host runtime.
//
// A deployed ring is not born whole: nodes join, learn their successor,
// and only then does an election start. This control plane reproduces
// that shape in-host (after the join/set_next/start_election RPC
// vocabulary of ring-membership services): every worker thread join()s,
// the coordinator wires successors with set_next(), and start_election()
// releases the workers held in await_start() — so the data plane
// (runtime/inhost/inhost_links.hpp) only ever carries election traffic,
// never bootstrap races.
//
// While running, each worker beat()s a per-worker counter; the watchdog
// reads beats() to distinguish "parked but alive" (quiet ring, beats
// advancing → deadlock in the model's sense) from a worker that never
// reached the loop. Everything here is cold-path except beat(), which is
// one relaxed store per loop iteration.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/process.hpp"
#include "support/assert.hpp"

namespace hring::runtime {

class RingMembership {
 public:
  explicit RingMembership(std::size_t n)
      : n_(n),
        next_(n, kUnset),
        joined_(n, 0),
        beats_(std::make_unique<BeatSlot[]>(n)) {
    HRING_EXPECTS(n > 0);
  }

  /// Worker `pid` announces itself. Each pid joins exactly once.
  void join(sim::ProcessId pid) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      HRING_EXPECTS(pid < n_);
      HRING_EXPECTS(joined_[pid] == 0);  // double join is a bootstrap bug
      joined_[pid] = 1;
      ++joined_count_;
    }
    cv_.notify_all();
  }

  /// True once every worker joined.
  [[nodiscard]] bool all_joined() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return joined_count_ == n_;
  }

  /// Blocks until every worker joined or `cancel` returns true (pair the
  /// cancel with kick()). Returns all_joined().
  template <class Cancel>
  bool await_joined(Cancel cancel) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return joined_count_ == n_ || cancel(); });
    return joined_count_ == n_;
  }

  /// Coordinator wires `pid`'s successor on the unidirectional ring.
  void set_next(sim::ProcessId pid, sim::ProcessId next) {
    const std::lock_guard<std::mutex> lock(mutex_);
    HRING_EXPECTS(pid < n_ && next < n_);
    HRING_EXPECTS(!started_);  // topology is frozen at start_election
    next_[pid] = next;
  }

  [[nodiscard]] sim::ProcessId next_of(sim::ProcessId pid) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    HRING_EXPECTS(pid < n_);
    HRING_EXPECTS(next_[pid] != kUnset);
    return next_[pid];
  }

  /// Releases every worker held in await_start(). Requires a complete
  /// bootstrap: all joined, every successor wired.
  void start_election() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      HRING_EXPECTS(joined_count_ == n_);
      for (const sim::ProcessId next : next_) HRING_EXPECTS(next != kUnset);
      started_ = true;
    }
    cv_.notify_all();
  }

  /// Worker side: blocks until start_election() or `cancel` returns true.
  /// Returns true iff the election actually started.
  template <class Cancel>
  bool await_start(Cancel cancel) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return started_ || cancel(); });
    return started_;
  }

  /// Wakes every waiter (abort path).
  void kick() { cv_.notify_all(); }

  /// Liveness beat from worker `pid`; one relaxed store, called from the
  /// worker's park loop.
  // hring-lint: hot-path
  // hring-role: consumer
  void beat(sim::ProcessId pid) {
    HRING_EXPECTS(pid < n_);
    beats_[pid].count.store(
        beats_[pid].count.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  /// Beats observed from `pid` so far (watchdog side).
  // hring-role: watchdog
  [[nodiscard]] std::uint64_t beats(sim::ProcessId pid) const {
    HRING_EXPECTS(pid < n_);
    return beats_[pid].count.load(std::memory_order_relaxed);
  }

 private:
  static constexpr sim::ProcessId kUnset = ~sim::ProcessId{0};

  /// One beat counter per cache line: beats are the workers' only
  /// all-threads-write-adjacent state; sharing lines would serialize the
  /// park loops on coherence traffic.
  struct alignas(64) BeatSlot {
    // hring-shared: consumer,watchdog
    std::atomic<std::uint64_t> count{0};
  };

  std::size_t n_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<sim::ProcessId> next_;
  std::vector<std::uint8_t> joined_;
  std::size_t joined_count_ = 0;
  bool started_ = false;
  std::unique_ptr<BeatSlot[]> beats_;
};

}  // namespace hring::runtime
