// The in-host runtime's data plane: n SPSC byte queues as ring links.
//
// Port i is the §II link S(p_i, p_{i+1}), realized as a lock-free
// SpscByteQueue whose producer is p_i's worker thread and whose consumer
// is p_{i+1}'s. Messages cross as hardened wire frames (runtime/wire.hpp)
// — send() encodes, peek()/try_recv() decode — so this backend exercises
// the byte path a distributed deployment would, not in-memory Message
// hand-off.
//
// Frames that fail decoding are *dropped*: peek() discards the bad frame,
// counts it in rejects(port), and moves on to the next frame. The
// election keeps running over the surviving traffic; the mutation tests
// (tests/runtime/inhost_ring_test.cpp) inject garbage via poke_raw() and
// assert exactly this containment. Satisfies sim::Transport; the
// concurrent caveats mirror ChannelRing — peek's pointer lives in a
// per-port scratch owned by the port's single consumer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/inhost/spsc_queue.hpp"
#include "runtime/wire.hpp"
#include "sim/message.hpp"
#include "sim/transport.hpp"
#include "support/assert.hpp"

namespace hring::runtime {

/// Monotonic nanoseconds for frame timestamps / latency telemetry.
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class InHostLinks {
 public:
  /// Rebinds to `ports` queues of `capacity_bytes` each (rounded up to a
  /// power of two). `label_bits` is the ring's b, enforced by the frame
  /// decoder on every receive.
  void reset(std::size_t ports, std::size_t label_bits,
             std::size_t capacity_bytes) {
    queues_.clear();
    queues_.reserve(ports);
    for (std::size_t i = 0; i < ports; ++i) {
      queues_.push_back(std::make_unique<SpscByteQueue>(capacity_bytes));
    }
    scratch_ = std::vector<PortScratch>(ports);
    doorbells_ = std::make_unique<Doorbell[]>(ports);
    label_bits_ = label_bits;
  }

  [[nodiscard]] std::size_t label_bits() const { return label_bits_; }

  /// Producer side: encodes and writes one frame, waiting out a full
  /// queue with adaptive backoff until `cancel` returns true. Returns
  /// true iff the frame was enqueued. `send_ts_ns` (optional) receives
  /// the timestamp stamped into the frame — the flight recorder uses it
  /// to key message-flow matching, since the receiver sees the same
  /// value come back out of the decoder.
  template <class Cancel>
  [[nodiscard]] bool send_cancelable(std::size_t port,
                                     const sim::Message& msg, Cancel cancel,
                                     std::uint64_t* send_ts_ns = nullptr) {
    HRING_EXPECTS(port < queues_.size());
    wire::Frame frame;
    const std::uint64_t ts = monotonic_ns();
    wire::encode(msg, ts, frame);
    Backoff backoff;
    while (!queues_[port]->try_write(frame.data(), frame.size())) {
      if (cancel()) return false;
      backoff.pause();
    }
    if (send_ts_ns != nullptr) *send_ts_ns = ts;
    ring(port);
    return true;
  }

  /// Raw producer-side injection for mutation tests: writes `len`
  /// arbitrary bytes (typically a corrupted frame) with the same
  /// blocking discipline. Test hook — election code never calls this.
  void poke_raw(std::size_t port, const std::uint8_t* bytes,
                std::size_t len) {
    HRING_EXPECTS(port < queues_.size());
    Backoff backoff;
    while (!queues_[port]->try_write(bytes, len)) backoff.pause();
    ring(port);
  }

  /// Consumer-side parking ticket for `port`. Protocol: read the ticket,
  /// re-check the queue (peek), and only then doorbell_wait(ticket) — the
  /// producer publishes its frame *before* ringing, so a consumer that
  /// missed the frame is guaranteed a changed ticket or a pending notify.
  // hring-role: consumer
  [[nodiscard]] std::uint64_t doorbell(std::size_t port) const {
    HRING_EXPECTS(port < ports());
    return doorbells_[port].value.load(std::memory_order_acquire);
  }

  /// Parks the calling (consumer) thread until the port's doorbell moves
  /// past `ticket`: a new frame arrived, or ring_all() was called. Idle
  /// workers cost zero CPU this way — essential when the host runs many
  /// more workers than cores.
  // hring-role: consumer
  void doorbell_wait(std::size_t port, std::uint64_t ticket) const {
    HRING_EXPECTS(port < ports());
    doorbells_[port].value.wait(ticket, std::memory_order_acquire);
  }

  /// Rings every doorbell (shutdown path: wake all parked consumers so
  /// they can observe the stop flag and exit).
  // hring-role: coordinator
  void ring_all() {
    for (std::size_t port = 0; port < ports(); ++port) {
      doorbells_[port].value.fetch_add(1, std::memory_order_release);
      doorbells_[port].value.notify_all();
    }
  }

  /// Consumer side: decoded head frame of `port`, nullptr when no
  /// complete valid frame is queued. Rejected frames are discarded and
  /// counted; the scan continues to the next frame, so corruption never
  /// wedges the link. The pointer stays valid until the port's consumer
  /// next calls peek/try_recv (single-consumer discipline).
  [[nodiscard]] const sim::Message* peek(std::size_t port) {
    HRING_EXPECTS(port < queues_.size());
    PortScratch& scratch = scratch_[port];
    SpscByteQueue& queue = *queues_[port];
    wire::Frame frame;
    for (;;) {
      if (!queue.try_peek(frame.data(), frame.size())) {
        scratch.valid = false;
        return nullptr;
      }
      const wire::DecodeError err = wire::decode(
          frame, label_bits_, scratch.msg, scratch.send_ts_ns);
      if (err == wire::DecodeError::kOk) {
        scratch.valid = true;
        return &scratch.msg;
      }
      // Hardened rejection: drop the frame, count it, keep the runtime
      // alive. The sender's counters and ours now legitimately disagree
      // — the conformance harness treats rejects as faults.
      queue.discard(frame.size());
      scratch.rejects += 1;
      scratch.valid = false;
    }
  }

  /// Consumer side: removes the head frame previously seen by peek().
  /// Fills `send_ts_ns` with the sender's enqueue timestamp. Requires a
  /// preceding successful peek on this port (the §II consume-what-you-
  /// peeked discipline; single consumer makes it race-free).
  [[nodiscard]] sim::Message recv_peeked(std::size_t port,
                                         std::uint64_t& send_ts_ns) {
    HRING_EXPECTS(port < queues_.size());
    PortScratch& scratch = scratch_[port];
    HRING_EXPECTS(scratch.valid);
    queues_[port]->discard(wire::kFrameBytes);
    scratch.valid = false;
    send_ts_ns = scratch.send_ts_ns;
    return scratch.msg;
  }

  [[nodiscard]] std::optional<sim::Message> try_recv(std::size_t port) {
    if (peek(port) == nullptr) return std::nullopt;
    std::uint64_t ts = 0;
    return recv_peeked(port, ts);
  }

  /// Uncancelable Transport-face send (blocks until room).
  void send(std::size_t port, const sim::Message& msg) {
    (void)send_cancelable(port, msg, [] { return false; });
  }

  /// Complete frames queued on `port` (consumer-exact, like readable()).
  [[nodiscard]] std::size_t depth(std::size_t port) const {
    HRING_EXPECTS(port < queues_.size());
    return queues_[port]->readable() / wire::kFrameBytes;
  }

  /// Bytes queued on `port`, including any trailing partial frame.
  [[nodiscard]] std::size_t pending_bytes(std::size_t port) const {
    HRING_EXPECTS(port < queues_.size());
    return queues_[port]->readable();
  }

  [[nodiscard]] std::size_t ports() const { return queues_.size(); }

  /// Frames rejected by the decoder on `port` so far (consumer-owned).
  [[nodiscard]] std::uint64_t rejects(std::size_t port) const {
    HRING_EXPECTS(port < scratch_.size());
    return scratch_[port].rejects;
  }

  [[nodiscard]] std::uint64_t total_rejects() const {
    std::uint64_t total = 0;
    for (const PortScratch& scratch : scratch_) total += scratch.rejects;
    return total;
  }

 private:
  /// Per-port consumer state: the decoded head (peek's pointee), its
  /// timestamp, and the reject counter. Cache-line aligned — each slot
  /// is written by a different worker thread.
  struct alignas(64) PortScratch {
    sim::Message msg{};
    std::uint64_t send_ts_ns = 0;
    std::uint64_t rejects = 0;
    bool valid = false;
  };

  /// One cache line per port: bumped by the producer after each publish,
  /// waited on (futex) by the parked consumer, kicked by ring_all().
  struct alignas(64) Doorbell {
    // hring-shared: producer,coordinator->consumer
    std::atomic<std::uint64_t> value{0};
  };

  // hring-lint: hot-path
  // hring-role: producer
  void ring(std::size_t port) {
    doorbells_[port].value.fetch_add(1, std::memory_order_release);
    doorbells_[port].value.notify_one();
  }

  std::vector<std::unique_ptr<SpscByteQueue>> queues_;
  std::vector<PortScratch> scratch_;
  std::unique_ptr<Doorbell[]> doorbells_;
  std::size_t label_bits_ = 0;
};

static_assert(sim::Transport<InHostLinks>);

}  // namespace hring::runtime
