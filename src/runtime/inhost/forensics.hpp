// Stall forensics for the in-host runtime.
//
// When the progress watchdog declares a stall (or a run finishes with the
// flight recorder attached), collect_forensics() freezes the evidence into
// a ForensicReport: per-thread last-K flight events, park state, queue
// depths, beat counters, and a verdict naming the wedged process(es) — a
// thread is wedged when its ring's last event is neither a park nor an
// exit, i.e. it stopped making progress somewhere *other* than the two
// places a healthy quiet worker can be. The report serializes two ways:
//
//   write_forensics_json  — the "hring-forensics/1" report: machine- and
//                           human-readable, what `--flight-out` writes and
//                           what the injected-stall test asserts on.
//   write_flight_trace_json — a Chrome trace-event / Perfetto document of
//                           the real threaded execution: one track per OS
//                           thread, park/backoff spans, doorbell wakes,
//                           and send→recv flow arrows matched by the wire
//                           frames' send_ts_ns.
//
// Collection is watchdog/main-thread code: it reads the single-writer
// flight rings (cursor acquire, slots relaxed — see
// telemetry/flight_recorder.hpp for the discipline) and the consumer-owned
// link scratch. Call it when the writers are quiescent (parked, wedged, or
// joined): that is exactly the stall and end-of-run situations it exists
// for.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "telemetry/flight_recorder.hpp"

namespace hring::runtime {

class InHostLinks;
class RingMembership;

/// One worker thread's forensic view.
struct ForensicThread {
  sim::ProcessId pid = 0;
  /// Liveness beats observed (membership plane).
  std::uint64_t beats = 0;
  /// Flight events ever recorded; `events` holds the retained tail.
  std::uint64_t events_recorded = 0;
  /// Events the overwriting ring dropped (recorded - retained).
  std::uint64_t events_dropped = 0;
  /// Complete frames queued on the thread's in/out links at collection.
  std::uint64_t in_depth = 0;
  std::uint64_t out_depth = 0;
  /// Bytes pending on the in-link (catches trailing partial frames).
  std::uint64_t in_pending_bytes = 0;
  /// Frames this thread's decoder refused.
  std::uint64_t wire_rejects = 0;
  /// True when the last retained event is a park (thread idle on the
  /// doorbell futex).
  bool parked = false;
  /// True when the last retained event is an exit (worker loop done).
  bool exited = false;
  /// Retained flight events, oldest first.
  std::vector<telemetry::FlightEvent> events;

  [[nodiscard]] const char* last_event_name() const;
};

/// Run-level counters snapshotted at collection time.
struct ForensicCounters {
  std::uint64_t actions = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t wire_rejects = 0;
};

struct ForensicReport {
  /// "stall" (watchdog verdict), "completed", "budget-exhausted", or
  /// "divergence" (stamped by the conformance harness).
  std::string verdict;
  /// The effective watchdog quiet period (after the 4ms × n floor).
  std::uint64_t quiet_ms = 0;
  /// Monotonic nanoseconds at collection (the trace's right edge).
  std::uint64_t collected_at_ns = 0;
  ForensicCounters counters;
  /// Pids whose last event is neither park nor exit — the processes the
  /// watchdog holds responsible. Empty on a stall means every thread was
  /// parked: a protocol-level deadlock, not a wedged thread.
  std::vector<sim::ProcessId> wedged;
  std::vector<ForensicThread> threads;

  /// One-line human verdict, e.g. "stall: p2 wedged (last event: start)".
  [[nodiscard]] std::string summary() const;
};

/// Freezes the evidence. `recorder` must be attached; the caller names the
/// verdict ("stall", "completed", ...).
[[nodiscard]] ForensicReport collect_forensics(
    const telemetry::FlightRecorder& recorder, const InHostLinks& links,
    const RingMembership& membership, std::string verdict,
    std::uint64_t quiet_ms, const ForensicCounters& counters);

/// Serializes the "hring-forensics/1" JSON report.
void write_forensics_json(std::ostream& out, const ForensicReport& report);

/// Serializes the Chrome trace-event / Perfetto document of the recorded
/// execution (one track per thread; park/backoff spans; send→recv flows).
void write_flight_trace_json(std::ostream& out, const ForensicReport& report);

}  // namespace hring::runtime
