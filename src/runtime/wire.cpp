#include "runtime/wire.hpp"

#include "support/assert.hpp"

namespace hring::runtime::wire {
namespace {

void put_u64_le(std::uint64_t v, std::uint8_t* out) {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint64_t get_u64_le(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::kOk:
      return "ok";
    case DecodeError::kShortFrame:
      return "short-frame";
    case DecodeError::kBadTag:
      return "bad-tag";
    case DecodeError::kNonCanonical:
      return "non-canonical";
    case DecodeError::kLabelOverflow:
      return "label-overflow";
  }
  return "unknown";
}

void encode(const sim::Message& msg, std::uint64_t send_ts_ns, Frame& out) {
  // The engines only ever construct canonical messages; assert rather
  // than silently emit a frame our own decoder would refuse.
  HRING_EXPECTS(kind_has_payload(msg.kind) || msg.label.value() == 0);
  out[0] = static_cast<std::uint8_t>(sim::kind_index(msg.kind));
  put_u64_le(msg.label.value(), out.data() + 1);
  put_u64_le(send_ts_ns, out.data() + 9);
}

DecodeError decode(std::span<const std::uint8_t> bytes,
                   std::size_t label_bits, sim::Message& msg,
                   std::uint64_t& send_ts_ns) {
  if (bytes.size() < kFrameBytes) return DecodeError::kShortFrame;
  const std::uint8_t tag = bytes[0];
  if (tag >= sim::kNumMsgKinds) return DecodeError::kBadTag;
  const auto kind = static_cast<sim::MsgKind>(tag);
  const std::uint64_t label = get_u64_le(bytes.data() + 1);
  if (!kind_has_payload(kind) && label != 0) {
    return DecodeError::kNonCanonical;
  }
  if (kind_has_payload(kind) && label_bits < 64 &&
      (label >> label_bits) != 0) {
    return DecodeError::kLabelOverflow;
  }
  msg = sim::Message{kind, sim::Label(label)};
  send_ts_ns = get_u64_le(bytes.data() + 9);
  return DecodeError::kOk;
}

}  // namespace hring::runtime::wire
