#include "runtime/conformance.hpp"

#include <fstream>
#include <limits>
#include <memory>

#include "core/election_driver.hpp"
#include "runtime/inhost/forensics.hpp"
#include "sim/replay.hpp"
#include "support/assert.hpp"

namespace hring::runtime {
namespace {

[[nodiscard]] std::optional<sim::ProcessId> leader_of(
    const std::vector<sim::ProcessSnapshot>& processes) {
  std::optional<sim::ProcessId> found;
  for (const auto& p : processes) {
    if (!p.is_leader) continue;
    if (found.has_value()) return std::nullopt;
    found = p.pid;
  }
  return found;
}

[[nodiscard]] std::string render_pid(std::optional<sim::ProcessId> pid) {
  return pid.has_value() ? std::to_string(*pid) : "none";
}

}  // namespace

std::string ConformanceReport::summary() const {
  std::string out =
      ok() ? "conformant"
           : "DIVERGENT(" + std::to_string(divergences.size()) + ")";
  out += " | inhost leader=" + render_pid(leader_of(inhost.processes));
  out += " sim leader=" + render_pid(simulator_leader);
  out += " actions=" + std::to_string(inhost.actions);
  out += " msgs=" + std::to_string(inhost.messages_sent);
  out += " space=" + std::to_string(inhost.peak_space_bits);
  if (space_bound_bits.has_value()) {
    out += "/" + std::to_string(*space_bound_bits);
  }
  out += " bits, audit=" + std::string(audit.ok() ? "ok" : "FAIL");
  return out;
}

ConformanceReport check_conformance(
    const ring::LabeledRing& ring,
    const election::AlgorithmConfig& algorithm,
    const ConformanceConfig& config) {
  ConformanceReport report;
  const std::size_t b = ring.label_bits();
  report.space_bound_bits =
      core::paper_space_bound_bits(algorithm, ring.size(), b);

  // -- Stage 1: reference simulator run -----------------------------------
  core::ElectionConfig sim_config;
  sim_config.algorithm = algorithm;
  sim_config.scheduler = core::SchedulerKind::kSynchronous;
  const sim::RunResult reference = core::run_election(ring, sim_config);
  report.simulator_leader = leader_of(reference.processes);
  if (reference.outcome != sim::Outcome::kTerminated) {
    report.divergences.push_back(
        "[reference] simulator run did not terminate cleanly");
  }

  // -- Stage 2: the real run ----------------------------------------------
  InHostConfig inhost_config = config.inhost;
  inhost_config.record_trace = true;  // stage 3 needs the firing records
  if (!config.flight_out.empty()) inhost_config.flight_recorder = true;
  report.inhost =
      run_inhost(ring, election::make_factory(algorithm), inhost_config);
  const InHostResult& real = report.inhost;
  if (real.outcome != sim::Outcome::kTerminated) {
    report.divergences.push_back(
        "[runtime] in-host run outcome is not kTerminated");
  }
  if (real.wire_rejects != 0) {
    report.divergences.push_back(
        "[runtime] " + std::to_string(real.wire_rejects) +
        " wire frames rejected on healthy links");
  }
  if (real.sends_abandoned != 0) {
    report.divergences.push_back(
        "[runtime] " + std::to_string(real.sends_abandoned) +
        " sends abandoned (shutdown during backpressure)");
  }
  if (real.messages_sent != real.messages_received) {
    report.divergences.push_back(
        "[runtime] sent " + std::to_string(real.messages_sent) +
        " != received " + std::to_string(real.messages_received));
  }
  if (real.trace.size() != real.actions) {
    report.divergences.push_back(
        "[runtime] trace length " + std::to_string(real.trace.size()) +
        " != action count " + std::to_string(real.actions));
  }

  const std::optional<sim::ProcessId> real_leader =
      leader_of(real.processes);
  if (real_leader != report.simulator_leader) {
    report.divergences.push_back(
        "[leader] in-host elected " + render_pid(real_leader) +
        ", simulator elected " + render_pid(report.simulator_leader));
  }
  if (config.check_true_leader &&
      election::elects_true_leader(algorithm.id)) {
    const sim::ProcessId expected = ring.true_leader();
    if (real_leader != std::optional<sim::ProcessId>(expected)) {
      report.divergences.push_back(
          "[leader] in-host elected " + render_pid(real_leader) +
          ", ring's true leader is " + std::to_string(expected));
    }
  }

  // -- Stage 3: linearized replay through the spec auditor ----------------
  // The stamps order the firings into a sequential schedule (every
  // consumed message was sent by an earlier stamp); replay it as
  // singleton steps with fairness forcing disabled — the concurrent run
  // already was fair, and a forced inclusion would diverge from the
  // recording.
  sim::Schedule schedule;
  schedule.reserve(real.trace.size());
  for (const FiringRecord& record : real.trace) {
    schedule.push_back({record.pid});
  }
  core::SpecAuditConfig audit_config;
  audit_config.scheduler_factory = [schedule] {
    return std::make_unique<sim::ReplayScheduler>(schedule);
  };
  audit_config.fairness_bound = std::numeric_limits<std::size_t>::max();
  audit_config.max_steps = schedule.size() + 2;
  report.audit = core::audit_algorithm(ring, algorithm, audit_config);
  for (const std::string& violation : report.audit.violations) {
    report.divergences.push_back("[audit] " + violation);
  }

  // The replayed execution must reproduce the runtime's own accounting
  // exactly — same firings, same messages, same peak space.
  if (report.audit.firings != real.actions) {
    report.divergences.push_back(
        "[replay] replayed " + std::to_string(report.audit.firings) +
        " firings, runtime performed " + std::to_string(real.actions));
  }
  if (report.audit.messages != real.messages_sent) {
    report.divergences.push_back(
        "[replay] replayed " + std::to_string(report.audit.messages) +
        " messages, runtime sent " + std::to_string(real.messages_sent));
  }
  if (report.audit.peak_space_bits != real.peak_space_bits) {
    report.divergences.push_back(
        "[replay] replayed peak space " +
        std::to_string(report.audit.peak_space_bits) +
        " bits, runtime measured " +
        std::to_string(real.peak_space_bits));
  }
  if (report.space_bound_bits.has_value() &&
      real.peak_space_bits > *report.space_bound_bits) {
    report.divergences.push_back(
        "[space] runtime peak " + std::to_string(real.peak_space_bits) +
        " bits exceeds the paper bound " +
        std::to_string(*report.space_bound_bits));
  }

  // A divergence with the recorder attached dumps the real run's flight
  // evidence — the report the failing CI job or test leaves behind.
  if (!report.ok() && report.inhost.forensics.has_value()) {
    report.inhost.forensics->verdict = "divergence";
    if (!config.flight_out.empty()) {
      std::ofstream out(config.flight_out);
      if (out) write_forensics_json(out, *report.inhost.forensics);
    }
  }
  return report;
}

}  // namespace hring::runtime
