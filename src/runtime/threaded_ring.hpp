// Threaded runtime: the algorithms on real concurrency.
//
// The step and event engines *simulate* asynchrony; this runtime
// *provides* it — one OS thread per process, blocking FIFO channels
// between neighbors, the scheduler being whatever the OS does. The same
// Process implementations run unchanged, which is the point: §II's
// guarded-action programs are executable artifacts, not simulator-only
// pseudocode. Every execution of this runtime is some fair asynchronous
// execution of the model (FIFO channels, eventual delivery), so the
// algorithms' correctness theorems apply to it directly — and the tests
// check exactly that.
//
// Termination: worker threads exit when their process halts. A watchdog
// declares the run finished when all workers exited (clean) or when no
// action has fired for a quiet period while workers are still parked
// (deadlock — reported, exactly like the engines do).
#pragma once

#include <cstdint>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "sim/run_result.hpp"

namespace hring::runtime {

struct ThreadedConfig {
  /// Per-process firing budget (livelock guard).
  std::uint64_t max_actions_per_process = 1'000'000;
  /// Watchdog quiet period (milliseconds of global inactivity) before a
  /// stalled run is declared deadlocked.
  std::uint64_t quiet_period_ms = 200;
  /// Per-link channel capacity; 0 picks the default (2n + 8, far above
  /// any reachable depth for the §III/§IV algorithms). A full link blocks
  /// the sender until the neighbor drains (Backpressure::kBlock).
  std::size_t channel_capacity = 0;
};

struct ThreadedResult {
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::vector<sim::ProcessSnapshot> processes;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t actions = 0;

  /// The unique leader's pid, if exactly one process has isLeader.
  [[nodiscard]] std::optional<sim::ProcessId> leader_pid() const;
};

/// Runs one election with real threads. Blocks until the run finishes.
[[nodiscard]] ThreadedResult run_threaded(const ring::LabeledRing& ring,
                                          const sim::ProcessFactory& factory,
                                          const ThreadedConfig& config = {});

}  // namespace hring::runtime
