// Combinatorics of labeled rings.
//
// Closed-form counts, used as independent ground truth for the exhaustive
// enumeration (tests cross-check enumerate_rings() against these):
//  * a labeling of length n is *asymmetric* (class A) iff it is aperiodic
//    as a cyclic word; the number of aperiodic sequences over an a-letter
//    alphabet is Σ_{d|n} μ(d)·a^{n/d} (Möbius inversion);
//  * each asymmetric ring has exactly n distinct rotations, so the number
//    of asymmetric rings up to rotation (canonical representatives) is
//    that sum divided by n — the count of aperiodic necklaces, i.e. of
//    Lyndon words of length n over a letters;
//  * the total number of necklaces (rotation classes, symmetric or not)
//    is Burnside's (1/n)·Σ_{d|n} φ(d)·a^{n/d}.
#pragma once

#include <cstdint>

namespace hring::ring {

/// Möbius function μ(n). Requires n >= 1.
[[nodiscard]] std::int64_t mobius(std::uint64_t n);

/// Euler's totient φ(n). Requires n >= 1.
[[nodiscard]] std::uint64_t totient(std::uint64_t n);

/// a^e with overflow assertions (counting stays within uint64 for the
/// test-sized inputs this supports).
[[nodiscard]] std::uint64_t checked_pow(std::uint64_t a, std::uint64_t e);

/// Number of length-n sequences over an a-letter alphabet that are
/// aperiodic as cyclic words == number of asymmetric labelings (class A).
[[nodiscard]] std::uint64_t count_asymmetric_labelings(std::uint64_t n,
                                                       std::uint64_t a);

/// Number of asymmetric rings up to rotation (= Lyndon words of length n
/// over a letters). Requires n >= 1.
[[nodiscard]] std::uint64_t count_asymmetric_rings(std::uint64_t n,
                                                   std::uint64_t a);

/// Number of rotation classes of all labelings (Burnside necklace count).
[[nodiscard]] std::uint64_t count_necklaces(std::uint64_t n,
                                            std::uint64_t a);

}  // namespace hring::ring
