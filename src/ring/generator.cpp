#include "ring/generator.hpp"

#include <algorithm>

#include "ring/classes.hpp"
#include "support/assert.hpp"
#include "words/lyndon.hpp"

namespace hring::ring {
namespace {

/// Draws a label multiset of size n with per-label count <= k over
/// {1..alphabet}, then shuffles it into a clockwise order.
LabelSequence bounded_multiset(std::size_t n, std::size_t k,
                               std::size_t alphabet, Rng& rng) {
  HRING_EXPECTS(alphabet * k >= n);
  std::vector<std::size_t> remaining(alphabet, k);
  LabelSequence seq;
  seq.reserve(n);
  // Draw labels uniformly among those with remaining budget. A simple
  // resample loop suffices: the acceptance probability is at least 1/n per
  // draw even in the saturated case.
  std::size_t drawn = 0;
  while (drawn < n) {
    const std::size_t v = rng.below(alphabet);
    if (remaining[v] == 0) continue;
    --remaining[v];
    seq.emplace_back(v + 1);
    ++drawn;
  }
  support::shuffle(seq, rng);
  return seq;
}

}  // namespace

LabeledRing distinct_ring(std::size_t n, Rng& rng) {
  HRING_EXPECTS(n >= 2);
  LabelSequence seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq.emplace_back(i + 1);
  }
  support::shuffle(seq, rng);
  return LabeledRing(std::move(seq));
}

LabeledRing sequential_ring(std::size_t n) {
  HRING_EXPECTS(n >= 2);
  LabelSequence seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq.emplace_back(i + 1);
  }
  return LabeledRing(std::move(seq));
}

LabeledRing uniform_random_ring(std::size_t n, std::size_t alphabet,
                                Rng& rng) {
  HRING_EXPECTS(n >= 2 && alphabet >= 1);
  LabelSequence seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq.emplace_back(rng.below(alphabet) + 1);
  }
  return LabeledRing(std::move(seq));
}

std::optional<LabeledRing> random_asymmetric_ring(std::size_t n,
                                                  std::size_t k,
                                                  std::size_t alphabet,
                                                  Rng& rng,
                                                  std::size_t max_tries) {
  HRING_EXPECTS(n >= 2 && k >= 1 && alphabet * k >= n);
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    LabelSequence seq = bounded_multiset(n, k, alphabet, rng);
    if (!words::has_rotational_symmetry(seq)) {
      return LabeledRing(std::move(seq));
    }
  }
  return std::nullopt;
}

std::optional<LabeledRing> saturated_multiplicity_ring(std::size_t n,
                                                       std::size_t k,
                                                       Rng& rng,
                                                       std::size_t max_tries) {
  HRING_EXPECTS(n >= k + 1 && k >= 1);
  // Label 1 occurs exactly k times; the rest are drawn with counts <= k
  // from a fresh alphabet starting at 2, sized to always fit.
  const std::size_t rest = n - k;
  const std::size_t alphabet = (rest + k - 1) / k + 2;
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    LabelSequence seq;
    seq.reserve(n);
    for (std::size_t i = 0; i < k; ++i) seq.emplace_back(1);
    std::vector<std::size_t> remaining(alphabet, k);
    std::size_t drawn = 0;
    while (drawn < rest) {
      const std::size_t v = rng.below(alphabet);
      if (remaining[v] == 0) continue;
      --remaining[v];
      seq.emplace_back(v + 2);
      ++drawn;
    }
    support::shuffle(seq, rng);
    if (!words::has_rotational_symmetry(seq)) {
      LabeledRing ring(std::move(seq));
      HRING_ENSURES(ring.multiplicity(Label(1)) == k);
      HRING_ENSURES(in_class_Kk(ring, k));
      return ring;
    }
  }
  return std::nullopt;
}

LabeledRing unique_label_ring(std::size_t n, std::size_t k, Rng& rng) {
  HRING_EXPECTS(n >= 2 && k >= 1);
  // Labels >= 2 fill n-1 slots with multiplicity <= k; label 1 is unique.
  const std::size_t rest = n - 1;
  const std::size_t alphabet = std::max<std::size_t>(1, (rest + k - 1) / k);
  LabelSequence seq;
  seq.reserve(n);
  seq.emplace_back(1);
  std::vector<std::size_t> remaining(alphabet, k);
  std::size_t drawn = 0;
  while (drawn < rest) {
    const std::size_t v = rng.below(alphabet);
    if (remaining[v] == 0) continue;
    --remaining[v];
    seq.emplace_back(v + 2);
    ++drawn;
  }
  support::shuffle(seq, rng);
  LabeledRing ring(std::move(seq));
  HRING_ENSURES(in_class_Ustar(ring));
  HRING_ENSURES(in_class_Kk(ring, k));
  return ring;
}

LabeledRing symmetric_ring(const LabelSequence& block, std::size_t reps) {
  HRING_EXPECTS(!block.empty() && reps >= 2);
  LabelSequence seq;
  seq.reserve(block.size() * reps);
  for (std::size_t r = 0; r < reps; ++r) {
    seq.insert(seq.end(), block.begin(), block.end());
  }
  LabeledRing ring(std::move(seq));
  HRING_ENSURES(!in_class_A(ring));
  return ring;
}

std::vector<LabeledRing> enumerate_rings(std::size_t n, std::size_t alphabet,
                                         bool asymmetric_only,
                                         bool canonical_only) {
  HRING_EXPECTS(n >= 2 && alphabet >= 1);
  // Guard against runaway enumeration: alphabet^n must stay small.
  double estimate = 1;
  for (std::size_t i = 0; i < n; ++i) estimate *= static_cast<double>(alphabet);
  HRING_EXPECTS(estimate <= 4e6);

  std::vector<LabeledRing> out;
  LabelSequence current(n, Label(1));
  std::vector<std::size_t> digits(n, 0);
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = Label(digits[i] + 1);
    }
    const bool symmetric = words::has_rotational_symmetry(current);
    if (!(asymmetric_only && symmetric)) {
      const bool canonical =
          !canonical_only || words::least_rotation_index(current) == 0;
      if (canonical) out.emplace_back(current);
    }
    // Odometer increment.
    std::size_t pos = n;
    while (pos > 0) {
      --pos;
      if (++digits[pos] < alphabet) break;
      digits[pos] = 0;
      if (pos == 0) return out;
    }
  }
}

}  // namespace hring::ring
