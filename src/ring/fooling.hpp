// The fooling-ring construction of Lemma 1 (§III).
//
// Given a base ring R_n ∈ K_1 with labels l_0 … l_{n-1} and a bound k, the
// ring R_{n,k} has kn+1 processes labeled l_0 … l_{n-1} repeated k times
// followed by one fresh label X. R_{n,k} ∈ U* ∩ K_k, yet its first (k-2)n
// synchronous steps are indistinguishable, position-wise, from R_n's — the
// engine of the Ω(kn) lower bound and of the impossibility of electing in
// U* without a multiplicity bound (Theorem 1).
#pragma once

#include <cstddef>

#include "ring/labeled_ring.hpp"

namespace hring::ring {

/// Builds R_{n,k} from `base` (which must be in K_1). The fresh label X is
/// chosen as max(base labels) + 1, hence X ∉ base. Requires k >= 1.
[[nodiscard]] LabeledRing fooling_ring(const LabeledRing& base,
                                       std::size_t k);

/// The process of R_{n,k} corresponding to p_j of the base ring in copy c
/// (c in [0, k)); index c*n + j.
[[nodiscard]] ProcessIndex fooling_position(const LabeledRing& base,
                                            std::size_t copy,
                                            ProcessIndex base_index);

}  // namespace hring::ring
