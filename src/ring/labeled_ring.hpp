// The labeled unidirectional ring of §II.
//
// Processes p_0 … p_{n-1} are arranged clockwise: p_i sends to p_{i+1} and
// receives from p_{i-1} (indices mod n). Each process carries a label that
// need not be unique (homonyms). The ring is a pure value type; the
// simulator instantiates processes and links from it.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "words/label.hpp"

namespace hring::ring {

using words::Label;
using words::LabelSequence;

/// Index of a process within the ring, in [0, n).
using ProcessIndex = std::size_t;

class LabeledRing {
 public:
  /// Builds a ring from clockwise labels. Requires n >= 2 (the model's
  /// minimum ring size).
  explicit LabeledRing(LabelSequence labels);

  /// Convenience constructor from raw label values.
  static LabeledRing from_values(
      std::initializer_list<Label::rep_type> values);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] const LabelSequence& labels() const { return labels_; }
  [[nodiscard]] Label label(ProcessIndex i) const;

  /// Clockwise successor / counter-clockwise predecessor of process i.
  [[nodiscard]] ProcessIndex right(ProcessIndex i) const;
  [[nodiscard]] ProcessIndex left(ProcessIndex i) const;

  /// mlty[l]: the number of processes carrying label l (0 if absent).
  [[nodiscard]] std::size_t multiplicity(Label label) const;

  /// max over labels of multiplicity — the M of Theorem 2's proof.
  [[nodiscard]] std::size_t max_multiplicity() const;

  /// Number of distinct labels |L|.
  [[nodiscard]] std::size_t distinct_labels() const;

  /// The prefix LLabels(p_i)_m: labels read counter-clockwise from p_i,
  /// i.e. p_i.id, p_{i-1}.id, …, of length m (m may exceed n; the sequence
  /// wraps).
  [[nodiscard]] LabelSequence llabels(ProcessIndex i, std::size_t m) const;

  /// The paper's b: bits required to store any label of this ring.
  [[nodiscard]] std::size_t label_bits() const;

  /// True leader (§IV): the process L whose LLabels(L)^n is a Lyndon word.
  /// Requires the ring to be asymmetric (otherwise no such process exists).
  [[nodiscard]] ProcessIndex true_leader() const;

  /// Reference implementation comparing all LLabels(p)^n directly.
  [[nodiscard]] ProcessIndex true_leader_naive() const;

  /// "1.3.1.3.2.2.1.2" — clockwise rendering for logs and tables.
  [[nodiscard]] std::string to_string() const;

 private:
  LabelSequence labels_;
  std::map<Label::rep_type, std::size_t> multiplicity_;
};

}  // namespace hring::ring
