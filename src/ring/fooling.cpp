#include "ring/fooling.hpp"

#include <algorithm>

#include "ring/classes.hpp"
#include "support/assert.hpp"

namespace hring::ring {

LabeledRing fooling_ring(const LabeledRing& base, std::size_t k) {
  HRING_EXPECTS(k >= 1);
  HRING_EXPECTS(in_class_K1(base));
  const std::size_t n = base.size();
  Label::rep_type max_value = 0;
  for (const Label l : base.labels()) {
    max_value = std::max(max_value, l.value());
  }
  LabelSequence seq;
  seq.reserve(k * n + 1);
  for (std::size_t copy = 0; copy < k; ++copy) {
    seq.insert(seq.end(), base.labels().begin(), base.labels().end());
  }
  seq.emplace_back(max_value + 1);
  LabeledRing ring(std::move(seq));
  HRING_ENSURES(in_class_Ustar(ring));
  HRING_ENSURES(in_class_Kk(ring, k));
  return ring;
}

ProcessIndex fooling_position(const LabeledRing& base, std::size_t copy,
                              ProcessIndex base_index) {
  HRING_EXPECTS(base_index < base.size());
  return copy * base.size() + base_index;
}

}  // namespace hring::ring
