#include "ring/counting.hpp"

#include "support/assert.hpp"

namespace hring::ring {

std::int64_t mobius(std::uint64_t n) {
  HRING_EXPECTS(n >= 1);
  std::int64_t result = 1;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    if (n % p != 0) continue;
    n /= p;
    if (n % p == 0) return 0;  // squared prime factor
    result = -result;
  }
  if (n > 1) result = -result;
  return result;
}

std::uint64_t totient(std::uint64_t n) {
  HRING_EXPECTS(n >= 1);
  std::uint64_t result = n;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    if (n % p != 0) continue;
    while (n % p == 0) n /= p;
    result -= result / p;
  }
  if (n > 1) result -= result / n;
  return result;
}

std::uint64_t checked_pow(std::uint64_t a, std::uint64_t e) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < e; ++i) {
    HRING_ASSERT(a == 0 || result <= UINT64_MAX / (a == 0 ? 1 : a));
    result *= a;
  }
  return result;
}

std::uint64_t count_asymmetric_labelings(std::uint64_t n, std::uint64_t a) {
  HRING_EXPECTS(n >= 1 && a >= 1);
  std::int64_t total = 0;
  for (std::uint64_t d = 1; d <= n; ++d) {
    if (n % d != 0) continue;
    total += mobius(d) * static_cast<std::int64_t>(checked_pow(a, n / d));
  }
  HRING_ENSURES(total >= 0);
  return static_cast<std::uint64_t>(total);
}

std::uint64_t count_asymmetric_rings(std::uint64_t n, std::uint64_t a) {
  const std::uint64_t labelings = count_asymmetric_labelings(n, a);
  HRING_ENSURES(labelings % n == 0);  // each class has exactly n rotations
  return labelings / n;
}

std::uint64_t count_necklaces(std::uint64_t n, std::uint64_t a) {
  HRING_EXPECTS(n >= 1 && a >= 1);
  std::uint64_t total = 0;
  for (std::uint64_t d = 1; d <= n; ++d) {
    if (n % d != 0) continue;
    total += totient(d) * checked_pow(a, n / d);
  }
  HRING_ENSURES(total % n == 0);
  return total / n;
}

}  // namespace hring::ring
