// Ring instance generators for tests and experiments.
//
// Every generator is deterministic given its Rng, so each experiment row is
// reproducible from its printed seed. Rejection-sampling generators enforce
// their class constraints by construction plus post-check.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ring/labeled_ring.hpp"
#include "support/rng.hpp"

namespace hring::ring {

using support::Rng;

/// K_1 ring: a random permutation of the distinct labels 1..n.
[[nodiscard]] LabeledRing distinct_ring(std::size_t n, Rng& rng);

/// K_1 ring with the fixed clockwise labels 1..n (no randomness); used by
/// the lower-bound bench where only the label *set* matters.
[[nodiscard]] LabeledRing sequential_ring(std::size_t n);

/// Uniform random labels over {1..alphabet}; may be symmetric and may
/// exceed any multiplicity bound. Requires alphabet >= 1.
[[nodiscard]] LabeledRing uniform_random_ring(std::size_t n,
                                              std::size_t alphabet, Rng& rng);

/// Random ring of A ∩ K_k: every label occurs at most k times and the ring
/// is asymmetric. Labels are drawn from {1..alphabet}; alphabet must satisfy
/// alphabet*k >= n. Returns nullopt if `max_tries` rejection rounds fail
/// (only plausible for tiny n with alphabet*k == n and heavy symmetry).
[[nodiscard]] std::optional<LabeledRing> random_asymmetric_ring(
    std::size_t n, std::size_t k, std::size_t alphabet, Rng& rng,
    std::size_t max_tries = 1000);

/// Random ring of A ∩ K_k biased to *saturate* the multiplicity bound: some
/// label occurs exactly k times. Exercises the worst-case branch of the
/// 2k+1 detection threshold. Requires n >= k + 1 (so asymmetry is possible
/// with a saturated label).
[[nodiscard]] std::optional<LabeledRing> saturated_multiplicity_ring(
    std::size_t n, std::size_t k, Rng& rng, std::size_t max_tries = 1000);

/// Random ring of U* ∩ K_k: one distinguished unique label, all others with
/// multiplicity <= k. A unique label implies asymmetry.
[[nodiscard]] LabeledRing unique_label_ring(std::size_t n, std::size_t k,
                                            Rng& rng);

/// Symmetric ring: `block` repeated `reps` times (reps >= 2). These rings
/// are outside A; used by negative tests.
[[nodiscard]] LabeledRing symmetric_ring(const LabelSequence& block,
                                         std::size_t reps);

/// All label sequences of length n over alphabet {1..alphabet}, as rings.
/// If `asymmetric_only`, symmetric labelings are skipped. If
/// `canonical_only`, only sequences that are the least rotation of their
/// rotation class are kept (one representative per ring up to renaming of
/// process indices). Intended for exhaustive small-n tests: the result has
/// at most alphabet^n entries.
[[nodiscard]] std::vector<LabeledRing> enumerate_rings(std::size_t n,
                                                       std::size_t alphabet,
                                                       bool asymmetric_only,
                                                       bool canonical_only);

}  // namespace hring::ring
