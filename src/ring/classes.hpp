// Ring network classes of §II: K_k (bounded multiplicity), A (asymmetric),
// U* (at least one unique label), and their intersections.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ring/labeled_ring.hpp"

namespace hring::ring {

/// R ∈ K_k: no label occurs more than k times. Requires k >= 1.
[[nodiscard]] bool in_class_Kk(const LabeledRing& ring, std::size_t k);

/// R ∈ A: no non-trivial rotational symmetry of the label sequence.
[[nodiscard]] bool in_class_A(const LabeledRing& ring);

/// R ∈ U*: at least one label of R is unique. (U* ⊆ A.)
[[nodiscard]] bool in_class_Ustar(const LabeledRing& ring);

/// R ∈ K_1: all labels distinct (the fully identified model).
[[nodiscard]] bool in_class_K1(const LabeledRing& ring);

/// Labels of multiplicity exactly one, in increasing order.
[[nodiscard]] std::vector<Label> unique_labels(const LabeledRing& ring);

/// Structured membership report, used by the CLI and the verifier's error
/// messages.
struct RingClassReport {
  std::size_t n = 0;
  std::size_t distinct_labels = 0;
  std::size_t max_multiplicity = 0;
  bool asymmetric = false;
  bool has_unique_label = false;

  /// Smallest k with R ∈ K_k (== max_multiplicity).
  [[nodiscard]] std::size_t min_k() const { return max_multiplicity; }

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] RingClassReport classify(const LabeledRing& ring);

}  // namespace hring::ring
