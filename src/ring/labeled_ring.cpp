#include "ring/labeled_ring.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "words/lyndon.hpp"

namespace hring::ring {

LabeledRing::LabeledRing(LabelSequence labels) : labels_(std::move(labels)) {
  HRING_EXPECTS(labels_.size() >= 2);
  for (const Label l : labels_) ++multiplicity_[l.value()];
}

LabeledRing LabeledRing::from_values(
    std::initializer_list<Label::rep_type> values) {
  LabelSequence seq;
  seq.reserve(values.size());
  for (const auto v : values) seq.emplace_back(v);
  return LabeledRing(std::move(seq));
}

Label LabeledRing::label(ProcessIndex i) const {
  HRING_EXPECTS(i < labels_.size());
  return labels_[i];
}

ProcessIndex LabeledRing::right(ProcessIndex i) const {
  HRING_EXPECTS(i < labels_.size());
  return (i + 1) % labels_.size();
}

ProcessIndex LabeledRing::left(ProcessIndex i) const {
  HRING_EXPECTS(i < labels_.size());
  return (i + labels_.size() - 1) % labels_.size();
}

std::size_t LabeledRing::multiplicity(Label label) const {
  const auto it = multiplicity_.find(label.value());
  return it == multiplicity_.end() ? 0 : it->second;
}

std::size_t LabeledRing::max_multiplicity() const {
  std::size_t best = 0;
  for (const auto& [value, count] : multiplicity_) {
    best = std::max(best, count);
  }
  return best;
}

std::size_t LabeledRing::distinct_labels() const {
  return multiplicity_.size();
}

LabelSequence LabeledRing::llabels(ProcessIndex i, std::size_t m) const {
  HRING_EXPECTS(i < labels_.size());
  const std::size_t n = labels_.size();
  LabelSequence out;
  out.reserve(m);
  for (std::size_t t = 0; t < m; ++t) {
    out.push_back(labels_[(i + n - (t % n)) % n]);
  }
  return out;
}

std::size_t LabeledRing::label_bits() const {
  return words::label_bits(labels_);
}

ProcessIndex LabeledRing::true_leader() const {
  const std::size_t n = labels_.size();
  HRING_EXPECTS(!words::has_rotational_symmetry(labels_));
  // LLabels(p_i)^n is the rotation, starting at index (n - i) mod n, of the
  // "counter-clockwise unrolling" s[j] = labels[(n - j) mod n]. Minimizing
  // over i therefore reduces to Booth's least rotation of s.
  LabelSequence ccw;
  ccw.reserve(n);
  for (std::size_t j = 0; j < n; ++j) ccw.push_back(labels_[(n - j) % n]);
  const std::size_t start = words::least_rotation_index(ccw);
  return (n - start) % n;
}

ProcessIndex LabeledRing::true_leader_naive() const {
  const std::size_t n = labels_.size();
  HRING_EXPECTS(!words::has_rotational_symmetry(labels_));
  ProcessIndex best = 0;
  LabelSequence best_seq = llabels(0, n);
  for (ProcessIndex i = 1; i < n; ++i) {
    LabelSequence cand = llabels(i, n);
    if (std::lexicographical_compare(cand.begin(), cand.end(),
                                     best_seq.begin(), best_seq.end())) {
      best = i;
      best_seq = std::move(cand);
    }
  }
  return best;
}

std::string LabeledRing::to_string() const {
  return words::to_string(labels_);
}

}  // namespace hring::ring
