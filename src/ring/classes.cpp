#include "ring/classes.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "words/lyndon.hpp"

namespace hring::ring {

bool in_class_Kk(const LabeledRing& ring, std::size_t k) {
  HRING_EXPECTS(k >= 1);
  return ring.max_multiplicity() <= k;
}

bool in_class_A(const LabeledRing& ring) {
  return !words::has_rotational_symmetry(ring.labels());
}

bool in_class_Ustar(const LabeledRing& ring) {
  for (const Label l : ring.labels()) {
    if (ring.multiplicity(l) == 1) return true;
  }
  return false;
}

bool in_class_K1(const LabeledRing& ring) { return in_class_Kk(ring, 1); }

std::vector<Label> unique_labels(const LabeledRing& ring) {
  std::vector<Label> out;
  for (const Label l : ring.labels()) {
    if (ring.multiplicity(l) == 1) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string RingClassReport::to_string() const {
  std::string out = "n=" + std::to_string(n);
  out += " |L|=" + std::to_string(distinct_labels);
  out += " max_mlty=" + std::to_string(max_multiplicity);
  out += asymmetric ? " A" : " symmetric";
  if (has_unique_label) out += " U*";
  return out;
}

RingClassReport classify(const LabeledRing& ring) {
  RingClassReport report;
  report.n = ring.size();
  report.distinct_labels = ring.distinct_labels();
  report.max_multiplicity = ring.max_multiplicity();
  report.asymmetric = in_class_A(ring);
  report.has_unique_label = in_class_Ustar(ring);
  return report;
}

}  // namespace hring::ring
