// Token stream for hring-lint (tools/hring_lint/README.md).
//
// A single-pass C++ tokenizer: identifiers, numbers, string/char literals
// (including raw strings), and punctuation with longest-match operators.
// Comments are not tokens — they are collected separately per line so the
// expectation (`hring-expect`), suppression (`hring-nolint`) and hot-path
// annotation comments stay addressable by the checks without cluttering
// the structural parse. Preprocessor directives are skipped wholesale
// (including line continuations): the linter analyses the file as written,
// not the preprocessed translation unit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hring::lint {

enum class TokKind : std::uint8_t {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  /// View into SourceFile::content — valid while the file is alive.
  std::string_view text;
  std::uint32_t line = 0;  // 1-based
  std::uint32_t col = 0;   // 1-based

  [[nodiscard]] bool is(std::string_view t) const { return text == t; }
  [[nodiscard]] bool is_ident() const { return kind == TokKind::kIdent; }
};

/// One comment (`//...` or `/*...*/`), with the line it starts on.
struct Comment {
  std::string_view text;  // includes the comment markers
  std::uint32_t line = 0;
};

/// A lexed file. `content` owns the bytes every token/comment views into.
struct SourceFile {
  std::string path;
  std::string content;
  std::vector<Token> tokens;    // terminated by a kEof token
  std::vector<Comment> comments;
};

/// Lexes `content` in place (tokens/comments view into file.content).
void lex(SourceFile& file);

/// Reads `path` from disk and lexes it. Returns false when unreadable.
[[nodiscard]] bool lex_file(const std::string& path, SourceFile& file);

}  // namespace hring::lint
