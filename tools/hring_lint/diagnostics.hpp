// Diagnostics for hring-lint: clang-style rendering
// (`file:line:col: warning: message [hring-<check>]`), stable ordering,
// and per-check counts for the CI summary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hring::lint {

struct Diagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string check;  // "codec-symmetry", "guard-purity", ...
  std::string message;

  [[nodiscard]] std::string render() const {
    return file + ":" + std::to_string(line) + ":" + std::to_string(col) +
           ": warning: " + message + " [hring-" + check + "]";
  }
};

inline void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.check < b.check;
            });
}

inline std::map<std::string, std::size_t> count_by_check(
    const std::vector<Diagnostic>& diags) {
  std::map<std::string, std::size_t> counts;
  for (const Diagnostic& d : diags) ++counts[d.check];
  return counts;
}

}  // namespace hring::lint
