#include "verify.hpp"

#include <cctype>
#include <cstdlib>

namespace hring::lint {

void collect_expectations(const SourceFile& file,
                          std::vector<Expectation>& out) {
  constexpr std::string_view kMarker = "hring-expect";
  for (const Comment& c : file.comments) {
    std::size_t at = c.text.find(kMarker);
    while (at != std::string_view::npos) {
      std::size_t i = at + kMarker.size();
      std::int64_t offset = 0;
      if (i < c.text.size() && c.text[i] == '@') {
        ++i;
        const bool neg = i < c.text.size() && c.text[i] == '-';
        if (i < c.text.size() && (c.text[i] == '+' || c.text[i] == '-')) ++i;
        std::int64_t value = 0;
        while (i < c.text.size() &&
               std::isdigit(static_cast<unsigned char>(c.text[i])) != 0) {
          value = value * 10 + (c.text[i] - '0');
          ++i;
        }
        offset = neg ? -value : value;
      }
      if (i < c.text.size() && c.text[i] == ':') {
        ++i;
        while (i < c.text.size() &&
               std::isspace(static_cast<unsigned char>(c.text[i])) != 0) {
          ++i;
        }
        std::size_t end = i;
        while (end < c.text.size() &&
               (std::isalnum(static_cast<unsigned char>(c.text[end])) != 0 ||
                c.text[end] == '-')) {
          ++end;
        }
        if (end > i) {
          Expectation e;
          e.file = file.path;
          e.line = static_cast<std::uint32_t>(
              static_cast<std::int64_t>(c.line) + offset);
          e.check = std::string(c.text.substr(i, end - i));
          out.push_back(e);
        }
      }
      at = c.text.find(kMarker, at + kMarker.size());
    }
  }
}

bool verify_expectations(const std::vector<Diagnostic>& diags,
                         const std::vector<Expectation>& expectations,
                         std::vector<std::string>& failures) {
  std::vector<bool> diag_matched(diags.size(), false);
  for (const Expectation& e : expectations) {
    bool matched = false;
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (diag_matched[i]) continue;
      if (diags[i].file == e.file && diags[i].line == e.line &&
          diags[i].check == e.check) {
        diag_matched[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      failures.push_back("expected diagnostic not emitted: " + e.file + ":" +
                         std::to_string(e.line) + " [hring-" + e.check + "]");
    }
  }
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (!diag_matched[i]) {
      failures.push_back("unexpected diagnostic: " + diags[i].render());
    }
  }
  return failures.empty();
}

}  // namespace hring::lint
