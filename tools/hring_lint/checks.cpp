#include "checks.hpp"

#include <array>
#include <optional>
#include <set>
#include <string_view>

#include "concurrency_model.hpp"
#include "protocol_model.hpp"

namespace hring::lint {
namespace {

[[nodiscard]] bool is_member_ident(const Token& tok) {
  return tok.is_ident() && tok.text.size() > 1 && tok.text.back() == '_';
}

[[nodiscard]] bool suppressed(const SourceFile& file, std::uint32_t line,
                              const std::string& check) {
  for (const Comment& c : file.comments) {
    if (c.line != line) continue;
    const std::size_t at = c.text.find("hring-nolint");
    if (at == std::string_view::npos) continue;
    const std::size_t paren = c.text.find('(', at);
    if (paren == std::string_view::npos) return true;  // bare: all checks
    if (c.text.find(check, paren) != std::string_view::npos) return true;
  }
  return false;
}

void emit(const SourceFile& file, std::uint32_t line, std::uint32_t col,
          const std::string& check, std::string message,
          std::vector<Diagnostic>& diags) {
  if (suppressed(file, line, check)) return;
  diags.push_back({file.path, line, col, check, std::move(message)});
}

/// True when tokens[i] is the name of a call: `name (`.
[[nodiscard]] bool is_call(const std::vector<Token>& t, std::size_t i) {
  return t[i].is_ident() && i + 1 < t.size() && t[i + 1].is("(");
}

/// True when the call at `i` has an explicit receiver (`x.f(...)`).
[[nodiscard]] bool has_receiver(const std::vector<Token>& t, std::size_t i) {
  return i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
}

/// True for classes with the guarded-action shape: Process subclasses and
/// the batch mirrors, which expose enabled()/fire() without deriving.
[[nodiscard]] bool guarded_shape(const Model& model, const std::string& name,
                                 const ClassInfo& cls) {
  if (name.empty()) return false;
  if (model.derives_from(name)) return true;
  return !model.methods_named(cls, "enabled").empty() &&
         !model.methods_named(cls, "fire").empty();
}

// ---------------------------------------------------------------------------
// codec-symmetry

void check_codec_symmetry(const Model& model, std::vector<Diagnostic>& diags) {
  for (const auto& [name, cls] : model.classes) {
    if (name.empty() || !model.derives_from(name)) continue;
    const bool has_enc = !model.methods_named(cls, "encode").empty();
    const bool has_dec = !model.methods_named(cls, "decode").empty();
    if (has_enc && !has_dec && cls.file != nullptr) {
      emit(*cls.file, cls.line, 1, "codec-symmetry",
           "class '" + name +
               "' overrides encode() but not decode(); the model checker's "
               "snapshot restore would silently fall back to "
               "Process::decode",
           diags);
    }
    if (has_dec && !has_enc && cls.file != nullptr) {
      emit(*cls.file, cls.line, 1, "codec-symmetry",
           "class '" + name +
               "' overrides decode() but not encode(); snapshots taken via "
               "the inherited encode() cannot carry the state decode() "
               "restores",
           diags);
    }
    for (const MethodInfo* m : model.methods_named(cls, "decode")) {
      if (!m->has_body || m->file == nullptr) continue;
      const std::vector<Token>& t = m->file->tokens;
      std::size_t call_idx = m->body_end;
      for (std::size_t i = m->body_begin; i < m->body_end; ++i) {
        if (is_call(t, i) && t[i].is("decode_spec_vars")) {
          call_idx = i;
          break;
        }
      }
      if (call_idx == m->body_end) {
        emit(*m->file, m->line, 1, "codec-symmetry",
             "decode() must restore the spec variables via "
             "decode_spec_vars before reading its own fields",
             diags);
        continue;
      }
      for (std::size_t i = m->body_begin; i < call_idx; ++i) {
        if (is_member_ident(t[i]) || t[i].is("this")) {
          emit(*m->file, t[i].line, t[i].col, "codec-symmetry",
               "decode() touches '" + std::string(t[i].text) +
                   "' before decode_spec_vars has restored the spec "
                   "variables",
               diags);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guard-purity

void check_guard_purity(const Model& model, std::vector<Diagnostic>& diags) {
  static const std::set<std::string_view> kContextOps = {"consume", "send",
                                                         "note_action"};
  static const std::set<std::string_view> kSpecMutators = {
      "declare_leader", "set_leader_label", "set_done", "halt_self"};
  static const std::set<std::string_view> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

  for (const auto& [name, cls] : model.classes) {
    if (name.empty() || !model.derives_from(name)) continue;
    std::set<std::pair<std::string, std::uint32_t>> seen;
    for (const MethodInfo* m : model.methods_named(cls, "enabled")) {
      if (m->file == nullptr) continue;
      if (!m->is_const && seen.insert({m->file->path, m->line}).second) {
        emit(*m->file, m->line, 1, "guard-purity",
             "enabled() must be declared const: guards are side-effect "
             "free (model §II)",
             diags);
      }
      if (!m->has_body) continue;
      const std::vector<Token>& t = m->file->tokens;
      for (std::size_t i = m->body_begin; i < m->body_end; ++i) {
        const Token& tok = t[i];
        if (is_call(t, i)) {
          if (kContextOps.count(tok.text) > 0) {
            emit(*m->file, tok.line, tok.col, "guard-purity",
                 "enabled() calls Context::" + std::string(tok.text) +
                     "(); guards may only inspect state, never "
                     "consume/send/label",
                 diags);
          } else if (!has_receiver(t, i) &&
                     kSpecMutators.count(tok.text) > 0) {
            emit(*m->file, tok.line, tok.col, "guard-purity",
                 "enabled() calls the spec mutator " +
                     std::string(tok.text) + "()",
                 diags);
          } else if (!has_receiver(t, i) &&
                     model.has_nonconst_method(cls, std::string(tok.text))) {
            emit(*m->file, tok.line, tok.col, "guard-purity",
                 "enabled() calls the non-const member '" +
                     std::string(tok.text) + "'",
                 diags);
          }
          continue;
        }
        if (tok.is("const_cast")) {
          emit(*m->file, tok.line, tok.col, "guard-purity",
               "enabled() casts away const", diags);
          continue;
        }
        // Member mutation: `x_ = ...`, `this->x = ...`, `x_[i] = ...`,
        // `++x_`, `x_--`, and compound assignments.
        const bool is_assign =
            tok.kind == TokKind::kPunct && kAssignOps.count(tok.text) > 0;
        const bool is_incdec = tok.is("++") || tok.is("--");
        if (!is_assign && !is_incdec) continue;
        std::size_t lhs = i;  // find the mutated operand's identifier
        bool member = false;
        if (lhs > 0 && t[lhs - 1].is("]")) {
          std::size_t depth = 0;
          while (lhs > 0) {
            --lhs;
            if (t[lhs].is("]")) ++depth;
            if (t[lhs].is("[") && --depth == 0) break;
          }
        }
        if (lhs > 0 && is_member_ident(t[lhs - 1])) member = true;
        if (lhs > 2 && t[lhs - 2].is("->") && t[lhs - 3].is("this")) {
          member = true;
        }
        if (is_incdec && i + 1 < m->body_end &&
            (is_member_ident(t[i + 1]) ||
             (t[i + 1].is("this") && i + 3 < m->body_end &&
              t[i + 2].is("->")))) {
          member = true;
        }
        if (member) {
          emit(*m->file, tok.line, tok.col, "guard-purity",
               "enabled() mutates a member; guards are side-effect free",
               diags);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// consume-discipline

class ConsumePathAnalyzer {
 public:
  ConsumePathAnalyzer(const SourceFile& file, std::size_t begin,
                      std::size_t end)
      : t_(file.tokens), end_(end), pos_(begin) {}

  [[nodiscard]] ConsumeSummary run() {
    const Paths p = parse_seq(end_);
    ConsumeSummary s;
    s.in_loop = in_loop_;
    s.max_on_path = static_cast<std::size_t>(
        std::max({p.cont, p.brk, p.ret, 0}));
    return s;
  }

 private:
  /// Max consume() calls along paths that fall through / break-or-continue
  /// out / return out of the construct; -1 = no such path.
  struct Paths {
    int cont = 0;
    int brk = -1;
    int ret = -1;
  };

  [[nodiscard]] bool at(std::string_view s) const {
    return pos_ < end_ && t_[pos_].is(s);
  }

  /// Counts consume() calls in [from, to); flags loop containment.
  int count_consumes(std::size_t from, std::size_t to) {
    int n = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (t_[i].is("consume") && i + 1 < to && t_[i + 1].is("(")) {
        ++n;
        if (loop_depth_ > 0) in_loop_ = true;
      }
    }
    return n;
  }

  std::size_t skip_match(std::size_t i, std::string_view open,
                         std::string_view close) {
    std::size_t depth = 0;
    for (; i < end_; ++i) {
      if (t_[i].is(open)) ++depth;
      if (t_[i].is(close) && --depth == 0) return i + 1;
    }
    return i;
  }

  /// Consumes one statement starting at pos_.
  Paths parse_stmt() {
    if (at("{")) {
      const std::size_t close = skip_match(pos_, "{", "}");
      const std::size_t save = pos_;
      pos_ = save + 1;
      const Paths p = parse_seq(close - 1);
      pos_ = close;
      return p;
    }
    if (at("if")) {
      ++pos_;
      if (at("constexpr")) ++pos_;
      const std::size_t cond_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      const int c0 = count_consumes(cond_begin, pos_);
      const Paths a = parse_stmt();
      Paths b{0, -1, -1};
      if (at("else")) {
        ++pos_;
        b = parse_stmt();
      }
      Paths r;
      r.cont = std::max(a.cont, b.cont);
      if (r.cont >= 0) r.cont += c0;
      r.brk = std::max(a.brk, b.brk);
      if (r.brk >= 0) r.brk += c0;
      r.ret = std::max(a.ret, b.ret);
      if (r.ret >= 0) r.ret += c0;
      return r;
    }
    if (at("while") || at("for")) {
      ++pos_;
      const std::size_t head_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      ++loop_depth_;
      const int head = count_consumes(head_begin, pos_);
      const Paths body = parse_stmt();
      --loop_depth_;
      Paths r;
      r.cont = head + std::max({body.cont, body.brk, 0});
      if (body.ret >= 0) r.ret = head + body.ret;
      return r;
    }
    if (at("do")) {
      ++pos_;
      ++loop_depth_;
      const Paths body = parse_stmt();
      --loop_depth_;
      if (at("while")) {
        ++pos_;
        const std::size_t head_begin = pos_;
        pos_ = skip_match(pos_, "(", ")");
        count_consumes(head_begin, pos_);
      }
      if (at(";")) ++pos_;
      Paths r;
      r.cont = std::max({body.cont, body.brk, 0});
      r.ret = body.ret;
      return r;
    }
    if (at("switch")) {
      ++pos_;
      const std::size_t cond_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      const int c0 = count_consumes(cond_begin, pos_);
      Paths r;
      if (!at("{")) return r;
      const std::size_t close = skip_match(pos_, "{", "}");
      ++pos_;
      // Each case/default label opens a segment; statements within a
      // segment combine sequentially, segments combine as alternatives.
      // `break` exits the switch. Fallthrough between consuming cases is
      // not modeled (§II actions do not rely on it), and a switch whose
      // every segment terminates — with a default present — has no
      // fall-out path at all (Peterson's relay switch ends in
      // `default: HRING_ASSERT(false);`).
      bool has_default = false;
      int best = -1;      // max consumes on a fall-out or break path
      int best_ret = -1;  // max consumes on a return path
      int running = 0;    // current segment; -1 once it terminated
      int seg_stmts = 0;  // adjacent labels share one (empty) segment
      while (pos_ < close - 1) {
        if (at("case") || at("default")) {
          has_default |= at("default");
          if (seg_stmts > 0 && running >= 0) best = std::max(best, running);
          running = 0;
          seg_stmts = 0;
          while (pos_ < close - 1 && !at(":")) ++pos_;
          ++pos_;
          continue;
        }
        const std::size_t before = pos_;
        const std::size_t saved_end = end_;
        end_ = close - 1;
        const Paths s = parse_stmt();
        end_ = saved_end;
        if (pos_ == before) {  // safety: always make progress
          ++pos_;
          continue;
        }
        ++seg_stmts;
        if (running < 0) continue;  // dead code after a terminator
        if (s.ret >= 0) best_ret = std::max(best_ret, running + s.ret);
        if (s.brk >= 0) best = std::max(best, running + s.brk);
        running = s.cont >= 0 ? running + s.cont : -1;
      }
      pos_ = close;
      if (seg_stmts > 0 && running >= 0) best = std::max(best, running);
      if (!has_default) best = std::max(best, 0);  // no-matching-label path
      r.cont = best >= 0 ? c0 + best : -1;
      if (best_ret >= 0) r.ret = c0 + best_ret;
      return r;
    }
    if (at("return")) {
      const std::size_t begin = pos_;
      pos_ = skip_expression_to_semicolon();
      return {-1, -1, count_consumes(begin, pos_)};
    }
    if (at("break") || at("continue")) {
      ++pos_;
      if (at(";")) ++pos_;
      return {-1, 0, -1};
    }
    if (at("else") || at(";")) {  // stray
      ++pos_;
      return {0, -1, -1};
    }
    if (at("throw")) {
      pos_ = skip_expression_to_semicolon();
      return {-1, -1, -1};
    }
    // Expression / declaration statement.
    const std::size_t begin = pos_;
    pos_ = skip_expression_to_semicolon();
    if (is_noreturn_stmt(begin, pos_)) return {-1, -1, -1};
    return {count_consumes(begin, pos_), -1, -1};
  }

  /// True for statements that provably never complete: `HRING_ASSERT(false)`
  /// and friends (always-on, [[noreturn]] on failure — support/assert.hpp),
  /// plain aborts, and unreachable markers. These terminate a control-flow
  /// path exactly like a return does.
  [[nodiscard]] bool is_noreturn_stmt(std::size_t begin,
                                      std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      const Token& tok = t_[i];
      if (!tok.is_ident()) continue;
      if (tok.is("HRING_ASSERT") || tok.is("HRING_EXPECTS") ||
          tok.is("HRING_ENSURES")) {
        return i + 2 < end && t_[i + 1].is("(") && t_[i + 2].is("false") &&
               i + 3 < end && t_[i + 3].is(")");
      }
      if (tok.is("abort") || tok.is("assert_fail") ||
          tok.is("__builtin_unreachable") || tok.is("unreachable") ||
          tok.is("exit") || tok.is("_Exit") || tok.is("terminate")) {
        return i + 1 < end && t_[i + 1].is("(");
      }
      return false;  // first identifier decides
    }
    return false;
  }

  std::size_t skip_expression_to_semicolon() {
    std::size_t i = pos_;
    while (i < end_) {
      if (t_[i].is("(")) {
        i = skip_match(i, "(", ")");
        continue;
      }
      if (t_[i].is("{")) {
        i = skip_match(i, "{", "}");
        continue;
      }
      if (t_[i].is(";")) return i + 1;
      ++i;
    }
    return i;
  }

  Paths parse_seq(std::size_t end) {
    int running = 0;
    int brk = -1;
    int ret = -1;
    while (pos_ < end) {
      const std::size_t before = pos_;
      const std::size_t saved_end = end_;
      end_ = end;
      const Paths r = parse_stmt();
      end_ = saved_end;
      if (pos_ == before) {  // safety: always make progress
        ++pos_;
        continue;
      }
      if (r.ret >= 0) ret = std::max(ret, running + r.ret);
      if (r.brk >= 0) brk = std::max(brk, running + r.brk);
      if (r.cont >= 0) {
        running += r.cont;
      } else {
        pos_ = end;
        return {-1, brk, ret};
      }
    }
    return {running, brk, ret};
  }

  const std::vector<Token>& t_;
  std::size_t end_;
  std::size_t pos_;
  int loop_depth_ = 0;
  bool in_loop_ = false;
};

void check_consume_discipline(const Model& model,
                              std::vector<Diagnostic>& diags) {
  for (const auto& [name, cls] : model.classes) {
    if (!guarded_shape(model, name, cls)) continue;
    for (const MethodInfo* m : model.methods_named(cls, "fire")) {
      if (!m->has_body || m->file == nullptr) continue;
      const ConsumeSummary s =
          analyze_consume_paths(*m->file, m->body_begin, m->body_end);
      if (s.in_loop) {
        emit(*m->file, m->line, 1, "consume-discipline",
             "fire() calls consume() inside a loop; an action receives "
             "the head message at most once",
             diags);
      }
      if (s.max_on_path > 1) {
        emit(*m->file, m->line, 1, "consume-discipline",
             "fire() may call consume() " + std::to_string(s.max_on_path) +
                 " times on one path; the model's rcv happens exactly once "
                 "per action",
             diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hot-path-alloc

void scan_body_for_allocations(const MethodInfo& m, const std::string& where,
                               std::vector<Diagnostic>& diags) {
  static const std::set<std::string_view> kAllocatingTypes = {
      "string",        "vector",       "deque",
      "list",          "map",          "multimap",
      "set",           "multiset",     "unordered_map",
      "unordered_set", "function",     "ostringstream",
      "stringstream",  "istringstream", "basic_string",
      "LabelSequence"};
  static const std::set<std::string_view> kAllocatingCalls = {
      "to_string", "make_unique", "make_shared", "substr"};

  const std::vector<Token>& t = m.file->tokens;
  for (std::size_t i = m.body_begin; i < m.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.is("new")) {
      emit(*m.file, tok.line, tok.col, "hot-path-alloc",
           "operator new in " + where +
               "; the firing path must stay allocation-free",
           diags);
      continue;
    }
    if (!tok.is_ident()) continue;
    if (kAllocatingCalls.count(tok.text) > 0 && i + 1 < m.body_end &&
        (t[i + 1].is("(") || t[i + 1].is("<"))) {
      emit(*m.file, tok.line, tok.col, "hot-path-alloc",
           "call to allocating '" + std::string(tok.text) + "' in " + where,
           diags);
      continue;
    }
    if (kAllocatingTypes.count(tok.text) == 0) continue;
    if (i == 0 || !t[i - 1].is("::")) continue;  // qualified uses only
    // Skip template arguments, then decide from the following token
    // whether this names a by-value construction or declaration.
    std::size_t j = i + 1;
    if (j < m.body_end && t[j].is("<")) {
      std::size_t depth = 0;
      for (; j < m.body_end; ++j) {
        if (t[j].is("<")) ++depth;
        if (t[j].is(">") && --depth == 0) {
          ++j;
          break;
        }
        if (t[j].is(">>")) {
          if (depth <= 2) {
            ++j;
            break;
          }
          depth -= 2;
        }
      }
    }
    if (j >= m.body_end) continue;
    if (t[j].is_ident() || t[j].is("(") || t[j].is("{")) {
      emit(*m.file, tok.line, tok.col, "hot-path-alloc",
           "constructs allocating type '" + std::string(tok.text) +
               "' in " + where,
           diags);
    }
  }
}

void check_hot_path_alloc(const Model& model, std::vector<Diagnostic>& diags) {
  for (const auto& [name, cls] : model.classes) {
    const bool guarded = guarded_shape(model, name, cls);
    for (const MethodInfo& m : cls.methods) {
      if (m.file == nullptr || !m.has_body) continue;
      const bool action_body =
          guarded && (m.name == "enabled" || m.name == "fire");
      if (action_body) {
        scan_body_for_allocations(
            m, m.name == "enabled" ? "enabled() (guard)" : "fire() (action)",
            diags);
      } else if (m.hot_path) {
        scan_body_for_allocations(m, "'" + m.name + "' (hring-lint: hot-path)",
                                  diags);
      }
    }
  }
}

}  // namespace

void emit_diag(const SourceFile& file, std::uint32_t line, std::uint32_t col,
               const std::string& check, std::string message,
               std::vector<Diagnostic>& diags) {
  emit(file, line, col, check, std::move(message), diags);
}

ConsumeSummary analyze_consume_paths(const SourceFile& file,
                                     std::size_t body_begin,
                                     std::size_t body_end) {
  ConsumePathAnalyzer analyzer(file, body_begin, body_end);
  return analyzer.run();
}

void run_checks(const Model& model, const std::vector<std::string>& checks,
                std::vector<Diagnostic>& diags) {
  for (const std::string& check : checks) {
    if (check == "codec-symmetry") check_codec_symmetry(model, diags);
    if (check == "guard-purity") check_guard_purity(model, diags);
    if (check == "consume-discipline") check_consume_discipline(model, diags);
    if (check == "hot-path-alloc") check_hot_path_alloc(model, diags);
    if (check == "space-bound") check_space_bound(model, diags);
    if (check == "alphabet-closure") check_alphabet_closure(model, diags);
    if (check == "batch-mirror") check_batch_mirror(model, diags);
    if (check == "atomics-discipline") check_atomics_discipline(model, diags);
    if (check == "spsc-ownership") check_spsc_ownership(model, diags);
    if (check == "pairing") check_pairing(model, diags);
    if (check == "lost-wakeup") check_lost_wakeup(model, diags);
    if (check == "no-block-in-hot-path") {
      check_no_block_in_hot_path(model, diags);
    }
    if (check == "decode-before-trust") {
      check_decode_before_trust(model, diags);
    }
  }
  sort_diagnostics(diags);
}

}  // namespace hring::lint
