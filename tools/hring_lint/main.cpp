// hring-lint: protocol lints for the guarded-action codebase.
//
//   hring-lint [options] <file-or-dir>...      lint explicit sources
//   hring-lint -p <build-dir> [options]        lint the compilation database
//
// Options:
//   --checks=a,b     comma-separated subset of checks (default: all);
//                    `--checks=none` disables every check
//   --filter=SUBSTR  with -p: only files whose path contains SUBSTR
//   --verify         fixture mode: match diagnostics against hring-expect
//                    comments instead of printing them
//   --summary        print a per-check diagnostic count table
//   --list-checks    print the known checks and exit
//   --quiet          suppress diagnostics (exit status only)
//   --emit-ir=PATH   write the extracted ProtocolIR as JSON ("-" = stdout)
//   --json=PATH      write diagnostics as a JSON array ("-" = stdout)
//   --sarif=PATH     write diagnostics as SARIF 2.1.0 ("-" = stdout)
//   --cache-dir=DIR  replay diagnostics when the inputs' content hashes
//                    match a previous run (ignored under --verify and
//                    --emit-ir; see cache.hpp)
//
// Exit status: 0 clean / expectations matched, 1 diagnostics emitted /
// expectations missed, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "checks.hpp"
#include "compdb.hpp"
#include "diagnostics.hpp"
#include "lexer.hpp"
#include "protocol_model.hpp"
#include "sarif.hpp"
#include "source_model.hpp"
#include "support/json.hpp"
#include "verify.hpp"

namespace {

namespace fs = std::filesystem;
using namespace hring::lint;

void collect_dir(const std::string& dir, std::vector<std::string>& files) {
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".cpp" || p.extension() == ".hpp" ||
        p.extension() == ".h" || p.extension() == ".cc") {
      files.push_back(p.lexically_normal().string());
    }
  }
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!item.empty() && item != "none") out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Writes diagnostics as a JSON array of {file,line,col,check,message}
/// objects, for the CI per-check summary.
void write_diagnostics_json(const std::vector<Diagnostic>& diags,
                            std::ostream& out) {
  hring::support::JsonWriter w(out);
  w.begin_array();
  for (const Diagnostic& d : diags) {
    w.begin_object();
    w.key("file").value(d.file);
    w.key("line").value(static_cast<std::uint64_t>(d.line));
    w.key("col").value(static_cast<std::uint64_t>(d.col));
    w.key("check").value(d.check);
    w.key("message").value(d.message);
    w.end_object();
  }
  w.end_array();
}

/// Reads `path` into `bytes`. False when unreadable.
[[nodiscard]] bool read_file(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  bytes = std::move(buf).str();
  return true;
}

/// Opens PATH for writing ("-" selects stdout). Returns the stream to use,
/// or nullptr on failure.
std::ostream* open_sink(const std::string& path, std::ofstream& storage) {
  if (path == "-") return &std::cout;
  storage.open(path);
  if (!storage) {
    std::cerr << "hring-lint: cannot write " << path << "\n";
    return nullptr;
  }
  return &storage;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string build_dir;
  std::string filter;
  std::vector<std::string> checks = all_check_names();
  std::string emit_ir_path;
  std::string json_path;
  std::string sarif_path;
  std::string cache_dir;
  bool verify = false;
  bool summary = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-p" && i + 1 < argc) {
      build_dir = argv[++i];
    } else if (arg.rfind("--checks=", 0) == 0) {
      checks = split_csv(arg.substr(9));
      for (const std::string& c : checks) {
        bool known = false;
        for (const std::string& k : all_check_names()) known |= (k == c);
        if (!known) {
          std::cerr << "hring-lint: unknown check '" << c << "'\n";
          return 2;
        }
      }
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg.rfind("--emit-ir=", 0) == 0) {
      emit_ir_path = arg.substr(10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = arg.substr(12);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-checks") {
      for (const std::string& c : all_check_names()) {
        std::cout << "hring-" << c << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hring-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  std::vector<std::string> paths;
  if (!build_dir.empty()) {
    std::string error;
    if (!compdb_sources(build_dir, filter, paths, error)) {
      std::cerr << "hring-lint: " << error << "\n";
      return 2;
    }
  }
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      collect_dir(input, paths);
    } else {
      paths.push_back(input);
    }
  }
  if (paths.empty()) {
    std::cerr << "hring-lint: no input files (pass sources or -p "
                 "<build-dir>; see --help in the file header)\n";
    return 2;
  }
  // Deterministic parse order regardless of filesystem iteration order:
  // the emitted IR and diagnostics must not depend on it.
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Read every input up front: the bytes feed the cache key, and on a
  // miss they feed the lexer without a second disk pass.
  std::vector<std::string> contents(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!read_file(paths[i], contents[i])) {
      std::cerr << "hring-lint: cannot read " << paths[i] << "\n";
      return 2;
    }
  }

  // The cache replays whole-invocation diagnostics; --verify needs the
  // live files for expectation comments and --emit-ir needs the model.
  const bool use_cache =
      !cache_dir.empty() && !verify && emit_ir_path.empty();
  std::string cache_key;
  std::vector<Diagnostic> diags;
  bool cache_hit = false;
  if (use_cache) {
    std::vector<std::pair<std::string, std::uint64_t>> hashes;
    hashes.reserve(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      hashes.emplace_back(paths[i], fnv1a(contents[i]));
    }
    cache_key = cache_key_hex(checks, std::move(hashes));
    cache_hit = cache_load(cache_dir, cache_key, diags);
  }

  // Lex and parse everything first: the model is cross-file, so e.g. an
  // out-of-line decode() in a .cpp attaches to its class from the .hpp.
  std::vector<std::unique_ptr<SourceFile>> files;
  Model model;
  if (!cache_hit) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      auto file = std::make_unique<SourceFile>();
      file->path = paths[i];
      file->content = std::move(contents[i]);
      lex(*file);
      parse_file(*file, model);
      files.push_back(std::move(file));
    }
    run_checks(model, checks, diags);
    if (use_cache) cache_store(cache_dir, cache_key, diags);
  }

  if (!emit_ir_path.empty()) {
    const ProtocolIR ir = extract_protocol_ir(model, nullptr);
    std::ofstream storage;
    std::ostream* out = open_sink(emit_ir_path, storage);
    if (out == nullptr) return 2;
    write_protocol_ir(ir, *out);
    *out << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream storage;
    std::ostream* out = open_sink(json_path, storage);
    if (out == nullptr) return 2;
    write_diagnostics_json(diags, *out);
    *out << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream storage;
    std::ostream* out = open_sink(sarif_path, storage);
    if (out == nullptr) return 2;
    write_sarif(diags, checks, *out);
    *out << "\n";
  }

  if (verify) {
    std::vector<Expectation> expectations;
    for (const auto& file : files) collect_expectations(*file, expectations);
    std::vector<std::string> failures;
    if (verify_expectations(diags, expectations, failures)) {
      std::cout << "hring-lint: verified " << expectations.size()
                << " expectation(s) across " << paths.size() << " file(s)\n";
      return 0;
    }
    for (const std::string& f : failures) std::cerr << f << "\n";
    std::cerr << "hring-lint: verification failed (" << failures.size()
              << " mismatch(es))\n";
    return 1;
  }

  if (!quiet) {
    for (const Diagnostic& d : diags) std::cout << d.render() << "\n";
  }
  if (summary) {
    const auto counts = count_by_check(diags);
    std::cout << "hring-lint summary (" << paths.size() << " files"
              << (cache_hit ? ", cached" : "") << "):";
    for (const std::string& c : checks) {
      const auto it = counts.find(c);
      std::cout << " " << c << "="
                << (it == counts.end() ? std::size_t{0} : it->second);
    }
    std::cout << "\n";
  }
  return diags.empty() ? 0 : 1;
}
