#include "source_model.hpp"

#include <set>

namespace hring::lint {
namespace {

using Toks = std::vector<Token>;

/// Index of the token after the one matching the opener at `i`
/// (tokens[i] must be `open`). Returns the end index when unbalanced.
std::size_t skip_balanced(const Toks& t, std::size_t i, std::string_view open,
                          std::string_view close) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is(open)) {
      ++depth;
    } else if (t[i].is(close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

/// Skips a template argument/parameter list starting at `<`. `>>` closes
/// two levels. Returns the index after the closing `>`.
std::size_t skip_angles(const Toks& t, std::size_t i) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is("<")) {
      ++depth;
    } else if (t[i].is(">")) {
      if (--depth == 0) return i + 1;
    } else if (t[i].is(">>")) {
      if (depth <= 2) return i + 1;
      depth -= 2;
    } else if (t[i].is("(")) {
      i = skip_balanced(t, i, "(", ")") - 1;
    } else if (t[i].is(";") || t[i].is("{")) {
      return i;  // not a template list after all; bail out
    }
  }
  return i;
}

std::size_t skip_to_semicolon(const Toks& t, std::size_t i) {
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is("(")) {
      i = skip_balanced(t, i, "(", ")") - 1;
    } else if (t[i].is("{")) {
      i = skip_balanced(t, i, "{", "}") - 1;
    } else if (t[i].is(";")) {
      return i + 1;
    }
  }
  return i;
}

/// Expression contexts in which `ident (` is a call, not a declarator.
bool prev_blocks_declarator(const Token& prev) {
  static const std::set<std::string_view> kDeny = {
      "=",  "(",  ",",  "+",  "-",  "/",  "%",  "!",  "?",  "<",
      ">",  "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", ".",
      "->", "return"};
  return kDeny.count(prev.text) > 0;
}

class Parser {
 public:
  Parser(const SourceFile& file, Model& model)
      : file_(file), t_(file.tokens), model_(model) {}

  void run() { parse_scope(0, t_.size(), nullptr); }

 private:
  /// True when a `// hring-lint: hot-path` comment sits on or up to four
  /// lines above `line` (the method-name token's line).
  [[nodiscard]] bool hot_path_annotated(std::uint32_t line) const {
    for (const Comment& c : file_.comments) {
      if (c.line + 4 >= line && c.line <= line &&
          c.text.find("hring-lint: hot-path") != std::string_view::npos) {
        return true;
      }
    }
    return false;
  }

  ClassInfo& class_entry(const std::string& name, std::uint32_t line) {
    ClassInfo& cls = model_.classes[name];
    if (cls.name.empty()) {
      cls.name = name;
      cls.line = line;
      cls.file = &file_;
    }
    return cls;
  }

  /// Parses the base-specifier list between `:` and `{`; returns the index
  /// of the `{`.
  std::size_t parse_bases(std::size_t i, ClassInfo& cls) {
    std::string last_ident;
    for (; i < t_.size() && t_[i].kind != TokKind::kEof; ++i) {
      const Token& tok = t_[i];
      if (tok.is("{")) break;
      if (tok.is(",")) {
        if (!last_ident.empty()) cls.bases.push_back(last_ident);
        last_ident.clear();
        continue;
      }
      if (tok.is("<")) {
        i = skip_angles(t_, i) - 1;
        continue;
      }
      if (tok.is_ident() && !tok.is("public") && !tok.is("protected") &&
          !tok.is("private") && !tok.is("virtual")) {
        last_ident = std::string(tok.text);
      }
    }
    if (!last_ident.empty()) cls.bases.push_back(last_ident);
    return i;
  }

  /// Parses a member-function candidate anchored at `ident (`; returns the
  /// index to resume from, or `name_idx + 1` when it is not a function.
  std::size_t parse_function(std::size_t name_idx, ClassInfo* cls) {
    const Token& name_tok = t_[name_idx];
    std::string name(name_tok.text);
    std::string owner;  // out-of-line: Cls::name(...)
    if (name_idx >= 2 && t_[name_idx - 1].is("::") &&
        t_[name_idx - 2].is_ident()) {
      owner = std::string(t_[name_idx - 2].text);
    } else if (name_idx >= 1 && t_[name_idx - 1].is("~")) {
      name = "~" + name;
    }
    if (name_idx >= 1 && owner.empty() &&
        prev_blocks_declarator(t_[name_idx - 1])) {
      return name_idx + 1;
    }

    MethodInfo method;
    method.name = name;
    method.line = name_tok.line;
    method.file = &file_;

    std::size_t i = skip_balanced(t_, name_idx + 1, "(", ")");
    // Trailing specifiers: const/noexcept/override/final/ref-qualifiers,
    // then one of `;` (declaration), `{` (body), `:` (ctor-init list),
    // `=` (pure/defaulted/deleted).
    for (;;) {
      const Token& tok = t_[i];
      if (tok.is("const")) {
        method.is_const = true;
        ++i;
      } else if (tok.is("noexcept")) {
        ++i;
        if (t_[i].is("(")) i = skip_balanced(t_, i, "(", ")");
      } else if (tok.is("override")) {
        method.is_override = true;
        ++i;
      } else if (tok.is("final") || tok.is("&") || tok.is("&&") ||
                 tok.is("volatile")) {
        ++i;
      } else if (tok.is("->")) {
        // Trailing return type: runs to the body/terminator.
        ++i;
        while (i < t_.size() && !t_[i].is("{") && !t_[i].is(";") &&
               !t_[i].is("=") && t_[i].kind != TokKind::kEof) {
          if (t_[i].is("<")) {
            i = skip_angles(t_, i);
          } else if (t_[i].is("(")) {
            i = skip_balanced(t_, i, "(", ")");
          } else {
            ++i;
          }
        }
      } else {
        break;
      }
    }
    if (t_[i].is(":")) {
      // Constructor initializer list: `name(args)` or `name{args}` items
      // separated by commas, then the body brace.
      ++i;
      for (;;) {
        while (i < t_.size() && t_[i].kind != TokKind::kEof &&
               !t_[i].is("(") && !t_[i].is("{")) {
          if (t_[i].is("<")) {
            i = skip_angles(t_, i);
            continue;
          }
          ++i;
        }
        if (t_[i].is("(")) {
          i = skip_balanced(t_, i, "(", ")");
        } else if (t_[i].is("{")) {
          // `{` directly after the initializer name is a brace-init item;
          // after `)`/`}` it is the body.
          i = skip_balanced(t_, i, "{", "}");
        } else {
          return i;  // malformed; bail
        }
        if (t_[i].is(",")) {
          ++i;
          continue;
        }
        break;
      }
      // The body brace follows the last initializer.
      if (!t_[i].is("{")) return i;
    }
    if (t_[i].is(";")) {
      record(method, owner, cls);
      return i + 1;
    }
    if (t_[i].is("=")) {  // = 0; / = default; / = delete;
      i = skip_to_semicolon(t_, i);
      record(method, owner, cls);
      return i;
    }
    if (t_[i].is("{")) {
      const std::size_t body_end_excl = skip_balanced(t_, i, "{", "}");
      method.has_body = true;
      method.body_begin = i + 1;
      method.body_end = body_end_excl > 0 ? body_end_excl - 1 : i + 1;
      method.hot_path = hot_path_annotated(method.line);
      record(method, owner, cls);
      return body_end_excl;
    }
    return name_idx + 1;  // not a function after all
  }

  void record(MethodInfo& method, const std::string& owner, ClassInfo* cls) {
    if (!owner.empty()) {
      ClassInfo& target = class_entry(owner, method.line);
      target.methods.push_back(std::move(method));
    } else if (cls != nullptr) {
      cls->methods.push_back(std::move(method));
    }
    // Free functions with bodies keep hot-path annotations honored via a
    // synthetic "" class bucket.
    else if (method.has_body) {
      ClassInfo& target = model_.classes[""];
      target.file = &file_;
      target.methods.push_back(std::move(method));
    }
  }

  void parse_scope(std::size_t i, std::size_t end, ClassInfo* cls) {
    while (i < end && t_[i].kind != TokKind::kEof) {
      const Token& tok = t_[i];
      if (tok.is("namespace")) {
        ++i;
        while (i < end && !t_[i].is("{") && !t_[i].is(";")) ++i;
        if (t_[i].is("{")) {
          const std::size_t after = skip_balanced(t_, i, "{", "}");
          parse_scope(i + 1, after - 1, cls);
          i = after;
        } else {
          ++i;
        }
        continue;
      }
      if (tok.is("template")) {
        ++i;
        if (t_[i].is("<")) i = skip_angles(t_, i);
        continue;
      }
      if (tok.is("using") || tok.is("typedef") || tok.is("static_assert") ||
          tok.is("friend")) {
        i = skip_to_semicolon(t_, i);
        continue;
      }
      if (tok.is("enum")) {
        ++i;
        if (t_[i].is("class") || t_[i].is("struct")) ++i;
        std::string enum_name;
        std::uint32_t enum_line = 0;
        if (t_[i].is_ident()) {
          enum_name = std::string(t_[i].text);
          enum_line = t_[i].line;
        }
        while (i < end && !t_[i].is("{") && !t_[i].is(";")) ++i;
        if (t_[i].is("{")) {
          const std::size_t body_end_excl = skip_balanced(t_, i, "{", "}");
          if (!enum_name.empty() && model_.enums.count(enum_name) == 0) {
            EnumInfo info;
            info.name = enum_name;
            info.line = enum_line;
            info.file = &file_;
            // Enumerators are the idents in "expect one" position: right
            // after `{` or a depth-0 `,`. Initializer expressions (after
            // `=`) are skipped to the next depth-0 comma.
            bool expect = true;
            for (std::size_t j = i + 1; j + 1 < body_end_excl; ++j) {
              const Token& et = t_[j];
              if (et.is("(")) {
                j = skip_balanced(t_, j, "(", ")") - 1;
              } else if (et.is("{")) {
                j = skip_balanced(t_, j, "{", "}") - 1;
              } else if (et.is(",")) {
                expect = true;
              } else if (expect && et.is_ident()) {
                info.enumerators.push_back(std::string(et.text));
                expect = false;
              } else {
                expect = false;
              }
            }
            model_.enums.emplace(enum_name, std::move(info));
          }
          i = body_end_excl;
        }
        i = skip_to_semicolon(t_, i);
        continue;
      }
      if (tok.is("class") || tok.is("struct")) {
        ++i;
        while (t_[i].is("[")) {  // attributes
          while (i < end && !t_[i].is("]")) ++i;
          ++i;
        }
        if (!t_[i].is_ident()) {  // anonymous aggregate
          continue;
        }
        // Possibly qualified (`class ExecutionCore::FireContext`): the
        // terminal component names the class.
        std::size_t name_idx = i;
        ++i;
        while (t_[i].is("::") && t_[i + 1].is_ident()) {
          name_idx = i + 1;
          i += 2;
        }
        const Token& name_tok = t_[name_idx];
        if (t_[i].is("final")) ++i;
        if (t_[i].is(";")) {  // forward declaration
          ++i;
          continue;
        }
        if (!t_[i].is(":") && !t_[i].is("{")) {
          continue;  // `class Foo` used as an elaborated type specifier
        }
        ClassInfo& entry =
            class_entry(std::string(name_tok.text), name_tok.line);
        if (t_[i].is(":")) i = parse_bases(i + 1, entry);
        if (t_[i].is("{")) {
          const std::size_t after = skip_balanced(t_, i, "{", "}");
          if (entry.body_file == nullptr) {  // first definition site wins
            entry.body_file = &file_;
            entry.body_begin = i + 1;
            entry.body_end = after > 0 ? after - 1 : i + 1;
            entry.line = name_tok.line;
            entry.file = &file_;
          }
          parse_scope(i + 1, after - 1, &entry);
          i = skip_to_semicolon(t_, after - 1);
        }
        continue;
      }
      if (tok.is_ident() && i + 1 < end && t_[i + 1].is("(")) {
        i = parse_function(i, cls);
        continue;
      }
      if (tok.is("(")) {
        i = skip_balanced(t_, i, "(", ")");
        continue;
      }
      if (tok.is("{")) {
        i = skip_balanced(t_, i, "{", "}");
        continue;
      }
      ++i;
    }
  }

  const SourceFile& file_;
  const Toks& t_;
  Model& model_;
};

}  // namespace

bool Model::derives_from(const std::string& name,
                         const std::string& root) const {
  std::set<std::string> visited;
  std::vector<const std::string*> stack = {&name};
  while (!stack.empty()) {
    const std::string& cur = *stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    const auto it = classes.find(cur);
    if (it == classes.end()) continue;
    for (const std::string& base : it->second.bases) {
      if (base == root) return true;
      stack.push_back(&base);
    }
  }
  return false;
}

std::vector<const MethodInfo*> Model::methods_named(
    const ClassInfo& cls, const std::string& name) const {
  std::vector<const MethodInfo*> out;
  for (const MethodInfo& m : cls.methods) {
    if (m.name == name) out.push_back(&m);
  }
  return out;
}

bool Model::has_nonconst_method(const ClassInfo& cls,
                                const std::string& name) const {
  for (const MethodInfo& m : cls.methods) {
    if (m.name == name && !m.is_const) return true;
  }
  return false;
}

void parse_file(const SourceFile& file, Model& model) {
  model.files.push_back(&file);
  Parser parser(file, model);
  parser.run();
}

}  // namespace hring::lint
