#include "lexer.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hring::lint {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character operators, longest first, so "->*" wins over "->".
constexpr std::array<std::string_view, 22> kMultiOps = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=", "%=", ".*"};
constexpr std::array<std::string_view, 3> kMultiOps2 = {"&=", "|=", "^="};

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::uint32_t line() const { return line_; }
  [[nodiscard]] std::uint32_t col() const {
    return static_cast<std::uint32_t>(pos_ - line_start_ + 1);
  }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return text_.substr(from, pos_ - from);
  }

  void advance() {
    if (done()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }
  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) advance();
  }

  [[nodiscard]] bool starts_with(std::string_view s) const {
    return text_.compare(pos_, s.size(), s) == 0;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::size_t line_start_ = 0;
};

/// Consumes a quoted literal starting at the opening quote.
void skip_quoted(Cursor& c, char quote) {
  c.advance();  // opening quote
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\') {
      c.advance_by(2);
      continue;
    }
    c.advance();
    if (ch == quote) return;
  }
}

/// Consumes a raw string literal starting at the 'R' of R"delim(...)delim".
void skip_raw_string(Cursor& c) {
  c.advance();  // R
  c.advance();  // "
  std::string delim;
  while (!c.done() && c.peek() != '(') {
    delim.push_back(c.peek());
    c.advance();
  }
  c.advance();  // (
  const std::string close = ")" + delim + "\"";
  while (!c.done()) {
    if (c.starts_with(close)) {
      c.advance_by(close.size());
      return;
    }
    c.advance();
  }
}

}  // namespace

void lex(SourceFile& file) {
  file.tokens.clear();
  file.comments.clear();
  Cursor c(file.content);
  bool line_has_token = false;  // anything but whitespace seen on this line

  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\n') {
      line_has_token = false;
      c.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
      c.advance();
      continue;
    }
    // Preprocessor directive: '#' as the first non-whitespace of a line;
    // consume the logical line including backslash continuations.
    if (ch == '#' && !line_has_token) {
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.advance_by(2);
          continue;
        }
        if (c.peek() == '\n') break;
        c.advance();
      }
      continue;
    }
    line_has_token = true;
    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      while (!c.done() && c.peek() != '\n') c.advance();
      file.comments.push_back({c.slice(start), line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      c.advance_by(2);
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      c.advance_by(2);
      file.comments.push_back({c.slice(start), line});
      continue;
    }
    // Literals.
    if (ch == 'R' && c.peek(1) == '"') {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      const std::uint32_t col = c.col();
      skip_raw_string(c);
      file.tokens.push_back({TokKind::kString, c.slice(start), line, col});
      continue;
    }
    if (ch == '"' || ch == '\'') {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      const std::uint32_t col = c.col();
      skip_quoted(c, ch);
      file.tokens.push_back(
          {ch == '"' ? TokKind::kString : TokKind::kChar, c.slice(start),
           line, col});
      continue;
    }
    // Identifiers and keywords (keywords are just identifiers here).
    if (ident_start(ch)) {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      const std::uint32_t col = c.col();
      while (!c.done() && ident_cont(c.peek())) c.advance();
      file.tokens.push_back({TokKind::kIdent, c.slice(start), line, col});
      continue;
    }
    // Numbers (pp-number: digits, x/X, ', ., exponent signs).
    if (std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))) !=
                          0)) {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      const std::uint32_t col = c.col();
      while (!c.done()) {
        const char d = c.peek();
        if (ident_cont(d) || d == '\'' || d == '.') {
          c.advance();
          continue;
        }
        if ((d == '+' || d == '-') && !c.done()) {
          const char prev = file.content[c.pos() - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.advance();
            continue;
          }
        }
        break;
      }
      file.tokens.push_back({TokKind::kNumber, c.slice(start), line, col});
      continue;
    }
    // Punctuation: longest-match against the operator tables.
    {
      const std::size_t start = c.pos();
      const std::uint32_t line = c.line();
      const std::uint32_t col = c.col();
      std::size_t len = 1;
      for (const std::string_view op : kMultiOps) {
        if (c.starts_with(op)) {
          len = op.size();
          break;
        }
      }
      if (len == 1) {
        for (const std::string_view op : kMultiOps2) {
          if (c.starts_with(op)) {
            len = op.size();
            break;
          }
        }
      }
      c.advance_by(len);
      file.tokens.push_back({TokKind::kPunct, c.slice(start), line, col});
    }
  }
  file.tokens.push_back({TokKind::kEof, {}, c.line(), 1});
}

bool lex_file(const std::string& path, SourceFile& file) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  file.path = path;
  file.content = buf.str();
  lex(file);
  return true;
}

}  // namespace hring::lint
