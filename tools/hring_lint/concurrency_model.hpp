// Concurrency-discipline model and checks (tools/hring_lint).
//
// Layer 5 of the static-analysis stack (docs/STATIC_ANALYSIS.md): the
// paper's unidirectional FIFO links make every cross-thread edge in the
// runtime a producer→consumer pair with a fixed ownership story, so the
// discipline the in-host runtime follows by convention — own cursor
// relaxed, opposite cursor acquire, publish with release, publish before
// ringing the doorbell, re-check after waking, decode before trusting
// wire bytes — can be stated as source-level rules and enforced on every
// path, not just the schedules TSan happens to observe.
//
// Annotation grammar (comments read by this model):
//
//   // hring-role: producer|consumer|coordinator|watchdog
//       Up to four lines above a function. Attributes every access in the
//       body to that thread role.
//   // hring-shared: <writers>-><readers>
//   // hring-shared: <role-list>
//       On a member's line or the line directly above. The arrow form
//       declares single-owner publication: roles left of `->` own (write)
//       the member, roles right of it observe it. The list form declares
//       mutex- or RMW-mediated sharing among the listed roles with no
//       single owner; only access control applies. Role lists are
//       comma-separated.
//
// The checks (dispatched from run_checks alongside the token and IR
// levels):
//
//   spsc-ownership        a role stores only its own cursor; owner loads
//                         are relaxed, opposite-role loads acquire, the
//                         publishing store release (Lamport SPSC, as in
//                         runtime/inhost/spsc_queue.hpp).
//   pairing               every release publication of an atomic member
//                         has an acquire-side observer reachable from a
//                         different role, and vice versa; one-sided
//                         std::atomic_thread_fence use is diagnosed.
//   lost-wakeup           a doorbell notify is dominated by its
//                         publication store; futex waits sit inside
//                         re-check loops (directly or at every call site
//                         of a named park primitive); condition-variable
//                         waits carry a predicate.
//   no-block-in-hot-path  no sleep/yield/futex/blocking-syscall sink is
//                         reachable in the call graph from enabled(),
//                         fire(), or a hot-path-annotated root.
//   decode-before-trust   raw wire bytes (wire::Frame locals, byte-buffer
//                         locals) reach protocol state only through
//                         wire::decode; any other read of undecoded bytes
//                         is diagnosed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "source_model.hpp"

namespace hring::lint {

// ---------------------------------------------------------------------------
// Thread roles

enum class Role : std::uint8_t {
  kProducer = 0,
  kConsumer = 1,
  kCoordinator = 2,
  kWatchdog = 3,
};
inline constexpr std::size_t kNumRoles = 4;

/// Role name as spelled in annotations; nullopt for unknown words.
[[nodiscard]] std::optional<Role> parse_role(std::string_view word);
[[nodiscard]] std::string_view role_name(Role role);

/// A set of roles (bitmask over Role).
struct RoleSet {
  std::uint8_t bits = 0;

  void add(Role r) { bits = static_cast<std::uint8_t>(bits | (1u << static_cast<unsigned>(r))); }
  [[nodiscard]] bool contains(Role r) const {
    return (bits & (1u << static_cast<unsigned>(r))) != 0;
  }
  [[nodiscard]] bool empty() const { return bits == 0; }
  /// Comma-joined role names, annotation order.
  [[nodiscard]] std::string render() const;
};

/// The `// hring-role:` annotation nearest above `line` (within four
/// lines), or nullopt. `malformed` reporting is the caller's job: an
/// hring-role comment with an unknown role word yields nullopt here and a
/// diagnostic from the spsc-ownership check.
[[nodiscard]] std::optional<Role> function_role(const SourceFile& file,
                                                std::uint32_t line);

/// A member's `// hring-shared:` declaration.
struct SharedDecl {
  std::string member;
  RoleSet writers;      // arrow form: owners; list form: the whole set
  RoleSet readers;      // arrow form only; empty in list form
  bool has_arrow = false;
  std::uint32_t line = 0;  // member declaration line
  bool malformed = false;
};

/// All hring-shared declarations of `file`, resolved to the member name
/// declared on the annotation's line (or the line below a standalone
/// comment). Used per-file, matching the atomics-discipline receiver
/// resolution.
[[nodiscard]] std::vector<SharedDecl> shared_decls(const SourceFile& file);

// ---------------------------------------------------------------------------
// Statement-path model
//
// A per-function statement tree generalizing the consume-discipline path
// analyzer: every body is parsed once into nested statements with token
// ranges, and the checks query structural facts (loop enclosure,
// guaranteed-before ordering) instead of re-walking tokens.

struct Stmt {
  enum class Kind : std::uint8_t {
    kExpr,    ///< expression / declaration statement
    kBlock,   ///< `{ ... }`
    kIf,      ///< children: then[, else]
    kLoop,    ///< while/for/do body
    kSwitch,  ///< children: the case segments as blocks
    kReturn,
    kJump,    ///< break / continue / goto / throw
  };
  Kind kind = Kind::kExpr;
  /// Token range of the whole statement, including any condition.
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Condition range for if/loop/switch ([cond_begin, cond_end)).
  std::size_t cond_begin = 0;
  std::size_t cond_end = 0;
  std::vector<Stmt> children;
};

/// Parses the body token range [begin, end) into a statement tree rooted
/// at a kBlock.
[[nodiscard]] Stmt build_stmt_tree(const SourceFile& file, std::size_t begin,
                                   std::size_t end);

/// True when token index `tok` lies inside a loop statement of `root`
/// (body or condition).
[[nodiscard]] bool loop_enclosed(const Stmt& root, std::size_t tok);

/// True when some token in [from, to) is guaranteed to execute before
/// token `tok` on every path through the tree: the range intersects a
/// preceding sibling (or earlier tokens of the same statement) on the
/// ancestor chain of `tok`. Conditional branches that merely *may* run
/// do not count.
[[nodiscard]] bool dominated_by_range(const Stmt& root, std::size_t tok,
                                      std::size_t from, std::size_t to);

// ---------------------------------------------------------------------------
// The five concurrency checks (dispatched by run_checks)

void check_spsc_ownership(const Model& model, std::vector<Diagnostic>& diags);
void check_pairing(const Model& model, std::vector<Diagnostic>& diags);
void check_lost_wakeup(const Model& model, std::vector<Diagnostic>& diags);
void check_no_block_in_hot_path(const Model& model,
                                std::vector<Diagnostic>& diags);
void check_decode_before_trust(const Model& model,
                               std::vector<Diagnostic>& diags);

}  // namespace hring::lint
