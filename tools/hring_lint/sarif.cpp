#include "sarif.hpp"

#include <ostream>

#include "support/json.hpp"

namespace hring::lint {
namespace {

/// Strips a leading "./" and any "../" prefixes: SARIF artifact URIs are
/// resolved against the repository root, and the CI lint job runs the
/// linter from there.
[[nodiscard]] std::string artifact_uri(const std::string& path) {
  std::string uri = path;
  while (uri.rfind("./", 0) == 0) uri.erase(0, 2);
  while (uri.rfind("../", 0) == 0) uri.erase(0, 3);
  return uri;
}

}  // namespace

void write_sarif(const std::vector<Diagnostic>& diags,
                 const std::vector<std::string>& checks, std::ostream& out) {
  hring::support::JsonWriter w(out);
  w.begin_object();
  w.key("$schema").value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.key("version").value("2.1.0");
  w.key("runs").begin_array();
  w.begin_object();
  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.key("name").value("hring-lint");
  w.key("informationUri")
      .value("https://github.com/hring/hring/blob/main/docs/"
             "STATIC_ANALYSIS.md");
  w.key("rules").begin_array();
  for (const std::string& check : checks) {
    w.begin_object();
    w.key("id").value("hring-" + check);
    w.key("shortDescription").begin_object();
    w.key("text").value(check + " (docs/STATIC_ANALYSIS.md)");
    w.end_object();
    w.key("defaultConfiguration").begin_object();
    w.key("level").value("warning");
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool
  w.key("results").begin_array();
  for (const Diagnostic& d : diags) {
    w.begin_object();
    w.key("ruleId").value("hring-" + d.check);
    w.key("level").value("warning");
    w.key("message").begin_object();
    w.key("text").value(d.message);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.key("uri").value(artifact_uri(d.file));
    w.end_object();
    w.key("region").begin_object();
    w.key("startLine").value(static_cast<std::uint64_t>(d.line));
    w.key("startColumn").value(static_cast<std::uint64_t>(d.col));
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();  // location
    w.end_array();   // locations
    w.end_object();  // result
  }
  w.end_array();   // results
  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
}

}  // namespace hring::lint
