// Expectation matching for the fixture self-tests (`--verify`), modeled on
// clang's -verify mode. A fixture marks each seeded violation with
//
//   bad();  // hring-expect: consume-discipline
//   // hring-expect@+2: guard-purity   (diagnostic two lines below)
//   // hring-expect@-1: codec-symmetry (diagnostic one line above)
//
// Verification passes iff the emitted diagnostics and the expectations
// match exactly (same file, line, and check). A diagnostic without an
// expectation, or an expectation without a diagnostic — e.g. because the
// expected check was disabled via --checks — fails the run.
#pragma once

#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "lexer.hpp"

namespace hring::lint {

struct Expectation {
  std::string file;
  std::uint32_t line = 0;
  std::string check;
};

/// Collects hring-expect comments from `file`.
void collect_expectations(const SourceFile& file,
                          std::vector<Expectation>& out);

/// Matches diagnostics against expectations; appends human-readable
/// mismatch reports to `failures`. Returns true when everything matched.
[[nodiscard]] bool verify_expectations(
    const std::vector<Diagnostic>& diags,
    const std::vector<Expectation>& expectations,
    std::vector<std::string>& failures);

}  // namespace hring::lint
