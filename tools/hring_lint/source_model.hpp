// Structural model extracted from the token streams (tools/hring_lint).
//
// The linter does not preprocess or type-check: it recovers exactly the
// structure the protocol checks need — class definitions with their base
// specifiers, member-function declarations/definitions (in-class and
// out-of-line `Cls::name(...)`), constness/override-ness, and body token
// ranges — and resolves "derives from hring::sim::Process" transitively
// across every file of the invocation. Base classes are matched by the
// terminal identifier of the base-specifier (`sim::Process` → `Process`),
// which is unambiguous in this codebase and in the fixture corpus; the
// trade-off is documented in docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace hring::lint {

struct MethodInfo {
  std::string name;
  bool is_const = false;
  bool is_override = false;
  bool has_body = false;
  /// Token index range of the body in `file->tokens`, excluding the
  /// enclosing braces: [body_begin, body_end).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::uint32_t line = 0;  // line of the method name token
  const SourceFile* file = nullptr;
  /// Marked hot by a `// hring-lint: hot-path` comment directly above or
  /// on the signature line.
  bool hot_path = false;
};

struct ClassInfo {
  std::string name;
  std::vector<std::string> bases;  // terminal identifier of each base
  std::vector<MethodInfo> methods;
  std::uint32_t line = 0;
  const SourceFile* file = nullptr;
  /// Token index range of the class body in `body_file->tokens`, excluding
  /// the enclosing braces: [body_begin, body_end). Set at the first
  /// definition site seen; out-of-line method definitions do not move it.
  const SourceFile* body_file = nullptr;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

struct EnumInfo {
  std::string name;
  std::vector<std::string> enumerators;
  std::uint32_t line = 0;
  const SourceFile* file = nullptr;
};

struct Model {
  /// Classes by name, merged across files (out-of-line definitions attach
  /// to the class entry; a redefinition in another file merges methods).
  std::map<std::string, ClassInfo> classes;

  /// Enumerations by (unqualified) name, first definition wins.
  std::map<std::string, EnumInfo> enums;

  /// Every file parsed into this model, in parse order.
  std::vector<const SourceFile*> files;

  /// True iff `name` transitively derives from `root` (default: the
  /// guarded-action base class). Unknown bases terminate the walk.
  [[nodiscard]] bool derives_from(const std::string& name,
                                  const std::string& root = "Process") const;

  /// All methods of `cls` with the given name (declarations and
  /// definitions; out-of-line definitions included).
  [[nodiscard]] std::vector<const MethodInfo*> methods_named(
      const ClassInfo& cls, const std::string& name) const;

  /// True iff the class declares a non-const member function `name`
  /// (used by the guard-purity check for same-class calls).
  [[nodiscard]] bool has_nonconst_method(const ClassInfo& cls,
                                         const std::string& name) const;
};

/// Parses one lexed file into the model (call once per file; the file must
/// outlive the model).
void parse_file(const SourceFile& file, Model& model);

}  // namespace hring::lint
