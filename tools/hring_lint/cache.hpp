// Content-hash diagnostics cache for hring-lint (--cache-dir=PATH).
//
// An invocation is fully determined by the tool's analysis schema, the
// check roster it runs, and the bytes of every input file (the model is
// cross-file, so any changed byte can change any diagnostic). The cache
// key folds all three through FNV-1a; a hit replays the stored
// diagnostics and skips lexing, parsing and every check — which is what
// keeps `lint.src_clean` fast as the roster grows.
//
// The cache is bypassed by the driver under --verify and --emit-ir
// (fixture matching and IR emission want the live pipeline), and a
// corrupt or truncated entry is treated as a miss.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "diagnostics.hpp"

namespace hring::lint {

/// Bump when diagnostics, checks, or the model change shape: stale
/// entries from an older linter must miss, not replay.
inline constexpr std::uint32_t kCacheSchemaVersion = 1;

/// FNV-1a 64-bit over `data`, chained through `seed`.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Cache key (hex) for an invocation: schema version + check roster +
/// every input's (path, content-hash), order-independent via sorting.
[[nodiscard]] std::string cache_key_hex(
    const std::vector<std::string>& checks,
    std::vector<std::pair<std::string, std::uint64_t>> file_hashes);

/// Loads the entry for `key_hex` from `dir` into `out`. False on miss or
/// a corrupt entry (out is left empty then).
[[nodiscard]] bool cache_load(const std::string& dir,
                              const std::string& key_hex,
                              std::vector<Diagnostic>& out);

/// Stores `diags` under `key_hex` in `dir` (created if absent). Failures
/// are silent: the cache is an accelerator, never a correctness input.
void cache_store(const std::string& dir, const std::string& key_hex,
                 const std::vector<Diagnostic>& diags);

}  // namespace hring::lint
