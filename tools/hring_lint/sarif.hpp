// SARIF 2.1.0 emitter for hring-lint diagnostics (--sarif=PATH).
//
// Emits the minimal static-analysis interchange document GitHub code
// scanning accepts (github/codeql-action/upload-sarif): one run, one
// driver, one rule per check in the roster, one result per diagnostic
// with a physical location. Paths are emitted as given on the command
// line — CI invokes the linter from the repository root so the URIs are
// repo-relative, which is what PR annotation needs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "diagnostics.hpp"

namespace hring::lint {

/// Writes `diags` as a SARIF 2.1.0 document. `checks` is the roster to
/// declare as rules (typically all_check_names(), so a clean run still
/// advertises what was checked).
void write_sarif(const std::vector<Diagnostic>& diags,
                 const std::vector<std::string>& checks, std::ostream& out);

}  // namespace hring::lint
