// Protocol-IR extraction and the IR-level checks (tools/hring_lint).
//
// Layer 4 of the static-analysis stack (docs/STATIC_ANALYSIS.md): a pass
// over the cross-file SourceModel that rebuilds each algorithm's
// guarded-action model as data — state variables with declared bit widths,
// the message-tag alphabet with encode/decode widths, and the guard→fire
// action list — and proves protocol properties over *all* paths that the
// dynamic auditor (core/spec_audit.hpp) can only sample on executed ones.
//
// Annotation grammar (comments read by the extractor):
//
//   // hring-algorithm: <Name> [space=<expr>]
//       Up to four lines above a class definition. Marks the class as an
//       election algorithm named <Name>; the optional space= budget is the
//       paper's closed-form space bound for the algorithm (Theorem 2/4).
//   // hring-state: bits=<expr>
//   // hring-state: excluded(<reason>)
//       On a data member's line or the line directly above it. Declares the
//       member's width in bits, or excludes it from the space accounting
//       (a-priori knowledge, recomputable accelerators, instrumentation).
//   // hring-lint: cold-atomic
//       On an atomic member's line or the line directly above it: the member
//       is not on a worker hot path, so the false-sharing alignas rule of
//       the atomics-discipline check does not apply.
//
// Width expressions are whitespace-free integer expressions over + - * ( )
// and the symbols n (ring size), k (multiplicity bound), b (label bits)
// and log_k (smallest l with 2^l >= k — spec_audit's convention).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "diagnostics.hpp"
#include "source_model.hpp"

namespace hring::lint {

/// Evaluation point for width expressions. log_k is derived from k.
struct BitEnv {
  std::uint64_t n = 1;
  std::uint64_t k = 1;
  std::uint64_t b = 1;
};

/// Smallest l with 2^l >= v (0 for v <= 1) — the convention both
/// spec_audit's log k and the tag-width accounting use.
[[nodiscard]] std::uint64_t ceil_log2(std::uint64_t v);

/// A parsed symbolic bit-width expression over n, k, b, log_k.
class BitExpr {
 public:
  /// Parses `text` (whitespace tolerated); nullopt on any syntax error or
  /// unknown symbol.
  [[nodiscard]] static std::optional<BitExpr> parse(std::string_view text);

  /// Evaluates at `env`. Subtraction saturates at zero (widths are never
  /// negative); arithmetic runs in signed 64-bit internally.
  [[nodiscard]] std::uint64_t eval(const BitEnv& env) const;

  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  enum class Op : std::uint8_t { kConst, kVar, kAdd, kSub, kMul };
  struct Node {
    Op op = Op::kConst;
    std::int64_t value = 0;  // constant, or var index (n=0,k=1,b=2,log_k=3)
    int lhs = -1;
    int rhs = -1;
  };

  [[nodiscard]] std::int64_t eval_node(int idx, const std::int64_t* vars) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  std::string text_;
};

/// One per-process state variable with its declared width.
struct StateVarIR {
  std::string name;
  std::string owner;  // class that declares it (base-chain classes differ)
  std::string bits;   // width expression; empty when excluded
  bool excluded = false;
  std::string note;  // exclusion reason, or "annotated"/"default"
  std::uint32_t line = 0;
};

struct MessageFieldIR {
  std::string name;
  std::string bits;
};

/// The message alphabet: tag enum plus the struct's field widths.
struct MessageIR {
  std::vector<std::string> tags;  // enum order, leading 'k' stripped
  std::uint64_t tag_bits = 0;     // ceil_log2(|tags|)
  std::vector<MessageFieldIR> fields;
};

/// One algorithm's guarded-action model as extracted from source.
struct AlgorithmIR {
  std::string name;        // hring-algorithm annotation name
  std::string class_name;  // the annotated C++ class
  std::string file;        // basename of the defining file
  std::uint32_t line = 0;
  std::vector<StateVarIR> state;  // base-chain first, declaration order
  std::string state_bits;         // "+"-join of the non-excluded widths
  std::string space_bound;        // paper budget; empty for baselines
  std::vector<std::string> sends;    // tags built via Message factories
  std::vector<std::string> handles;  // tags matched in enabled()/fire()
  std::vector<std::string> actions;  // note_action labels, source order
  std::string batch_class;           // batched mirror class, if any
};

struct ProtocolIR {
  MessageIR message;
  std::vector<AlgorithmIR> algorithms;  // sorted by name
};

/// Builds the IR from an already-parsed model. Extraction problems
/// (unannotated members of annotated classes, unparsable width
/// expressions) are reported into `diags` when non-null, under the
/// space-bound check name.
[[nodiscard]] ProtocolIR extract_protocol_ir(const Model& model,
                                             std::vector<Diagnostic>* diags);

/// Serializes the IR as deterministic JSON (schema "hring-protocol-ir/1",
/// documented in docs/STATIC_ANALYSIS.md).
void write_protocol_ir(const ProtocolIR& ir, std::ostream& out);

// The four IR-level checks (dispatched by run_checks).
void check_space_bound(const Model& model, std::vector<Diagnostic>& diags);
void check_alphabet_closure(const Model& model,
                            std::vector<Diagnostic>& diags);
void check_batch_mirror(const Model& model, std::vector<Diagnostic>& diags);
void check_atomics_discipline(const Model& model,
                              std::vector<Diagnostic>& diags);

// Exposed for the unit tests -------------------------------------------------

/// Canonical token spelling of [begin, end): `sim::` qualifiers dropped,
/// spec-plane accesses (`spec_.x.test(g)`, `spec_.x[g]`) and their scalar
/// twins (`x_`, `is_leader()`, `id()`) folded to `@x` placeholders, batch
/// arena arguments (`nodes_[g],`) erased.
[[nodiscard]] std::vector<std::string> canonical_tokens(const SourceFile& file,
                                                        std::size_t begin,
                                                        std::size_t end);

/// The ordered decision sequence of a body range: every if/while/for
/// condition, switch condition, case label and default, canonicalized.
[[nodiscard]] std::vector<std::string> decision_sequence(
    const SourceFile& file, std::size_t begin, std::size_t end);

}  // namespace hring::lint
