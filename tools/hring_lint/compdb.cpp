#include "compdb.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace hring::lint {
namespace {

namespace fs = std::filesystem;

/// Minimal JSON scanner: just enough to pull the string fields out of the
/// array-of-objects shape compile_commands.json is specified to have.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  [[nodiscard]] bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c, bool& ok) {
    if (peek() == c) {
      ++pos_;
    } else {
      ok = false;
    }
  }
  [[nodiscard]] bool try_consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Parses a JSON string starting at the opening quote.
  [[nodiscard]] std::string parse_string(bool& ok) {
    std::string out;
    expect('"', ok);
    while (ok && pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            pos_ = std::min(pos_ + 4, text_.size());  // keep scanning
            out.push_back('?');
            break;
          default: out.push_back(esc); break;
        }
        continue;
      }
      out.push_back(c);
    }
    ok = false;
    return out;
  }

  /// Skips any JSON value (used for fields we do not care about).
  void skip_value(bool& ok) {
    const char c = peek();
    if (c == '"') {
      (void)parse_string(ok);
      return;
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      std::size_t depth = 1;
      while (pos_ < text_.size() && depth > 0) {
        const char d = text_[pos_];
        if (d == '"') {
          (void)parse_string(ok);
          continue;
        }
        if (d == c) ++depth;
        if (d == close) --depth;
        ++pos_;
      }
      return;
    }
    // Literal: number / true / false / null.
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool compdb_sources(const std::string& build_dir, const std::string& filter,
                    std::vector<std::string>& out, std::string& error) {
  const fs::path db_path = fs::path(build_dir) / "compile_commands.json";
  std::ifstream in(db_path, std::ios::binary);
  if (!in) {
    error = "cannot open " + db_path.string() +
            " (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonScanner scan(text);
  bool ok = true;
  scan.expect('[', ok);
  std::set<std::string> files;
  while (ok && !scan.done() && !scan.try_consume(']')) {
    scan.expect('{', ok);
    std::string directory;
    std::string file;
    while (ok && !scan.try_consume('}')) {
      const std::string key = scan.parse_string(ok);
      scan.expect(':', ok);
      if (key == "directory") {
        directory = scan.parse_string(ok);
      } else if (key == "file") {
        file = scan.parse_string(ok);
      } else {
        scan.skip_value(ok);
      }
      (void)scan.try_consume(',');
    }
    (void)scan.try_consume(',');
    if (!ok) break;
    if (file.empty()) continue;
    fs::path p(file);
    if (p.is_relative() && !directory.empty()) p = fs::path(directory) / p;
    files.insert(p.lexically_normal().string());
  }
  if (!ok) {
    error = "malformed " + db_path.string();
    return false;
  }

  // Add the sibling headers of every named source directory, so class
  // definitions in .hpp files enter the model.
  std::set<std::string> dirs;
  for (const std::string& f : files) {
    dirs.insert(fs::path(f).parent_path().string());
  }
  for (const std::string& d : dirs) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(d, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".hpp" || p.extension() == ".h") {
        files.insert(p.lexically_normal().string());
      }
    }
  }

  for (const std::string& f : files) {
    if (filter.empty() || f.find(filter) != std::string::npos) {
      out.push_back(f);
    }
  }
  std::sort(out.begin(), out.end());
  return true;
}

}  // namespace hring::lint
