#include "protocol_model.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "checks.hpp"
#include "support/json.hpp"

namespace hring::lint {
namespace {

using Toks = std::vector<Token>;

std::size_t skip_balanced(const Toks& t, std::size_t i, std::string_view open,
                          std::string_view close) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is(open)) {
      ++depth;
    } else if (t[i].is(close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

std::size_t skip_angles(const Toks& t, std::size_t i) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is("<")) {
      ++depth;
    } else if (t[i].is(">")) {
      if (--depth == 0) return i + 1;
    } else if (t[i].is(">>")) {
      if (depth <= 2) return i + 1;
      depth -= 2;
    } else if (t[i].is("(")) {
      i = skip_balanced(t, i, "(", ")") - 1;
    } else if (t[i].is(";") || t[i].is("{")) {
      return i;  // not a template list after all
    }
  }
  return i;
}

std::size_t skip_to_semicolon(const Toks& t, std::size_t i) {
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is("(")) {
      i = skip_balanced(t, i, "(", ")") - 1;
    } else if (t[i].is("{")) {
      i = skip_balanced(t, i, "{", "}") - 1;
    } else if (t[i].is(";")) {
      return i + 1;
    }
  }
  return i;
}

[[nodiscard]] std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Strips the enumerator prefix convention: kToken -> Token.
[[nodiscard]] std::string strip_k(std::string_view enumerator) {
  if (enumerator.size() > 1 && enumerator[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(enumerator[1])) != 0) {
    return std::string(enumerator.substr(1));
  }
  return std::string(enumerator);
}

// ---------------------------------------------------------------------------
// Annotation lookup

/// The comment nearest to (and not past) `line` within [line - above, line]
/// whose text contains `marker`; nullptr when absent.
const Comment* find_annotation(const SourceFile& file, std::uint32_t line,
                               std::uint32_t above, std::string_view marker) {
  const Comment* best = nullptr;
  for (const Comment& c : file.comments) {
    if (c.line > line || c.line + above < line) continue;
    if (c.text.find(marker) == std::string_view::npos) continue;
    if (best == nullptr || c.line > best->line) best = &c;
  }
  return best;
}

[[nodiscard]] std::string_view after_marker(std::string_view text,
                                            std::string_view marker) {
  const std::size_t at = text.find(marker);
  std::string_view rest = text.substr(at + marker.size());
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front())) != 0) {
    rest.remove_prefix(1);
  }
  return rest;
}

[[nodiscard]] std::string take_word(std::string_view& rest) {
  std::size_t end = 0;
  while (end < rest.size() &&
         (std::isalnum(static_cast<unsigned char>(rest[end])) != 0 ||
          rest[end] == '_')) {
    ++end;
  }
  const std::string word(rest.substr(0, end));
  rest.remove_prefix(end);
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front())) != 0) {
    rest.remove_prefix(1);
  }
  return word;
}

struct AlgorithmAnnotation {
  std::string name;
  std::string space;  // empty for baselines
};

std::optional<AlgorithmAnnotation> algorithm_annotation(
    const SourceFile& file, std::uint32_t class_line) {
  const Comment* c = find_annotation(file, class_line, 4, "hring-algorithm:");
  if (c == nullptr) return std::nullopt;
  std::string_view rest = after_marker(c->text, "hring-algorithm:");
  AlgorithmAnnotation ann;
  ann.name = take_word(rest);
  if (ann.name.empty()) return std::nullopt;
  if (rest.rfind("space=", 0) == 0) {
    rest.remove_prefix(6);
    std::size_t end = 0;
    while (end < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[end])) == 0) {
      ++end;
    }
    ann.space = std::string(rest.substr(0, end));
  }
  return ann;
}

struct StateAnnotation {
  bool excluded = false;
  std::string bits;
  std::string reason;
  bool malformed = false;
};

std::optional<StateAnnotation> state_annotation(const SourceFile& file,
                                                std::uint32_t member_line) {
  // Window of one line: adjacent members must not capture each other's
  // annotations.
  const Comment* c = find_annotation(file, member_line, 1, "hring-state:");
  if (c == nullptr) return std::nullopt;
  std::string_view rest = after_marker(c->text, "hring-state:");
  StateAnnotation ann;
  if (rest.rfind("bits=", 0) == 0) {
    rest.remove_prefix(5);
    std::size_t end = 0;
    while (end < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[end])) == 0) {
      ++end;
    }
    ann.bits = std::string(rest.substr(0, end));
    if (ann.bits.empty()) ann.malformed = true;
    return ann;
  }
  if (rest.rfind("excluded(", 0) == 0) {
    rest.remove_prefix(9);
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      ann.malformed = true;
      return ann;
    }
    ann.excluded = true;
    ann.reason = std::string(rest.substr(0, close));
    return ann;
  }
  ann.malformed = true;
  return ann;
}

[[nodiscard]] bool cold_atomic_annotated(const SourceFile& file,
                                         std::uint32_t line) {
  return find_annotation(file, line, 1, "hring-lint: cold-atomic") != nullptr;
}

// ---------------------------------------------------------------------------
// Field scanner

struct FieldDecl {
  std::string name;
  std::vector<std::string> type_idents;  // qualifier-filtered, name excluded
  std::uint32_t line = 0;
  bool is_atomic = false;
  bool has_alignas = false;
};

[[nodiscard]] bool is_type_qualifier(std::string_view ident) {
  static const std::set<std::string_view> kQualifiers = {
      "std",   "sim",     "words",    "support",  "core", "election",
      "ring",  "runtime", "hring",    "const",    "mutable",
      "volatile"};
  return kQualifiers.count(ident) > 0;
}

/// Non-function, non-static data members of the class body, in declaration
/// order. A linear token scan: nested types, methods, access labels and
/// using declarations are skipped; template arguments, initializers and
/// attributes do not contribute identifiers.
std::vector<FieldDecl> scan_fields(const ClassInfo& cls) {
  std::vector<FieldDecl> out;
  if (cls.body_file == nullptr) return out;
  const Toks& t = cls.body_file->tokens;
  std::size_t i = cls.body_begin;
  const std::size_t end = cls.body_end;

  std::vector<std::pair<std::string, std::uint32_t>> idents;
  bool is_func = false;
  bool is_static = false;
  bool is_atomic = false;
  bool has_alignas = false;
  const auto reset = [&] {
    idents.clear();
    is_func = is_static = is_atomic = has_alignas = false;
  };
  const auto record = [&] {
    if (!is_func && !is_static && idents.size() >= 2) {
      FieldDecl f;
      f.name = idents.back().first;
      f.line = idents.back().second;
      for (std::size_t j = 0; j + 1 < idents.size(); ++j) {
        if (!is_type_qualifier(idents[j].first)) {
          f.type_idents.push_back(idents[j].first);
        }
      }
      f.is_atomic = is_atomic;
      f.has_alignas = has_alignas;
      out.push_back(std::move(f));
    }
    reset();
  };

  while (i < end && t[i].kind != TokKind::kEof) {
    const Token& tok = t[i];
    if (tok.is_ident()) {
      if ((tok.is("public") || tok.is("protected") || tok.is("private")) &&
          i + 1 < end && t[i + 1].is(":")) {
        i += 2;
        reset();
        continue;
      }
      if (tok.is("using") || tok.is("typedef") || tok.is("friend") ||
          tok.is("static_assert")) {
        i = skip_to_semicolon(t, i);
        reset();
        continue;
      }
      if (tok.is("template")) {
        ++i;
        if (i < end && t[i].is("<")) i = skip_angles(t, i);
        continue;
      }
      if (tok.is("enum") || tok.is("class") || tok.is("struct") ||
          tok.is("union")) {
        while (i < end && !t[i].is("{") && !t[i].is(";")) ++i;
        if (i < end && t[i].is("{")) i = skip_balanced(t, i, "{", "}");
        i = skip_to_semicolon(t, i);
        reset();
        continue;
      }
      if (tok.is("alignas") && i + 1 < end && t[i + 1].is("(")) {
        has_alignas = true;
        i = skip_balanced(t, i + 1, "(", ")");
        continue;
      }
      if (tok.is("static") || tok.is("constexpr") || tok.is("inline")) {
        is_static = true;
        ++i;
        continue;
      }
      if (tok.is("virtual") || tok.is("explicit") || tok.is("noexcept") ||
          tok.is("override") || tok.is("final")) {
        ++i;
        continue;
      }
      if (tok.is("operator")) {
        is_func = true;
        ++i;
        continue;
      }
      if (tok.is("atomic")) is_atomic = true;
      idents.emplace_back(std::string(tok.text), tok.line);
      ++i;
      continue;
    }
    if (tok.is("(")) {
      if (!idents.empty()) is_func = true;
      i = skip_balanced(t, i, "(", ")");
      continue;
    }
    if (tok.is("<")) {
      i = skip_angles(t, i);
      continue;
    }
    if (tok.is("[")) {
      i = skip_balanced(t, i, "[", "]");
      continue;
    }
    if (tok.is("{")) {
      const std::size_t after = skip_balanced(t, i, "{", "}");
      if (after < end && t[after].is(";")) {
        i = after;  // brace-initialized member; the `;` records it
      } else {
        reset();  // function body / ctor-init brace
        i = after;
      }
      continue;
    }
    if (tok.is("=")) {
      record();
      i = skip_to_semicolon(t, i);
      continue;
    }
    if (tok.is(";")) {
      record();
      ++i;
      continue;
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared scanning helpers

/// First fire() with a body, or nullptr.
const MethodInfo* body_of(const Model& model, const ClassInfo& cls,
                          const std::string& name) {
  for (const MethodInfo* m : model.methods_named(cls, name)) {
    if (m->has_body && m->file != nullptr) return m;
  }
  return nullptr;
}

/// True for classes that participate in the guarded-action protocol: they
/// derive from Process or expose the enabled/fire shape (batch algorithms).
[[nodiscard]] bool guarded_class(const Model& model, const std::string& name,
                                 const ClassInfo& cls) {
  if (name.empty()) return false;
  if (model.derives_from(name)) return true;
  return !model.methods_named(cls, "enabled").empty() &&
         !model.methods_named(cls, "fire").empty();
}

/// Message factory name -> tag enumerator (kToken, ...), built from the
/// Message class's static factories.
std::map<std::string, std::string> message_ctors(const Model& model) {
  std::map<std::string, std::string> ctors;
  const auto cit = model.classes.find("Message");
  if (cit == model.classes.end()) return ctors;
  for (const MethodInfo& m : cit->second.methods) {
    if (!m.has_body || m.file == nullptr) continue;
    const Toks& t = m.file->tokens;
    for (std::size_t i = m.body_begin; i + 2 < m.body_end; ++i) {
      if (t[i].is("MsgKind") && t[i + 1].is("::") && t[i + 2].is_ident()) {
        ctors.emplace(m.name, std::string(t[i + 2].text));
        break;
      }
    }
  }
  return ctors;
}

/// Tags sent from `body` via Message factories (`Message::token(...)`).
void collect_sends(const MethodInfo& m,
                   const std::map<std::string, std::string>& ctors,
                   std::set<std::string>& sends) {
  const Toks& t = m.file->tokens;
  for (std::size_t i = m.body_begin; i + 3 < m.body_end; ++i) {
    if (t[i].is("Message") && t[i + 1].is("::") && t[i + 2].is_ident() &&
        t[i + 3].is("(")) {
      const auto it = ctors.find(std::string(t[i + 2].text));
      if (it != ctors.end()) sends.insert(it->second);
    }
  }
}

/// Tag enumerators mentioned anywhere in `body` (`MsgKind::kToken` in a
/// guard, case label or assertion all count as handling the tag).
void collect_handles(const MethodInfo& m, std::set<std::string>& handles) {
  const Toks& t = m.file->tokens;
  for (std::size_t i = m.body_begin; i + 2 < m.body_end; ++i) {
    if (t[i].is("MsgKind") && t[i + 1].is("::") && t[i + 2].is_ident()) {
      handles.insert(std::string(t[i + 2].text));
    }
  }
}

/// note_action("...") labels in source order, deduplicated.
void collect_actions(const MethodInfo& m, std::vector<std::string>& actions) {
  const Toks& t = m.file->tokens;
  for (std::size_t i = m.body_begin; i + 2 < m.body_end; ++i) {
    if (t[i].is("note_action") && t[i + 1].is("(") &&
        t[i + 2].kind == TokKind::kString && t[i + 2].text.size() >= 2) {
      std::string label(t[i + 2].text.substr(1, t[i + 2].text.size() - 2));
      if (std::find(actions.begin(), actions.end(), label) == actions.end()) {
        actions.push_back(std::move(label));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-class state extraction (cached: Process is on every base chain)

struct ClassState {
  std::vector<StateVarIR> vars;
};

/// Extracts the state variables of one class, diagnosing unannotated or
/// malformed members when `diags` is non-null.
ClassState extract_class_state(const Model& model, const ClassInfo& cls,
                               std::vector<Diagnostic>* diags) {
  ClassState state;
  if (cls.body_file == nullptr) return state;
  for (const FieldDecl& f : scan_fields(cls)) {
    StateVarIR var;
    var.name = f.name;
    var.owner = cls.name;
    var.line = f.line;
    const auto ann = state_annotation(*cls.body_file, f.line);
    if (ann.has_value() && !ann->malformed) {
      if (ann->excluded) {
        var.excluded = true;
        var.note = ann->reason;
      } else {
        if (!BitExpr::parse(ann->bits).has_value() && diags != nullptr) {
          emit_diag(*cls.body_file, f.line, 1, "space-bound",
                    "member '" + f.name + "' of '" + cls.name +
                        "' has an unparsable width expression '" + ann->bits +
                        "' (integers, n, k, b, log_k over + - * only)",
                    *diags);
        }
        var.bits = ann->bits;
        var.note = "annotated";
      }
      state.vars.push_back(std::move(var));
      continue;
    }
    if (ann.has_value() && ann->malformed && diags != nullptr) {
      emit_diag(*cls.body_file, f.line, 1, "space-bound",
                "malformed hring-state annotation on '" + f.name +
                    "': use bits=<expr> or excluded(<reason>)",
                *diags);
    }
    // Default widths for the unmistakable cases.
    if (f.type_idents.size() == 1) {
      const std::string& ty = f.type_idents.front();
      if (ty == "bool") {
        var.bits = "1";
        var.note = "default";
        state.vars.push_back(std::move(var));
        continue;
      }
      if (ty == "Label") {
        var.bits = "b";
        var.note = "default";
        state.vars.push_back(std::move(var));
        continue;
      }
      const auto eit = model.enums.find(ty);
      if (eit != model.enums.end()) {
        var.bits = std::to_string(
            ceil_log2(eit->second.enumerators.size()));
        var.note = "default";
        state.vars.push_back(std::move(var));
        continue;
      }
    }
    if (diags != nullptr) {
      emit_diag(*cls.body_file, f.line, 1, "space-bound",
                "member '" + f.name + "' of algorithm class '" + cls.name +
                    "' has no declared bit width; annotate with "
                    "// hring-state: bits=<expr> or excluded(<reason>)",
                *diags);
    }
    var.excluded = true;
    var.note = "unannotated";
    state.vars.push_back(std::move(var));
  }
  return state;
}

/// Base-first inheritance chain (Process, ..., cls) over classes known to
/// the model.
std::vector<const ClassInfo*> base_chain(const Model& model,
                                         const ClassInfo& cls) {
  std::vector<const ClassInfo*> chain;
  std::set<std::string> seen;
  const ClassInfo* cur = &cls;
  while (cur != nullptr && seen.insert(cur->name).second) {
    chain.push_back(cur);
    const ClassInfo* next = nullptr;
    for (const std::string& base : cur->bases) {
      const auto it = model.classes.find(base);
      if (it != model.classes.end()) {
        next = &it->second;
        break;
      }
    }
    cur = next;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

// ---------------------------------------------------------------------------
// BitExpr

std::uint64_t ceil_log2(std::uint64_t v) {
  std::uint64_t l = 0;
  while ((std::uint64_t{1} << l) < v) ++l;
  return l;
}

std::optional<BitExpr> BitExpr::parse(std::string_view text) {
  BitExpr expr;
  expr.text_ = std::string(text);
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  };
  const auto peek = [&]() -> char {
    return pos < text.size() ? text[pos] : '\0';
  };

  // expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
  // factor := number | symbol | '(' expr ')'
  const std::function<int()> parse_expr = [&]() -> int {
    const std::function<int()> parse_factor = [&]() -> int {
      skip_ws();
      if (peek() == '(') {
        ++pos;
        const int inner = parse_expr();
        skip_ws();
        if (inner < 0 || peek() != ')') return -1;
        ++pos;
        return inner;
      }
      if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        std::int64_t value = 0;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
          value = value * 10 + (text[pos] - '0');
          ++pos;
        }
        expr.nodes_.push_back({Op::kConst, value, -1, -1});
        return static_cast<int>(expr.nodes_.size()) - 1;
      }
      if (std::isalpha(static_cast<unsigned char>(peek())) != 0) {
        std::size_t end = pos;
        while (end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
                text[end] == '_')) {
          ++end;
        }
        const std::string_view sym = text.substr(pos, end - pos);
        pos = end;
        std::int64_t index = -1;
        if (sym == "n") index = 0;
        if (sym == "k") index = 1;
        if (sym == "b") index = 2;
        if (sym == "log_k") index = 3;
        if (index < 0) return -1;
        expr.nodes_.push_back({Op::kVar, index, -1, -1});
        return static_cast<int>(expr.nodes_.size()) - 1;
      }
      return -1;
    };

    int lhs = parse_factor();
    if (lhs < 0) return -1;
    for (;;) {
      skip_ws();
      if (peek() == '*') {
        ++pos;
        const int rhs = parse_factor();
        if (rhs < 0) return -1;
        expr.nodes_.push_back({Op::kMul, 0, lhs, rhs});
        lhs = static_cast<int>(expr.nodes_.size()) - 1;
        continue;
      }
      if (peek() == '+' || peek() == '-') {
        const Op op = peek() == '+' ? Op::kAdd : Op::kSub;
        ++pos;
        // Right operand binds multiplication first.
        const int first = parse_factor();
        if (first < 0) return -1;
        int rhs = first;
        for (;;) {
          skip_ws();
          if (peek() != '*') break;
          ++pos;
          const int next = parse_factor();
          if (next < 0) return -1;
          expr.nodes_.push_back({Op::kMul, 0, rhs, next});
          rhs = static_cast<int>(expr.nodes_.size()) - 1;
        }
        expr.nodes_.push_back({op, 0, lhs, rhs});
        lhs = static_cast<int>(expr.nodes_.size()) - 1;
        continue;
      }
      return lhs;
    }
  };

  const int root = parse_expr();
  skip_ws();
  if (root < 0 || pos != text.size()) return std::nullopt;
  expr.root_ = root;
  return expr;
}

std::int64_t BitExpr::eval_node(int idx, const std::int64_t* vars) const {
  const Node& node = nodes_[static_cast<std::size_t>(idx)];
  switch (node.op) {
    case Op::kConst:
      return node.value;
    case Op::kVar:
      return vars[node.value];
    case Op::kAdd:
      return eval_node(node.lhs, vars) + eval_node(node.rhs, vars);
    case Op::kSub:
      return eval_node(node.lhs, vars) - eval_node(node.rhs, vars);
    case Op::kMul:
      return eval_node(node.lhs, vars) * eval_node(node.rhs, vars);
  }
  return 0;
}

std::uint64_t BitExpr::eval(const BitEnv& env) const {
  if (root_ < 0) return 0;
  const std::int64_t vars[4] = {
      static_cast<std::int64_t>(env.n), static_cast<std::int64_t>(env.k),
      static_cast<std::int64_t>(env.b),
      static_cast<std::int64_t>(ceil_log2(env.k))};
  const std::int64_t value = eval_node(root_, vars);
  return value > 0 ? static_cast<std::uint64_t>(value) : 0;
}

// ---------------------------------------------------------------------------
// Canonicalization

std::vector<std::string> canonical_tokens(const SourceFile& file,
                                          std::size_t begin, std::size_t end) {
  const Toks& t = file.tokens;
  std::vector<std::string> out;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = t[i];
    if (tok.is("sim") && i + 1 < end && t[i + 1].is("::")) {
      ++i;
      continue;
    }
    if (tok.is("spec_") && i + 1 < end && t[i + 1].is(".")) {
      if (i + 7 < end && t[i + 2].is_ident() && t[i + 3].is(".") &&
          t[i + 4].is("test") && t[i + 5].is("(") && t[i + 6].is_ident() &&
          t[i + 7].is(")")) {
        out.push_back("@" + std::string(t[i + 2].text));
        i += 7;
        continue;
      }
      if (i + 5 < end && t[i + 2].is_ident() && t[i + 3].is("[") &&
          t[i + 4].is_ident() && t[i + 5].is("]")) {
        out.push_back("@" + std::string(t[i + 2].text));
        i += 5;
        continue;
      }
    }
    if (tok.is("nodes_") && i + 3 < end && t[i + 1].is("[") &&
        t[i + 2].is_ident() && t[i + 3].is("]")) {
      i += 3;
      if (i + 1 < end && t[i + 1].is(",")) ++i;
      continue;
    }
    if (tok.is("is_leader") && i + 2 < end && t[i + 1].is("(") &&
        t[i + 2].is(")")) {
      out.push_back("@leader");
      i += 2;
      continue;
    }
    if (tok.is("id") && i + 2 < end && t[i + 1].is("(") && t[i + 2].is(")")) {
      out.push_back("@id");
      i += 2;
      continue;
    }
    if (tok.is("init_")) {
      out.push_back("@init");
      continue;
    }
    out.push_back(std::string(tok.text));
  }
  return out;
}

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  return out;
}

}  // namespace

std::vector<std::string> decision_sequence(const SourceFile& file,
                                           std::size_t begin,
                                           std::size_t end) {
  const Toks& t = file.tokens;
  std::vector<std::string> out;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = t[i];
    if ((tok.is("if") || tok.is("while") || tok.is("for") ||
         tok.is("switch")) &&
        i + 1 < end && t[i + 1].is("(")) {
      const std::size_t close = skip_balanced(t, i + 1, "(", ")");
      out.push_back(std::string(tok.text) + "(" +
                    join(canonical_tokens(file, i + 2, close - 1)) + ")");
      i = close - 1;  // scan the controlled statement for nested decisions
      continue;
    }
    if (tok.is("case")) {
      std::size_t j = i + 1;
      while (j < end && !t[j].is(":")) ++j;
      out.push_back("case " + join(canonical_tokens(file, i + 1, j)));
      i = j;
      continue;
    }
    if (tok.is("default") && i + 1 < end && t[i + 1].is(":")) {
      out.push_back("default");
      ++i;
      continue;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Extraction

ProtocolIR extract_protocol_ir(const Model& model,
                               std::vector<Diagnostic>* diags) {
  ProtocolIR ir;

  // Message alphabet.
  const auto eit = model.enums.find("MsgKind");
  if (eit != model.enums.end()) {
    for (const std::string& e : eit->second.enumerators) {
      ir.message.tags.push_back(strip_k(e));
    }
    ir.message.tag_bits = ceil_log2(ir.message.tags.size());
  }
  const auto mit = model.classes.find("Message");
  if (mit != model.classes.end() && mit->second.body_file != nullptr) {
    for (const FieldDecl& f : scan_fields(mit->second)) {
      MessageFieldIR field;
      field.name = f.name;
      if (f.type_idents.size() == 1) {
        const std::string& ty = f.type_idents.front();
        if (ty == "Label") field.bits = "b";
        const auto fe = model.enums.find(ty);
        if (fe != model.enums.end()) {
          field.bits = std::to_string(
              ceil_log2(fe->second.enumerators.size()));
        }
        if (ty == "bool") field.bits = "1";
      }
      ir.message.fields.push_back(std::move(field));
    }
  }

  const std::map<std::string, std::string> ctors = message_ctors(model);

  // Algorithms: every class carrying an hring-algorithm annotation.
  std::map<std::string, ClassState> state_cache;
  for (const auto& [name, cls] : model.classes) {
    if (name.empty() || cls.body_file == nullptr) continue;
    const auto ann = algorithm_annotation(*cls.body_file, cls.line);
    if (!ann.has_value()) continue;

    AlgorithmIR alg;
    alg.name = ann->name;
    alg.class_name = name;
    alg.file = basename_of(cls.body_file->path);
    alg.line = cls.line;
    alg.space_bound = ann->space;
    if (!ann->space.empty() && !BitExpr::parse(ann->space).has_value() &&
        diags != nullptr) {
      emit_diag(*cls.body_file, cls.line, 1, "space-bound",
                "algorithm '" + ann->name +
                    "' declares an unparsable space budget '" + ann->space +
                    "'",
                *diags);
    }

    for (const ClassInfo* link : base_chain(model, cls)) {
      auto cached = state_cache.find(link->name);
      if (cached == state_cache.end()) {
        cached = state_cache
                     .emplace(link->name,
                              extract_class_state(model, *link, diags))
                     .first;
      }
      for (const StateVarIR& var : cached->second.vars) {
        alg.state.push_back(var);
      }
    }
    for (const StateVarIR& var : alg.state) {
      if (var.excluded) continue;
      if (!alg.state_bits.empty()) alg.state_bits += "+";
      alg.state_bits += var.bits;
    }
    if (alg.state_bits.empty()) alg.state_bits = "0";

    std::set<std::string> sends;
    std::set<std::string> handles;
    for (const MethodInfo* m : model.methods_named(cls, "fire")) {
      if (!m->has_body || m->file == nullptr) continue;
      collect_sends(*m, ctors, sends);
      collect_handles(*m, handles);
      collect_actions(*m, alg.actions);
    }
    for (const MethodInfo* m : model.methods_named(cls, "enabled")) {
      if (!m->has_body || m->file == nullptr) continue;
      collect_handles(*m, handles);
    }
    for (const std::string& s : sends) alg.sends.push_back(strip_k(s));
    for (const std::string& h : handles) alg.handles.push_back(strip_k(h));

    constexpr std::string_view kSuffix = "Process";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      const std::string batch =
          "Batch" + name.substr(0, name.size() - kSuffix.size());
      if (model.classes.count(batch) > 0) alg.batch_class = batch;
    }

    ir.algorithms.push_back(std::move(alg));
  }
  std::sort(ir.algorithms.begin(), ir.algorithms.end(),
            [](const AlgorithmIR& a, const AlgorithmIR& b) {
              return a.name < b.name;
            });
  return ir;
}

void write_protocol_ir(const ProtocolIR& ir, std::ostream& out) {
  support::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("hring-protocol-ir/1");
  w.key("symbols").begin_object();
  w.key("n").value("ring size");
  w.key("k").value("multiplicity bound of the class K_k");
  w.key("b").value("label bits");
  w.key("log_k").value("smallest l with 2^l >= k");
  w.end_object();

  w.key("message").begin_object();
  w.key("tags").begin_array();
  for (const std::string& tag : ir.message.tags) w.value(tag);
  w.end_array();
  w.key("tag_bits").value(ir.message.tag_bits);
  w.key("fields").begin_array();
  for (const MessageFieldIR& f : ir.message.fields) {
    w.begin_object();
    w.key("name").value(f.name);
    w.key("bits").value(f.bits);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("algorithms").begin_array();
  for (const AlgorithmIR& alg : ir.algorithms) {
    w.begin_object();
    w.key("name").value(alg.name);
    w.key("class").value(alg.class_name);
    w.key("file").value(alg.file);
    w.key("line").value(static_cast<std::uint64_t>(alg.line));
    if (!alg.space_bound.empty()) {
      w.key("space_bound").value(alg.space_bound);
    }
    w.key("state_bits").value(alg.state_bits);
    w.key("state").begin_array();
    for (const StateVarIR& var : alg.state) {
      w.begin_object();
      w.key("name").value(var.name);
      w.key("owner").value(var.owner);
      if (var.excluded) {
        w.key("excluded").value(true);
      } else {
        w.key("bits").value(var.bits);
      }
      w.key("note").value(var.note);
      w.end_object();
    }
    w.end_array();
    w.key("alphabet").begin_object();
    w.key("sends").begin_array();
    for (const std::string& s : alg.sends) w.value(s);
    w.end_array();
    w.key("handles").begin_array();
    for (const std::string& h : alg.handles) w.value(h);
    w.end_array();
    w.end_object();
    w.key("actions").begin_array();
    for (const std::string& a : alg.actions) w.value(a);
    w.end_array();
    if (!alg.batch_class.empty()) {
      w.key("batch_mirror").value(alg.batch_class);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------------
// space-bound

void check_space_bound(const Model& model, std::vector<Diagnostic>& diags) {
  const ProtocolIR ir = extract_protocol_ir(model, &diags);
  for (const AlgorithmIR& alg : ir.algorithms) {
    if (alg.space_bound.empty()) continue;
    const auto bound = BitExpr::parse(alg.space_bound);
    const auto sum = BitExpr::parse(alg.state_bits);
    if (!bound.has_value() || !sum.has_value()) continue;  // diagnosed above
    const auto cit = model.classes.find(alg.class_name);
    if (cit == model.classes.end() || cit->second.body_file == nullptr) {
      continue;
    }
    bool reported = false;
    for (std::uint64_t n = 1; n <= 10 && !reported; ++n) {
      for (std::uint64_t k = 1; k <= 5 && !reported; ++k) {
        for (std::uint64_t b = 1; b <= 12 && !reported; ++b) {
          const BitEnv env{n, k, b};
          const std::uint64_t declared = sum->eval(env);
          const std::uint64_t budget = bound->eval(env);
          if (declared > budget) {
            emit_diag(*cit->second.body_file, alg.line, 1, "space-bound",
                      "declared state of '" + alg.name + "' (" +
                          alg.state_bits + " = " + std::to_string(declared) +
                          " bits) exceeds the space budget " +
                          alg.space_bound + " = " + std::to_string(budget) +
                          " bits at n=" + std::to_string(n) +
                          ", k=" + std::to_string(k) +
                          ", b=" + std::to_string(b),
                      diags);
            reported = true;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// alphabet-closure

void check_alphabet_closure(const Model& model,
                            std::vector<Diagnostic>& diags) {
  const std::map<std::string, std::string> ctors = message_ctors(model);
  const auto eit = model.enums.find("MsgKind");

  for (const auto& [name, cls] : model.classes) {
    if (!guarded_class(model, name, cls)) continue;
    std::set<std::string> sends;
    std::set<std::string> handles;
    const MethodInfo* first_fire = nullptr;
    std::vector<const MethodInfo*> bodies;
    for (const MethodInfo* m : model.methods_named(cls, "fire")) {
      if (!m->has_body || m->file == nullptr) continue;
      if (first_fire == nullptr) first_fire = m;
      collect_sends(*m, ctors, sends);
      collect_handles(*m, handles);
      bodies.push_back(m);
    }
    for (const MethodInfo* m : model.methods_named(cls, "enabled")) {
      if (!m->has_body || m->file == nullptr) continue;
      collect_handles(*m, handles);
      bodies.push_back(m);
    }

    if (first_fire != nullptr) {
      for (const std::string& tag : sends) {
        if (handles.count(tag) == 0) {
          emit_diag(*first_fire->file, first_fire->line, 1,
                    "alphabet-closure",
                    "'" + name + "' sends MsgKind::" + tag +
                        " but no enabled()/fire() branch mentions it; the "
                        "tag would arrive with no matching guard",
                    diags);
        }
      }
    }

    // Switch exhaustiveness over the tag enum.
    if (eit == model.enums.end()) continue;
    const std::vector<std::string>& all_tags = eit->second.enumerators;
    for (const MethodInfo* m : bodies) {
      const Toks& t = m->file->tokens;
      for (std::size_t i = m->body_begin; i < m->body_end; ++i) {
        if (!t[i].is("switch") || i + 1 >= m->body_end || !t[i + 1].is("(")) {
          continue;
        }
        const std::size_t cond_end = skip_balanced(t, i + 1, "(", ")");
        bool over_kind = false;
        for (std::size_t j = i + 2; j + 1 < cond_end; ++j) {
          if (t[j].is("kind")) over_kind = true;
        }
        if (!over_kind) {
          i = cond_end - 1;
          continue;
        }
        if (cond_end >= m->body_end || !t[cond_end].is("{")) continue;
        const std::size_t body_close =
            skip_balanced(t, cond_end, "{", "}");
        bool has_default = false;
        std::set<std::string> cases;
        for (std::size_t j = cond_end + 1; j + 1 < body_close; ++j) {
          if (t[j].is("default")) has_default = true;
          if (!t[j].is("case")) continue;
          std::string last_ident;
          std::size_t c = j + 1;
          while (c + 1 < body_close && !t[c].is(":")) {
            if (t[c].is_ident()) last_ident = std::string(t[c].text);
            ++c;
          }
          if (!last_ident.empty()) cases.insert(last_ident);
          j = c;
        }
        if (!has_default) {
          std::string missing;
          for (const std::string& tag : all_tags) {
            if (cases.count(tag) > 0) continue;
            if (!missing.empty()) missing += ", ";
            missing += tag;
          }
          if (!missing.empty()) {
            emit_diag(*m->file, t[i].line, t[i].col, "alphabet-closure",
                      "switch over the message tag in '" + name +
                          "' handles neither " + missing +
                          " nor a default; add the missing branches or a "
                          "defensive default",
                      diags);
          }
        }
        i = body_close - 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// batch-mirror

void check_batch_mirror(const Model& model, std::vector<Diagnostic>& diags) {
  for (const auto& [name, cls] : model.classes) {
    constexpr std::string_view kPrefix = "Batch";
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= kPrefix.size()) {
      continue;
    }
    const std::string scalar_name =
        name.substr(kPrefix.size()) + "Process";
    const auto sit = model.classes.find(scalar_name);
    if (sit == model.classes.end() || !model.derives_from(scalar_name)) {
      continue;
    }
    const ClassInfo& scalar = sit->second;

    // Guard parity: the canonical enabled() bodies must be identical.
    const MethodInfo* s_enabled = body_of(model, scalar, "enabled");
    const MethodInfo* b_enabled = body_of(model, cls, "enabled");
    if (s_enabled != nullptr && b_enabled != nullptr) {
      const auto s_canon = canonical_tokens(*s_enabled->file,
                                            s_enabled->body_begin,
                                            s_enabled->body_end);
      const auto b_canon = canonical_tokens(*b_enabled->file,
                                            b_enabled->body_begin,
                                            b_enabled->body_end);
      if (s_canon != b_canon) {
        emit_diag(*b_enabled->file, b_enabled->line, 1, "batch-mirror",
                  "'" + name + "::enabled' diverges from '" + scalar_name +
                      "::enabled': canonical guard '" + join(b_canon) +
                      "' vs scalar '" + join(s_canon) + "'",
                  diags);
      }
    }

    // Decision parity: same comparison sequence through fire().
    const MethodInfo* s_fire = body_of(model, scalar, "fire");
    const MethodInfo* b_fire = body_of(model, cls, "fire");
    if (s_fire == nullptr || b_fire == nullptr) continue;
    const auto s_dec = decision_sequence(*s_fire->file, s_fire->body_begin,
                                         s_fire->body_end);
    const auto b_dec = decision_sequence(*b_fire->file, b_fire->body_begin,
                                         b_fire->body_end);
    if (s_dec.size() != b_dec.size()) {
      emit_diag(*b_fire->file, b_fire->line, 1, "batch-mirror",
                "'" + name + "::fire' makes " +
                    std::to_string(b_dec.size()) + " decisions but '" +
                    scalar_name + "::fire' makes " +
                    std::to_string(s_dec.size()) +
                    "; the batched path no longer mirrors the scalar one",
                diags);
    } else {
      for (std::size_t i = 0; i < s_dec.size(); ++i) {
        if (s_dec[i] == b_dec[i]) continue;
        emit_diag(*b_fire->file, b_fire->line, 1, "batch-mirror",
                  "decision #" + std::to_string(i + 1) + " of '" + name +
                      "::fire' is '" + b_dec[i] + "' but the scalar twin "
                      "decides '" + s_dec[i] + "'",
                  diags);
        break;
      }
    }

    // Action parity: every scalar note_action label must appear as a
    // comment in the batch fire(), in the same order (the batch path has
    // no Context::note_action — the comments are its action ledger).
    std::vector<std::string> labels;
    collect_actions(*s_fire, labels);
    if (labels.empty()) continue;
    const Toks& bt = b_fire->file->tokens;
    const std::uint32_t lo = bt[b_fire->body_begin].line;
    const std::uint32_t hi = b_fire->body_end > b_fire->body_begin
                                 ? bt[b_fire->body_end - 1].line
                                 : lo;
    std::vector<const Comment*> comments;
    for (const Comment& c : b_fire->file->comments) {
      if (c.line >= lo && c.line <= hi) comments.push_back(&c);
    }
    const auto word_match = [](std::string_view text, const std::string& w) {
      const auto is_word = [](char ch) {
        return std::isalnum(static_cast<unsigned char>(ch)) != 0 ||
               ch == '-';
      };
      std::size_t at = text.find(w);
      while (at != std::string_view::npos) {
        const bool left_ok = at == 0 || !is_word(text[at - 1]);
        const std::size_t end = at + w.size();
        const bool right_ok = end >= text.size() || !is_word(text[end]);
        if (left_ok && right_ok) return true;
        at = text.find(w, at + 1);
      }
      return false;
    };
    std::size_t cursor = 0;
    for (const std::string& label : labels) {
      bool found = false;
      for (std::size_t c = cursor; c < comments.size(); ++c) {
        if (word_match(comments[c]->text, label)) {
          cursor = c + 1;
          found = true;
          break;
        }
      }
      if (!found) {
        emit_diag(*b_fire->file, b_fire->line, 1, "batch-mirror",
                  "scalar action '" + label + "' of '" + scalar_name +
                      "::fire' has no matching comment in '" + name +
                      "::fire' (missing or out of order); keep the batch "
                      "action ledger in scalar order",
                  diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// atomics-discipline

void check_atomics_discipline(const Model& model,
                              std::vector<Diagnostic>& diags) {
  static const std::set<std::string_view> kOrderedOps = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
      "test_and_set"};
  static const std::set<std::string_view> kImplicitOps = {
      "++", "--", "+=", "-=", "&=", "|=", "^="};

  for (const SourceFile* file : model.files) {
    const Toks& t = file->tokens;
    // Names declared std::atomic<...> in this file (members and locals
    // alike). Scoped per file: atomics here are always used where they
    // are declared, and a global set would trip on unrelated plain
    // variables that happen to share a name across files.
    std::set<std::string> atomic_names;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!t[i].is("atomic") || !t[i + 1].is("<")) continue;
      const std::size_t j = skip_angles(t, i + 1);
      if (j < t.size() && t[j].is_ident()) {
        atomic_names.insert(std::string(t[j].text));
      }
    }
    if (atomic_names.empty()) continue;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (!tok.is_ident()) continue;
      // Explicit member op: name.(op)(args) must name a memory_order.
      if (kOrderedOps.count(tok.text) > 0 && i + 1 < t.size() &&
          t[i + 1].is("(") && i >= 2 &&
          (t[i - 1].is(".") || t[i - 1].is("->")) && t[i - 2].is_ident() &&
          atomic_names.count(std::string(t[i - 2].text)) > 0) {
        const std::size_t close = skip_balanced(t, i + 1, "(", ")");
        bool has_order = false;
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
          if (t[j].is_ident() &&
              t[j].text.find("memory_order") != std::string_view::npos) {
            has_order = true;
          }
        }
        if (!has_order) {
          emit_diag(*file, tok.line, tok.col, "atomics-discipline",
                    "atomic " + std::string(tok.text) + " on '" +
                        std::string(t[i - 2].text) +
                        "' without an explicit memory_order; spell out the "
                        "ordering the algorithm needs",
                    diags);
        }
        continue;
      }
      // Implicit read-modify-write on an atomic name (++x, x += 1): these
      // are sequentially-consistent by default — make the ordering visible.
      if (atomic_names.count(std::string(tok.text)) == 0) continue;
      if (i > 0 && (t[i - 1].is_ident() || t[i - 1].is(">") ||
                    t[i - 1].is("::"))) {
        continue;  // a declaration or qualified name, not a use
      }
      const bool prefix =
          i > 0 && (t[i - 1].is("++") || t[i - 1].is("--"));
      const bool postfix = i + 1 < t.size() &&
                           kImplicitOps.count(t[i + 1].text) > 0;
      if (prefix || postfix) {
        emit_diag(*file, tok.line, tok.col, "atomics-discipline",
                  "implicit atomic read-modify-write on '" +
                      std::string(tok.text) +
                      "'; use fetch_add/fetch_sub (or store) with an "
                      "explicit memory_order",
                  diags);
      }
    }
  }

  // False-sharing layout: an atomic member adjacent to a non-atomic member
  // shares its cache line with cold data unless separated by alignas.
  for (const auto& [name, cls] : model.classes) {
    if (name.empty() || cls.body_file == nullptr) continue;
    const std::vector<FieldDecl> fields = scan_fields(cls);
    std::set<std::string> reported;
    for (std::size_t i = 0; i + 1 < fields.size(); ++i) {
      const FieldDecl& a = fields[i];
      const FieldDecl& b = fields[i + 1];
      if (a.is_atomic == b.is_atomic) continue;
      const FieldDecl& atom = a.is_atomic ? a : b;
      const FieldDecl& plain = a.is_atomic ? b : a;
      if (a.has_alignas || b.has_alignas) continue;
      if (cold_atomic_annotated(*cls.body_file, atom.line)) continue;
      if (!reported.insert(atom.name).second) continue;
      emit_diag(*cls.body_file, atom.line, 1, "atomics-discipline",
                "atomic member '" + atom.name +
                    "' shares a cache line with non-atomic '" + plain.name +
                    "' in '" + name +
                    "'; separate with alignas(64) or annotate "
                    "// hring-lint: cold-atomic",
                diags);
    }
  }
}

}  // namespace hring::lint
