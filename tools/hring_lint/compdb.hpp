// compile_commands.json reader for hring-lint.
//
// The tool is driven by the compilation database CMake exports with
// CMAKE_EXPORT_COMPILE_COMMANDS (see the top-level CMakeLists.txt): the
// database names every translation unit of the build, and the linter adds
// the sibling headers of each named source so class definitions living in
// .hpp files join the cross-file model. Only the "directory" and "file"
// string fields are consumed.
#pragma once

#include <string>
#include <vector>

namespace hring::lint {

/// Absolute paths of the translation units in `<build_dir>/
/// compile_commands.json` plus their sibling `*.hpp` headers, filtered to
/// paths containing `filter` (empty = all). Returns false when the
/// database is missing or unparsable.
[[nodiscard]] bool compdb_sources(const std::string& build_dir,
                                  const std::string& filter,
                                  std::vector<std::string>& out,
                                  std::string& error);

}  // namespace hring::lint
