#include "cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace hring::lint {
namespace {

constexpr std::string_view kMagic = "hring-lint-cache v1";

/// Tab/newline/backslash-escaped field (messages quote arbitrary source).
[[nodiscard]] std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: out += s[i];
    }
  }
  return out;
}

[[nodiscard]] std::filesystem::path entry_path(const std::string& dir,
                                               const std::string& key_hex) {
  return std::filesystem::path(dir) / (key_hex + ".diags");
}

}  // namespace

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string cache_key_hex(
    const std::vector<std::string>& checks,
    std::vector<std::pair<std::string, std::uint64_t>> file_hashes) {
  std::uint64_t h = fnv1a("schema");
  h = fnv1a(std::to_string(kCacheSchemaVersion), h);
  std::vector<std::string> sorted_checks = checks;
  std::sort(sorted_checks.begin(), sorted_checks.end());
  for (const std::string& c : sorted_checks) h = fnv1a(c, h);
  std::sort(file_hashes.begin(), file_hashes.end());
  for (const auto& [path, hash] : file_hashes) {
    h = fnv1a(path, h);
    h = fnv1a(std::to_string(hash), h);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

bool cache_load(const std::string& dir, const std::string& key_hex,
                std::vector<Diagnostic>& out) {
  out.clear();
  std::ifstream in(entry_path(dir, key_hex));
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return false;
  std::size_t expected = 0;
  if (!std::getline(in, line)) return false;
  try {
    expected = std::stoul(line);
  } catch (...) {
    return false;
  }
  while (std::getline(in, line)) {
    // file \t line \t col \t check \t message
    std::vector<std::string_view> fields;
    std::string_view rest = line;
    for (int f = 0; f < 4; ++f) {
      const std::size_t tab = rest.find('\t');
      if (tab == std::string_view::npos) {
        out.clear();
        return false;
      }
      fields.push_back(rest.substr(0, tab));
      rest.remove_prefix(tab + 1);
    }
    Diagnostic d;
    d.file = unescape(fields[0]);
    try {
      d.line = static_cast<std::uint32_t>(std::stoul(std::string(fields[1])));
      d.col = static_cast<std::uint32_t>(std::stoul(std::string(fields[2])));
    } catch (...) {
      out.clear();
      return false;
    }
    d.check = unescape(fields[3]);
    d.message = unescape(rest);
    out.push_back(std::move(d));
  }
  if (out.size() != expected) {
    out.clear();
    return false;
  }
  return true;
}

void cache_store(const std::string& dir, const std::string& key_hex,
                 const std::vector<Diagnostic>& diags) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  // Write-then-rename: a concurrent reader never sees a torn entry.
  const std::filesystem::path final_path = entry_path(dir, key_hex);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path);
    if (!out) return;
    out << kMagic << "\n" << diags.size() << "\n";
    for (const Diagnostic& d : diags) {
      out << escape(d.file) << "\t" << d.line << "\t" << d.col << "\t"
          << escape(d.check) << "\t" << escape(d.message) << "\n";
    }
    if (!out) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace hring::lint
