#include "concurrency_model.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

#include "checks.hpp"

namespace hring::lint {
namespace {

using Toks = std::vector<Token>;

std::size_t skip_balanced(const Toks& t, std::size_t i, std::string_view open,
                          std::string_view close) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is(open)) {
      ++depth;
    } else if (t[i].is(close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

std::size_t skip_angles(const Toks& t, std::size_t i) {
  std::size_t depth = 0;
  for (; i < t.size() && t[i].kind != TokKind::kEof; ++i) {
    if (t[i].is("<")) {
      ++depth;
    } else if (t[i].is(">")) {
      if (--depth == 0) return i + 1;
    } else if (t[i].is(">>")) {
      if (depth <= 2) return i + 1;
      depth -= 2;
    } else if (t[i].is("(")) {
      i = skip_balanced(t, i, "(", ")") - 1;
    } else if (t[i].is(";") || t[i].is("{")) {
      return i;  // not a template list after all
    }
  }
  return i;
}

/// The comment nearest to (and not past) `line` within [line - above, line]
/// whose text contains `marker`; nullptr when absent.
const Comment* find_annotation(const SourceFile& file, std::uint32_t line,
                               std::uint32_t above, std::string_view marker) {
  const Comment* best = nullptr;
  for (const Comment& c : file.comments) {
    if (c.line > line || c.line + above < line) continue;
    if (c.text.find(marker) == std::string_view::npos) continue;
    if (best == nullptr || c.line > best->line) best = &c;
  }
  return best;
}

[[nodiscard]] std::string_view after_marker(std::string_view text,
                                            std::string_view marker) {
  const std::size_t at = text.find(marker);
  std::string_view rest = text.substr(at + marker.size());
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front())) != 0) {
    rest.remove_prefix(1);
  }
  return rest;
}

/// Trims a comment tail to the annotation's own text: stops at a block
/// comment terminator and trailing whitespace.
[[nodiscard]] std::string_view trim_spec(std::string_view spec) {
  const std::size_t close = spec.find("*/");
  if (close != std::string_view::npos) spec = spec.substr(0, close);
  while (!spec.empty() &&
         std::isspace(static_cast<unsigned char>(spec.back())) != 0) {
    spec.remove_suffix(1);
  }
  return spec;
}

/// Parses a comma-separated role list into `out`. False on any unknown
/// word or an empty list.
[[nodiscard]] bool parse_role_list(std::string_view list, RoleSet& out) {
  bool any = false;
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string_view word = list.substr(0, comma);
    while (!word.empty() &&
           std::isspace(static_cast<unsigned char>(word.front())) != 0) {
      word.remove_prefix(1);
    }
    while (!word.empty() &&
           std::isspace(static_cast<unsigned char>(word.back())) != 0) {
      word.remove_suffix(1);
    }
    const std::optional<Role> role = parse_role(word);
    if (!role.has_value()) return false;
    out.add(*role);
    any = true;
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return any;
}

/// The declarator name on `line`: the last identifier directly followed
/// by `{`, `=`, `;` or `[` — the shape of every member declaration in
/// this codebase (`std::atomic<std::uint64_t> head_{0};`).
[[nodiscard]] std::string declarator_on_line(const SourceFile& file,
                                             std::uint32_t line) {
  const Toks& t = file.tokens;
  std::string name;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].line != line || !t[i].is_ident()) continue;
    if (t[i + 1].is("{") || t[i + 1].is("=") || t[i + 1].is(";") ||
        t[i + 1].is("[")) {
      name = std::string(t[i].text);
    }
  }
  return name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Roles and annotations

std::optional<Role> parse_role(std::string_view word) {
  if (word == "producer") return Role::kProducer;
  if (word == "consumer") return Role::kConsumer;
  if (word == "coordinator") return Role::kCoordinator;
  if (word == "watchdog") return Role::kWatchdog;
  return std::nullopt;
}

std::string_view role_name(Role role) {
  switch (role) {
    case Role::kProducer: return "producer";
    case Role::kConsumer: return "consumer";
    case Role::kCoordinator: return "coordinator";
    case Role::kWatchdog: return "watchdog";
  }
  return "?";
}

std::string RoleSet::render() const {
  std::string out;
  for (std::size_t i = 0; i < kNumRoles; ++i) {
    const Role r = static_cast<Role>(i);
    if (!contains(r)) continue;
    if (!out.empty()) out += ",";
    out += role_name(r);
  }
  return out;
}

std::optional<Role> function_role(const SourceFile& file,
                                  std::uint32_t line) {
  const Comment* c = find_annotation(file, line, 4, "hring-role:");
  if (c == nullptr) return std::nullopt;
  std::string_view spec = trim_spec(after_marker(c->text, "hring-role:"));
  return parse_role(spec);
}

std::vector<SharedDecl> shared_decls(const SourceFile& file) {
  std::vector<SharedDecl> out;
  for (const Comment& c : file.comments) {
    if (c.text.find("hring-shared:") == std::string_view::npos) continue;
    SharedDecl decl;
    decl.line = c.line;
    decl.member = declarator_on_line(file, c.line);
    if (decl.member.empty()) {
      decl.line = c.line + 1;
      decl.member = declarator_on_line(file, c.line + 1);
    }
    const std::string_view spec =
        trim_spec(after_marker(c.text, "hring-shared:"));
    const std::size_t arrow = spec.find("->");
    if (arrow != std::string_view::npos) {
      decl.has_arrow = true;
      decl.malformed = !parse_role_list(spec.substr(0, arrow), decl.writers) ||
                       !parse_role_list(spec.substr(arrow + 2), decl.readers);
    } else {
      decl.malformed = !parse_role_list(spec, decl.writers);
    }
    if (decl.member.empty()) decl.malformed = true;
    out.push_back(std::move(decl));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Statement-path builder

namespace {

class StmtBuilder {
 public:
  StmtBuilder(const SourceFile& file, std::size_t begin, std::size_t end)
      : t_(file.tokens), end_(end), pos_(begin) {}

  [[nodiscard]] Stmt run(std::size_t begin, std::size_t end) {
    Stmt root;
    root.kind = Stmt::Kind::kBlock;
    root.begin = begin;
    root.end = end;
    parse_children(root, end);
    return root;
  }

 private:
  [[nodiscard]] bool at(std::string_view s) const {
    return pos_ < end_ && t_[pos_].is(s);
  }

  std::size_t skip_match(std::size_t i, std::string_view open,
                         std::string_view close) {
    std::size_t depth = 0;
    for (; i < end_; ++i) {
      if (t_[i].is(open)) ++depth;
      if (t_[i].is(close) && --depth == 0) return i + 1;
    }
    return i;
  }

  std::size_t skip_expression_to_semicolon() {
    std::size_t i = pos_;
    while (i < end_) {
      if (t_[i].is("(")) {
        i = skip_match(i, "(", ")");
        continue;
      }
      if (t_[i].is("{")) {
        i = skip_match(i, "{", "}");
        continue;
      }
      if (t_[i].is(";")) return i + 1;
      ++i;
    }
    return i;
  }

  /// Parses statements into `parent.children` until `end` (exclusive).
  void parse_children(Stmt& parent, std::size_t end) {
    const std::size_t saved_end = end_;
    end_ = end;
    while (pos_ < end) {
      const std::size_t before = pos_;
      parent.children.push_back(parse_stmt());
      if (pos_ == before) {  // safety: always make progress
        parent.children.pop_back();
        ++pos_;
      }
    }
    end_ = saved_end;
  }

  Stmt parse_stmt() {
    Stmt s;
    s.begin = pos_;
    if (at("{")) {
      const std::size_t close = skip_match(pos_, "{", "}");
      s.kind = Stmt::Kind::kBlock;
      ++pos_;
      parse_children(s, close - 1);
      pos_ = close;
      s.end = pos_;
      return s;
    }
    if (at("if")) {
      s.kind = Stmt::Kind::kIf;
      ++pos_;
      if (at("constexpr")) ++pos_;
      s.cond_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      s.cond_end = pos_;
      s.children.push_back(parse_stmt());
      if (at("else")) {
        ++pos_;
        s.children.push_back(parse_stmt());
      }
      s.end = pos_;
      return s;
    }
    if (at("while") || at("for")) {
      s.kind = Stmt::Kind::kLoop;
      ++pos_;
      s.cond_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      s.cond_end = pos_;
      s.children.push_back(parse_stmt());
      s.end = pos_;
      return s;
    }
    if (at("do")) {
      s.kind = Stmt::Kind::kLoop;
      ++pos_;
      s.children.push_back(parse_stmt());
      if (at("while")) {
        ++pos_;
        s.cond_begin = pos_;
        pos_ = skip_match(pos_, "(", ")");
        s.cond_end = pos_;
      }
      if (at(";")) ++pos_;
      s.end = pos_;
      return s;
    }
    if (at("switch")) {
      s.kind = Stmt::Kind::kSwitch;
      ++pos_;
      s.cond_begin = pos_;
      pos_ = skip_match(pos_, "(", ")");
      s.cond_end = pos_;
      if (!at("{")) {
        s.end = pos_;
        return s;
      }
      const std::size_t close = skip_match(pos_, "{", "}");
      const std::size_t saved_end = end_;
      end_ = close - 1;
      ++pos_;
      while (pos_ < close - 1) {
        if (at("case") || at("default")) {
          while (pos_ < close - 1 && !at(":")) ++pos_;
          ++pos_;
          continue;
        }
        const std::size_t before = pos_;
        s.children.push_back(parse_stmt());
        if (pos_ == before) {
          s.children.pop_back();
          ++pos_;
        }
      }
      end_ = saved_end;
      pos_ = close;
      s.end = pos_;
      return s;
    }
    if (at("return")) {
      s.kind = Stmt::Kind::kReturn;
      pos_ = skip_expression_to_semicolon();
      s.end = pos_;
      return s;
    }
    if (at("break") || at("continue") || at("goto") || at("throw")) {
      s.kind = Stmt::Kind::kJump;
      pos_ = skip_expression_to_semicolon();
      s.end = pos_;
      return s;
    }
    if (at("else") || at(";")) {  // stray
      s.kind = Stmt::Kind::kExpr;
      ++pos_;
      s.end = pos_;
      return s;
    }
    s.kind = Stmt::Kind::kExpr;
    pos_ = skip_expression_to_semicolon();
    s.end = pos_;
    return s;
  }

  const Toks& t_;
  std::size_t end_;
  std::size_t pos_;
};

[[nodiscard]] bool stmt_contains(const Stmt& s, std::size_t tok) {
  return tok >= s.begin && tok < s.end;
}

/// Token ranges guaranteed to execute given that `s` begins executing:
/// whole expression/return/jump statements, every child of a block (a
/// child that exits abnormally makes anything sequenced after `s`
/// unreachable, which is exactly the context dominance is queried in),
/// and only the condition of if/loop/switch.
void collect_guaranteed(const Stmt& s,
                        std::vector<std::pair<std::size_t, std::size_t>>& out) {
  switch (s.kind) {
    case Stmt::Kind::kExpr:
    case Stmt::Kind::kReturn:
    case Stmt::Kind::kJump:
      out.emplace_back(s.begin, s.end);
      return;
    case Stmt::Kind::kBlock:
      for (const Stmt& child : s.children) collect_guaranteed(child, out);
      return;
    case Stmt::Kind::kIf:
    case Stmt::Kind::kLoop:
    case Stmt::Kind::kSwitch:
      if (s.cond_end > s.cond_begin) {
        out.emplace_back(s.cond_begin, s.cond_end);
      }
      return;
  }
}

[[nodiscard]] bool ranges_intersect(
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    std::size_t from, std::size_t to) {
  for (const auto& [b, e] : ranges) {
    if (b < to && from < e) return true;
  }
  return false;
}

}  // namespace

Stmt build_stmt_tree(const SourceFile& file, std::size_t begin,
                     std::size_t end) {
  StmtBuilder builder(file, begin, end);
  return builder.run(begin, end);
}

bool loop_enclosed(const Stmt& root, std::size_t tok) {
  if (!stmt_contains(root, tok)) return false;
  if (root.kind == Stmt::Kind::kLoop) return true;
  for (const Stmt& child : root.children) {
    if (stmt_contains(child, tok)) return loop_enclosed(child, tok);
  }
  return false;
}

bool dominated_by_range(const Stmt& root, std::size_t tok, std::size_t from,
                        std::size_t to) {
  if (!stmt_contains(root, tok)) return false;
  std::vector<std::pair<std::size_t, std::size_t>> guaranteed;
  const Stmt* node = &root;
  for (;;) {
    // Conditions evaluate before any branch or body they guard.
    if (node->cond_end > node->cond_begin && tok >= node->cond_end) {
      guaranteed.emplace_back(node->cond_begin, node->cond_end);
    }
    const Stmt* next = nullptr;
    for (const Stmt& child : node->children) {
      if (stmt_contains(child, tok)) {
        next = &child;
        break;
      }
      // Sequential siblings run to completion before `tok`'s statement
      // begins — but only in a block; if/switch children are alternatives.
      if (node->kind == Stmt::Kind::kBlock) collect_guaranteed(child, guaranteed);
    }
    if (next == nullptr) break;
    node = next;
  }
  // Earlier tokens of the statement (or condition) containing `tok`.
  guaranteed.emplace_back(node->begin, tok);
  return ranges_intersect(guaranteed, from, to);
}

// ---------------------------------------------------------------------------
// Shared scan machinery for the checks

namespace {

/// One atomic (or condition-variable) member operation: `recv.op(args)`.
struct MemberOp {
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kRmw,
    kWait,
    kNotify,
  };
  Kind kind = Kind::kLoad;
  std::string recv;
  std::string order;  // "relaxed", "acquire", ... ; empty when implicit
  std::size_t tok = 0;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
};

[[nodiscard]] std::optional<MemberOp::Kind> op_kind(std::string_view name) {
  if (name == "load") return MemberOp::Kind::kLoad;
  if (name == "store") return MemberOp::Kind::kStore;
  if (name == "exchange" || name == "fetch_add" || name == "fetch_sub" ||
      name == "fetch_and" || name == "fetch_or" || name == "fetch_xor" ||
      name == "compare_exchange_weak" || name == "compare_exchange_strong" ||
      name == "test_and_set") {
    return MemberOp::Kind::kRmw;
  }
  if (name == "wait") return MemberOp::Kind::kWait;
  if (name == "notify_one" || name == "notify_all") {
    return MemberOp::Kind::kNotify;
  }
  return std::nullopt;
}

/// Extracts the memory_order spelled in the argument list [open+1, close).
[[nodiscard]] std::string order_in_args(const Toks& t, std::size_t open,
                                        std::size_t close) {
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    if (!t[i].is_ident()) continue;
    if (t[i].text == "memory_order" && i + 2 < close && t[i + 1].is("::")) {
      return std::string(t[i + 2].text);
    }
    if (t[i].text.rfind("memory_order_", 0) == 0) {
      return std::string(t[i].text.substr(13));
    }
  }
  return {};
}

/// Names declared std::atomic<...> in this file (the atomics-discipline
/// receiver-resolution idiom: per-file, declaration-site driven).
[[nodiscard]] std::set<std::string> atomic_names_of(const SourceFile& file) {
  const Toks& t = file.tokens;
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is("atomic") || !t[i + 1].is("<")) continue;
    const std::size_t j = skip_angles(t, i + 1);
    if (j < t.size() && t[j].is_ident()) {
      names.insert(std::string(t[j].text));
    }
  }
  return names;
}

/// Names declared std::condition_variable in this file.
[[nodiscard]] std::set<std::string> cv_names_of(const SourceFile& file) {
  const Toks& t = file.tokens;
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is("condition_variable") && !t[i].is("condition_variable_any")) {
      continue;
    }
    if (t[i + 1].is_ident() && i + 2 < t.size() &&
        (t[i + 2].is(";") || t[i + 2].is("{"))) {
      names.insert(std::string(t[i + 1].text));
    }
  }
  return names;
}

/// Member ops on receivers from `names` within [begin, end).
void scan_member_ops(const SourceFile& file, std::size_t begin,
                     std::size_t end, const std::set<std::string>& names,
                     std::vector<MemberOp>& out) {
  const Toks& t = file.tokens;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!t[i].is_ident() || !t[i + 1].is("(")) continue;
    if (i < 2 || (!t[i - 1].is(".") && !t[i - 1].is("->"))) continue;
    if (!t[i - 2].is_ident() ||
        names.count(std::string(t[i - 2].text)) == 0) {
      continue;
    }
    const std::optional<MemberOp::Kind> kind = op_kind(t[i].text);
    if (!kind.has_value()) continue;
    MemberOp op;
    op.kind = *kind;
    op.recv = std::string(t[i - 2].text);
    op.order = order_in_args(t, i + 1, skip_balanced(t, i + 1, "(", ")"));
    op.tok = i;
    op.line = t[i].line;
    op.col = t[i].col;
    out.push_back(std::move(op));
  }
}

/// Every method body in `model` that lives in `file`.
[[nodiscard]] std::vector<const MethodInfo*> bodies_in_file(
    const Model& model, const SourceFile& file) {
  std::vector<const MethodInfo*> out;
  for (const auto& [name, cls] : model.classes) {
    for (const MethodInfo& m : cls.methods) {
      if (m.has_body && m.file == &file) out.push_back(&m);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MethodInfo* a, const MethodInfo* b) {
              return a->body_begin < b->body_begin;
            });
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// spsc-ownership

void check_spsc_ownership(const Model& model, std::vector<Diagnostic>& diags) {
  for (const SourceFile* file : model.files) {
    // Malformed annotations are findings in their own right: a wrong role
    // word silently disabling enforcement would be worse than a bug.
    for (const Comment& c : file->comments) {
      if (c.text.find("hring-role:") == std::string_view::npos) continue;
      const std::string_view spec =
          trim_spec(after_marker(c.text, "hring-role:"));
      if (!parse_role(spec).has_value()) {
        emit_diag(*file, c.line, 1, "spsc-ownership",
                  "unknown thread role '" + std::string(spec) +
                      "' in hring-role annotation (expected "
                      "producer|consumer|coordinator|watchdog)",
                  diags);
      }
    }
    std::map<std::string, SharedDecl> shared;
    for (SharedDecl& decl : shared_decls(*file)) {
      if (decl.malformed) {
        emit_diag(*file, decl.line, 1, "spsc-ownership",
                  "malformed hring-shared annotation (expected a role list "
                  "or <writers>-><readers> naming "
                  "producer|consumer|coordinator|watchdog, on the member's "
                  "line or the line above)",
                  diags);
        continue;
      }
      shared.emplace(decl.member, std::move(decl));
    }
    if (shared.empty()) continue;
    std::set<std::string> names;
    for (const auto& [member, decl] : shared) names.insert(member);

    for (const MethodInfo* m : bodies_in_file(model, *file)) {
      std::vector<MemberOp> ops;
      scan_member_ops(*file, m->body_begin, m->body_end, names, ops);
      if (ops.empty()) continue;
      const std::optional<Role> role = function_role(*file, m->line);
      for (const MemberOp& op : ops) {
        const SharedDecl& decl = shared.at(op.recv);
        if (!role.has_value()) {
          emit_diag(*file, op.line, op.col, "spsc-ownership",
                    "'" + m->name + "' accesses role-annotated member '" +
                        op.recv +
                        "' but carries no hring-role annotation; ownership "
                        "cannot be attributed",
                    diags);
          continue;
        }
        const std::string rname(role_name(*role));
        if (!decl.has_arrow) {
          // List form: access control only (mutex- or RMW-mediated).
          if (!decl.writers.contains(*role)) {
            emit_diag(*file, op.line, op.col, "spsc-ownership",
                      "role '" + rname + "' may not access '" + op.recv +
                          "' (shared among " + decl.writers.render() + ")",
                      diags);
          }
          continue;
        }
        const bool owner = decl.writers.contains(*role);
        const bool reader = decl.readers.contains(*role);
        switch (op.kind) {
          case MemberOp::Kind::kStore:
            if (!owner) {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "role '" + rname + "' may not store '" + op.recv +
                            "' (owned by " + decl.writers.render() + ")",
                        diags);
            } else if (!op.order.empty() && op.order != "release") {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "publishing store to '" + op.recv +
                            "' must use memory_order_release (got " +
                            op.order + "); the buffer write must "
                            "happen-before the index publication",
                        diags);
            }
            break;
          case MemberOp::Kind::kLoad:
            if (owner) {
              if (!op.order.empty() && op.order != "relaxed") {
                emit_diag(*file, op.line, op.col, "spsc-ownership",
                          "role '" + rname + "' owns '" + op.recv +
                              "'; it reads its own cursor with "
                              "memory_order_relaxed (got " +
                              op.order + ")",
                          diags);
              }
            } else if (reader) {
              if (!op.order.empty() && op.order != "acquire") {
                emit_diag(*file, op.line, op.col, "spsc-ownership",
                          "role '" + rname + "' must load '" + op.recv +
                              "' with memory_order_acquire (got " +
                              op.order + "); it observes " +
                              decl.writers.render() + "'s publication",
                          diags);
              }
            } else {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "role '" + rname + "' may not access '" + op.recv +
                            "' (shared " + decl.writers.render() + "->" +
                            decl.readers.render() + ")",
                        diags);
            }
            break;
          case MemberOp::Kind::kRmw:
            if (!owner) {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "role '" + rname + "' may not modify '" + op.recv +
                            "' (owned by " + decl.writers.render() + ")",
                        diags);
            } else if (!op.order.empty() && op.order != "release" &&
                       op.order != "acq_rel") {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "publishing read-modify-write of '" + op.recv +
                            "' must use memory_order_release or acq_rel "
                            "(got " + op.order + ")",
                        diags);
            }
            break;
          case MemberOp::Kind::kWait:
            if (!reader) {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "role '" + rname + "' may not wait on '" + op.recv +
                            "' (only its readers " + decl.readers.render() +
                            " park)",
                        diags);
            } else if (!op.order.empty() && op.order != "acquire") {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "wait on '" + op.recv +
                            "' must use memory_order_acquire (got " +
                            op.order + ")",
                        diags);
            }
            break;
          case MemberOp::Kind::kNotify:
            if (!owner) {
              emit_diag(*file, op.line, op.col, "spsc-ownership",
                        "role '" + rname + "' may not notify '" + op.recv +
                            "' (only its writers " + decl.writers.render() +
                            " wake observers)",
                        diags);
            }
            break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// pairing

void check_pairing(const Model& model, std::vector<Diagnostic>& diags) {
  for (const SourceFile* file : model.files) {
    const std::set<std::string> names = atomic_names_of(*file);
    const Toks& t = file->tokens;
    if (!names.empty()) {
      std::vector<MemberOp> ops;
      scan_member_ops(*file, 0, t.size(), names, ops);
      // Classify per member. A release-ordered RMW forms a release
      // sequence with the RMWs it reads from, so an acq_rel RMW is its
      // own acquire counterpart across threads.
      struct Sides {
        const MemberOp* release = nullptr;
        const MemberOp* acquire = nullptr;
      };
      std::map<std::string, Sides> members;
      for (const MemberOp& op : ops) {
        Sides& s = members[op.recv];
        const bool rel_order = op.order == "release" ||
                               op.order == "acq_rel" || op.order == "seq_cst";
        const bool acq_order = op.order == "acquire" ||
                               op.order == "acq_rel" || op.order == "seq_cst";
        switch (op.kind) {
          case MemberOp::Kind::kStore:
            if (rel_order && s.release == nullptr) s.release = &op;
            break;
          case MemberOp::Kind::kLoad:
          case MemberOp::Kind::kWait:
            if (acq_order && s.acquire == nullptr) s.acquire = &op;
            break;
          case MemberOp::Kind::kRmw:
            if (rel_order && s.release == nullptr) s.release = &op;
            if (acq_order && s.acquire == nullptr) s.acquire = &op;
            break;
          case MemberOp::Kind::kNotify:
            break;
        }
      }
      for (const auto& [member, s] : members) {
        if (s.release != nullptr && s.acquire == nullptr) {
          emit_diag(*file, s.release->line, s.release->col, "pairing",
                    "release publication of '" + member +
                        "' has no acquire-side observer in this file; "
                        "nothing can synchronize with it (load/wait it "
                        "with memory_order_acquire somewhere, or relax "
                        "the store)",
                    diags);
        }
        if (s.acquire != nullptr && s.release == nullptr) {
          emit_diag(*file, s.acquire->line, s.acquire->col, "pairing",
                    "acquire-side read of '" + member +
                        "' has no release publication in this file; the "
                        "acquire synchronizes with nothing (publish with "
                        "memory_order_release, or relax the load)",
                    diags);
        }
      }
    }
    // Orphaned fences: a standalone release fence needs an acquire fence
    // (or acquire op) on the other thread; one-sided fence use in a file
    // is the smell this diagnoses.
    const MemberOp* rel_fence = nullptr;
    const MemberOp* acq_fence = nullptr;
    std::vector<MemberOp> fence_storage;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!t[i].is("atomic_thread_fence") || !t[i + 1].is("(")) continue;
      MemberOp op;
      op.order = order_in_args(t, i + 1, skip_balanced(t, i + 1, "(", ")"));
      op.line = t[i].line;
      op.col = t[i].col;
      fence_storage.push_back(op);
    }
    for (const MemberOp& f : fence_storage) {
      if ((f.order == "release" || f.order == "acq_rel" ||
           f.order == "seq_cst") &&
          rel_fence == nullptr) {
        rel_fence = &f;
      }
      if ((f.order == "acquire" || f.order == "acq_rel" ||
           f.order == "seq_cst") &&
          acq_fence == nullptr) {
        acq_fence = &f;
      }
    }
    if (rel_fence != nullptr && acq_fence == nullptr) {
      emit_diag(*file, rel_fence->line, rel_fence->col, "pairing",
                "orphaned release fence: no acquire-side fence in this "
                "file pairs with it",
                diags);
    }
    if (acq_fence != nullptr && rel_fence == nullptr) {
      emit_diag(*file, acq_fence->line, acq_fence->col, "pairing",
                "orphaned acquire fence: no release-side fence in this "
                "file pairs with it",
                diags);
    }
  }
}

// ---------------------------------------------------------------------------
// lost-wakeup

namespace {

[[nodiscard]] bool name_suggests_park(const std::string& name) {
  return name.find("wait") != std::string::npos ||
         name.find("park") != std::string::npos;
}

/// Top-level comma count of the argument list [open+1, close-1].
[[nodiscard]] std::size_t count_top_commas(const Toks& t, std::size_t open,
                                           std::size_t close) {
  std::size_t commas = 0;
  std::size_t depth = 0;
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    if (t[i].is("(") || t[i].is("[") || t[i].is("{")) ++depth;
    if (t[i].is(")") || t[i].is("]") || t[i].is("}")) --depth;
    if (depth == 0 && t[i].is(",")) ++commas;
  }
  return commas;
}

}  // namespace

void check_lost_wakeup(const Model& model, std::vector<Diagnostic>& diags) {
  // Pass 1: per-body rules; collect park primitives (methods whose name
  // says wait/park and whose body holds a bare futex wait — the re-check
  // obligation transfers to their callers).
  std::set<std::string> park_primitives;
  for (const SourceFile* file : model.files) {
    const std::set<std::string> atomics = atomic_names_of(*file);
    const std::set<std::string> cvs = cv_names_of(*file);
    if (atomics.empty() && cvs.empty()) continue;
    const Toks& t = file->tokens;
    for (const MethodInfo* m : bodies_in_file(model, *file)) {
      Stmt tree;
      bool have_tree = false;
      std::vector<MemberOp> ops;
      if (!atomics.empty()) {
        scan_member_ops(*file, m->body_begin, m->body_end, atomics, ops);
      }
      for (const MemberOp& op : ops) {
        if (op.kind == MemberOp::Kind::kWait) {
          if (!have_tree) {
            tree = build_stmt_tree(*file, m->body_begin, m->body_end);
            have_tree = true;
          }
          if (loop_enclosed(tree, op.tok)) continue;
          if (name_suggests_park(m->name)) {
            // A named park primitive: the futex compares against a
            // ticket, not the guard predicate — only callers can
            // re-check, so the loop obligation moves to every call site.
            park_primitives.insert(m->name);
            continue;
          }
          emit_diag(*file, op.line, op.col, "lost-wakeup",
                    "futex wait on '" + op.recv +
                        "' outside a re-check loop; a wakeup between "
                        "predicate check and wait is lost forever",
                    diags);
        }
        if (op.kind == MemberOp::Kind::kNotify) {
          if (!have_tree) {
            tree = build_stmt_tree(*file, m->body_begin, m->body_end);
            have_tree = true;
          }
          bool dominated = false;
          for (const MemberOp& pub : ops) {
            if (pub.recv != op.recv) continue;
            if (pub.kind != MemberOp::Kind::kStore &&
                pub.kind != MemberOp::Kind::kRmw) {
              continue;
            }
            if (dominated_by_range(tree, op.tok, pub.tok, pub.tok + 1)) {
              dominated = true;
              break;
            }
          }
          if (!dominated) {
            emit_diag(*file, op.line, op.col, "lost-wakeup",
                      "doorbell notify on '" + op.recv +
                          "' is not preceded by its publication store on "
                          "every path; a woken consumer would re-check, "
                          "see nothing, and park again",
                      diags);
          }
        }
      }
      // Condition-variable waits must carry a predicate: the two-argument
      // form re-checks after every wakeup by construction.
      for (std::size_t i = m->body_begin; i + 1 < m->body_end; ++i) {
        if (!t[i].is("wait") || !t[i + 1].is("(")) continue;
        if (i < 2 || (!t[i - 1].is(".") && !t[i - 1].is("->"))) continue;
        if (!t[i - 2].is_ident() ||
            cvs.count(std::string(t[i - 2].text)) == 0) {
          continue;
        }
        const std::size_t close = skip_balanced(t, i + 1, "(", ")");
        if (count_top_commas(t, i + 1, close) == 0) {
          emit_diag(*file, t[i].line, t[i].col, "lost-wakeup",
                    "condition-variable wait without a predicate; spurious "
                    "wakeups and missed notifies require the two-argument "
                    "re-checking form",
                    diags);
        }
      }
    }
  }
  // Pass 2: every call to a park primitive sits inside a re-check loop
  // (unless the caller is itself a park primitive and defers again).
  if (park_primitives.empty()) return;
  for (const SourceFile* file : model.files) {
    const Toks& t = file->tokens;
    for (const MethodInfo* m : bodies_in_file(model, *file)) {
      if (name_suggests_park(m->name)) continue;
      Stmt tree;
      bool have_tree = false;
      for (std::size_t i = m->body_begin; i + 1 < m->body_end; ++i) {
        if (!t[i].is_ident() || !t[i + 1].is("(")) continue;
        if (park_primitives.count(std::string(t[i].text)) == 0) continue;
        if (!have_tree) {
          tree = build_stmt_tree(*file, m->body_begin, m->body_end);
          have_tree = true;
        }
        if (loop_enclosed(tree, i)) continue;
        emit_diag(*file, t[i].line, t[i].col, "lost-wakeup",
                  "call to park primitive '" + std::string(t[i].text) +
                      "' outside a re-check loop; the futex ticket protocol "
                      "requires callers to re-check the predicate and loop",
                  diags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// no-block-in-hot-path

namespace {

/// Blocking sinks by name: scheduler handoffs and parking syscalls.
[[nodiscard]] bool is_blocking_sink(std::string_view name) {
  static const std::set<std::string_view> kSinks = {
      "sleep_for", "sleep_until", "yield",      "usleep",
      "nanosleep", "sleep",       "futex",      "syscall",
      "poll",      "select",      "epoll_wait", "ppoll",
      "pselect",   "wait",        "wait_for",   "wait_until"};
  return kSinks.count(name) > 0;
}

/// Keywords and call-shaped non-calls excluded from the call graph.
[[nodiscard]] bool is_call_keyword(std::string_view name) {
  static const std::set<std::string_view> kKeywords = {
      "if",           "while",       "for",         "switch",
      "return",       "sizeof",      "alignof",     "alignas",
      "decltype",     "static_cast", "const_cast",  "reinterpret_cast",
      "dynamic_cast", "catch",       "noexcept",    "static_assert",
      "HRING_ASSERT", "HRING_EXPECTS", "HRING_ENSURES"};
  return kKeywords.count(name) > 0;
}

struct CallSite {
  std::string name;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
};

/// Where a method's blocking descent bottoms out, for the diagnostic.
struct SinkInfo {
  std::string chain;  // "send > send_cancelable > sleep_for"
  std::string at;     // "file:line" of the sink call
};

class BlockReach {
 public:
  explicit BlockReach(const Model& model) {
    for (const auto& [cname, cls] : model.classes) {
      for (const MethodInfo& m : cls.methods) {
        if (!m.has_body || m.file == nullptr) continue;
        bodies_[m.name].push_back(&m);
      }
    }
  }

  /// The first blocking sink reachable from `m`'s body, if any. Edges
  /// whose call-site line carries hring-nolint(no-block-in-hot-path) are
  /// by-design blocking and pruned here (with their justification
  /// comments at the call site).
  [[nodiscard]] const std::optional<SinkInfo>& reach(const MethodInfo* m) {
    const auto it = memo_.find(m);
    if (it != memo_.end()) return it->second;
    auto [slot, inserted] =
        memo_.emplace(m, std::nullopt);  // cycle-breaker: in-progress = clean
    std::optional<SinkInfo> found;
    for (const CallSite& call : call_sites(m)) {
      if (edge_suppressed(*m->file, call.line)) continue;
      const auto targets = bodies_.find(call.name);
      // A sink name that resolves to a project-defined body is that body,
      // not the syscall (an engine's select() is algorithm selection);
      // the recursion below judges it by what it actually calls.
      if (targets == bodies_.end()) {
        if (is_blocking_sink(call.name)) {
          SinkInfo info;
          info.chain = call.name;
          info.at = m->file->path + ":" + std::to_string(call.line);
          found = std::move(info);
          break;
        }
        continue;
      }
      bool hit = false;
      for (const MethodInfo* callee : targets->second) {
        if (callee == m) continue;
        const std::optional<SinkInfo>& sub = reach(callee);
        if (sub.has_value()) {
          SinkInfo info;
          info.chain = call.name + " > " + sub->chain;
          info.at = sub->at;
          found = std::move(info);
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    // Re-find: recursive reach() calls may have rehashed the map.
    memo_[m] = std::move(found);
    (void)slot;
    (void)inserted;
    return memo_[m];
  }

 private:
  [[nodiscard]] std::vector<CallSite> call_sites(const MethodInfo* m) const {
    std::vector<CallSite> out;
    const Toks& t = m->file->tokens;
    for (std::size_t i = m->body_begin; i + 1 < m->body_end; ++i) {
      if (!t[i].is_ident() || !t[i + 1].is("(")) continue;
      if (is_call_keyword(t[i].text)) continue;
      out.push_back({std::string(t[i].text), t[i].line, t[i].col});
    }
    return out;
  }

  [[nodiscard]] static bool edge_suppressed(const SourceFile& file,
                                            std::uint32_t line) {
    for (const Comment& c : file.comments) {
      if (c.line != line) continue;
      const std::size_t at = c.text.find("hring-nolint");
      if (at == std::string_view::npos) continue;
      const std::size_t paren = c.text.find('(', at);
      if (paren == std::string_view::npos) return true;
      if (c.text.find("no-block-in-hot-path", paren) !=
          std::string_view::npos) {
        return true;
      }
    }
    return false;
  }

  std::map<std::string, std::vector<const MethodInfo*>> bodies_;
  std::map<const MethodInfo*, std::optional<SinkInfo>> memo_;
};

[[nodiscard]] bool guarded_shape_c(const Model& model, const std::string& name,
                                   const ClassInfo& cls) {
  if (name.empty()) return false;
  if (model.derives_from(name)) return true;
  return !model.methods_named(cls, "enabled").empty() &&
         !model.methods_named(cls, "fire").empty();
}

}  // namespace

void check_no_block_in_hot_path(const Model& model,
                                std::vector<Diagnostic>& diags) {
  BlockReach reach(model);
  for (const auto& [name, cls] : model.classes) {
    const bool guarded = guarded_shape_c(model, name, cls);
    for (const MethodInfo& m : cls.methods) {
      if (!m.has_body || m.file == nullptr) continue;
      const bool action_root =
          guarded && (m.name == "enabled" || m.name == "fire");
      if (!action_root && !m.hot_path) continue;
      const std::optional<SinkInfo>& sink = reach.reach(&m);
      if (!sink.has_value()) continue;
      const std::string where =
          action_root ? (m.name == "enabled" ? "enabled() (guard)"
                                             : "fire() (action)")
                      : "'" + m.name + "' (hring-lint: hot-path)";
      emit_diag(*m.file, m.line, 1, "no-block-in-hot-path",
                where + " can reach the blocking call '" + sink->chain +
                    "' (sink at " + sink->at +
                    "); hot paths must stay on-CPU — park via the doorbell "
                    "protocol instead, or justify with "
                    "hring-nolint(no-block-in-hot-path) at the call site",
                diags);
    }
  }
}

// ---------------------------------------------------------------------------
// decode-before-trust

void check_decode_before_trust(const Model& model,
                               std::vector<Diagnostic>& diags) {
  // Calls that may receive raw bytes: the trust gate itself plus byte
  // movers that never interpret content.
  static const std::set<std::string_view> kLaundering = {
      "decode",   "encode", "try_peek", "try_read", "try_write",
      "poke_raw", "discard", "memcpy",  "memcmp",   "fill"};
  // Members of the raw buffer that expose size/iterators, not content.
  static const std::set<std::string_view> kShapeMembers = {
      "data", "size", "begin", "end", "max_size", "fill"};

  for (const SourceFile* file : model.files) {
    const Toks& t = file->tokens;
    for (const MethodInfo* m : bodies_in_file(model, *file)) {
      // The codec is the trust boundary: decode/encode bodies are where
      // raw bytes legitimately become (or came from) structured state.
      if (m->name == "decode" || m->name == "encode") continue;
      // Taint sources: wire::Frame locals and raw byte-buffer locals.
      std::set<std::string> tainted;
      std::set<std::size_t> decl_sites;
      for (std::size_t i = m->body_begin; i + 2 < m->body_end; ++i) {
        if (t[i].is("Frame") && t[i + 1].is_ident() &&
            (t[i + 2].is(";") || t[i + 2].is("{") || t[i + 2].is("="))) {
          tainted.insert(std::string(t[i + 1].text));
          decl_sites.insert(i + 1);
        }
        if (t[i].is("uint8_t")) {
          if (t[i + 1].is_ident() && t[i + 2].is("[")) {
            tainted.insert(std::string(t[i + 1].text));
            decl_sites.insert(i + 1);
          }
          if (t[i + 1].is("*") && t[i + 2].is_ident() &&
              i + 3 < m->body_end && t[i + 3].is("=")) {
            tainted.insert(std::string(t[i + 2].text));
            decl_sites.insert(i + 2);
          }
        }
      }
      if (tainted.empty()) continue;
      // Sanctioned argument ranges: laundering calls may see raw bytes.
      std::vector<std::pair<std::size_t, std::size_t>> sanctioned;
      for (std::size_t i = m->body_begin; i + 1 < m->body_end; ++i) {
        if (!t[i].is_ident() || !t[i + 1].is("(")) continue;
        if (kLaundering.count(t[i].text) == 0) continue;
        sanctioned.emplace_back(i + 1,
                                skip_balanced(t, i + 1, "(", ")"));
      }
      const auto in_sanctioned = [&](std::size_t i) {
        for (const auto& [b, e] : sanctioned) {
          if (i > b && i < e) return true;
        }
        return false;
      };
      for (std::size_t i = m->body_begin; i < m->body_end; ++i) {
        if (!t[i].is_ident() || tainted.count(std::string(t[i].text)) == 0) {
          continue;
        }
        if (decl_sites.count(i) > 0) continue;
        if (in_sanctioned(i)) continue;
        // Shape queries expose no content.
        if (i + 2 < m->body_end && t[i + 1].is(".") &&
            kShapeMembers.count(t[i + 2].text) > 0) {
          continue;
        }
        // Writes INTO the buffer are fills, not reads: `x = ...`,
        // `x[i] = ...`.
        if (i + 1 < m->body_end && t[i + 1].is("=")) continue;
        if (i + 1 < m->body_end && t[i + 1].is("[")) {
          const std::size_t close = skip_balanced(t, i + 1, "[", "]");
          if (close < m->body_end &&
              (t[close].is("=") || t[close].is("+=") || t[close].is("-=") ||
               t[close].is("|=") || t[close].is("&=") ||
               t[close].is("^="))) {
            continue;
          }
        }
        emit_diag(*file, t[i].line, t[i].col, "decode-before-trust",
                  "raw wire bytes '" + std::string(t[i].text) +
                      "' are read without passing through wire::decode; "
                      "undecoded bytes carry no authority over protocol or "
                      "membership state",
                  diags);
      }
    }
  }
}

}  // namespace hring::lint
