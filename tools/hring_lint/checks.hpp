// The four protocol checks (see docs/STATIC_ANALYSIS.md for the contract
// each one enforces and the bug class it targets):
//
//   codec-symmetry     encode()/decode() overrides must come in pairs, and
//                      decode() must restore the spec variables (via
//                      decode_spec_vars) before touching its own fields.
//   guard-purity       enabled() must be side-effect free (§II): const,
//                      no Context ops, no member mutation, no non-const
//                      same-class calls.
//   consume-discipline fire() consumes the head message at most once on
//                      any path and never inside a loop.
//   hot-path-alloc     enabled()/fire() and `// hring-lint: hot-path`
//                      annotated functions must not allocate.
//
// The four IR-level checks (space-bound, alphabet-closure, batch-mirror,
// atomics-discipline) live in protocol_model.hpp, and the five
// concurrency-discipline checks (spsc-ownership, pairing, lost-wakeup,
// no-block-in-hot-path, decode-before-trust) live in
// concurrency_model.hpp; both sets are dispatched from run_checks
// alongside the token-level ones.
//
// Suppression: a `// hring-nolint(<check>)` (or bare `// hring-nolint`)
// comment on the diagnosed line.
#pragma once

#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "source_model.hpp"

namespace hring::lint {

inline const std::vector<std::string>& all_check_names() {
  static const std::vector<std::string> kNames = {
      "codec-symmetry",       "guard-purity",
      "consume-discipline",   "hot-path-alloc",
      "space-bound",          "alphabet-closure",
      "batch-mirror",         "atomics-discipline",
      "spsc-ownership",       "pairing",
      "lost-wakeup",          "no-block-in-hot-path",
      "decode-before-trust"};
  return kNames;
}

/// Runs `checks` (names from all_check_names()) over the model and appends
/// findings. Suppressed findings (hring-nolint) are dropped here.
void run_checks(const Model& model, const std::vector<std::string>& checks,
                std::vector<Diagnostic>& diags);

/// Appends a diagnostic unless an `hring-nolint` comment on the diagnosed
/// line suppresses it. Shared by the token-level checks and the IR pass.
void emit_diag(const SourceFile& file, std::uint32_t line, std::uint32_t col,
               const std::string& check, std::string message,
               std::vector<Diagnostic>& diags);

/// Exposed for the unit tests: the maximum number of consume() calls on
/// any control-flow path through the body token range, with loop-carried
/// consumes reported via `in_loop`.
struct ConsumeSummary {
  std::size_t max_on_path = 0;
  bool in_loop = false;
};
[[nodiscard]] ConsumeSummary analyze_consume_paths(const SourceFile& file,
                                                   std::size_t body_begin,
                                                   std::size_t body_end);

}  // namespace hring::lint
