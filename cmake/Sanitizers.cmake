# Sanitizer presets applied to every target in the build (src, tests,
# bench, examples) — included from the top-level CMakeLists before any
# add_subdirectory, so the flags land on all of them uniformly. A
# half-instrumented binary silently misses races and container overflows;
# all-or-nothing is the only trustworthy configuration.
#
# Usage:
#   cmake -B build -DHRING_SANITIZE="address;undefined"   # ASan + UBSan
#   cmake -B build -DHRING_SANITIZE=thread                # TSan
# or via the presets: `cmake --preset asan-ubsan`, `cmake --preset tsan`
# (see CMakePresets.json; `ctest --preset tsan` also wires the runtime
# options and suppression files in cmake/sanitizers/).

set(HRING_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers for every target: address, undefined, \
leak, thread (thread cannot be combined with address/leak)")

if(HRING_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
            "HRING_SANITIZE requires GCC or Clang, not "
            "${CMAKE_CXX_COMPILER_ID}")
  endif()

  foreach(_hring_san IN LISTS HRING_SANITIZE)
    if(NOT _hring_san MATCHES "^(address|undefined|leak|thread)$")
      message(FATAL_ERROR
              "HRING_SANITIZE: unknown sanitizer '${_hring_san}' (expected "
              "address, undefined, leak or thread)")
    endif()
  endforeach()
  if("thread" IN_LIST HRING_SANITIZE
     AND ("address" IN_LIST HRING_SANITIZE
          OR "leak" IN_LIST HRING_SANITIZE))
    message(FATAL_ERROR
            "HRING_SANITIZE: thread cannot be combined with address/leak "
            "(the runtimes share shadow memory)")
  endif()

  string(REPLACE ";" "," _hring_san_list "${HRING_SANITIZE}")
  set(_hring_san_flags "-fsanitize=${_hring_san_list}"
                       -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST HRING_SANITIZE)
    # A UBSan finding must fail the test, not just print: no recovery.
    list(APPEND _hring_san_flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_hring_san_flags})
  add_link_options(${_hring_san_flags})
  message(STATUS "hring: sanitizers enabled: ${HRING_SANITIZE}")
endif()
