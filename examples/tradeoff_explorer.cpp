// Trade-off explorer (experiment E7): A_k versus B_k head-to-head.
//
// The paper's two algorithms realize "the classical trade-off between time
// and space": A_k finishes in O(kn) time with O(knb)-bit processes; B_k
// needs only O(log k + b) bits but pays O(k²n²) time. This tool sweeps a
// ring-size grid and prints both sides of the ledger so the crossover is
// visible.
//
//   $ ./tradeoff_explorer [max_n]
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "ring/generator.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hring;

  const std::size_t max_n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 48;
  const std::size_t k = 3;
  support::Rng rng(0x7ade);

  support::Table table({"n", "k", "Ak time", "Bk time", "Ak msgs",
                        "Bk msgs", "Ak bits/proc", "Bk bits/proc"});
  for (std::size_t n = 6; n <= max_n; n *= 2) {
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    if (!ring.has_value()) continue;

    core::ElectionConfig base;
    base.engine = core::EngineKind::kEvent;
    base.delay = core::DelayKind::kWorstCase;

    auto ak = base;
    ak.algorithm = {election::AlgorithmId::kAk, k, false};
    auto bk = base;
    bk.algorithm = {election::AlgorithmId::kBk, k, false};

    const auto ma = core::measure(*ring, ak);
    const auto mb = core::measure(*ring, bk);
    if (!ma.ok() || !mb.ok()) {
      std::cerr << "verification failed on " << ring->to_string() << "\n";
      return EXIT_FAILURE;
    }
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(k))
        .cell(ma.result.stats.time_units, 0)
        .cell(mb.result.stats.time_units, 0)
        .cell(ma.result.stats.messages_sent)
        .cell(mb.result.stats.messages_sent)
        .cell(static_cast<std::uint64_t>(ma.result.stats.peak_space_bits))
        .cell(static_cast<std::uint64_t>(mb.result.stats.peak_space_bits));
  }
  std::cout << "A_k vs B_k under worst-case (unit) delays, k = " << k
            << ":\n\n";
  table.print(std::cout);
  std::cout << "\nReading: time grows ~linearly in n for A_k and "
               "~quadratically for B_k,\nwhile B_k's per-process space "
               "stays flat and A_k's grows ~linearly in n.\n";
  return EXIT_SUCCESS;
}
