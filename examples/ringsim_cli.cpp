// ringsim: command-line driver for the whole library.
//
// Run any registered algorithm on any labeled ring under any daemon or
// delay model, with optional action-level tracing.
//
//   $ ./ringsim_cli --ring 1,3,1,3,2,2,1,2 --algo Bk --k 3 --trace
//   $ ./ringsim_cli --random-n 12 --k 2 --algo Ak --sched random-subset
//   $ ./ringsim_cli --ring 1,2,3 --algo Peterson --engine event
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/election_driver.hpp"
#include "core/experiment.hpp"
#include "core/parallel_sweep.hpp"
#include "core/spec_audit.hpp"
#include "core/verification.hpp"
#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "core/model_checker.hpp"
#include "core/report.hpp"
#include "core/ringspec.hpp"
#include "sim/render.hpp"
#include "sim/trace.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "telemetry/telemetry_observer.hpp"
#include "telemetry/trace_export.hpp"

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [audit|sweep|trace] [options]\n"
      << "  audit               subcommand: §II model-conformance audit of\n"
         "                      the selected algorithm on the selected ring\n"
         "                      (replay determinism, locality, message and\n"
         "                      space bounds, FIFO discipline)\n"
      << "  sweep               subcommand: run the election across many\n"
         "                      consecutive seeds on a worker pool (one\n"
         "                      row per run; identical for any --workers)\n"
      << "  trace               subcommand: run once with telemetry attached\n"
         "                      and emit a Perfetto/chrome://tracing JSON\n"
         "                      timeline (to --trace-out, default stdout)\n"
      << "  --ring A,B,C,...    clockwise labels (unsigned integers)\n"
      << "  --random-n N        instead of --ring: random asymmetric ring\n"
      << "  --spec FILE         load ring + config from a ringspec file\n"
      << "  --algo NAME         Ak | Bk | ChangRoberts | LeLann | Peterson"
         " (default Ak)\n"
      << "  --k K               multiplicity bound for Ak/Bk (default: the"
         " ring's actual one)\n"
      << "  --engine KIND       step | event (default step)\n"
      << "  --sched KIND        synchronous | round-robin | random-single |"
         " random-subset | convoy\n"
      << "  --delay KIND        worst-case | uniform | slow-link (event"
         " engine)\n"
      << "  --seed S            randomness seed (default 1)\n"
      << "  --trace             print the action-level trace\n"
      << "  --trace-out FILE    write the telemetry timeline (Chrome\n"
         "                      trace-event / Perfetto JSON) to FILE\n"
      << "  --metrics-out FILE  write the telemetry metrics document\n"
         "                      (counters + histograms) to FILE; with\n"
         "                      sweep, registries of all runs are merged\n"
      << "  --watch N           render the configuration every N steps\n"
      << "  --model-check       exhaustively verify EVERY schedule (small\n"
         "                      rings; Ak/Bk only) instead of one run\n"
      << "  --json              emit the full run report as JSON\n"
      << "  --quiet             outcome + stats only\n"
      << "  --runs N            sweep: number of seeds (default 16)\n"
      << "  --workers W         sweep: worker threads (default: hardware"
         " concurrency)\n";
}

std::optional<hring::words::LabelSequence> parse_ring(const std::string& s) {
  hring::words::LabelSequence labels;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      labels.emplace_back(std::stoull(item));
    } catch (...) {
      return std::nullopt;
    }
  }
  if (labels.size() < 2) return std::nullopt;
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hring;

  std::optional<words::LabelSequence> labels;
  std::optional<core::RingSpec> spec;
  std::size_t random_n = 0;
  std::string algo_name = "Ak";
  bool algo_set = false;
  std::size_t k = 0;
  core::ElectionConfig config;
  bool trace_enabled = false;
  bool quiet = false;
  bool model_check = false;
  bool json = false;
  bool audit = false;
  bool sweep = false;
  bool trace_cmd = false;
  std::string trace_out;
  std::string metrics_out;
  std::uint64_t watch_every = 0;
  std::size_t runs = 16;
  std::size_t workers = 0;

  int first_arg = 1;
  if (argc > 1 && std::string(argv[1]) == "audit") {
    audit = true;
    first_arg = 2;
  } else if (argc > 1 && std::string(argv[1]) == "sweep") {
    sweep = true;
    first_arg = 2;
  } else if (argc > 1 && std::string(argv[1]) == "trace") {
    trace_cmd = true;
    first_arg = 2;
  }

  for (int i = first_arg; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(EXIT_FAILURE);
      }
      return argv[++i];
    };
    if (arg == "--ring") {
      labels = parse_ring(next());
      if (!labels) {
        std::cerr << "bad --ring (need >= 2 comma-separated integers)\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--spec") {
      std::ifstream file(next());
      if (!file) {
        std::cerr << "cannot open spec file\n";
        return EXIT_FAILURE;
      }
      auto parsed = core::parse_ringspec(file);
      if (parsed.error.has_value()) {
        std::cerr << "spec error: " << parsed.error->to_string() << "\n";
        return EXIT_FAILURE;
      }
      spec = std::move(parsed.spec);
    } else if (arg == "--random-n") {
      random_n = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--algo") {
      algo_name = next();
      algo_set = true;
    } else if (arg == "--k") {
      k = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--engine") {
      const std::string v = next();
      if (v == "step") {
        config.engine = core::EngineKind::kStep;
      } else if (v == "event") {
        config.engine = core::EngineKind::kEvent;
      } else {
        std::cerr << "bad --engine\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--sched") {
      const std::string v = next();
      if (v == "synchronous") {
        config.scheduler = core::SchedulerKind::kSynchronous;
      } else if (v == "round-robin") {
        config.scheduler = core::SchedulerKind::kRoundRobin;
      } else if (v == "random-single") {
        config.scheduler = core::SchedulerKind::kRandomSingle;
      } else if (v == "random-subset") {
        config.scheduler = core::SchedulerKind::kRandomSubset;
      } else if (v == "convoy") {
        config.scheduler = core::SchedulerKind::kConvoy;
      } else {
        std::cerr << "bad --sched\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--delay") {
      const std::string v = next();
      if (v == "worst-case") {
        config.delay = core::DelayKind::kWorstCase;
      } else if (v == "uniform") {
        config.delay = core::DelayKind::kUniformRandom;
      } else if (v == "slow-link") {
        config.delay = core::DelayKind::kSlowLink;
      } else {
        std::cerr << "bad --delay\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--trace") {
      trace_enabled = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--watch") {
      watch_every = std::stoull(next());
    } else if (arg == "--model-check") {
      model_check = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--runs") {
      runs = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return EXIT_SUCCESS;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage(argv[0]);
      return EXIT_FAILURE;
    }
  }

  std::optional<ring::LabeledRing> ring;
  if (spec.has_value()) {
    ring.emplace(spec->ring);
    config = spec->config;
    // The spec's algorithm wins unless --algo was passed explicitly.
    if (!algo_set) {
      algo_name = election::algorithm_name(config.algorithm.id);
    }
    if (k == 0) k = config.algorithm.k;
  } else if (labels) {
    ring.emplace(*labels);
  } else if (random_n >= 2) {
    support::Rng rng(config.seed);
    const std::size_t want_k = k == 0 ? 2 : k;
    ring = ring::random_asymmetric_ring(
        random_n, want_k, (random_n + want_k - 1) / want_k + 2, rng);
    if (!ring) {
      std::cerr << "could not sample an asymmetric ring\n";
      return EXIT_FAILURE;
    }
  } else {
    usage(argv[0]);
    return EXIT_FAILURE;
  }

  const auto algo = election::algorithm_from_name(algo_name);
  if (!algo) {
    std::cerr << "unknown algorithm " << algo_name << "\n";
    return EXIT_FAILURE;
  }

  if (json) quiet = true;  // JSON owns stdout
  // `trace` without --trace-out streams the timeline JSON to stdout.
  const bool trace_to_stdout = trace_cmd && trace_out.empty();
  if (trace_to_stdout) quiet = true;

  const auto report = ring::classify(*ring);
  if (k == 0) k = report.min_k();
  config.algorithm = {*algo, k, false};

  if (!quiet) {
    std::cout << "ring:  " << ring->to_string() << "\n";
    std::cout << "class: " << report.to_string() << "\n";
    std::cout << "algo:  " << election::algorithm_name(*algo)
              << " (k = " << k << ")\n";
    if (!election::ring_in_algorithm_class(config.algorithm, *ring)) {
      std::cout << "warning: ring is OUTSIDE the algorithm's class — "
                   "anything can happen (see impossibility_demo)\n";
    }
  }

  if (sweep) {
    // One election per seed, fanned out with core::parallel_map. The ring
    // is fixed; the seed varies the daemon/delay randomness, so the table
    // samples the schedule space. Cells derive everything from their index
    // — the table is identical for any --workers.
    const bool want_metrics = !metrics_out.empty();
    struct Cell {
      std::uint64_t seed;
      std::string outcome;
      std::optional<sim::ProcessId> leader;
      sim::Stats stats;
      bool ok;
      telemetry::MetricsRegistry metrics;  // empty unless --metrics-out
    };
    const auto base_config = config;
    const auto cells = core::parallel_map<Cell>(
        runs,
        [&](std::size_t i) {
          core::ElectionConfig cell_config = base_config;
          cell_config.seed = base_config.seed + i;
          telemetry::TelemetryObserver cell_telemetry;
          if (want_metrics) {
            cell_config.extra_observers.push_back(&cell_telemetry);
          }
          const auto m = core::measure(*ring, cell_config);
          Cell cell{cell_config.seed,
                    sim::outcome_name(m.result.outcome),
                    m.result.leader_pid(),
                    m.result.stats,
                    m.ok(),
                    {}};
          if (want_metrics) cell.metrics = cell_telemetry.metrics();
          return cell;
        },
        workers);
    support::Table table({"seed", "outcome", "leader", "steps", "msgs",
                          "time", "peak bits", "verified"});
    bool all_ok = true;
    for (const Cell& c : cells) {
      all_ok = all_ok && c.ok;
      table.row()
          .cell(c.seed)
          .cell(c.outcome)
          .cell(c.leader ? "p" + std::to_string(*c.leader) : "-")
          .cell(c.stats.steps)
          .cell(c.stats.messages_sent)
          .cell(c.stats.time_units, 0)
          .cell(c.stats.peak_space_bits)
          .cell(c.ok ? "yes" : "NO");
    }
    if (want_metrics) {
      // Registries merge by metric name: the document aggregates the whole
      // sweep no matter how the runs were spread over workers.
      telemetry::MetricsRegistry merged;
      for (const Cell& c : cells) merged.merge(c.metrics);
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_metrics_json(out, merged);
    }
    if (json) {
      // One object per run, each carrying the complete Stats document.
      support::JsonWriter sweep_json(std::cout);
      sweep_json.begin_array();
      for (const Cell& c : cells) {
        sweep_json.begin_object();
        sweep_json.key("seed").value(c.seed);
        sweep_json.key("outcome").value(c.outcome);
        if (c.leader.has_value()) {
          sweep_json.key("leader").value(
              static_cast<std::uint64_t>(*c.leader));
        } else {
          sweep_json.key("leader").null();
        }
        sweep_json.key("verified").value(c.ok);
        sweep_json.key("stats");
        c.stats.to_json(sweep_json);
        sweep_json.end_object();
      }
      sweep_json.end_array();
      std::cout << '\n';
    } else {
      table.print(std::cout);
      std::cout << "\nsweep: " << runs << " runs, "
                << (workers == 0 ? core::default_worker_count() : workers)
                << " workers, "
                << (all_ok ? "all verified" : "VERIFICATION FAILURES")
                << "\n";
    }
    return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (audit) {
    core::SpecAuditConfig audit_config;
    audit_config.scheduler = config.scheduler;
    audit_config.seed = config.seed;
    const auto audit_report = core::audit_algorithm(*ring, config.algorithm,
                                                    audit_config);
    std::cout << "audit (" << core::scheduler_kind_name(config.scheduler)
              << " daemon, seed " << config.seed
              << "): " << audit_report.summary() << "\n";
    for (const auto& v : audit_report.violations) {
      std::cout << "  " << v << "\n";
    }
    return audit_report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (model_check) {
    core::ModelCheckConfig check_config;
    // The baselines elect the maximum label, which need not be the paper's
    // true leader; only A_k/B_k are held to it.
    const bool paper_algo = *algo == election::AlgorithmId::kAk ||
                            *algo == election::AlgorithmId::kBk;
    check_config.check_true_leader = report.asymmetric && paper_algo;
    const auto check = core::check_all_schedules(
        *ring, {*algo, k, false}, check_config);
    std::cout << "model check: " << check.to_string() << "\n";
    return check.ok && check.complete ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  sim::TraceRecorder trace;
  if (trace_enabled) config.extra_observers.push_back(&trace);
  sim::WatchObserver watch(std::cout, watch_every);
  if (watch_every > 0) config.extra_observers.push_back(&watch);
  telemetry::TelemetryObserver telemetry_observer;
  const bool want_telemetry =
      trace_cmd || !trace_out.empty() || !metrics_out.empty();
  if (want_telemetry) config.extra_observers.push_back(&telemetry_observer);

  const auto result = core::run_election(*ring, config);

  if (want_telemetry) {
    if (trace_to_stdout) {
      telemetry::write_trace_json(std::cout, telemetry_observer);
    } else if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "cannot open " << trace_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_trace_json(out, telemetry_observer);
      if (!quiet) std::cout << "trace:   " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_metrics_json(out, telemetry_observer.metrics());
      if (!quiet) std::cout << "metrics: " << metrics_out << "\n";
    }
  }

  if (trace_to_stdout) {
    // The timeline owns stdout; verification still gates the exit code.
    const bool check_true =
        election::elects_true_leader(*algo) && report.asymmetric;
    const auto verification =
        core::verify_election(*ring, result, check_true);
    return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (json) {
    const bool check_true =
        election::elects_true_leader(*algo) && report.asymmetric;
    const auto verification =
        core::verify_election(*ring, result, check_true);
    core::write_json_report(std::cout, *ring, config, result, verification);
    return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (trace_enabled) trace.print(std::cout);
  std::cout << "outcome: " << sim::outcome_name(result.outcome) << "\n";
  for (const auto& v : result.violations) {
    std::cout << "violation: " << v << "\n";
  }
  if (const auto leader = result.leader_pid()) {
    std::cout << "leader: p" << *leader << " (label "
              << words::to_string(ring->label(*leader)) << ")\n";
  }
  std::cout << "stats: " << result.stats.summary() << "\n";

  const bool check_true_leader =
      election::elects_true_leader(*algo) && report.asymmetric;
  const auto verification =
      core::verify_election(*ring, result, check_true_leader);
  if (!quiet) {
    std::cout << "verification: " << verification.to_string() << "\n";
  }
  return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
