// ringsim: command-line driver for the whole library.
//
// Run any registered algorithm on any labeled ring under any daemon or
// delay model, with optional action-level tracing.
//
//   $ ./ringsim_cli --ring 1,3,1,3,2,2,1,2 --algo Bk --k 3 --trace
//   $ ./ringsim_cli --random-n 12 --k 2 --algo Ak --sched random-subset
//   $ ./ringsim_cli --ring 1,2,3 --algo Peterson --engine event
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/election_driver.hpp"
#include "core/experiment.hpp"
#include "core/parallel_sweep.hpp"
#include "core/spec_audit.hpp"
#include "core/verification.hpp"
#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "core/model_checker.hpp"
#include "core/report.hpp"
#include "core/ringspec.hpp"
#include "runtime/inhost/inhost_ring.hpp"
#include "sim/render.hpp"
#include "sim/trace.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "telemetry/telemetry_observer.hpp"
#include "telemetry/trace_export.hpp"

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [run|audit|sweep|trace] [options]\n"
      << "  run                 subcommand: run one election (the default\n"
         "                      when no subcommand is given); --transport\n"
         "                      selects the execution substrate\n"
      << "  audit               subcommand: §II model-conformance audit of\n"
         "                      the selected algorithm on the selected ring\n"
         "                      (replay determinism, locality, message and\n"
         "                      space bounds, FIFO discipline)\n"
      << "  sweep               subcommand: run the election across many\n"
         "                      consecutive seeds on a worker pool (one\n"
         "                      row per run; identical for any --workers)\n"
      << "  trace               subcommand: run once with telemetry attached\n"
         "                      and emit a Perfetto/chrome://tracing JSON\n"
         "                      timeline (to --trace-out, default stdout)\n"
      << "  --ring A,B,C,...    clockwise labels (unsigned integers)\n"
      << "  --random-n N        instead of --ring: random asymmetric ring\n"
      << "  --spec FILE         load ring + config from a ringspec file\n"
      << "  --algo NAME         Ak | Bk | ChangRoberts | LeLann | Peterson"
         " (default Ak)\n"
      << "  --k K               multiplicity bound for Ak/Bk (default: the"
         " ring's actual one)\n"
      << "  --transport T       run: sim (simulated daemon, default) |\n"
         "                      threads (the in-host runtime: one OS\n"
         "                      thread per process, lock-free byte links,\n"
         "                      wire-framed messages)\n"
      << "  --engine KIND       step | event (default step)\n"
      << "  --sched KIND        synchronous | round-robin | random-single |"
         " random-subset | convoy\n"
      << "  --delay KIND        worst-case | uniform | slow-link (event"
         " engine)\n"
      << "  --seed S            randomness seed (default 1)\n"
      << "  --trace             print the action-level trace\n"
      << "  --trace-out FILE    write the telemetry timeline (Chrome\n"
         "                      trace-event / Perfetto JSON) to FILE; with\n"
         "                      run --transport=threads, the flight\n"
         "                      recorder's trace of the real threads\n"
      << "  --flight-out FILE   run --transport=threads: write the flight\n"
         "                      recorder's forensic report (hring-forensics/1\n"
         "                      JSON: per-thread last-K events, park state,\n"
         "                      watchdog verdict) to FILE\n"
      << "  --watchdog-ms N     run --transport=threads: watchdog quiet\n"
         "                      period in milliseconds, N > 0 (still floored\n"
         "                      at 4ms x ring size — see docs/RUNTIME.md)\n"
      << "  --metrics-out FILE  write the telemetry metrics document\n"
         "                      (counters + histograms) to FILE; with\n"
         "                      sweep, registries of all runs are merged\n"
      << "  --watch N           render the configuration every N steps\n"
      << "  --model-check       exhaustively verify EVERY schedule (small\n"
         "                      rings; Ak/Bk only) instead of one run\n"
      << "  --json              emit the full run report as JSON\n"
      << "  --quiet             outcome + stats only\n"
      << "  --runs N            sweep: number of cells (default 16;\n"
         "                      --cells is an alias)\n"
      << "  --workers W         sweep: worker threads, >= 1 (default:"
         " hardware concurrency)\n"
      << "  --campaign          sweep: statistical campaign mode — print\n"
         "                      merged percentiles + throughput instead of\n"
         "                      one row per run; with --random-n, every\n"
         "                      cell samples its own asymmetric ring\n"
      << "  --backend B         sweep: auto | batch | scalar (default"
         " auto)\n"
      << "  --no-verify         sweep: skip terminal-state verification\n";
}

std::optional<hring::words::LabelSequence> parse_ring(const std::string& s) {
  hring::words::LabelSequence labels;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      labels.emplace_back(std::stoull(item));
    } catch (...) {
      return std::nullopt;
    }
  }
  if (labels.size() < 2) return std::nullopt;
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hring;

  std::optional<words::LabelSequence> labels;
  std::optional<core::RingSpec> spec;
  std::size_t random_n = 0;
  std::string algo_name = "Ak";
  bool algo_set = false;
  std::size_t k = 0;
  core::ElectionConfig config;
  bool trace_enabled = false;
  bool quiet = false;
  bool model_check = false;
  bool json = false;
  bool audit = false;
  bool sweep = false;
  bool trace_cmd = false;
  std::string trace_out;
  std::string metrics_out;
  std::string flight_out;
  std::uint64_t watchdog_ms = 0;
  std::uint64_t watch_every = 0;
  std::size_t runs = 16;
  std::size_t workers = 0;
  bool campaign_mode = false;
  bool verify = true;
  bool threads_transport = false;
  core::CampaignBackend backend = core::CampaignBackend::kAuto;

  int first_arg = 1;
  if (argc > 1 && std::string(argv[1]) == "run") {
    // The default mode, named: `run` exists so scripts can say what they
    // mean (`ringsim_cli run --transport=threads ...`).
    first_arg = 2;
  } else if (argc > 1 && std::string(argv[1]) == "audit") {
    audit = true;
    first_arg = 2;
  } else if (argc > 1 && std::string(argv[1]) == "sweep") {
    sweep = true;
    first_arg = 2;
  } else if (argc > 1 && std::string(argv[1]) == "trace") {
    trace_cmd = true;
    first_arg = 2;
  }

  for (int i = first_arg; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(EXIT_FAILURE);
      }
      return argv[++i];
    };
    if (arg == "--ring") {
      labels = parse_ring(next());
      if (!labels) {
        std::cerr << "bad --ring (need >= 2 comma-separated integers)\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--spec") {
      std::ifstream file(next());
      if (!file) {
        std::cerr << "cannot open spec file\n";
        return EXIT_FAILURE;
      }
      auto parsed = core::parse_ringspec(file);
      if (parsed.error.has_value()) {
        std::cerr << "spec error: " << parsed.error->to_string() << "\n";
        return EXIT_FAILURE;
      }
      spec = std::move(parsed.spec);
    } else if (arg == "--random-n") {
      random_n = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--algo") {
      algo_name = next();
      algo_set = true;
    } else if (arg == "--k") {
      k = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--transport" || arg.rfind("--transport=", 0) == 0) {
      const std::string v =
          arg == "--transport" ? next() : arg.substr(sizeof("--transport=") - 1);
      if (v == "sim") {
        threads_transport = false;
      } else if (v == "threads") {
        threads_transport = true;
      } else {
        std::cerr << "unknown transport '" << v << "' (sim | threads)\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--engine") {
      const std::string v = next();
      if (v == "step") {
        config.engine = core::EngineKind::kStep;
      } else if (v == "event") {
        config.engine = core::EngineKind::kEvent;
      } else {
        std::cerr << "bad --engine\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--sched") {
      const std::string v = next();
      if (v == "synchronous") {
        config.scheduler = core::SchedulerKind::kSynchronous;
      } else if (v == "round-robin") {
        config.scheduler = core::SchedulerKind::kRoundRobin;
      } else if (v == "random-single") {
        config.scheduler = core::SchedulerKind::kRandomSingle;
      } else if (v == "random-subset") {
        config.scheduler = core::SchedulerKind::kRandomSubset;
      } else if (v == "convoy") {
        config.scheduler = core::SchedulerKind::kConvoy;
      } else {
        std::cerr << "bad --sched\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--delay") {
      const std::string v = next();
      if (v == "worst-case") {
        config.delay = core::DelayKind::kWorstCase;
      } else if (v == "uniform") {
        config.delay = core::DelayKind::kUniformRandom;
      } else if (v == "slow-link") {
        config.delay = core::DelayKind::kSlowLink;
      } else {
        std::cerr << "bad --delay\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--trace") {
      trace_enabled = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--flight-out" || arg.rfind("--flight-out=", 0) == 0) {
      flight_out = arg == "--flight-out"
                       ? next()
                       : arg.substr(sizeof("--flight-out=") - 1);
    } else if (arg == "--watchdog-ms" ||
               arg.rfind("--watchdog-ms=", 0) == 0) {
      const std::string v = arg == "--watchdog-ms"
                                ? next()
                                : arg.substr(sizeof("--watchdog-ms=") - 1);
      long long parsed = 0;
      try {
        std::size_t pos = 0;
        parsed = std::stoll(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
      } catch (...) {
        std::cerr << "bad --watchdog-ms '" << v
                  << "': need a positive integer (milliseconds)\n";
        return EXIT_FAILURE;
      }
      if (parsed <= 0) {
        std::cerr << "bad --watchdog-ms " << parsed
                  << ": need a positive quiet period in milliseconds\n";
        return EXIT_FAILURE;
      }
      watchdog_ms = static_cast<std::uint64_t>(parsed);
    } else if (arg == "--watch") {
      watch_every = std::stoull(next());
    } else if (arg == "--model-check") {
      model_check = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--runs" || arg == "--cells") {
      runs = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--workers") {
      const std::string v = next();
      long long parsed = 0;
      try {
        std::size_t pos = 0;
        parsed = std::stoll(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
      } catch (...) {
        std::cerr << "bad --workers '" << v
                  << "': need a positive integer\n";
        return EXIT_FAILURE;
      }
      if (parsed <= 0) {
        std::cerr << "bad --workers " << parsed
                  << ": need at least 1 worker thread\n";
        return EXIT_FAILURE;
      }
      workers = static_cast<std::size_t>(parsed);
    } else if (arg == "--campaign") {
      campaign_mode = true;
    } else if (arg == "--backend") {
      const std::string v = next();
      if (v == "auto") {
        backend = core::CampaignBackend::kAuto;
      } else if (v == "batch") {
        backend = core::CampaignBackend::kBatch;
      } else if (v == "scalar") {
        backend = core::CampaignBackend::kScalar;
      } else {
        std::cerr << "bad --backend (auto | batch | scalar)\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return EXIT_SUCCESS;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage(argv[0]);
      return EXIT_FAILURE;
    }
  }

  if (threads_transport) {
    // The in-host runtime executes one election on real threads; the
    // simulator-only modes have no meaning there.
    if (campaign_mode || sweep) {
      std::cerr << "--transport threads runs one real election and cannot "
                   "drive "
                << (campaign_mode ? "--campaign" : "sweep")
                << "; use the sim transport for statistical runs\n";
      return EXIT_FAILURE;
    }
    if (audit || trace_cmd || model_check) {
      std::cerr << "--transport threads supports only the run subcommand "
                   "(the conformance harness audits threaded runs: see "
                   "docs/RUNTIME.md)\n";
      return EXIT_FAILURE;
    }
  } else if (watchdog_ms > 0 || !flight_out.empty()) {
    std::cerr << (watchdog_ms > 0 ? "--watchdog-ms" : "--flight-out")
              << " requires run --transport=threads (the in-host runtime; "
                 "see docs/RUNTIME.md)\n";
    return EXIT_FAILURE;
  }

  std::optional<ring::LabeledRing> ring;
  if (spec.has_value()) {
    ring.emplace(spec->ring);
    config = spec->config;
    // The spec's algorithm wins unless --algo was passed explicitly.
    if (!algo_set) {
      algo_name = election::algorithm_name(config.algorithm.id);
    }
    if (k == 0) k = config.algorithm.k;
  } else if (labels) {
    ring.emplace(*labels);
  } else if (random_n >= 2) {
    support::Rng rng(config.seed);
    const std::size_t want_k = k == 0 ? 2 : k;
    ring = ring::random_asymmetric_ring(
        random_n, want_k, (random_n + want_k - 1) / want_k + 2, rng);
    if (!ring) {
      std::cerr << "could not sample an asymmetric ring\n";
      return EXIT_FAILURE;
    }
  } else {
    usage(argv[0]);
    return EXIT_FAILURE;
  }

  const auto algo = election::algorithm_from_name(algo_name);
  if (!algo) {
    std::cerr << "unknown algorithm " << algo_name << "\n";
    return EXIT_FAILURE;
  }

  if (json) quiet = true;  // JSON owns stdout
  // `trace` without --trace-out streams the timeline JSON to stdout.
  const bool trace_to_stdout = trace_cmd && trace_out.empty();
  if (trace_to_stdout) quiet = true;

  const auto report = ring::classify(*ring);
  if (k == 0) k = report.min_k();
  config.algorithm = {*algo, k, false};

  if (!quiet) {
    std::cout << "ring:  " << ring->to_string() << "\n";
    std::cout << "class: " << report.to_string() << "\n";
    std::cout << "algo:  " << election::algorithm_name(*algo)
              << " (k = " << k << ")\n";
    if (!election::ring_in_algorithm_class(config.algorithm, *ring)) {
      std::cout << "warning: ring is OUTSIDE the algorithm's class — "
                   "anything can happen (see impossibility_demo)\n";
    }
  }

  if (threads_transport) {
    runtime::InHostConfig inhost_config;
    if (watchdog_ms > 0) inhost_config.quiet_period_ms = watchdog_ms;
    // The flight recorder feeds both dumps: --flight-out gets the
    // forensic report, --trace-out (on this transport) the recorder's
    // Perfetto trace of the real threads rather than the simulator
    // timeline.
    inhost_config.flight_recorder =
        !flight_out.empty() || !trace_out.empty();
    const auto result = runtime::run_inhost(
        *ring, election::make_factory(config.algorithm), inhost_config);

    if (result.forensics.has_value()) {
      if (!flight_out.empty()) {
        std::ofstream out(flight_out);
        if (!out) {
          std::cerr << "cannot open " << flight_out << "\n";
          return EXIT_FAILURE;
        }
        runtime::write_forensics_json(out, *result.forensics);
        if (!quiet && !json) std::cout << "flight:  " << flight_out << "\n";
      }
      if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
          std::cerr << "cannot open " << trace_out << "\n";
          return EXIT_FAILURE;
        }
        runtime::write_flight_trace_json(out, *result.forensics);
        if (!quiet && !json) std::cout << "trace:   " << trace_out << "\n";
      }
    }

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_metrics_json(out, result.metrics);
      if (!quiet && !json) std::cout << "metrics: " << metrics_out << "\n";
    }

    const auto leader = result.leader_pid();
    bool ok = result.outcome == sim::Outcome::kTerminated &&
              leader.has_value() && result.wire_rejects == 0 &&
              result.sends_abandoned == 0;
    if (ok && election::elects_true_leader(*algo) && report.asymmetric &&
        *leader != ring->true_leader()) {
      ok = false;
    }
    const double seconds =
        static_cast<double>(result.elapsed_ns) / 1e9;

    if (json) {
      support::JsonWriter run_json(std::cout);
      run_json.begin_object();
      run_json.key("transport").value("threads");
      run_json.key("outcome").value(sim::outcome_name(result.outcome));
      if (leader.has_value()) {
        run_json.key("leader").value(static_cast<std::uint64_t>(*leader));
      } else {
        run_json.key("leader").null();
      }
      run_json.key("processes").value(
          static_cast<std::uint64_t>(result.processes.size()));
      run_json.key("actions").value(result.actions);
      run_json.key("messages_sent").value(result.messages_sent);
      run_json.key("messages_received").value(result.messages_received);
      run_json.key("wire_rejects").value(result.wire_rejects);
      run_json.key("sends_abandoned").value(result.sends_abandoned);
      run_json.key("peak_space_bits").value(
          static_cast<std::uint64_t>(result.peak_space_bits));
      run_json.key("elapsed_seconds").value(seconds);
      run_json.key("verified").value(ok);
      if (result.forensics.has_value()) {
        run_json.key("forensics").value(result.forensics->verdict);
      }
      run_json.end_object();
      std::cout << '\n';
    } else {
      std::cout << "outcome: " << sim::outcome_name(result.outcome) << "\n";
      if (result.forensics.has_value()) {
        std::cout << "forensics: " << result.forensics->summary() << "\n";
      }
      if (leader.has_value()) {
        std::cout << "leader: p" << *leader << " (label "
                  << words::to_string(ring->label(*leader)) << ")\n";
      }
      std::cout << "stats: actions=" << result.actions
                << " sent=" << result.messages_sent
                << " recv=" << result.messages_received
                << " peak_space_bits=" << result.peak_space_bits
                << " wire_rejects=" << result.wire_rejects << "\n";
      std::cout << "threads: " << result.processes.size()
                << " workers, " << seconds << " s\n";
      if (!quiet) {
        std::cout << "verification: " << (ok ? "ok" : "FAILED") << "\n";
      }
    }
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (sweep) {
    // Every sweep is a campaign (core/campaign.hpp): one campaign seed,
    // per-cell seeds derived from (seed, index), backend auto-selected.
    // The classic table mode streams per-cell rows through the campaign's
    // cell sink; --campaign prints the merged percentile summary instead.
    const bool want_metrics = !metrics_out.empty();
    core::SweepConfig sweep_config;
    sweep_config.election = config;
    sweep_config.cells = runs;
    sweep_config.seed = config.seed;
    sweep_config.workers = workers;
    sweep_config.backend = backend;
    sweep_config.verify = verify;
    sweep_config.collect_telemetry = want_metrics;
    sweep_config.check_true_leader = election::elects_true_leader(*algo);
    if (campaign_mode && random_n >= 2) {
      // Statistical mode over instances: every cell samples its own
      // asymmetric ring from its derived ring seed.
      sweep_config.source = core::RingSource::random_asymmetric(random_n);
    } else {
      sweep_config.source = core::RingSource::fixed(*ring);
    }

    struct Row {
      std::uint64_t seed = 0;
      sim::Outcome outcome = sim::Outcome::kDeadlock;
      std::optional<sim::ProcessId> leader;
      sim::Stats stats;
      bool ok = false;
    };
    std::vector<Row> rows;
    if (!campaign_mode) {
      // Pre-sized row store: cells land at their own index from whichever
      // worker ran them — disjoint writes, no synchronization needed.
      rows.resize(runs);
      sweep_config.cell_sink = [&rows](const core::CellView& cell) {
        rows[cell.cell] =
            Row{cell.election_seed, cell.outcome, cell.leader, cell.stats,
                cell.verified};
      };
    }

    core::CampaignResult campaign;
    try {
      campaign = core::run_campaign(sweep_config);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return EXIT_FAILURE;
    }
    const bool all_ok = !verify || campaign.all_verified();

    if (want_metrics) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_metrics_json(out, campaign.metrics);
    }

    if (campaign_mode) {
      if (json) {
        support::JsonWriter campaign_json(std::cout);
        campaign_json.begin_object();
        campaign_json.key("cells").value(
            static_cast<std::uint64_t>(campaign.cells));
        campaign_json.key("workers").value(
            static_cast<std::uint64_t>(campaign.workers));
        campaign_json.key("backend").value(
            core::campaign_backend_name(campaign.backend));
        campaign_json.key("outcomes");
        campaign_json.begin_object();
        for (std::size_t o = 0; o < campaign.outcome_counts.size(); ++o) {
          campaign_json.key(sim::outcome_name(static_cast<sim::Outcome>(o)))
              .value(campaign.outcome_counts[o]);
        }
        campaign_json.end_object();
        campaign_json.key("verify_failures")
            .value(campaign.verify_failures);
        campaign_json.key("elapsed_seconds")
            .value(campaign.elapsed_seconds);
        campaign_json.key("elections_per_second")
            .value(campaign.elections_per_second);
        campaign_json.key("quantiles");
        campaign_json.begin_object();
        for (const char* stat : {"steps", "messages_sent", "time_units",
                                 "peak_space_bits", "label_comparisons"}) {
          campaign_json.key(stat);
          campaign_json.begin_object();
          campaign_json.key("p50").value(campaign.quantile(stat, 0.50));
          campaign_json.key("p90").value(campaign.quantile(stat, 0.90));
          campaign_json.key("p99").value(campaign.quantile(stat, 0.99));
          campaign_json.key("max").value(campaign.quantile(stat, 1.0));
          campaign_json.end_object();
        }
        campaign_json.end_object();
        campaign_json.end_object();
        std::cout << '\n';
      } else {
        std::cout << "campaign: " << campaign.cells << " cells, "
                  << campaign.workers << " workers, "
                  << core::campaign_backend_name(campaign.backend)
                  << " backend\n";
        std::cout << "outcomes:";
        for (std::size_t o = 0; o < campaign.outcome_counts.size(); ++o) {
          if (campaign.outcome_counts[o] == 0) continue;
          std::cout << " " << sim::outcome_name(static_cast<sim::Outcome>(o))
                    << "=" << campaign.outcome_counts[o];
        }
        std::cout << "\n";
        if (verify) {
          std::cout << "verified: "
                    << (all_ok ? "all"
                               : std::to_string(campaign.verify_failures) +
                                     " FAILURES")
                    << "\n";
        }
        support::Table table({"stat", "p50", "p90", "p99", "max"});
        for (const char* stat : {"steps", "messages_sent", "time_units",
                                 "peak_space_bits", "label_comparisons"}) {
          table.row()
              .cell(stat)
              .cell(campaign.quantile(stat, 0.50), 1)
              .cell(campaign.quantile(stat, 0.90), 1)
              .cell(campaign.quantile(stat, 0.99), 1)
              .cell(campaign.quantile(stat, 1.0), 1);
        }
        table.print(std::cout);
        std::cout << "throughput: "
                  << static_cast<std::uint64_t>(
                         campaign.elections_per_second)
                  << " elections/sec (" << campaign.elapsed_seconds
                  << " s)\n";
      }
      return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
    }

    if (json) {
      // One object per run, each carrying the complete Stats document.
      support::JsonWriter sweep_json(std::cout);
      sweep_json.begin_array();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& c = rows[i];
        sweep_json.begin_object();
        sweep_json.key("cell").value(static_cast<std::uint64_t>(i));
        sweep_json.key("seed").value(c.seed);
        sweep_json.key("outcome").value(sim::outcome_name(c.outcome));
        if (c.leader.has_value()) {
          sweep_json.key("leader").value(
              static_cast<std::uint64_t>(*c.leader));
        } else {
          sweep_json.key("leader").null();
        }
        sweep_json.key("verified").value(c.ok);
        sweep_json.key("stats");
        c.stats.to_json(sweep_json);
        sweep_json.end_object();
      }
      sweep_json.end_array();
      std::cout << '\n';
    } else {
      support::Table table({"cell", "seed", "outcome", "leader", "steps",
                            "msgs", "time", "peak bits", "verified"});
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& c = rows[i];
        table.row()
            .cell(i)
            .cell(c.seed)
            .cell(sim::outcome_name(c.outcome))
            .cell(c.leader ? "p" + std::to_string(*c.leader) : "-")
            .cell(c.stats.steps)
            .cell(c.stats.messages_sent)
            .cell(c.stats.time_units, 0)
            .cell(c.stats.peak_space_bits)
            .cell(verify ? (c.ok ? "yes" : "NO") : "-");
      }
      table.print(std::cout);
      std::cout << "\nsweep: " << runs << " runs, " << campaign.workers
                << " workers, "
                << core::campaign_backend_name(campaign.backend)
                << " backend, "
                << (verify
                        ? (all_ok ? "all verified" : "VERIFICATION FAILURES")
                        : "verification off")
                << "\n";
    }
    return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (audit) {
    core::SpecAuditConfig audit_config;
    audit_config.scheduler = config.scheduler;
    audit_config.seed = config.seed;
    const auto audit_report = core::audit_algorithm(*ring, config.algorithm,
                                                    audit_config);
    std::cout << "audit (" << core::scheduler_kind_name(config.scheduler)
              << " daemon, seed " << config.seed
              << "): " << audit_report.summary() << "\n";
    for (const auto& v : audit_report.violations) {
      std::cout << "  " << v << "\n";
    }
    return audit_report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (model_check) {
    core::ModelCheckConfig check_config;
    // The baselines elect the maximum label, which need not be the paper's
    // true leader; only A_k/B_k are held to it.
    const bool paper_algo = *algo == election::AlgorithmId::kAk ||
                            *algo == election::AlgorithmId::kBk;
    check_config.check_true_leader = report.asymmetric && paper_algo;
    const auto check = core::check_all_schedules(
        *ring, {*algo, k, false}, check_config);
    std::cout << "model check: " << check.to_string() << "\n";
    return check.ok && check.complete ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  sim::TraceRecorder trace;
  if (trace_enabled) config.extra_observers.push_back(&trace);
  sim::WatchObserver watch(std::cout, watch_every);
  if (watch_every > 0) config.extra_observers.push_back(&watch);
  telemetry::TelemetryObserver telemetry_observer;
  const bool want_telemetry =
      trace_cmd || !trace_out.empty() || !metrics_out.empty();
  if (want_telemetry) config.extra_observers.push_back(&telemetry_observer);

  const auto result = core::run_election(*ring, config);

  if (want_telemetry) {
    if (trace_to_stdout) {
      telemetry::write_trace_json(std::cout, telemetry_observer);
    } else if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "cannot open " << trace_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_trace_json(out, telemetry_observer);
      if (!quiet) std::cout << "trace:   " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open " << metrics_out << "\n";
        return EXIT_FAILURE;
      }
      telemetry::write_metrics_json(out, telemetry_observer.metrics());
      if (!quiet) std::cout << "metrics: " << metrics_out << "\n";
    }
  }

  if (trace_to_stdout) {
    // The timeline owns stdout; verification still gates the exit code.
    const bool check_true =
        election::elects_true_leader(*algo) && report.asymmetric;
    const auto verification =
        core::verify_election(*ring, result, check_true);
    return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (json) {
    const bool check_true =
        election::elects_true_leader(*algo) && report.asymmetric;
    const auto verification =
        core::verify_election(*ring, result, check_true);
    core::write_json_report(std::cout, *ring, config, result, verification);
    return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  if (trace_enabled) trace.print(std::cout);
  std::cout << "outcome: " << sim::outcome_name(result.outcome) << "\n";
  for (const auto& v : result.violations) {
    std::cout << "violation: " << v << "\n";
  }
  if (const auto leader = result.leader_pid()) {
    std::cout << "leader: p" << *leader << " (label "
              << words::to_string(ring->label(*leader)) << ")\n";
  }
  std::cout << "stats: " << result.stats.summary() << "\n";

  const bool check_true_leader =
      election::elects_true_leader(*algo) && report.asymmetric;
  const auto verification =
      core::verify_election(*ring, result, check_true_leader);
  if (!quiet) {
    std::cout << "verification: " << verification.to_string() << "\n";
  }
  return verification.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
