// Real concurrency demo: the same Process implementations that run in
// the simulators run here on one OS thread per process, with blocking
// FIFO channels. The OS scheduler supplies the asynchrony; §II's fairness
// and reliability assumptions hold, so Theorems 2/3 apply — every run
// elects the true leader, whatever the interleaving.
//
//   $ ./threaded_demo [n] [k] [runs]
#include <cstdlib>
#include <iostream>

#include "election/algorithm.hpp"
#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "runtime/threaded_ring.hpp"

int main(int argc, char** argv) {
  using namespace hring;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 16;
  const std::size_t k =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 3;
  const int runs = argc > 3 ? std::atoi(argv[3]) : 5;

  support::Rng rng(2026);
  const auto ring =
      ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
  if (!ring) {
    std::cerr << "could not sample a ring\n";
    return EXIT_FAILURE;
  }
  std::cout << "ring:  " << ring->to_string() << "\n";
  std::cout << "class: " << ring::classify(*ring).to_string() << "\n";
  const auto expected = ring->true_leader();
  std::cout << "true leader: p" << expected << " (label "
            << words::to_string(ring->label(expected)) << ")\n\n";

  for (const auto algo :
       {election::AlgorithmId::kAk, election::AlgorithmId::kBk}) {
    std::cout << election::algorithm_name(algo) << " on " << n
              << " OS threads:\n";
    for (int run = 0; run < runs; ++run) {
      const auto result = runtime::run_threaded(
          *ring, election::make_factory({algo, k, false}));
      const auto leader = result.leader_pid();
      std::cout << "  run " << run << ": "
                << sim::outcome_name(result.outcome) << ", leader p"
                << (leader ? std::to_string(*leader) : "?") << ", "
                << result.messages_sent << " messages, "
                << result.actions << " actions\n";
      if (result.outcome != sim::Outcome::kTerminated ||
          leader != std::optional<sim::ProcessId>(expected)) {
        std::cerr << "UNEXPECTED RESULT\n";
        return EXIT_FAILURE;
      }
    }
  }
  std::cout << "\nEvery OS interleaving elected the same true leader — "
               "the theorems in action\noutside the simulator.\n";
  return EXIT_SUCCESS;
}
