// Figure 1 reproduction (experiment E5): run B_3 on the 8-process ring
// labeled (1,3,1,3,2,2,1,2) and print, for each phase, every process's
// guest value and active/passive status — the information the paper's
// Figure 1 displays as gray labels and white/black nodes. p0 is elected.
//
// The same run is exported as a Chrome trace-event / Perfetto JSON
// timeline (default figure1_trace.json, or argv[1]): open it at
// https://ui.perfetto.dev to see the figure's phase schedule as spans.
//
//   $ ./figure1_trace [trace.json]
#include <fstream>
#include <iostream>
#include <vector>

#include "election/bk.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "telemetry/telemetry_observer.hpp"
#include "telemetry/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace hring;

  const auto ring =
      ring::LabeledRing::from_values({1, 3, 1, 3, 2, 2, 1, 2});
  const std::size_t k = 3;
  std::cout << "B_" << k << " on ring " << ring.to_string()
            << " (Figure 1 of the paper)\n\n";

  sim::SynchronousScheduler sched;
  sim::StepEngine engine(
      ring, election::BkProcess::factory(k, /*record_history=*/true), sched);
  telemetry::TelemetryObserver telemetry_observer;
  engine.add_observer(&telemetry_observer);
  const auto result = engine.run();
  if (result.outcome != sim::Outcome::kTerminated) {
    std::cerr << "unexpected outcome: " << sim::outcome_name(result.outcome)
              << "\n";
    return 1;
  }

  // Collect per-process phase histories.
  std::vector<const election::BkProcess*> procs;
  std::size_t max_phase = 0;
  for (sim::ProcessId pid = 0; pid < ring.size(); ++pid) {
    const auto* proc =
        dynamic_cast<const election::BkProcess*>(&engine.process(pid));
    procs.push_back(proc);
    max_phase = std::max(max_phase, proc->history().size());
  }

  std::vector<std::string> headers = {"phase"};
  for (sim::ProcessId pid = 0; pid < ring.size(); ++pid) {
    headers.push_back("p" + std::to_string(pid));
  }
  support::Table table(headers);
  for (std::size_t phase = 1; phase <= max_phase; ++phase) {
    table.row().cell(static_cast<std::uint64_t>(phase));
    for (const auto* proc : procs) {
      if (phase <= proc->history().size()) {
        const auto& rec = proc->history()[phase - 1];
        // "3*" = guest 3, still active at the beginning of the phase;
        // plain "3" = passive (the figure's black nodes).
        std::string cell = words::to_string(rec.guest);
        if (rec.active) cell += '*';
        table.cell(cell);
      } else {
        table.cell("-");
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(*) process is active (white in the figure) at the "
               "beginning of the phase.\n\n";

  const auto leader = result.leader_pid();
  std::cout << "elected: p" << *leader << " (label "
            << words::to_string(ring.label(*leader)) << "), after "
            << procs[*leader]->phase() << " phases — the paper shows the "
            << "first four, with p0 winning.\n";

  const char* trace_path = argc > 1 ? argv[1] : "figure1_trace.json";
  std::ofstream trace_file(trace_path);
  if (!trace_file) {
    std::cerr << "cannot open " << trace_path << "\n";
    return 1;
  }
  telemetry::write_trace_json(trace_file, telemetry_observer);
  std::cout << "\ntimeline: " << trace_path
            << " (load at https://ui.perfetto.dev or chrome://tracing)\n";
  return 0;
}
