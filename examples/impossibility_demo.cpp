// Impossibility demonstrator (experiment E2, Theorem 1).
//
// No algorithm can solve process-terminating leader election for all of
// U* — rings where some label is unique — without a multiplicity bound.
// The proof's fooling construction is executable: take any K_1 ring R_n,
// repeat its labels k' times, append one fresh label X. For far-away
// processes the first synchronous steps are indistinguishable from R_n,
// so an algorithm tuned for multiplicity k < k' elects several leaders.
//
// This demo runs A_2 on R_{4,7} and prints the violation the spec monitor
// catches, then shows the same ring electing cleanly once k is honest.
//
//   $ ./impossibility_demo
#include <iostream>

#include "core/election_driver.hpp"
#include "core/verification.hpp"
#include "ring/classes.hpp"
#include "ring/fooling.hpp"

int main() {
  using namespace hring;

  const auto base = ring::LabeledRing::from_values({2, 4, 1, 3});
  const std::size_t k_algo = 2;    // what A_k believes
  const std::size_t k_actual = 7;  // what the adversary builds
  const auto fooled = ring::fooling_ring(base, k_actual);

  std::cout << "base ring R_n: " << base.to_string() << "\n";
  std::cout << "fooling ring R_{n,k'}: " << fooled.to_string() << "\n";
  std::cout << "classes: " << ring::classify(fooled).to_string()
            << "  — in U*, but multiplicity " << k_actual << " > k = "
            << k_algo << "\n\n";

  core::ElectionConfig config;
  config.algorithm = {election::AlgorithmId::kAk, k_algo, false};
  config.stop_on_violation = true;
  const auto result = core::run_election(fooled, config);

  std::cout << "running A_" << k_algo << " ... outcome: "
            << sim::outcome_name(result.outcome) << "\n";
  for (const auto& v : result.violations) {
    std::cout << "  spec violation: " << v << "\n";
  }
  std::size_t leaders = 0;
  for (const auto& p : result.processes) {
    if (p.is_leader) {
      ++leaders;
      std::cout << "  false leader: p" << p.pid << " (label "
                << words::to_string(p.id) << ")\n";
    }
  }
  std::cout << "-> " << leaders << " processes elected themselves: the "
            << "multi-leader failure Lemma 1 predicts.\n\n";

  // With the honest bound the very same ring is electable: R_{n,k'} is in
  // U* ∩ K_{k'} ⊆ A ∩ K_{k'}.
  core::ElectionConfig honest;
  honest.algorithm = {election::AlgorithmId::kAk, k_actual, false};
  const auto fixed = core::run_election(fooled, honest);
  const auto verification = core::verify_election(fooled, fixed, true);
  std::cout << "running A_" << k_actual << " on the same ring ... outcome: "
            << sim::outcome_name(fixed.outcome)
            << ", verification: " << verification.to_string() << "\n";
  std::cout << "-> the impossibility is about *not knowing* k, not about "
               "the rings themselves.\n";
  return verification.ok && result.outcome == sim::Outcome::kViolation
             ? 0
             : 1;
}
