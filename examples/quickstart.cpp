// Quickstart: elect a leader on the paper's remark ring (1, 2, 2).
//
// This is the smallest complete use of the library: build a ring, pick an
// algorithm and a multiplicity bound k, run, and inspect the result.
//
//   $ ./quickstart
#include <cstdlib>
#include <iostream>

#include "core/election_driver.hpp"
#include "core/verification.hpp"
#include "ring/classes.hpp"

int main() {
  using namespace hring;

  // A ring of three homonym processes, labeled clockwise 1, 2, 2. One
  // label is unique, so the ring is asymmetric; multiplicity is 2.
  const auto ring = ring::LabeledRing::from_values({1, 2, 2});
  std::cout << "ring: " << ring.to_string() << "  ("
            << ring::classify(ring).to_string() << ")\n";

  // Run Algorithm A_k with the multiplicity bound k = 2 under the default
  // synchronous daemon, with the spec monitor attached.
  core::ElectionConfig config;
  config.algorithm = {election::AlgorithmId::kAk, /*k=*/2, false};
  const auto result = core::run_election(ring, config);

  std::cout << "outcome: " << sim::outcome_name(result.outcome) << "\n";
  for (const auto& p : result.processes) {
    std::cout << "  p" << p.pid << " id=" << words::to_string(p.id)
              << (p.is_leader ? "  <-- leader" : "")
              << "  believes leader=" << words::to_string(*p.leader)
              << "\n";
  }
  std::cout << "stats: " << result.stats.summary() << "\n";

  // Verify against the paper's specification (including that the elected
  // process is the true leader, the Lyndon-word process of §IV).
  const auto report = core::verify_election(ring, result, true);
  std::cout << "verification: " << report.to_string() << "\n";
  return report.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
