// Group-signature scenario — the paper's motivating application (§I).
//
// A ring of servers signs messages with *group* signatures: every member
// of an administrative group shares one signature, so processes are
// homonyms — the label (signature) identifies the group, not the process,
// preserving intra-group privacy. The operators still need a coordinator.
//
// As long as (a) the resulting labeled ring is asymmetric and (b) a bound
// k on group size is known (groups here have at most 3 members), B_k
// elects a coordinator with O(log k + b)-bit state per server, revealing
// nothing beyond the signatures already public.
//
//   $ ./group_signatures
#include <iostream>
#include <map>
#include <vector>

#include "core/election_driver.hpp"
#include "core/verification.hpp"
#include "ring/classes.hpp"

int main() {
  using namespace hring;

  // Nine servers in four groups; the signature (= label) is the group id.
  //   accounting: {s0, s4, s7}, web: {s1, s5}, storage: {s2, s6, s8},
  //   build: {s3}.
  struct Server {
    const char* group;
    words::Label::rep_type signature;
  };
  const std::vector<Server> servers = {
      {"accounting", 1}, {"web", 2},        {"storage", 3},
      {"build", 4},      {"accounting", 1}, {"web", 2},
      {"storage", 3},    {"accounting", 1}, {"storage", 3},
  };

  words::LabelSequence labels;
  for (const auto& s : servers) labels.emplace_back(s.signature);
  const ring::LabeledRing ring{labels};
  const auto report = ring::classify(ring);
  std::cout << "signature ring: " << ring.to_string() << "\n"
            << "classes: " << report.to_string() << "\n";
  if (!report.asymmetric) {
    std::cerr << "ring is symmetric: no deterministic election exists "
                 "(Corollary 3); re-seat the ring.\n";
    return 1;
  }
  const std::size_t k = report.min_k();  // largest group size = 3
  std::cout << "largest group size k = " << k
            << " (known a priori to every server)\n\n";

  // Space matters on these boxes: use B_k, the O(log k + b)-bit algorithm.
  core::ElectionConfig config;
  config.algorithm = {election::AlgorithmId::kBk, k, false};
  config.scheduler = core::SchedulerKind::kRandomSubset;  // asynchrony
  config.seed = 2026;
  const auto result = core::run_election(ring, config);

  const auto verification = core::verify_election(ring, result, true);
  if (!verification.ok) {
    std::cerr << verification.to_string() << "\n";
    return 1;
  }
  const auto leader = *result.leader_pid();
  std::cout << "coordinator: s" << leader << " from group \""
            << servers[leader].group << "\" (signature "
            << words::to_string(ring.label(leader)) << ")\n";
  std::cout << "note: other servers learn only the *signature* of the "
               "coordinator's group\n      plus its ring position — "
               "group members stay mutually anonymous.\n\n";
  std::cout << "cost: " << result.stats.messages_sent << " messages, peak "
            << result.stats.peak_space_bits << " bits per server\n";

  // Contrast: A_k would be faster but stores whole label strings.
  core::ElectionConfig ak = config;
  ak.algorithm = {election::AlgorithmId::kAk, k, false};
  const auto ak_result = core::run_election(ring, ak);
  std::cout << "(A_k on the same ring: " << ak_result.stats.messages_sent
            << " messages, peak " << ak_result.stats.peak_space_bits
            << " bits per server)\n";
  return 0;
}
