// Figure 1 integration: the telemetry phase timeline of B_3 on the
// 8-process ring (1,3,1,3,2,2,1,2) must reproduce the figure's guest and
// active/passive schedule — cross-checked both against the hard-coded
// table the paper prints (phases 1–4) and against BkProcess's own phase
// history for the full run. The exported Chrome trace-event JSON is then
// checked for the structures Perfetto keys on.
#include "telemetry/trace_export.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "election/bk.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "telemetry/telemetry_observer.hpp"

namespace hring::telemetry {
namespace {

struct Figure1Run {
  sim::RunResult result;
  TelemetryObserver telemetry;
  std::vector<std::vector<election::BkProcess::PhaseRecord>> histories;
};

std::unique_ptr<Figure1Run> run_figure1() {
  auto run = std::make_unique<Figure1Run>();
  const auto ring =
      ring::LabeledRing::from_values({1, 3, 1, 3, 2, 2, 1, 2});
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(
      ring, election::BkProcess::factory(3, /*record_history=*/true), sched);
  engine.add_observer(&run->telemetry);
  run->result = engine.run();
  for (sim::ProcessId pid = 0; pid < ring.size(); ++pid) {
    const auto& proc =
        dynamic_cast<const election::BkProcess&>(engine.process(pid));
    run->histories.push_back(proc.history());
  }
  return run;
}

/// Spans of one process keyed by phase number.
std::map<std::size_t, PhaseSpan> spans_of(const TelemetryObserver& telemetry,
                                          sim::ProcessId pid) {
  std::map<std::size_t, PhaseSpan> by_phase;
  for (const PhaseSpan& span : telemetry.phase_spans()) {
    if (span.pid != pid) continue;
    EXPECT_EQ(by_phase.count(span.phase), 0u)
        << "duplicate phase " << span.phase << " for p" << pid;
    by_phase[span.phase] = span;
  }
  return by_phase;
}

TEST(TraceExport, Figure1PhaseSpansMatchThePaperTable) {
  const auto run = run_figure1();
  ASSERT_EQ(run->result.outcome, sim::Outcome::kTerminated);
  ASSERT_EQ(run->result.leader_pid(), std::optional<sim::ProcessId>{0});

  // Figure 1's first four phases: guest label per process, '*' = active
  // (white node) at the beginning of the phase.
  struct Expected {
    std::uint64_t guest;
    bool active;
  };
  const std::vector<std::vector<Expected>> figure = {
      {{1, true}, {3, true}, {1, true}, {3, true},
       {2, true}, {2, true}, {1, true}, {2, true}},   // phase 1
      {{2, true}, {1, false}, {3, true}, {1, false},
       {3, false}, {2, false}, {2, true}, {1, false}},  // phase 2
      {{1, true}, {2, false}, {1, false}, {3, false},
       {1, false}, {3, false}, {2, true}, {2, false}},  // phase 3
      {{2, true}, {1, false}, {2, false}, {1, false},
       {3, false}, {1, false}, {3, false}, {2, false}},  // phase 4
  };

  for (sim::ProcessId pid = 0; pid < 8; ++pid) {
    const auto by_phase = spans_of(run->telemetry, pid);
    for (std::size_t phase = 1; phase <= figure.size(); ++phase) {
      ASSERT_TRUE(by_phase.contains(phase))
          << "p" << pid << " has no phase-" << phase << " span";
      const PhaseSpan& span = by_phase.at(phase);
      EXPECT_EQ(span.guest, figure[phase - 1][pid].guest)
          << "p" << pid << " phase " << phase;
      EXPECT_EQ(span.active, figure[phase - 1][pid].active)
          << "p" << pid << " phase " << phase;
    }
  }
}

TEST(TraceExport, Figure1PhaseSpansMatchBkHistoryExactly) {
  const auto run = run_figure1();

  for (sim::ProcessId pid = 0; pid < run->histories.size(); ++pid) {
    const auto& history = run->histories[pid];
    const auto by_phase = spans_of(run->telemetry, pid);
    ASSERT_EQ(by_phase.size(), history.size()) << "p" << pid;
    for (const auto& rec : history) {
      ASSERT_TRUE(by_phase.contains(rec.phase)) << "p" << pid;
      const PhaseSpan& span = by_phase.at(rec.phase);
      EXPECT_EQ(span.guest, rec.guest.value()) << "p" << pid << " phase "
                                               << rec.phase;
      EXPECT_EQ(span.active, rec.active) << "p" << pid << " phase "
                                         << rec.phase;
    }
  }

  // p0 wins in phase 9 — its last span is the win phase, open at halt.
  const auto p0 = spans_of(run->telemetry, 0);
  ASSERT_TRUE(p0.contains(9));
  EXPECT_TRUE(p0.at(9).active);
  EXPECT_EQ(p0.at(9).guest, 1u);  // own label

  // Spans are contiguous per process: phase i ends when i+1 begins.
  for (sim::ProcessId pid = 0; pid < 8; ++pid) {
    const auto by_phase = spans_of(run->telemetry, pid);
    for (std::size_t phase = 1; phase + 1 <= by_phase.size(); ++phase) {
      EXPECT_DOUBLE_EQ(by_phase.at(phase).end_time,
                       by_phase.at(phase + 1).begin_time)
          << "p" << pid << " phase " << phase;
      EXPECT_TRUE(by_phase.at(phase).closed);
    }
  }
}

TEST(TraceExport, TraceJsonCarriesTheTimelineStructures) {
  const auto run = run_figure1();
  std::ostringstream out;
  write_trace_json(out, run->telemetry);
  const std::string doc = out.str();

  // Chrome trace-event scaffolding.
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Track metadata for both groups.
  EXPECT_NE(doc.find("\"processes\""), std::string::npos);
  EXPECT_NE(doc.find("\"links\""), std::string::npos);
  EXPECT_NE(doc.find("p0 (label 1)"), std::string::npos);
  EXPECT_NE(doc.find("link p7 -> p0"), std::string::npos);
  // Phase spans, markers and counter tracks.
  EXPECT_NE(doc.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(doc.find("phase 1 g=1*"), std::string::npos);
  EXPECT_NE(doc.find("\"deactivate\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase barrier\""), std::string::npos);
  EXPECT_NE(doc.find("\"active processes\""), std::string::npos);
  EXPECT_NE(doc.find("space_bits p0"), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"message\""), std::string::npos);
}

TEST(TraceExport, MetricsJsonIsSelfContained) {
  const auto run = run_figure1();
  std::ostringstream out;
  write_metrics_json(out, run->telemetry.metrics());
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"action.B1\":8"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"message_latency_time_units\""), std::string::npos);
}

}  // namespace
}  // namespace hring::telemetry
