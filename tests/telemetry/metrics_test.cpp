// Histogram bucketing and registry merge semantics (ISSUE 5 satellite).
//
// The bucket layout contract: slot 0 is underflow (v < e_0), interior
// slot i covers [e_{i-1}, e_i) lower-inclusive, the last slot is overflow
// (v >= e_{m-1}). Merging registries from parallel sweep workers must be
// exact bucket-wise addition.
#include "telemetry/metrics.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "support/json.hpp"

namespace hring::telemetry {
namespace {

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h("h", {1.0, 2.0, 4.0});
  EXPECT_EQ(h.slots(), 4u);  // underflow + 2 interior + overflow

  h.record(0.5);    // < e_0: underflow
  h.record(-3.0);   // underflow too
  h.record(100.0);  // >= e_{m-1}: overflow
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ExactEdgeValuesAreLowerInclusive) {
  Histogram h("h", {1.0, 2.0, 4.0});
  h.record(1.0);  // exactly e_0: first interior bucket [1, 2)
  h.record(2.0);  // exactly e_1: second interior bucket [2, 4)
  h.record(4.0);  // exactly the last edge: overflow (v >= e_{m-1})
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, InteriorValues) {
  Histogram h("h", {1.0, 2.0, 4.0});
  h.record(1.5);
  h.record(1.999);
  h.record(3.0);
  EXPECT_EQ(h.bucket(1), 2u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 1u);  // [2, 4)
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, Moments) {
  Histogram h("h", {10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // defined as 0 on the empty histogram

  h.record(2.0);
  h.record(6.0);
  h.record(4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(Histogram, MergeAddsBucketsAndMoments) {
  Histogram a("h", {1.0, 2.0});
  Histogram b("h", {1.0, 2.0});
  a.record(0.5);
  a.record(1.5);
  b.record(1.5);
  b.record(9.0);

  ASSERT_TRUE(a.same_layout(b));
  a.merge(b);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Histogram, SameLayoutRequiresNameAndEdges) {
  const Histogram a("h", {1.0, 2.0});
  const Histogram other_name("g", {1.0, 2.0});
  const Histogram other_edges("h", {1.0, 3.0});
  EXPECT_FALSE(a.same_layout(other_name));
  EXPECT_FALSE(a.same_layout(other_edges));
}

TEST(MetricsRegistry, CounterFindOrCreate) {
  MetricsRegistry reg;
  const CounterId a = reg.counter("a");
  const CounterId again = reg.counter("a");
  EXPECT_EQ(a.index, again.index);

  reg.add(a);
  reg.add(a, 4);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value, 5u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

TEST(MetricsRegistry, HistogramFindOrCreate) {
  MetricsRegistry reg;
  const double edges[] = {1.0, 2.0};
  const HistogramId h = reg.histogram("h", edges);
  const HistogramId again = reg.histogram("h", edges);
  EXPECT_EQ(h.index, again.index);

  reg.record(h, 1.5);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
}

// The parallel-sweep aggregation step: two workers' registries fold into
// one, creating metrics the destination has not seen and adding the rest.
TEST(MetricsRegistry, MergeFromParallelWorkers) {
  const double edges[] = {1.0, 2.0, 4.0};

  MetricsRegistry worker_a;
  worker_a.add(worker_a.counter("runs"), 3);
  worker_a.add(worker_a.counter("only_in_a"), 7);
  const HistogramId ha = worker_a.histogram("latency", edges);
  worker_a.record(ha, 0.5);
  worker_a.record(ha, 1.5);

  MetricsRegistry worker_b;
  worker_b.add(worker_b.counter("runs"), 2);
  const HistogramId hb = worker_b.histogram("latency", edges);
  worker_b.record(hb, 1.5);
  worker_b.record(hb, 8.0);
  worker_b.record(hb, 3.0);

  MetricsRegistry merged;
  merged.merge(worker_a);
  merged.merge(worker_b);

  EXPECT_EQ(merged.find_counter("runs")->value, 5u);
  EXPECT_EQ(merged.find_counter("only_in_a")->value, 7u);
  const Histogram* latency = merged.find_histogram("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 5u);
  EXPECT_EQ(latency->underflow(), 1u);
  EXPECT_EQ(latency->bucket(1), 2u);  // the two 1.5s
  EXPECT_EQ(latency->bucket(2), 1u);  // 3.0
  EXPECT_EQ(latency->overflow(), 1u);
  EXPECT_DOUBLE_EQ(latency->min(), 0.5);
  EXPECT_DOUBLE_EQ(latency->max(), 8.0);
}

// -- Merge error paths (ISSUE 10 satellite) ----------------------------------
// Registries cross worker and process boundaries (sweep aggregation, the
// bench JSON merge), so a layout mismatch must surface as a catchable
// error naming the metric — never an assert or silent bucket nonsense.

TEST(Histogram, MergeMismatchedEdgesThrows) {
  Histogram a("latency", {1.0, 2.0, 4.0});
  Histogram b("latency", {1.0, 3.0, 9.0});
  a.record(1.5);
  b.record(1.5);
  try {
    a.merge(b);
    FAIL() << "merge with mismatched edges did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("latency"), std::string::npos)
        << e.what();
  }
  // The destination is untouched by the rejected merge.
  EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, MergeMismatchedNameThrows) {
  Histogram a("latency", {1.0, 2.0});
  Histogram b("steps", {1.0, 2.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, ReregisterHistogramWithDifferentEdgesThrows) {
  MetricsRegistry reg;
  const double edges[] = {1.0, 2.0};
  const double other[] = {1.0, 2.0, 4.0};
  (void)reg.histogram("h", edges);
  try {
    (void)reg.histogram("h", other);
    FAIL() << "re-registration with different edges did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'h'"), std::string::npos)
        << e.what();
  }
  // Identical edges still find the original id.
  EXPECT_EQ(reg.histogram("h", edges).index, 0u);
}

TEST(MetricsRegistry, MergeMismatchedHistogramEdgesThrows) {
  const double edges_a[] = {1.0, 2.0};
  const double edges_b[] = {1.0, 5.0};
  MetricsRegistry a;
  a.record(a.histogram("latency", edges_a), 1.5);
  MetricsRegistry b;
  b.record(b.histogram("latency", edges_b), 1.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // The destination histogram keeps its pre-merge contents.
  ASSERT_NE(a.find_histogram("latency"), nullptr);
  EXPECT_EQ(a.find_histogram("latency")->count(), 1u);
}

TEST(MetricsRegistry, MergeCollidingCounterNamesAddsAcrossRegistries) {
  // Same counter name in three source registries: the collisions resolve
  // by addition, and an unrelated name with the same value stays apart.
  MetricsRegistry merged;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    MetricsRegistry worker;
    worker.add(worker.counter("collide"), i);
    worker.add(worker.counter("worker_" + std::to_string(i)), i);
    merged.merge(worker);
  }
  ASSERT_NE(merged.find_counter("collide"), nullptr);
  EXPECT_EQ(merged.find_counter("collide")->value, 6u);
  EXPECT_EQ(merged.find_counter("worker_1")->value, 1u);
  EXPECT_EQ(merged.find_counter("worker_2")->value, 2u);
  EXPECT_EQ(merged.find_counter("worker_3")->value, 3u);
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  Histogram h("h", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 0.0);
}

TEST(HistogramQuantile, UnitWidthIntegerBuckets) {
  // Unit-width buckets hold a single integer each (the campaign
  // histograms use this layout below 256): endpoints are exact and every
  // interior quantile lands inside the unit bucket of its rank.
  std::vector<double> edges;
  for (int e = 1; e <= 16; ++e) edges.push_back(static_cast<double>(e));
  Histogram h("h", edges);
  for (int v = 1; v <= 10; ++v) h.record(static_cast<double>(v));

  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 10.0);
  EXPECT_GE(histogram_quantile(h, 0.5), 5.0);
  EXPECT_LE(histogram_quantile(h, 0.5), 6.0);
  EXPECT_GE(histogram_quantile(h, 0.9), 9.0);
  EXPECT_LE(histogram_quantile(h, 0.9), 10.0);
}

TEST(HistogramQuantile, EndBucketsTightenToObservedExtremes) {
  // All mass in the overflow bucket: every quantile must stay inside
  // [min, max], not run off to the (unbounded) bucket edges.
  Histogram h("h", {1.0, 2.0});
  h.record(100.0);
  h.record(200.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 200.0);
  EXPECT_GE(histogram_quantile(h, 0.5), 100.0);
  EXPECT_LE(histogram_quantile(h, 0.5), 200.0);
}

TEST(HistogramQuantile, MonotoneInQ) {
  Histogram h("h", {1.0, 2.0, 4.0, 8.0, 16.0});
  for (int v = 0; v < 20; ++v) h.record(static_cast<double>(v));
  double prev = histogram_quantile(h, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = histogram_quantile(h, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MetricsRegistry, ToJsonSchema) {
  MetricsRegistry reg;
  reg.add(reg.counter("fired"), 2);
  const double edges[] = {1.0, 2.0};
  reg.record(reg.histogram("h", edges), 1.5);

  std::ostringstream out;
  {
    support::JsonWriter json(out);
    reg.to_json(json);
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"fired\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace hring::telemetry
