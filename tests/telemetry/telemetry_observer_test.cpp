// TelemetryObserver against ground truth the engines already expose:
// action counters vs TraceRecorder's census, latency samples vs receive
// counts, link-depth samples vs send counts, the space histogram vs
// Stats::peak_space_bits, and the message-span cap.
#include "telemetry/telemetry_observer.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/election_driver.hpp"
#include "election/algorithm.hpp"
#include "election/bk.hpp"
#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "sim/event_engine.hpp"
#include "sim/trace.hpp"

namespace hring::telemetry {
namespace {

ring::LabeledRing figure1_ring() {
  return ring::LabeledRing::from_values({1, 3, 1, 3, 2, 2, 1, 2});
}

/// Slot a value lands in for the histogram's edge layout (test-side mirror
/// of Histogram::record's binary search).
std::size_t slot_of(const Histogram& h, double v) {
  const auto& edges = h.edges();
  return static_cast<std::size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
}

TEST(TelemetryObserver, ActionCountersMatchTraceCensus) {
  const auto ring = figure1_ring();
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(ring, election::BkProcess::factory(3), sched);
  sim::TraceRecorder trace;
  TelemetryObserver telemetry;
  engine.add_observer(&trace);
  engine.add_observer(&telemetry);
  const auto result = engine.run();
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);

  const auto census = trace.action_census();
  ASSERT_FALSE(census.empty());
  std::uint64_t census_total = 0;
  for (const auto& [action, count] : census) {
    const Counter* counter =
        telemetry.metrics().find_counter("action." + action);
    ASSERT_NE(counter, nullptr) << "missing counter for " << action;
    EXPECT_EQ(counter->value, count) << action;
    census_total += count;
  }
  const Counter* actions = telemetry.metrics().find_counter("actions");
  ASSERT_NE(actions, nullptr);
  EXPECT_EQ(actions->value, census_total);
  EXPECT_EQ(actions->value, result.stats.actions);
}

TEST(TelemetryObserver, LatencyCountMatchesReceivesOnHonestLinks) {
  const auto ring = figure1_ring();
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(ring, election::BkProcess::factory(3), sched);
  TelemetryObserver telemetry;
  engine.add_observer(&telemetry);
  const auto result = engine.run();
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);

  const Histogram* latency = telemetry.metrics().find_histogram(
      TelemetryObserver::kMessageLatencyHistogram);
  ASSERT_NE(latency, nullptr);
  // Honest links keep the FIFO mirror in sync: every receive matches.
  EXPECT_EQ(latency->count(), result.stats.messages_received);
  EXPECT_EQ(
      telemetry.metrics().find_counter("telemetry.unmatched_receives")->value,
      0u);
  EXPECT_EQ(telemetry.message_spans().size(), result.stats.messages_received);
}

TEST(TelemetryObserver, EventEngineUnitDelaysLandInTheirBucket) {
  const auto ring = figure1_ring();
  sim::ConstantDelay delay(1.0);
  sim::EventEngine engine(ring, election::BkProcess::factory(3), delay);
  TelemetryObserver telemetry;
  engine.add_observer(&telemetry);
  const auto result = engine.run();
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);

  const Histogram* latency = telemetry.metrics().find_histogram(
      TelemetryObserver::kMessageLatencyHistogram);
  ASSERT_NE(latency, nullptr);
  ASSERT_GT(latency->count(), 0u);
  // Every hop takes exactly one normalized time unit.
  EXPECT_DOUBLE_EQ(latency->min(), 1.0);
  EXPECT_DOUBLE_EQ(latency->max(), 1.0);
  EXPECT_EQ(latency->bucket(slot_of(*latency, 1.0)), latency->count());
}

TEST(TelemetryObserver, LinkDepthSampledAtEachSend) {
  const auto ring = figure1_ring();
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(ring, election::BkProcess::factory(3), sched);
  TelemetryObserver telemetry;
  engine.add_observer(&telemetry);
  const auto result = engine.run();

  const Histogram* depth = telemetry.metrics().find_histogram(
      TelemetryObserver::kLinkDepthHistogram);
  ASSERT_NE(depth, nullptr);
  // One sample per sending action; B_k actions send at most one message,
  // so here the sample count is exactly the send count.
  EXPECT_EQ(depth->count(), result.stats.messages_sent);
  // Link occupancy peaks immediately after a send and nothing pops the
  // link before the observer samples it, so the histogram's max is the
  // engines' high-water statistic exactly.
  EXPECT_DOUBLE_EQ(depth->max(),
                   static_cast<double>(result.stats.peak_link_occupancy));
  EXPECT_GE(depth->min(), 1.0);  // a freshly-sent message is in the queue
}

TEST(TelemetryObserver, SpaceHistogramPeaksAtStatsPeak) {
  const auto ring = figure1_ring();
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(ring, election::BkProcess::factory(3), sched);
  TelemetryObserver telemetry;
  engine.add_observer(&telemetry);
  const auto result = engine.run();

  const Histogram* space = telemetry.metrics().find_histogram(
      TelemetryObserver::kSpaceBitsHistogram);
  ASSERT_NE(space, nullptr);
  // Sampling on change sees every value a process ever holds, so the
  // histogram's max is exactly the engines' peak statistic.
  EXPECT_DOUBLE_EQ(space->max(),
                   static_cast<double>(result.stats.peak_space_bits));
  ASSERT_FALSE(telemetry.space_samples().empty());
  // The series starts with one seed sample per process.
  EXPECT_EQ(telemetry.space_samples()[0].pid, 0u);
}

TEST(TelemetryObserver, MessageSpanCapCountsDrops) {
  TelemetryObserver::Config config;
  config.max_message_spans = 8;
  TelemetryObserver telemetry(config);

  const auto ring = figure1_ring();
  sim::SynchronousScheduler sched;
  sim::StepEngine engine(ring, election::BkProcess::factory(3), sched);
  engine.add_observer(&telemetry);
  const auto result = engine.run();

  ASSERT_GT(result.stats.messages_received, 8u);
  EXPECT_EQ(telemetry.message_spans().size(), 8u);
  EXPECT_EQ(telemetry.dropped_message_spans(),
            result.stats.messages_received - 8);
  // Metrics keep counting past the span cap.
  const Histogram* latency = telemetry.metrics().find_histogram(
      TelemetryObserver::kMessageLatencyHistogram);
  EXPECT_EQ(latency->count(), result.stats.messages_received);
}

TEST(TelemetryObserver, MetricsAccumulateSpansRewind) {
  const auto ring = figure1_ring();
  core::ElectionConfig config;
  config.algorithm = {election::AlgorithmId::kBk, 3, false};
  TelemetryObserver telemetry;
  config.extra_observers.push_back(&telemetry);

  const auto first = core::run_election(ring, config);
  const std::uint64_t actions_after_one =
      telemetry.metrics().find_counter("actions")->value;
  const std::size_t spans_after_one = telemetry.phase_spans().size();
  ASSERT_GT(spans_after_one, 0u);

  const auto second = core::run_election(ring, config);
  ASSERT_EQ(second.stats.actions, first.stats.actions);
  // Counters are cumulative across runs (sweep aggregation)...
  EXPECT_EQ(telemetry.metrics().find_counter("actions")->value,
            2 * actions_after_one);
  // ...while spans always describe the latest run only.
  EXPECT_EQ(telemetry.phase_spans().size(), spans_after_one);
}

TEST(TelemetryObserver, AttachesThroughTheDriverOnBothEngines) {
  const auto ring = figure1_ring();
  for (const auto engine_kind :
       {core::EngineKind::kStep, core::EngineKind::kEvent}) {
    core::ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kBk, 3, false};
    config.engine = engine_kind;
    TelemetryObserver telemetry;
    config.extra_observers.push_back(&telemetry);
    const auto result = core::run_election(ring, config);
    ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
    EXPECT_EQ(telemetry.metrics().find_counter("actions")->value,
              result.stats.actions);
    EXPECT_FALSE(telemetry.phase_spans().empty());
    EXPECT_EQ(telemetry.process_count(), ring.size());
  }
}

}  // namespace
}  // namespace hring::telemetry
