#include "ring/counting.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "ring/generator.hpp"

namespace hring::ring {
namespace {

TEST(MobiusTest, KnownValues) {
  // OEIS A008683.
  const std::int64_t expected[] = {1,  -1, -1, 0, -1, 1,  -1, 0,
                                   0,  1,  -1, 0, -1, 1,  1,  0,
                                   -1, 0,  -1, 0};
  for (std::uint64_t n = 1; n <= 20; ++n) {
    EXPECT_EQ(mobius(n), expected[n - 1]) << "n=" << n;
  }
}

TEST(MobiusTest, MultiplicativeOnCoprimes) {
  EXPECT_EQ(mobius(6), mobius(2) * mobius(3));
  EXPECT_EQ(mobius(35), mobius(5) * mobius(7));
  EXPECT_EQ(mobius(30), mobius(2) * mobius(3) * mobius(5));
}

TEST(TotientTest, KnownValues) {
  // OEIS A000010.
  const std::uint64_t expected[] = {1, 1, 2, 2, 4, 2, 6, 4, 6, 4,
                                    10, 4, 12, 6, 8, 8, 16, 6, 18, 8};
  for (std::uint64_t n = 1; n <= 20; ++n) {
    EXPECT_EQ(totient(n), expected[n - 1]) << "n=" << n;
  }
}

TEST(TotientTest, SumOverDivisorsIsN) {
  for (std::uint64_t n = 1; n <= 60; ++n) {
    std::uint64_t sum = 0;
    for (std::uint64_t d = 1; d <= n; ++d) {
      if (n % d == 0) sum += totient(d);
    }
    EXPECT_EQ(sum, n) << "n=" << n;
  }
}

TEST(CheckedPowTest, Basics) {
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(3, 0), 1u);
  EXPECT_EQ(checked_pow(1, 100), 1u);
  EXPECT_EQ(checked_pow(10, 5), 100000u);
}

TEST(CountingTest, LyndonWordCountsKnown) {
  // Binary Lyndon word counts (OEIS A001037): n=1..10.
  const std::uint64_t expected[] = {2, 1, 2, 3, 6, 9, 18, 30, 56, 99};
  for (std::uint64_t n = 1; n <= 10; ++n) {
    EXPECT_EQ(count_asymmetric_rings(n, 2), expected[n - 1]) << "n=" << n;
  }
}

TEST(CountingTest, NecklaceCountsKnown) {
  // Binary necklace counts (OEIS A000031): n=1..8.
  const std::uint64_t expected[] = {2, 3, 4, 6, 8, 14, 20, 36};
  for (std::uint64_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(count_necklaces(n, 2), expected[n - 1]) << "n=" << n;
  }
}

class EnumerationCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(EnumerationCrossCheck, LabelingsMatchMobiusFormula) {
  const auto [n, a] = GetParam();
  const auto labelings = enumerate_rings(n, a, /*asymmetric_only=*/true,
                                         /*canonical_only=*/false);
  EXPECT_EQ(labelings.size(), count_asymmetric_labelings(n, a));
}

TEST_P(EnumerationCrossCheck, CanonicalClassesMatchLyndonCount) {
  const auto [n, a] = GetParam();
  const auto classes = enumerate_rings(n, a, /*asymmetric_only=*/true,
                                       /*canonical_only=*/true);
  EXPECT_EQ(classes.size(), count_asymmetric_rings(n, a));
}

TEST_P(EnumerationCrossCheck, AllClassesMatchBurnside) {
  const auto [n, a] = GetParam();
  const auto classes = enumerate_rings(n, a, /*asymmetric_only=*/false,
                                       /*canonical_only=*/true);
  EXPECT_EQ(classes.size(), count_necklaces(n, a));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumerationCrossCheck,
    ::testing::Values(std::tuple<std::size_t, std::size_t>{2, 2},
                      std::tuple<std::size_t, std::size_t>{3, 2},
                      std::tuple<std::size_t, std::size_t>{4, 2},
                      std::tuple<std::size_t, std::size_t>{5, 2},
                      std::tuple<std::size_t, std::size_t>{6, 2},
                      std::tuple<std::size_t, std::size_t>{7, 2},
                      std::tuple<std::size_t, std::size_t>{8, 2},
                      std::tuple<std::size_t, std::size_t>{3, 3},
                      std::tuple<std::size_t, std::size_t>{4, 3},
                      std::tuple<std::size_t, std::size_t>{5, 3},
                      std::tuple<std::size_t, std::size_t>{6, 3},
                      std::tuple<std::size_t, std::size_t>{4, 4},
                      std::tuple<std::size_t, std::size_t>{5, 4}),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_a" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace hring::ring
