#include "ring/fooling.hpp"

#include <gtest/gtest.h>

#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "support/rng.hpp"

namespace hring::ring {
namespace {

TEST(FoolingTest, ConstructionShape) {
  const auto base = LabeledRing::from_values({1, 2, 3});
  const auto ring = fooling_ring(base, 2);
  EXPECT_EQ(ring.size(), 7u);  // kn + 1
  EXPECT_EQ(ring.to_string(), "1.2.3.1.2.3.4");
}

TEST(FoolingTest, FreshLabelIsUnique) {
  const auto base = LabeledRing::from_values({5, 9, 2});
  const auto ring = fooling_ring(base, 3);
  EXPECT_EQ(ring.size(), 10u);
  EXPECT_EQ(ring.multiplicity(Label(10)), 1u);  // X = max + 1 = 10
  EXPECT_TRUE(in_class_Ustar(ring));
}

TEST(FoolingTest, MemberOfUstarIntersectKk) {
  support::Rng rng(404);
  for (const std::size_t k : {1u, 2u, 3u, 5u}) {
    const auto base = distinct_ring(6, rng);
    const auto ring = fooling_ring(base, k);
    EXPECT_TRUE(in_class_Ustar(ring));
    EXPECT_TRUE(in_class_Kk(ring, k));
    if (k > 1) {
      // The base labels saturate the bound: k copies each.
      EXPECT_FALSE(in_class_Kk(ring, k - 1));
    }
    EXPECT_TRUE(in_class_A(ring));
  }
}

TEST(FoolingTest, BaseLabelsHaveMultiplicityK) {
  const auto base = LabeledRing::from_values({1, 2});
  const auto ring = fooling_ring(base, 4);
  EXPECT_EQ(ring.multiplicity(Label(1)), 4u);
  EXPECT_EQ(ring.multiplicity(Label(2)), 4u);
  EXPECT_EQ(ring.max_multiplicity(), 4u);
}

TEST(FoolingTest, PositionMapping) {
  const auto base = LabeledRing::from_values({1, 2, 3});
  const auto ring = fooling_ring(base, 3);
  for (std::size_t copy = 0; copy < 3; ++copy) {
    for (ProcessIndex j = 0; j < base.size(); ++j) {
      const ProcessIndex pos = fooling_position(base, copy, j);
      EXPECT_EQ(ring.label(pos), base.label(j))
          << "copy " << copy << " j " << j;
    }
  }
}

TEST(FoolingTest, RequiresDistinctBase) {
  const auto bad = LabeledRing::from_values({1, 1, 2});
  EXPECT_DEATH(fooling_ring(bad, 2), "precondition");
}

}  // namespace
}  // namespace hring::ring
