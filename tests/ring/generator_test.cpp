#include "ring/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ring/classes.hpp"
#include "words/lyndon.hpp"

namespace hring::ring {
namespace {

TEST(GeneratorTest, SequentialRingHasExpectedLabels) {
  const auto ring = sequential_ring(4);
  EXPECT_EQ(ring.to_string(), "1.2.3.4");
  EXPECT_TRUE(in_class_K1(ring));
}

TEST(GeneratorTest, DistinctRingIsPermutation) {
  support::Rng rng(7);
  const auto ring = distinct_ring(12, rng);
  EXPECT_TRUE(in_class_K1(ring));
  std::set<Label::rep_type> seen;
  for (const Label l : ring.labels()) seen.insert(l.value());
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), 12u);
}

TEST(GeneratorTest, UniformRandomRingRespectsAlphabet) {
  support::Rng rng(11);
  const auto ring = uniform_random_ring(50, 3, rng);
  for (const Label l : ring.labels()) {
    EXPECT_GE(l.value(), 1u);
    EXPECT_LE(l.value(), 3u);
  }
}

TEST(GeneratorTest, SymmetricRingIsSymmetric) {
  const auto ring = symmetric_ring(words::make_sequence({1, 2, 3}), 3);
  EXPECT_EQ(ring.size(), 9u);
  EXPECT_FALSE(in_class_A(ring));
}

class AsymmetricGeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(AsymmetricGeneratorSweep, ProducesMembersOfAIntersectKk) {
  const auto [n, k] = GetParam();
  support::Rng rng(0xA11CE + n * 100 + k);
  const std::size_t alphabet = (n + k - 1) / k + 2;
  for (int rep = 0; rep < 20; ++rep) {
    const auto ring = random_asymmetric_ring(n, k, alphabet, rng);
    ASSERT_TRUE(ring.has_value()) << "n=" << n << " k=" << k;
    EXPECT_EQ(ring->size(), n);
    EXPECT_TRUE(in_class_A(*ring)) << ring->to_string();
    EXPECT_TRUE(in_class_Kk(*ring, k)) << ring->to_string();
  }
}

TEST_P(AsymmetricGeneratorSweep, UniqueLabelRingIsInUstarKk) {
  const auto [n, k] = GetParam();
  support::Rng rng(0xBEEF + n * 100 + k);
  for (int rep = 0; rep < 20; ++rep) {
    const auto ring = unique_label_ring(n, k, rng);
    EXPECT_EQ(ring.size(), n);
    EXPECT_TRUE(in_class_Ustar(ring)) << ring.to_string();
    EXPECT_TRUE(in_class_Kk(ring, k)) << ring.to_string();
    EXPECT_TRUE(in_class_A(ring)) << ring.to_string();
    EXPECT_EQ(ring.multiplicity(Label(1)), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsymmetricGeneratorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4, 5, 8, 16, 33),
                       ::testing::Values<std::size_t>(1, 2, 3, 4)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_k" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(GeneratorTest, SaturatedRingHasLabelWithMultiplicityExactlyK) {
  support::Rng rng(31337);
  for (const std::size_t k : {1u, 2u, 3u, 5u}) {
    const std::size_t n = 4 * k + 1;
    const auto ring = saturated_multiplicity_ring(n, k, rng);
    ASSERT_TRUE(ring.has_value());
    EXPECT_EQ(ring->multiplicity(Label(1)), k);
    EXPECT_EQ(ring->max_multiplicity(), k);
    EXPECT_TRUE(in_class_A(*ring));
  }
}

TEST(GeneratorTest, EnumerationCountsMatchAlphabetPower) {
  const auto all = enumerate_rings(3, 2, /*asymmetric_only=*/false,
                                   /*canonical_only=*/false);
  EXPECT_EQ(all.size(), 8u);  // 2^3
}

TEST(GeneratorTest, EnumerationAsymmetricOnlyExcludesSymmetric) {
  const auto asym = enumerate_rings(4, 2, /*asymmetric_only=*/true,
                                    /*canonical_only=*/false);
  for (const auto& ring : asym) {
    EXPECT_TRUE(in_class_A(ring)) << ring.to_string();
  }
  // 2^4 = 16 total; symmetric over {1,2}: 1111, 2222, 1212, 2121 -> 12 left.
  EXPECT_EQ(asym.size(), 12u);
}

TEST(GeneratorTest, EnumerationCanonicalKeepsOnePerRotationClass) {
  const auto canon = enumerate_rings(4, 2, /*asymmetric_only=*/true,
                                     /*canonical_only=*/true);
  // 12 asymmetric labelings / 4 rotations each = 3 classes.
  EXPECT_EQ(canon.size(), 3u);
  for (const auto& ring : canon) {
    EXPECT_EQ(words::least_rotation_index(ring.labels()), 0u);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  support::Rng rng1(99);
  support::Rng rng2(99);
  const auto a = distinct_ring(10, rng1);
  const auto b = distinct_ring(10, rng2);
  EXPECT_EQ(a.to_string(), b.to_string());
}

}  // namespace
}  // namespace hring::ring
