#include "ring/labeled_ring.hpp"

#include <gtest/gtest.h>

#include "ring/generator.hpp"
#include "support/rng.hpp"
#include "words/label.hpp"

namespace hring::ring {
namespace {

using words::make_sequence;

TEST(LabeledRingTest, SizeAndLabels) {
  const auto ring = LabeledRing::from_values({1, 3, 1, 2});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.label(0), Label(1));
  EXPECT_EQ(ring.label(1), Label(3));
  EXPECT_EQ(ring.label(3), Label(2));
}

TEST(LabeledRingTest, NeighborsWrapAround) {
  const auto ring = LabeledRing::from_values({1, 2, 3});
  EXPECT_EQ(ring.right(0), 1u);
  EXPECT_EQ(ring.right(2), 0u);
  EXPECT_EQ(ring.left(0), 2u);
  EXPECT_EQ(ring.left(1), 0u);
}

TEST(LabeledRingTest, Multiplicity) {
  const auto ring = LabeledRing::from_values({1, 2, 2, 3, 2});
  EXPECT_EQ(ring.multiplicity(Label(2)), 3u);
  EXPECT_EQ(ring.multiplicity(Label(1)), 1u);
  EXPECT_EQ(ring.multiplicity(Label(9)), 0u);
  EXPECT_EQ(ring.max_multiplicity(), 3u);
  EXPECT_EQ(ring.distinct_labels(), 3u);
}

TEST(LabeledRingTest, LLabelsGoesCounterClockwise) {
  // LLabels(p_i) = p_i.id, p_{i-1}.id, p_{i-2}.id, …
  const auto ring = LabeledRing::from_values({10, 20, 30, 40});
  EXPECT_EQ(ring.llabels(0, 4), make_sequence({10, 40, 30, 20}));
  EXPECT_EQ(ring.llabels(2, 4), make_sequence({30, 20, 10, 40}));
}

TEST(LabeledRingTest, LLabelsWrapsBeyondN) {
  const auto ring = LabeledRing::from_values({1, 2, 3});
  EXPECT_EQ(ring.llabels(0, 7), make_sequence({1, 3, 2, 1, 3, 2, 1}));
}

TEST(LabeledRingTest, PaperExampleLLabels) {
  // §IV example: p0.id = p1.id = A(=1), p2.id = B(=2);
  // LLabels(p0) = A B A A B A …
  const auto ring = LabeledRing::from_values({1, 1, 2});
  EXPECT_EQ(ring.llabels(0, 6), make_sequence({1, 2, 1, 1, 2, 1}));
}

TEST(LabeledRingTest, LabelBits) {
  EXPECT_EQ(LabeledRing::from_values({1, 2, 3}).label_bits(), 2u);
  EXPECT_EQ(LabeledRing::from_values({1, 300}).label_bits(), 9u);
}

TEST(TrueLeaderTest, Figure1RingElectsP0) {
  // Figure 1: labels (1,3,1,3,2,2,1,2) with k=3; p0 is elected.
  const auto ring = LabeledRing::from_values({1, 3, 1, 3, 2, 2, 1, 2});
  EXPECT_EQ(ring.true_leader(), 0u);
  EXPECT_EQ(ring.true_leader_naive(), 0u);
}

TEST(TrueLeaderTest, Remark122Ring) {
  // §I remark ring (1,2,2): LLabels(p0)=1,2,2 is the Lyndon rotation.
  const auto ring = LabeledRing::from_values({1, 2, 2});
  EXPECT_EQ(ring.true_leader(), 0u);
}

TEST(TrueLeaderTest, DistinctRingLeaderHoldsLyndonSequence) {
  const auto ring = LabeledRing::from_values({4, 2, 7, 1, 5});
  const ProcessIndex leader = ring.true_leader();
  // LLabels(leader)^n must be lexicographically minimal among processes.
  const auto expected = ring.true_leader_naive();
  EXPECT_EQ(leader, expected);
  // The minimal sequence starts with the minimal label when it is unique.
  EXPECT_EQ(ring.label(leader), Label(1));
}

TEST(TrueLeaderTest, BoothMatchesNaiveOnRandomAsymmetricRings) {
  support::Rng rng(0xabcdef);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + rng.below(30);
    const std::size_t k = 1 + rng.below(4);
    const std::size_t alphabet = (n + k - 1) / k + 1 + rng.below(3);
    const auto ring = random_asymmetric_ring(n, k, alphabet, rng);
    ASSERT_TRUE(ring.has_value());
    EXPECT_EQ(ring->true_leader(), ring->true_leader_naive())
        << ring->to_string();
  }
}

TEST(LabeledRingTest, ToStringRendersClockwise) {
  EXPECT_EQ(LabeledRing::from_values({1, 3, 2}).to_string(), "1.3.2");
}

}  // namespace
}  // namespace hring::ring
