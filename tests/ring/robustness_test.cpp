// Contract/robustness coverage for the ring layer: precondition deaths
// and the honest-failure paths of the generators.
#include <gtest/gtest.h>

#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "ring/labeled_ring.hpp"
#include "words/lyndon.hpp"

namespace hring::ring {
namespace {

TEST(RobustnessTest, RingRequiresAtLeastTwoProcesses) {
  EXPECT_DEATH(LabeledRing::from_values({1}), "precondition");
}

TEST(RobustnessTest, LabelAccessorBoundsChecked) {
  const auto ring = LabeledRing::from_values({1, 2});
  EXPECT_DEATH(static_cast<void>(ring.label(2)), "precondition");
  EXPECT_DEATH(static_cast<void>(ring.right(5)), "precondition");
  EXPECT_DEATH(static_cast<void>(ring.left(5)), "precondition");
}

TEST(RobustnessTest, TrueLeaderRefusesSymmetricRings) {
  const auto ring = LabeledRing::from_values({1, 2, 1, 2});
  EXPECT_DEATH(static_cast<void>(ring.true_leader()), "precondition");
}

TEST(RobustnessTest, LLabelsZeroLengthIsEmpty) {
  const auto ring = LabeledRing::from_values({1, 2, 3});
  EXPECT_TRUE(ring.llabels(0, 0).empty());
}

TEST(RobustnessTest, AsymmetricSamplerReportsHopelessFamilies) {
  // A one-letter alphabet can only produce the all-equal (symmetric)
  // ring; the sampler must return nullopt instead of looping forever.
  support::Rng rng(1);
  const auto ring = random_asymmetric_ring(/*n=*/4, /*k=*/4,
                                           /*alphabet=*/1, rng,
                                           /*max_tries=*/50);
  EXPECT_FALSE(ring.has_value());
}

TEST(RobustnessTest, AsymmetricSamplerValidatesArguments) {
  support::Rng rng(1);
  // alphabet * k < n cannot fit the multiset.
  EXPECT_DEATH(static_cast<void>(random_asymmetric_ring(10, 2, 4, rng)),
               "precondition");
}

TEST(RobustnessTest, EnumerationGuardsAgainstExplosion) {
  EXPECT_DEATH(static_cast<void>(enumerate_rings(40, 4, false, false)),
               "precondition");
}

TEST(RobustnessTest, SymmetricRingRequiresRepetition) {
  EXPECT_DEATH(static_cast<void>(symmetric_ring(
                   words::make_sequence({1, 2}), 1)),
               "precondition");
  EXPECT_DEATH(static_cast<void>(symmetric_ring({}, 3)), "precondition");
}

TEST(RobustnessTest, SaturatedSamplerRequiresRoomForAsymmetry) {
  support::Rng rng(1);
  EXPECT_DEATH(static_cast<void>(saturated_multiplicity_ring(3, 3, rng)),
               "precondition");
}

TEST(RobustnessTest, KkPredicateRejectsZeroK) {
  const auto ring = LabeledRing::from_values({1, 2});
  EXPECT_DEATH(static_cast<void>(in_class_Kk(ring, 0)), "precondition");
}

}  // namespace
}  // namespace hring::ring
