#include "ring/classes.hpp"

#include <gtest/gtest.h>

namespace hring::ring {
namespace {

TEST(ClassesTest, KkMembership) {
  const auto ring = LabeledRing::from_values({1, 2, 2, 3});
  EXPECT_FALSE(in_class_Kk(ring, 1));
  EXPECT_TRUE(in_class_Kk(ring, 2));
  EXPECT_TRUE(in_class_Kk(ring, 5));
}

TEST(ClassesTest, K1IsDistinctLabels) {
  EXPECT_TRUE(in_class_K1(LabeledRing::from_values({3, 1, 2})));
  EXPECT_FALSE(in_class_K1(LabeledRing::from_values({3, 1, 3})));
}

TEST(ClassesTest, AsymmetricMembership) {
  EXPECT_TRUE(in_class_A(LabeledRing::from_values({1, 2, 2})));
  EXPECT_TRUE(in_class_A(LabeledRing::from_values({1, 2})));
  EXPECT_FALSE(in_class_A(LabeledRing::from_values({1, 2, 1, 2})));
  EXPECT_FALSE(in_class_A(LabeledRing::from_values({5, 5})));
  EXPECT_FALSE(in_class_A(LabeledRing::from_values({1, 2, 3, 1, 2, 3})));
}

TEST(ClassesTest, UstarMembership) {
  EXPECT_TRUE(in_class_Ustar(LabeledRing::from_values({1, 2, 2})));
  EXPECT_TRUE(in_class_Ustar(LabeledRing::from_values({1, 2, 3})));
  EXPECT_FALSE(in_class_Ustar(LabeledRing::from_values({2, 2, 1, 1})));
}

TEST(ClassesTest, UstarIsSubsetOfA) {
  // Every ring with a unique label is asymmetric: spot-check a family.
  for (const auto& values :
       {LabeledRing::from_values({1, 2, 2}),
        LabeledRing::from_values({7, 3, 3, 3}),
        LabeledRing::from_values({5, 1, 1, 5, 9})}) {
    if (in_class_Ustar(values)) {
      EXPECT_TRUE(in_class_A(values)) << values.to_string();
    }
  }
}

TEST(ClassesTest, UniqueLabelsSortedAscending) {
  const auto ring = LabeledRing::from_values({9, 2, 2, 5, 9, 1});
  const auto uniques = unique_labels(ring);
  ASSERT_EQ(uniques.size(), 2u);
  EXPECT_EQ(uniques[0], Label(1));
  EXPECT_EQ(uniques[1], Label(5));
}

TEST(ClassesTest, ClassifyReport) {
  const auto report = classify(LabeledRing::from_values({1, 2, 2}));
  EXPECT_EQ(report.n, 3u);
  EXPECT_EQ(report.distinct_labels, 2u);
  EXPECT_EQ(report.max_multiplicity, 2u);
  EXPECT_TRUE(report.asymmetric);
  EXPECT_TRUE(report.has_unique_label);
  EXPECT_EQ(report.min_k(), 2u);
  EXPECT_EQ(report.to_string(), "n=3 |L|=2 max_mlty=2 A U*");
}

TEST(ClassesTest, ClassifySymmetricRing) {
  const auto report = classify(LabeledRing::from_values({4, 4, 4, 4}));
  EXPECT_FALSE(report.asymmetric);
  EXPECT_FALSE(report.has_unique_label);
  EXPECT_EQ(report.max_multiplicity, 4u);
  EXPECT_EQ(report.distinct_labels, 1u);
}

}  // namespace
}  // namespace hring::ring
