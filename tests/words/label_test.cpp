#include "words/label.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hring::words {
namespace {

TEST(LabelTest, DefaultConstructedIsZero) {
  EXPECT_EQ(Label{}.value(), 0u);
}

TEST(LabelTest, ValueRoundTrip) {
  EXPECT_EQ(Label(42).value(), 42u);
  EXPECT_EQ(Label(0).value(), 0u);
  EXPECT_EQ(Label(~0ULL).value(), ~0ULL);
}

TEST(LabelTest, EqualityFollowsValue) {
  EXPECT_EQ(Label(7), Label(7));
  EXPECT_NE(Label(7), Label(8));
}

TEST(LabelTest, OrderingFollowsValue) {
  EXPECT_LT(Label(1), Label(2));
  EXPECT_GT(Label(9), Label(3));
  EXPECT_LE(Label(4), Label(4));
  EXPECT_GE(Label(4), Label(4));
}

TEST(LabelTest, ComparisonCounterCountsComparisons) {
  Label::reset_comparison_count();
  EXPECT_EQ(Label::comparison_count(), 0u);
  const bool lt = Label(1) < Label(2);
  EXPECT_TRUE(lt);
  EXPECT_EQ(Label::comparison_count(), 1u);
  const bool eq = Label(1) == Label(1);
  EXPECT_TRUE(eq);
  EXPECT_EQ(Label::comparison_count(), 2u);
  Label::reset_comparison_count();
  EXPECT_EQ(Label::comparison_count(), 0u);
}

TEST(LabelTest, ToStringRendersValue) {
  EXPECT_EQ(to_string(Label(17)), "17");
}

TEST(LabelTest, SequenceToStringUsesDots) {
  EXPECT_EQ(to_string(make_sequence({1, 3, 1, 2})), "1.3.1.2");
  EXPECT_EQ(to_string(LabelSequence{}), "");
  EXPECT_EQ(to_string(make_sequence({5})), "5");
}

TEST(LabelTest, MakeSequencePreservesOrder) {
  const LabelSequence seq = make_sequence({3, 1, 4, 1, 5});
  ASSERT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0], Label(3));
  EXPECT_EQ(seq[3], Label(1));
  EXPECT_EQ(seq[4], Label(5));
}

TEST(LabelTest, CountOccurrences) {
  const LabelSequence seq = make_sequence({1, 2, 1, 1, 3});
  EXPECT_EQ(count_occurrences(seq, Label(1)), 3u);
  EXPECT_EQ(count_occurrences(seq, Label(2)), 1u);
  EXPECT_EQ(count_occurrences(seq, Label(9)), 0u);
  EXPECT_EQ(count_occurrences(LabelSequence{}, Label(1)), 0u);
}

TEST(LabelTest, LabelBitsMinimumOne) {
  EXPECT_EQ(label_bits(make_sequence({0})), 1u);
  EXPECT_EQ(label_bits(make_sequence({1})), 1u);
}

TEST(LabelTest, LabelBitsMatchesBitWidth) {
  EXPECT_EQ(label_bits(make_sequence({1, 2, 3})), 2u);
  EXPECT_EQ(label_bits(make_sequence({1, 4})), 3u);
  EXPECT_EQ(label_bits(make_sequence({255})), 8u);
  EXPECT_EQ(label_bits(make_sequence({256})), 9u);
}

TEST(LabelTest, SortWorksViaOrdering) {
  LabelSequence seq = make_sequence({5, 3, 9, 1});
  std::sort(seq.begin(), seq.end());
  EXPECT_EQ(to_string(seq), "1.3.5.9");
}

}  // namespace
}  // namespace hring::words
