#include "words/zfunction.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/rng.hpp"
#include "words/periodicity.hpp"

namespace hring::words {
namespace {

LabelSequence random_sequence(std::size_t len, std::size_t alphabet,
                              support::Rng& rng) {
  LabelSequence seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    seq.emplace_back(rng.below(alphabet) + 1);
  }
  return seq;
}

TEST(ZFunctionTest, EmptyAndSingleton) {
  EXPECT_TRUE(z_array({}).empty());
  const auto z = z_array(make_sequence({5}));
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0], 1u);
}

TEST(ZFunctionTest, ClassicExample) {
  // "aabxaab": z = 7,1,0,0,3,1,0 with labels a=1, b=2, x=3.
  const auto z = z_array(make_sequence({1, 1, 2, 3, 1, 1, 2}));
  const std::vector<std::size_t> expected = {7, 1, 0, 0, 3, 1, 0};
  EXPECT_EQ(z, expected);
}

TEST(ZFunctionTest, AllEqualLetters) {
  const auto z = z_array(make_sequence({4, 4, 4, 4}));
  const std::vector<std::size_t> expected = {4, 3, 2, 1};
  EXPECT_EQ(z, expected);
}

TEST(ZFunctionTest, PeriodFromZMatchesKnownCases) {
  EXPECT_EQ(smallest_period_z(make_sequence({1, 2, 1, 2, 1})), 2u);
  EXPECT_EQ(smallest_period_z(make_sequence({1, 1, 2})), 3u);
  EXPECT_EQ(smallest_period_z(make_sequence({7})), 1u);
  EXPECT_EQ(smallest_period_z(make_sequence({1, 2, 3, 4})), 4u);
}

TEST(ZFunctionTest, AllPeriodsOfPeriodicWord) {
  // (1,2)^3: periods 2, 4, 6.
  const auto periods = all_periods(make_sequence({1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(periods, (std::vector<std::size_t>{2, 4, 6}));
}

TEST(ZFunctionTest, AllPeriodsSatisfyDefinition) {
  const auto seq = make_sequence({1, 1, 2, 1, 1, 2, 1, 1});
  const auto periods = all_periods(seq);
  // Every listed value is a period; every period is listed.
  for (std::size_t p = 1; p <= seq.size(); ++p) {
    const bool listed =
        std::find(periods.begin(), periods.end(), p) != periods.end();
    EXPECT_EQ(listed, is_period(seq, p)) << "p=" << p;
  }
}

class ZSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ZSweep, LinearMatchesNaive) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0x2aa + len * 11 + alphabet);
  for (int rep = 0; rep < 30; ++rep) {
    const auto seq = random_sequence(len, alphabet, rng);
    EXPECT_EQ(z_array(seq), z_array_naive(seq)) << to_string(seq);
  }
}

TEST_P(ZSweep, PeriodAgreesWithBorderDerivation) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0x2bb + len * 13 + alphabet);
  for (int rep = 0; rep < 30; ++rep) {
    const auto seq = random_sequence(len, alphabet, rng);
    EXPECT_EQ(smallest_period_z(seq), smallest_period(seq))
        << to_string(seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 21, 64),
                       ::testing::Values<std::size_t>(1, 2, 3)),
    [](const auto& pinfo) {
      return "len" + std::to_string(std::get<0>(pinfo.param)) + "_a" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace hring::words
