#include "words/lyndon.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/rng.hpp"
#include "words/label.hpp"
#include "words/periodicity.hpp"

namespace hring::words {
namespace {

LabelSequence random_sequence(std::size_t len, std::size_t alphabet,
                              support::Rng& rng) {
  LabelSequence seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    seq.emplace_back(rng.below(alphabet) + 1);
  }
  return seq;
}

TEST(RotateTest, RotationsOfSmallSequence) {
  const LabelSequence seq = make_sequence({1, 2, 3});
  EXPECT_EQ(rotate(seq, 0), make_sequence({1, 2, 3}));
  EXPECT_EQ(rotate(seq, 1), make_sequence({2, 3, 1}));
  EXPECT_EQ(rotate(seq, 2), make_sequence({3, 1, 2}));
}

TEST(CompareRotationsTest, BasicOrdering) {
  const LabelSequence seq = make_sequence({2, 1, 3});
  // rotation 1 = (1,3,2) < rotation 0 = (2,1,3) < rotation 2 = (3,2,1).
  EXPECT_EQ(compare_rotations(seq, 1, 0), std::strong_ordering::less);
  EXPECT_EQ(compare_rotations(seq, 0, 2), std::strong_ordering::less);
  EXPECT_EQ(compare_rotations(seq, 2, 1), std::strong_ordering::greater);
  EXPECT_EQ(compare_rotations(seq, 1, 1), std::strong_ordering::equal);
}

TEST(CompareRotationsTest, EqualRotationsOfPeriodicSequence) {
  const LabelSequence seq = make_sequence({1, 2, 1, 2});
  EXPECT_EQ(compare_rotations(seq, 0, 2), std::strong_ordering::equal);
  EXPECT_EQ(compare_rotations(seq, 1, 3), std::strong_ordering::equal);
  EXPECT_NE(compare_rotations(seq, 0, 1), std::strong_ordering::equal);
}

TEST(LeastRotationTest, KnownCases) {
  EXPECT_EQ(least_rotation_index(make_sequence({2, 1, 3})), 1u);
  EXPECT_EQ(least_rotation_index(make_sequence({1, 2, 3})), 0u);
  EXPECT_EQ(least_rotation_index(make_sequence({3, 2, 1})), 2u);
  EXPECT_EQ(least_rotation_index(make_sequence({5})), 0u);
}

TEST(LeastRotationTest, TieBreaksToSmallestIndex) {
  // (1,2,1,2): rotations 0 and 2 tie; Booth must return 0.
  EXPECT_EQ(least_rotation_index(make_sequence({1, 2, 1, 2})), 0u);
  EXPECT_EQ(least_rotation_index(make_sequence({2, 1, 2, 1})), 1u);
  EXPECT_EQ(least_rotation_index(make_sequence({7, 7, 7})), 0u);
}

TEST(HasRotationalSymmetryTest, SymmetricCases) {
  EXPECT_TRUE(has_rotational_symmetry(make_sequence({1, 2, 1, 2})));
  EXPECT_TRUE(has_rotational_symmetry(make_sequence({4, 4})));
  EXPECT_TRUE(has_rotational_symmetry(make_sequence({1, 2, 3, 1, 2, 3})));
}

TEST(HasRotationalSymmetryTest, AsymmetricCases) {
  EXPECT_FALSE(has_rotational_symmetry(make_sequence({1})));
  EXPECT_FALSE(has_rotational_symmetry(make_sequence({1, 2})));
  EXPECT_FALSE(has_rotational_symmetry(make_sequence({1, 2, 2})));
  // Period 3 does not divide 5, so no cyclic symmetry despite periodicity.
  EXPECT_FALSE(has_rotational_symmetry(make_sequence({1, 1, 2, 1, 1})));
  EXPECT_FALSE(has_rotational_symmetry(make_sequence({1, 3, 1, 3, 2, 2, 1,
                                                      2})));
}

TEST(HasRotationalSymmetryTest, EmptyIsNotSymmetric) {
  EXPECT_FALSE(has_rotational_symmetry({}));
}

TEST(IsLyndonTest, KnownLyndonWords) {
  EXPECT_TRUE(is_lyndon(make_sequence({1})));
  EXPECT_TRUE(is_lyndon(make_sequence({1, 2})));
  EXPECT_TRUE(is_lyndon(make_sequence({1, 1, 2})));
  EXPECT_TRUE(is_lyndon(make_sequence({1, 2, 2})));
  EXPECT_TRUE(is_lyndon(make_sequence({1, 1, 2, 1, 2})));
}

TEST(IsLyndonTest, KnownNonLyndonWords) {
  EXPECT_FALSE(is_lyndon({}));
  EXPECT_FALSE(is_lyndon(make_sequence({2, 1})));
  EXPECT_FALSE(is_lyndon(make_sequence({1, 1})));       // periodic
  EXPECT_FALSE(is_lyndon(make_sequence({1, 2, 1, 2}))); // periodic
  EXPECT_FALSE(is_lyndon(make_sequence({2, 1, 2})));    // rotation smaller
}

TEST(LyndonRotationTest, RotatesToLyndonWord) {
  EXPECT_EQ(lyndon_rotation(make_sequence({2, 1, 3})),
            make_sequence({1, 3, 2}));
  EXPECT_EQ(lyndon_rotation(make_sequence({2, 2, 1})),
            make_sequence({1, 2, 2}));
  EXPECT_EQ(lyndon_rotation(make_sequence({1, 2, 2})),
            make_sequence({1, 2, 2}));
}

TEST(LyndonRotationTest, FirstLabelShortcutAgrees) {
  const LabelSequence seq = make_sequence({3, 1, 4, 1, 5, 9, 2, 6});
  EXPECT_EQ(lyndon_rotation_first(seq), lyndon_rotation(seq)[0]);
}

TEST(DuvalTest, SingleLyndonWord) {
  const auto lengths = duval_factorization(make_sequence({1, 2, 3}));
  EXPECT_EQ(lengths, (std::vector<std::size_t>{3}));
}

TEST(DuvalTest, DecreasingLetters) {
  const auto lengths = duval_factorization(make_sequence({3, 2, 1}));
  EXPECT_EQ(lengths, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(DuvalTest, ClassicExample) {
  // (1,2,1,1,2,1) = (1,2)(1,1,2)(1): factors 2,3,1.
  const auto lengths =
      duval_factorization(make_sequence({1, 2, 1, 1, 2, 1}));
  EXPECT_EQ(lengths, (std::vector<std::size_t>{2, 3, 1}));
}

// -- properties over random sequences -------------------------------------

class LyndonProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(LyndonProperty, BoothMatchesNaive) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0xb001 + len * 131 + alphabet);
  for (int rep = 0; rep < 40; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    EXPECT_EQ(least_rotation_index(seq), least_rotation_index_naive(seq))
        << to_string(seq);
  }
}

TEST_P(LyndonProperty, IsLyndonMatchesNaive) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0x17d0 + len * 37 + alphabet);
  for (int rep = 0; rep < 40; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    EXPECT_EQ(is_lyndon(seq), is_lyndon_naive(seq)) << to_string(seq);
  }
}

TEST_P(LyndonProperty, LyndonRotationIsLyndonWhenAperiodic) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0x90210 + len * 61 + alphabet);
  for (int rep = 0; rep < 40; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    if (has_rotational_symmetry(seq)) continue;
    const LabelSequence lw = lyndon_rotation(seq);
    EXPECT_TRUE(is_lyndon_naive(lw)) << to_string(seq);
    EXPECT_EQ(lw[0], lyndon_rotation_first(seq));
  }
}

TEST_P(LyndonProperty, DuvalFactorsAreNonIncreasingLyndonWords) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0xd0f1 + len * 89 + alphabet);
  for (int rep = 0; rep < 20; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    const auto lengths = duval_factorization(seq);
    std::size_t offset = 0;
    LabelSequence prev;
    for (const std::size_t flen : lengths) {
      ASSERT_LE(offset + flen, seq.size());
      const LabelSequence factor(
          seq.begin() + static_cast<std::ptrdiff_t>(offset),
          seq.begin() + static_cast<std::ptrdiff_t>(offset + flen));
      EXPECT_TRUE(is_lyndon_naive(factor))
          << to_string(seq) << " factor " << to_string(factor);
      if (!prev.empty()) {
        // w_{i-1} >= w_i lexicographically.
        EXPECT_FALSE(std::lexicographical_compare(prev.begin(), prev.end(),
                                                  factor.begin(),
                                                  factor.end()))
            << to_string(seq);
      }
      prev = factor;
      offset += flen;
    }
    EXPECT_EQ(offset, seq.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LyndonProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4, 5, 8, 13,
                                                      21, 48),
                       ::testing::Values<std::size_t>(1, 2, 3, 5)),
    [](const auto& pinfo) {
      return "len" + std::to_string(std::get<0>(pinfo.param)) + "_a" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace hring::words
