#include "words/periodicity.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/rng.hpp"
#include "words/label.hpp"

namespace hring::words {
namespace {

LabelSequence random_sequence(std::size_t len, std::size_t alphabet,
                              support::Rng& rng) {
  LabelSequence seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    seq.emplace_back(rng.below(alphabet) + 1);
  }
  return seq;
}

TEST(BorderArrayTest, EmptySequence) {
  EXPECT_TRUE(border_array({}).empty());
}

TEST(BorderArrayTest, SingleLetter) {
  const auto b = border_array(make_sequence({7}));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 0u);
}

TEST(BorderArrayTest, ClassicExample) {
  // "abcabca" pattern with labels: borders 0 0 0 1 2 3 4.
  const auto b = border_array(make_sequence({1, 2, 3, 1, 2, 3, 1}));
  const std::vector<std::size_t> expected = {0, 0, 0, 1, 2, 3, 4};
  EXPECT_EQ(b, expected);
}

TEST(BorderArrayTest, AllSameLetter) {
  const auto b = border_array(make_sequence({4, 4, 4, 4}));
  const std::vector<std::size_t> expected = {0, 1, 2, 3};
  EXPECT_EQ(b, expected);
}

TEST(SmallestPeriodTest, SingleLetterIsPeriodOne) {
  EXPECT_EQ(smallest_period(make_sequence({9})), 1u);
}

TEST(SmallestPeriodTest, AllSameIsPeriodOne) {
  EXPECT_EQ(smallest_period(make_sequence({2, 2, 2, 2, 2})), 1u);
}

TEST(SmallestPeriodTest, AperiodicIsFullLength) {
  EXPECT_EQ(smallest_period(make_sequence({1, 2, 3, 4})), 4u);
}

TEST(SmallestPeriodTest, ExactRepetition) {
  EXPECT_EQ(smallest_period(make_sequence({1, 2, 1, 2, 1, 2})), 2u);
}

TEST(SmallestPeriodTest, TruncatedRepetition) {
  // The paper's repeating-prefix definition admits truncation: 1,2,3,1,2
  // is a truncation of (1,2,3)^inf.
  EXPECT_EQ(smallest_period(make_sequence({1, 2, 3, 1, 2})), 3u);
}

TEST(SmallestPeriodTest, NonDivisorPeriod) {
  // A smallest period need not divide the length: "aabaa" has period 3.
  EXPECT_EQ(smallest_period(make_sequence({1, 1, 2})), 3u);
  EXPECT_EQ(smallest_period(make_sequence({1, 1, 2, 1, 1})), 3u);
}

TEST(SmallestPeriodTest, FigureOneRing) {
  // The counter-clockwise unrolled Figure 1 labels, doubled, have period 8.
  const LabelSequence ring =
      make_sequence({1, 2, 1, 2, 2, 3, 1, 3, 1, 2, 1, 2, 2, 3, 1, 3});
  EXPECT_EQ(smallest_period(ring), 8u);
}

TEST(IsPeriodTest, DefinitionalChecks) {
  const LabelSequence seq = make_sequence({1, 2, 1, 2, 1});
  EXPECT_FALSE(is_period(seq, 1));
  EXPECT_TRUE(is_period(seq, 2));
  EXPECT_FALSE(is_period(seq, 3));
  EXPECT_TRUE(is_period(seq, 4));
  EXPECT_TRUE(is_period(seq, 5));   // whole length is always a period
  EXPECT_TRUE(is_period(seq, 99));  // beyond length: vacuously true
}

TEST(SrpTest, ReturnsShortestRepeatingPrefix) {
  EXPECT_EQ(srp(make_sequence({1, 2, 1, 2, 1})), make_sequence({1, 2}));
  EXPECT_EQ(srp(make_sequence({3})), make_sequence({3}));
  EXPECT_EQ(srp(make_sequence({1, 2, 3})), make_sequence({1, 2, 3}));
}

TEST(SrpTest, SrpIsARepeatingPrefixByDefinition) {
  const LabelSequence seq = make_sequence({2, 1, 2, 2, 1, 2, 2, 1});
  const LabelSequence pi = srp(seq);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], pi[i % pi.size()]) << "position " << i;
  }
}

TEST(IncrementalPeriodTest, EmptyInitially) {
  IncrementalPeriod inc;
  EXPECT_EQ(inc.size(), 0u);
  EXPECT_EQ(inc.border(), 0u);
}

TEST(IncrementalPeriodTest, TracksBatchComputation) {
  IncrementalPeriod inc;
  const LabelSequence seq = make_sequence({1, 2, 1, 1, 2, 1, 2, 1, 2});
  for (std::size_t i = 0; i < seq.size(); ++i) {
    inc.push_back(seq[i]);
    const LabelSequence prefix(seq.begin(),
                               seq.begin() + static_cast<std::ptrdiff_t>(i) +
                                   1);
    EXPECT_EQ(inc.period(), smallest_period(prefix)) << "prefix len " << i + 1;
    EXPECT_EQ(inc.sequence(), prefix);
  }
}

// -- properties over random sequences -------------------------------------

class PeriodProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PeriodProperty, KmpMatchesNaive) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0x5eed0000 + len * 131 + alphabet);
  for (int rep = 0; rep < 40; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    EXPECT_EQ(smallest_period(seq), smallest_period_naive(seq))
        << to_string(seq);
  }
}

TEST_P(PeriodProperty, IncrementalMatchesBatch) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0xabc0000 + len * 17 + alphabet);
  for (int rep = 0; rep < 20; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    IncrementalPeriod inc;
    for (const Label l : seq) inc.push_back(l);
    EXPECT_EQ(inc.period(), smallest_period(seq)) << to_string(seq);
  }
}

TEST_P(PeriodProperty, PeriodIsAPeriodAndMinimal) {
  const auto [len, alphabet] = GetParam();
  support::Rng rng(0xf00d0000 + len * 29 + alphabet);
  for (int rep = 0; rep < 20; ++rep) {
    const LabelSequence seq = random_sequence(len, alphabet, rng);
    const std::size_t p = smallest_period(seq);
    EXPECT_TRUE(is_period(seq, p)) << to_string(seq);
    for (std::size_t q = 1; q < p; ++q) {
      EXPECT_FALSE(is_period(seq, q)) << to_string(seq) << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21,
                                                      34, 64),
                       ::testing::Values<std::size_t>(1, 2, 3, 5)),
    [](const auto& pinfo) {
      return "len" + std::to_string(std::get<0>(pinfo.param)) + "_a" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace hring::words
