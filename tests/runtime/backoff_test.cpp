// The Backoff escalation ladder, pinned exactly (runtime/inhost/
// spsc_queue.hpp). The ladder is a contract the runtime's parking logic
// leans on: worker loops spin while progress is likely, escalate to
// yields, then to capped doubling sleeps, and switch to the doorbell
// futex once exhausted() says the cheap phases are spent. A recording
// park policy replaces ThreadPark so every threshold transition is
// asserted without touching the scheduler or the wall clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "runtime/inhost/spsc_queue.hpp"

namespace hring::runtime {
namespace {

struct RecordingPark {
  static std::uint32_t yields;
  static std::vector<std::uint32_t> sleeps_us;

  static void yield() { ++yields; }
  static void sleep_us(std::uint32_t us) { sleeps_us.push_back(us); }

  static void clear() {
    yields = 0;
    sleeps_us.clear();
  }
};
std::uint32_t RecordingPark::yields = 0;
std::vector<std::uint32_t> RecordingPark::sleeps_us;

using TestBackoff = BasicBackoff<RecordingPark>;

TEST(Backoff, SpinPhaseStaysOnCpu) {
  RecordingPark::clear();
  TestBackoff b;
  for (std::uint32_t i = 0; i < TestBackoff::kSpinLimit; ++i) {
    EXPECT_FALSE(b.exhausted());
    b.pause();
  }
  EXPECT_EQ(RecordingPark::yields, 0u);
  EXPECT_TRUE(RecordingPark::sleeps_us.empty());
}

TEST(Backoff, YieldPhaseStartsAtExactlySpinLimit) {
  RecordingPark::clear();
  TestBackoff b;
  for (std::uint32_t i = 0; i < TestBackoff::kSpinLimit; ++i) b.pause();
  // Pause kSpinLimit+1 is the first yield; the boundary is exact.
  b.pause();
  EXPECT_EQ(RecordingPark::yields, 1u);
  for (std::uint32_t i = 1; i < TestBackoff::kYieldLimit; ++i) b.pause();
  EXPECT_EQ(RecordingPark::yields, TestBackoff::kYieldLimit);
  EXPECT_TRUE(RecordingPark::sleeps_us.empty());
}

TEST(Backoff, SleepPhaseDoublesFromStartToCap) {
  RecordingPark::clear();
  TestBackoff b;
  const std::uint32_t ladder =
      TestBackoff::kSpinLimit + TestBackoff::kYieldLimit;
  for (std::uint32_t i = 0; i < ladder; ++i) b.pause();
  // 50, 100, 200, 400, 800, 1600, then clamped at 2000 forever.
  for (int i = 0; i < 8; ++i) b.pause();
  const std::vector<std::uint32_t> expected = {50,   100,  200,  400,
                                               800,  1600, 2000, 2000};
  EXPECT_EQ(RecordingPark::sleeps_us, expected);
  EXPECT_EQ(RecordingPark::yields, TestBackoff::kYieldLimit);
}

TEST(Backoff, ExhaustedFlipsWhenSpinAndYieldAreSpent) {
  RecordingPark::clear();
  TestBackoff b;
  const std::uint32_t ladder =
      TestBackoff::kSpinLimit + TestBackoff::kYieldLimit;
  for (std::uint32_t i = 0; i < ladder; ++i) {
    EXPECT_FALSE(b.exhausted()) << "pause " << i;
    b.pause();
  }
  // The caller is now expected to park on the doorbell futex instead.
  EXPECT_TRUE(b.exhausted());
  b.pause();
  EXPECT_TRUE(b.exhausted());
}

TEST(Backoff, ResetRestartsTheLadderIncludingSleepWidth) {
  RecordingPark::clear();
  TestBackoff b;
  const std::uint32_t ladder =
      TestBackoff::kSpinLimit + TestBackoff::kYieldLimit;
  for (std::uint32_t i = 0; i < ladder + 4; ++i) b.pause();
  ASSERT_EQ(RecordingPark::sleeps_us.size(), 4u);  // 50,100,200,400
  b.reset();
  EXPECT_FALSE(b.exhausted());
  RecordingPark::clear();
  // Post-reset, the full spin phase runs again and the first sleep is
  // back at kSleepStartUs — a stale doubled width would over-park a
  // queue that just made progress.
  for (std::uint32_t i = 0; i < ladder + 1; ++i) b.pause();
  EXPECT_EQ(RecordingPark::yields, TestBackoff::kYieldLimit);
  ASSERT_EQ(RecordingPark::sleeps_us.size(), 1u);
  EXPECT_EQ(RecordingPark::sleeps_us[0], TestBackoff::kSleepStartUs);
}

TEST(Backoff, DefaultAliasUsesThreadPark) {
  // Compile-time pin: the production alias is the template over
  // ThreadPark, so the runtime's call sites got the same ladder the
  // recording policy just verified.
  static_assert(std::is_same_v<Backoff, BasicBackoff<ThreadPark>>);
  Backoff b;
  EXPECT_FALSE(b.exhausted());
}

}  // namespace
}  // namespace hring::runtime
