// SpscByteQueue: single-threaded semantics plus a two-thread torture
// test with randomized batch sizes (the TSan preset races these under
// ThreadSanitizer — the acquire/release pairing around head_/tail_ is
// exactly what it verifies).
#include "runtime/inhost/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace hring::runtime {
namespace {

TEST(SpscQueueTest, StartsEmpty) {
  SpscByteQueue queue(64);
  EXPECT_EQ(queue.readable(), 0u);
  EXPECT_EQ(queue.writable(), queue.capacity());
  std::uint8_t byte = 0;
  EXPECT_FALSE(queue.try_read(&byte, 1));
  EXPECT_FALSE(queue.try_peek(&byte, 1));
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscByteQueue(1).capacity(), 64u);    // minimum
  EXPECT_EQ(SpscByteQueue(64).capacity(), 64u);
  EXPECT_EQ(SpscByteQueue(65).capacity(), 128u);
  EXPECT_EQ(SpscByteQueue(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, WriteReadRoundTrip) {
  SpscByteQueue queue(64);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(queue.try_write(data.data(), data.size()));
  EXPECT_EQ(queue.readable(), 5u);
  std::vector<std::uint8_t> out(5);
  ASSERT_TRUE(queue.try_read(out.data(), out.size()));
  EXPECT_EQ(out, data);
  EXPECT_EQ(queue.readable(), 0u);
}

TEST(SpscQueueTest, WriteIsAllOrNothing) {
  SpscByteQueue queue(64);
  std::vector<std::uint8_t> big(60, 0xAA);
  ASSERT_TRUE(queue.try_write(big.data(), big.size()));
  std::vector<std::uint8_t> more(5, 0xBB);
  EXPECT_FALSE(queue.try_write(more.data(), more.size()));  // only 4 free
  EXPECT_EQ(queue.readable(), 60u);  // nothing partial arrived
  std::vector<std::uint8_t> out(60);
  ASSERT_TRUE(queue.try_read(out.data(), out.size()));
  EXPECT_EQ(out, big);
}

TEST(SpscQueueTest, PeekDoesNotConsume) {
  SpscByteQueue queue(64);
  const std::vector<std::uint8_t> data = {9, 8, 7};
  ASSERT_TRUE(queue.try_write(data.data(), data.size()));
  std::vector<std::uint8_t> out(3);
  ASSERT_TRUE(queue.try_peek(out.data(), out.size()));
  EXPECT_EQ(out, data);
  EXPECT_EQ(queue.readable(), 3u);
  ASSERT_TRUE(queue.try_read(out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST(SpscQueueTest, DiscardDropsPeekedBytes) {
  SpscByteQueue queue(64);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  ASSERT_TRUE(queue.try_write(data.data(), data.size()));
  queue.discard(2);
  std::vector<std::uint8_t> out(2);
  ASSERT_TRUE(queue.try_read(out.data(), out.size()));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{3, 4}));
}

TEST(SpscQueueTest, WrapsAroundTheRing) {
  SpscByteQueue queue(64);
  std::uint8_t counter = 0;
  // Push/pop in lockstep far past the capacity: indices wrap many times.
  for (int round = 0; round < 1000; ++round) {
    std::array<std::uint8_t, 7> chunk;
    for (auto& byte : chunk) byte = counter++;
    ASSERT_TRUE(queue.try_write(chunk.data(), chunk.size()));
    std::array<std::uint8_t, 7> out;
    ASSERT_TRUE(queue.try_read(out.data(), out.size()));
    EXPECT_EQ(out, chunk);
  }
  EXPECT_EQ(queue.readable(), 0u);
}

TEST(SpscQueueTest, TwoThreadTortureRandomizedBatches) {
  // One producer streams a known byte sequence in randomized batch
  // sizes; one consumer drains it in its own randomized batch sizes
  // (mixing peeks, reads and discard-after-peek). The received stream
  // must be byte-identical — any torn frame, lost byte or reordering is
  // a failed EXPECT; any missing synchronization is a TSan report.
  constexpr std::size_t kTotal = 1 << 18;
  SpscByteQueue queue(256);

  std::vector<std::uint8_t> sent(kTotal);
  std::iota(sent.begin(), sent.end(), 0);  // wraps mod 256: fine

  std::thread producer([&] {
    support::Rng rng(101);
    std::size_t written = 0;
    Backoff backoff;
    while (written < kTotal) {
      const std::size_t batch =
          std::min<std::size_t>(1 + rng() % 96, kTotal - written);
      if (queue.try_write(sent.data() + written, batch)) {
        written += batch;
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
  });

  std::vector<std::uint8_t> received;
  received.reserve(kTotal);
  support::Rng rng(202);
  std::vector<std::uint8_t> chunk(96);
  Backoff backoff;
  while (received.size() < kTotal) {
    const std::size_t batch = std::min<std::size_t>(
        1 + rng() % 96, kTotal - received.size());
    const bool use_peek = (rng() & 1) == 0;
    if (use_peek) {
      if (queue.try_peek(chunk.data(), batch)) {
        queue.discard(batch);
        received.insert(received.end(), chunk.begin(),
                        chunk.begin() + static_cast<std::ptrdiff_t>(batch));
        backoff.reset();
        continue;
      }
    } else if (queue.try_read(chunk.data(), batch)) {
      received.insert(received.end(), chunk.begin(),
                      chunk.begin() + static_cast<std::ptrdiff_t>(batch));
      backoff.reset();
      continue;
    }
    backoff.pause();
  }
  producer.join();
  EXPECT_EQ(received, sent);
  EXPECT_EQ(queue.readable(), 0u);
}

}  // namespace
}  // namespace hring::runtime
