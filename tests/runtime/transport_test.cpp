// The Transport seam: all four backends satisfy the concept, and the
// uniform vocabulary behaves identically (FIFO, peek-stability, depth)
// across them — the property that lets one harness drive the simulator
// engines and the concurrent runtimes interchangeably.
#include "sim/transport.hpp"

#include <gtest/gtest.h>

#include "runtime/channel.hpp"
#include "runtime/inhost/inhost_links.hpp"
#include "sim/batch_link.hpp"

namespace hring {
namespace {

using runtime::ChannelRing;
using runtime::InHostLinks;
using sim::Label;
using sim::LinkArray;
using sim::LinkPlane;
using sim::Message;
using sim::Transport;

// The seam is a concept, not a base class: conformance is compile-time.
static_assert(Transport<LinkArray>);
static_assert(Transport<LinkPlane>);
static_assert(Transport<ChannelRing>);
static_assert(Transport<InHostLinks>);

/// Drives the uniform vocabulary over any backend bound to >= 2 ports.
template <class T>
void exercise_transport(T& transport) {
  ASSERT_GE(transport.ports(), 2u);
  EXPECT_EQ(transport.depth(0), 0u);
  EXPECT_EQ(transport.peek(0), nullptr);
  EXPECT_FALSE(transport.try_recv(0).has_value());

  // FIFO per port, ports independent.
  transport.send(0, Message::token(Label(1)));
  transport.send(0, Message::token(Label(2)));
  transport.send(1, Message::finish());
  EXPECT_EQ(transport.depth(0), 2u);
  EXPECT_EQ(transport.depth(1), 1u);

  // Peek exposes the head without consuming; repeated peeks agree.
  const Message* head = transport.peek(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, Message::token(Label(1)));
  const Message* again = transport.peek(0);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(*again, Message::token(Label(1)));
  EXPECT_EQ(transport.depth(0), 2u);

  // try_recv removes in send order.
  auto first = transport.try_recv(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, Message::token(Label(1)));
  auto second = transport.try_recv(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, Message::token(Label(2)));
  EXPECT_FALSE(transport.try_recv(0).has_value());
  EXPECT_EQ(transport.depth(0), 0u);

  // Port 1 was untouched by port 0 traffic.
  auto other = transport.try_recv(1);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(*other, Message::finish());
}

TEST(TransportTest, LinkArrayBehavior) {
  LinkArray links;
  links.reset(3);
  exercise_transport(links);
}

TEST(TransportTest, LinkPlaneBehavior) {
  LinkPlane links;
  links.reset(3);
  exercise_transport(links);
}

TEST(TransportTest, ChannelRingBehavior) {
  ChannelRing links;
  links.reset(3);
  exercise_transport(links);
}

TEST(TransportTest, InHostLinksBehavior) {
  InHostLinks links;
  links.reset(3, /*label_bits=*/8, /*capacity_bytes=*/1024);
  exercise_transport(links);
}

TEST(TransportTest, LinkArrayKeepsDirectLinkAccess) {
  // The scalar engines keep addressing individual Links (delivery times,
  // high-water marks) through operator[]; the Transport face is a view
  // over the same queues, not a copy.
  LinkArray links;
  links.reset(2);
  links.send(0, Message::token(Label(5)));
  EXPECT_EQ(links[0].size(), 1u);
  EXPECT_EQ(links[0].high_water(), 1u);
  const Message popped = links[0].pop();
  EXPECT_EQ(popped, Message::token(Label(5)));
  EXPECT_EQ(links.depth(0), 0u);
}

}  // namespace
}  // namespace hring
