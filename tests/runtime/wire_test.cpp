// Wire-frame codec: round-trips plus mutation attacks. The decoder is
// the runtime's trust boundary — every byte pattern must either decode
// to a canonical message or be refused with a reason; no input may crash
// it or decode to a message the encoder could not have produced.
#include "runtime/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace hring::runtime::wire {
namespace {

using sim::Label;
using sim::Message;
using sim::MsgKind;

constexpr std::size_t kLabelBits = 16;

[[nodiscard]] DecodeError decode_frame(const Frame& frame,
                                       std::size_t label_bits,
                                       Message* out = nullptr) {
  Message msg;
  std::uint64_t ts = 0;
  const DecodeError err = decode(frame, label_bits, msg, ts);
  if (out != nullptr && err == DecodeError::kOk) *out = msg;
  return err;
}

TEST(WireTest, RoundTripsEveryKind) {
  const std::vector<Message> messages = {
      Message::token(Label(7)),        Message::finish(),
      Message::phase_shift(Label(3)),  Message::finish_label(Label(65535)),
      Message::probe_one(Label(1)),    Message::probe_two(Label(42)),
  };
  for (const Message& msg : messages) {
    Frame frame;
    encode(msg, /*send_ts_ns=*/123456789, frame);
    Message decoded;
    std::uint64_t ts = 0;
    ASSERT_EQ(decode(frame, kLabelBits, decoded, ts), DecodeError::kOk)
        << to_string(msg);
    EXPECT_EQ(decoded, msg);
    EXPECT_EQ(ts, 123456789u);
  }
}

TEST(WireTest, TimestampSurvivesFullRange) {
  Frame frame;
  encode(Message::token(Label(1)), ~std::uint64_t{0}, frame);
  Message msg;
  std::uint64_t ts = 0;
  ASSERT_EQ(decode(frame, kLabelBits, msg, ts), DecodeError::kOk);
  EXPECT_EQ(ts, ~std::uint64_t{0});
}

TEST(WireTest, TruncatedFramesAreRefused) {
  Frame frame;
  encode(Message::token(Label(9)), 0, frame);
  Message msg;
  std::uint64_t ts = 0;
  for (std::size_t len = 0; len < kFrameBytes; ++len) {
    EXPECT_EQ(decode(std::span(frame.data(), len), kLabelBits, msg, ts),
              DecodeError::kShortFrame)
        << "length " << len;
  }
}

TEST(WireTest, OutOfRangeTagsAreRefused) {
  Frame frame;
  encode(Message::token(Label(1)), 0, frame);
  for (std::uint32_t tag = static_cast<std::uint32_t>(sim::kNumMsgKinds);
       tag <= 0xFF; ++tag) {
    frame[0] = static_cast<std::uint8_t>(tag);
    EXPECT_EQ(decode_frame(frame, kLabelBits), DecodeError::kBadTag)
        << "tag " << tag;
  }
}

TEST(WireTest, FinishWithPayloadIsNonCanonical) {
  // ⟨FINISH⟩ carries no label; a frame claiming otherwise was corrupted
  // (or forged) and must not decode to a valid message.
  Frame frame;
  encode(Message::finish(), 0, frame);
  frame[3] = 0x40;  // flip a payload byte
  EXPECT_EQ(decode_frame(frame, kLabelBits), DecodeError::kNonCanonical);
}

TEST(WireTest, OverWideLabelsAreRefused) {
  // §II messages carry labels of the ring; a label needing more than the
  // ring's b bits is the [message-width] violation at the byte level.
  Frame frame;
  encode(Message::token(Label(1)), 0, frame);
  frame[3] = 0x01;  // label bit 16: just past kLabelBits
  EXPECT_EQ(decode_frame(frame, kLabelBits), DecodeError::kLabelOverflow);
  // The same label is fine on a ring with wider labels.
  EXPECT_EQ(decode_frame(frame, 24), DecodeError::kOk);
  // label_bits = 64 accepts any payload value.
  Frame wide;
  encode(Message::token(Label(~std::uint64_t{0})), 0, wide);
  EXPECT_EQ(decode_frame(wide, 64), DecodeError::kOk);
}

TEST(WireTest, RandomFramesNeverDecodeToNonCanonicalMessages) {
  // Fuzz the whole 17-byte space: whatever the decoder accepts must
  // re-encode to exactly the bytes' semantic content (tag + label + ts),
  // i.e. acceptance implies canonical representability.
  support::Rng rng(0xF00D);
  std::uint64_t accepted = 0;
  for (int i = 0; i < 40000; ++i) {
    Frame frame;
    for (auto& byte : frame) {
      byte = static_cast<std::uint8_t>(rng() & 0xFF);
    }
    if (i % 2 == 1) {
      // Biased half: zero the label bytes past kLabelBits. Uniform
      // 17-byte noise passes the label-width filter with probability
      // 2^-48 — this half makes the acceptance path actually run.
      for (std::size_t b = 3; b <= 8; ++b) frame[b] = 0;
    }
    Message msg;
    std::uint64_t ts = 0;
    const DecodeError err = decode(frame, kLabelBits, msg, ts);
    if (err != DecodeError::kOk) continue;
    ++accepted;
    Frame reencoded;
    encode(msg, ts, reencoded);
    EXPECT_EQ(reencoded, frame) << "round " << i;
  }
  // The biased half accepts whenever the tag byte lands on a payload
  // kind (~2% of 20000 rounds) — acceptance must have been exercised.
  EXPECT_GT(accepted, 0u);
}

TEST(WireTest, DecodeErrorNamesAreStable) {
  EXPECT_STREQ(decode_error_name(DecodeError::kOk), "ok");
  EXPECT_STREQ(decode_error_name(DecodeError::kShortFrame), "short-frame");
  EXPECT_STREQ(decode_error_name(DecodeError::kBadTag), "bad-tag");
  EXPECT_STREQ(decode_error_name(DecodeError::kNonCanonical),
               "non-canonical");
  EXPECT_STREQ(decode_error_name(DecodeError::kLabelOverflow),
               "label-overflow");
}

}  // namespace
}  // namespace hring::runtime::wire
