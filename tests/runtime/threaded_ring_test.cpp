// The algorithms on real OS threads: every execution of the threaded
// runtime is some fair asynchronous execution of §II, so A_k/B_k must
// elect the true leader there too — with genuine nondeterminism supplied
// by the OS scheduler instead of a simulated daemon.
#include "runtime/threaded_ring.hpp"

#include <gtest/gtest.h>

#include "election/algorithm.hpp"
#include "ring/classes.hpp"
#include "ring/generator.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::runtime {
namespace {

using election::AlgorithmId;

void expect_clean_election(const ring::LabeledRing& ring,
                           const ThreadedResult& result,
                           std::optional<ring::ProcessIndex> expected) {
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated) << ring.to_string();
  const auto leader = result.leader_pid();
  ASSERT_TRUE(leader.has_value()) << ring.to_string();
  if (expected.has_value()) {
    EXPECT_EQ(*leader, *expected) << ring.to_string();
  }
  const auto leader_label = ring.label(*leader);
  for (const auto& p : result.processes) {
    EXPECT_TRUE(p.done) << "p" << p.pid;
    EXPECT_TRUE(p.halted) << "p" << p.pid;
    ASSERT_TRUE(p.leader.has_value()) << "p" << p.pid;
    EXPECT_EQ(*p.leader, leader_label) << "p" << p.pid;
  }
  EXPECT_EQ(result.messages_sent, result.messages_received);
}

TEST(ThreadedRingTest, AkElectsOnRemark122) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 2});
  const auto result = run_threaded(
      ring, election::make_factory({AlgorithmId::kAk, 2, false}));
  expect_clean_election(ring, result, ring.true_leader());
}

TEST(ThreadedRingTest, BkElectsOnFigure1Ring) {
  const auto ring =
      ring::LabeledRing::from_values({1, 3, 1, 3, 2, 2, 1, 2});
  const auto result = run_threaded(
      ring, election::make_factory({AlgorithmId::kBk, 3, false}));
  expect_clean_election(ring, result, 0);
}

TEST(ThreadedRingTest, RandomRingsRepeatedRuns) {
  // Every OS schedule must produce the same winner: repeat runs on the
  // same rings and cross-check against the true leader.
  support::Rng rng(0x7412);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 3 + rng.below(10);
    const std::size_t k = 1 + rng.below(3);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ASSERT_TRUE(ring.has_value());
    for (const auto algo : {AlgorithmId::kAk, AlgorithmId::kBk}) {
      for (int run = 0; run < 3; ++run) {
        const auto result = run_threaded(
            *ring, election::make_factory({algo, k, false}));
        expect_clean_election(*ring, result, ring->true_leader());
      }
    }
  }
}

TEST(ThreadedRingTest, BaselinesElectOnDistinctRings) {
  support::Rng rng(0x7413);
  const auto ring = ring::distinct_ring(16, rng);
  for (const auto algo :
       {AlgorithmId::kChangRoberts, AlgorithmId::kLeLann,
        AlgorithmId::kPeterson}) {
    const auto result =
        run_threaded(ring, election::make_factory({algo, 1, false}));
    expect_clean_election(ring, result, std::nullopt);
  }
}

TEST(ThreadedRingTest, WiderRing) {
  support::Rng rng(0x7414);
  const auto ring = ring::random_asymmetric_ring(32, 2, 18, rng);
  ASSERT_TRUE(ring.has_value());
  const auto result = run_threaded(
      *ring, election::make_factory({AlgorithmId::kAk, 2, false}));
  expect_clean_election(*ring, result, ring->true_leader());
}

TEST(ThreadedRingTest, DeadlockDetectedByWatchdog) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  ThreadedConfig config;
  config.quiet_period_ms = 50;
  const auto result = run_threaded(
      ring, sim::testing::DeafSenderProcess::make(), config);
  EXPECT_EQ(result.outcome, sim::Outcome::kDeadlock);
  EXPECT_EQ(result.messages_sent, 3u);
  EXPECT_EQ(result.messages_received, 0u);
}

TEST(ThreadedRingTest, BudgetGuardsAgainstLivelock) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  ThreadedConfig config;
  config.max_actions_per_process = 100;
  config.quiet_period_ms = 50;
  const auto result = run_threaded(
      ring, sim::testing::ForeverForwardProcess::make(), config);
  EXPECT_EQ(result.outcome, sim::Outcome::kBudgetExhausted);
}

TEST(ThreadedRingTest, TrivialElectionTerminates) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3, 4});
  const auto result =
      run_threaded(ring, sim::testing::TrivialElectProcess::make());
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(), std::optional<sim::ProcessId>(0));
  EXPECT_EQ(result.messages_sent, 4u);
}

}  // namespace
}  // namespace hring::runtime
