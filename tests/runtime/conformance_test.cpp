// Simulator ↔ in-host runtime conformance (runtime/conformance.hpp).
//
// The acceptance matrix from the roadmap: {A_k k=1..3, Chang-Roberts,
// B_k} × n ∈ {2..8}, each cell certified by the three-stage harness —
// reference simulation, real threaded run, linearized replay through the
// full spec auditor. A final (sanitizer-skipped) case scales one cell to
// n = 1000 workers and checks the Theorem 2 space budget holds there too.
#include "runtime/conformance.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/spec_audit.hpp"
#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "ring/labeled_ring.hpp"
#include "support/rng.hpp"

// Sanitizer builds slow each thread down enough that thousand-worker
// rings stop being a smoke test; the CI runtime-smoke job covers the
// sanitized n=1000 path through the CLI instead.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HRING_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HRING_TEST_SANITIZED 1
#endif
#endif

namespace hring::runtime {
namespace {

using election::AlgorithmConfig;
using election::AlgorithmId;

struct ConformanceCase {
  AlgorithmId id;
  std::size_t k;
};

class ConformanceMatrixTest
    : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(ConformanceMatrixTest, SimulatorAndRuntimeAgree) {
  const ConformanceCase param = GetParam();
  support::Rng rng(0x5EED5);
  for (std::size_t n = 2; n <= 8; ++n) {
    // Distinct labels: the ring is in K_1 ⊆ K_k, so one family serves
    // every algorithm in the matrix.
    const auto ring = ring::distinct_ring(n, rng);
    const auto report = check_conformance(
        ring, AlgorithmConfig{param.id, param.k, false});
    EXPECT_TRUE(report.ok())
        << algorithm_name(param.id) << " k=" << param.k << " n=" << n
        << ": " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AcceptanceMatrix, ConformanceMatrixTest,
    ::testing::Values(ConformanceCase{AlgorithmId::kAk, 1},
                      ConformanceCase{AlgorithmId::kAk, 2},
                      ConformanceCase{AlgorithmId::kAk, 3},
                      ConformanceCase{AlgorithmId::kChangRoberts, 1},
                      ConformanceCase{AlgorithmId::kBk, 2}),
    [](const ::testing::TestParamInfo<ConformanceCase>& param_info) {
      return std::string(algorithm_name(param_info.param.id)) + "_k" +
             std::to_string(param_info.param.k);
    });

// -- The n = 1000 scale cell ------------------------------------------------
// Full three-stage conformance at 1000 workers uses Chang-Roberts: its
// O(n log n) expected messages keep the strict spec audit (which hashes
// every process state on every firing) tractable. The paper algorithms
// at n = 1000 perform ~2.5M firings — their Theorem 2/4 budgets are
// checked directly against the real run below instead, since a 2.5M-step
// audited replay is hours of single-core work.

TEST(ConformanceScaleTest, ThousandWorkerRingConformsEndToEnd) {
#ifdef HRING_TEST_SANITIZED
  GTEST_SKIP() << "n=1000 threads is too slow under sanitizers; the CI "
                  "runtime-smoke job covers the sanitized scale run";
#endif
  support::Rng rng(0xB16B00);
  const auto ring = ring::distinct_ring(1000, rng);
  const auto report = check_conformance(
      ring, AlgorithmConfig{AlgorithmId::kChangRoberts, 1, false});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.inhost.processes.size(), 1000u);
}

struct ScaleCase {
  AlgorithmId id;
  std::size_t k;
  std::size_t n;
};

class ScaleBudgetTest : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleBudgetTest, ScaleElectionStaysInPaperBudget) {
#ifdef HRING_TEST_SANITIZED
  GTEST_SKIP() << "n=1000 threads is too slow under sanitizers; the CI "
                  "runtime-smoke job covers the sanitized scale run";
#endif
  const ScaleCase param = GetParam();
  support::Rng rng(0xB16B01);
  const auto ring = ring::distinct_ring(param.n, rng);
  const auto result = run_inhost(
      ring, election::make_factory({param.id, param.k, false}));
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(),
            std::optional<sim::ProcessId>(ring.true_leader()));
  EXPECT_EQ(result.messages_sent, result.messages_received);
  EXPECT_EQ(result.wire_rejects, 0u);
  const auto bound = core::paper_space_bound_bits(
      {param.id, param.k, false}, ring.size(), ring.label_bits());
  ASSERT_TRUE(bound.has_value());
  EXPECT_LE(result.peak_space_bits, *bound);
}

// A_k runs at the full n = 1000: its firings spread across many
// simultaneously-enabled processes, so workers batch work per timeslice
// (~15 s single-core). B_k's ≈2n² firings happen one token hop at a
// time — at n = 1000 nearly every firing pays a futex wake plus a
// context switch among a thousand sleepers, minutes of wall clock — so
// its Theorem 4 budget is checked at n = 192 instead (same code paths,
// seconds not minutes).
INSTANTIATE_TEST_SUITE_P(
    PaperAlgorithms, ScaleBudgetTest,
    ::testing::Values(ScaleCase{AlgorithmId::kAk, 1, 1000},
                      ScaleCase{AlgorithmId::kBk, 2, 192}),
    [](const ::testing::TestParamInfo<ScaleCase>& param_info) {
      return std::string(algorithm_name(param_info.param.id)) + "_k" +
             std::to_string(param_info.param.k) + "_n" +
             std::to_string(param_info.param.n);
    });

TEST(ConformanceReportTest, SummaryNamesDivergences) {
  support::Rng rng(0xFACE);
  const auto ring = ring::distinct_ring(4, rng);
  const auto report = check_conformance(
      ring, AlgorithmConfig{AlgorithmId::kBk, 2, false});
  ASSERT_TRUE(report.ok()) << report.summary();
  EXPECT_NE(report.summary().find("conformant"), std::string::npos);
  EXPECT_NE(report.summary().find("audit=ok"), std::string::npos);

  // A doctored report renders as divergent.
  ConformanceReport broken = report;
  broken.divergences.push_back("[leader] synthetic divergence");
  EXPECT_FALSE(broken.ok());
  EXPECT_NE(broken.summary().find("DIVERGENT(1)"), std::string::npos);
}

}  // namespace
}  // namespace hring::runtime
