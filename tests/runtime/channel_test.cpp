#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hring::runtime {
namespace {

using sim::Label;

TEST(ChannelTest, StartsEmpty) {
  Channel channel;
  EXPECT_TRUE(channel.empty());
  EXPECT_EQ(channel.size(), 0u);
  EXPECT_FALSE(channel.peek().has_value());
}

TEST(ChannelTest, FifoOrder) {
  Channel channel;
  channel.push(Message::token(Label(1)));
  channel.push(Message::token(Label(2)));
  channel.push(Message::finish());
  ASSERT_TRUE(channel.peek().has_value());
  EXPECT_EQ(channel.peek()->label, Label(1));
  EXPECT_EQ(channel.pop().label, Label(1));
  EXPECT_EQ(channel.pop().label, Label(2));
  EXPECT_EQ(channel.pop().kind, sim::MsgKind::kFinish);
  EXPECT_TRUE(channel.empty());
}

TEST(ChannelTest, PeekDoesNotConsume) {
  Channel channel;
  channel.push(Message::token(Label(7)));
  EXPECT_EQ(channel.peek()->label, Label(7));
  EXPECT_EQ(channel.peek()->label, Label(7));
  EXPECT_EQ(channel.size(), 1u);
}

TEST(ChannelTest, WaitForChangeReturnsOnPush) {
  Channel channel;
  std::thread producer([&channel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    channel.push(Message::token(Label(9)));
  });
  const std::size_t size =
      channel.wait_for_change(0, [] { return false; });
  EXPECT_EQ(size, 1u);
  producer.join();
}

TEST(ChannelTest, WaitForChangeReturnsOnWakePredicate) {
  Channel channel;
  std::atomic<bool> stop{false};
  std::thread kicker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true);
    channel.kick();
  });
  channel.wait_for_change(0, [&] { return stop.load(); });
  kicker.join();
  EXPECT_TRUE(stop.load());
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel channel;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&channel, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel.push(Message::token(
            Label(static_cast<Label::rep_type>(t * kPerProducer + i))));
      }
    });
  }
  std::size_t received = 0;
  while (received < kPerProducer * kProducers) {
    if (channel.peek().has_value()) {
      channel.pop();
      ++received;
    } else {
      channel.wait_for_change(0, [] { return false; });
    }
  }
  for (auto& p : producers) p.join();
  EXPECT_TRUE(channel.empty());
}

}  // namespace
}  // namespace hring::runtime
