#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hring::runtime {
namespace {

using sim::Label;

TEST(ChannelTest, StartsEmpty) {
  Channel channel;
  EXPECT_TRUE(channel.empty());
  EXPECT_EQ(channel.size(), 0u);
  EXPECT_FALSE(channel.peek().has_value());
}

TEST(ChannelTest, FifoOrder) {
  Channel channel;
  channel.push(Message::token(Label(1)));
  channel.push(Message::token(Label(2)));
  channel.push(Message::finish());
  ASSERT_TRUE(channel.peek().has_value());
  EXPECT_EQ(channel.peek()->label, Label(1));
  EXPECT_EQ(channel.pop().label, Label(1));
  EXPECT_EQ(channel.pop().label, Label(2));
  EXPECT_EQ(channel.pop().kind, sim::MsgKind::kFinish);
  EXPECT_TRUE(channel.empty());
}

TEST(ChannelTest, PeekDoesNotConsume) {
  Channel channel;
  channel.push(Message::token(Label(7)));
  EXPECT_EQ(channel.peek()->label, Label(7));
  EXPECT_EQ(channel.peek()->label, Label(7));
  EXPECT_EQ(channel.size(), 1u);
}

TEST(ChannelTest, WaitForChangeReturnsOnPush) {
  Channel channel;
  std::thread producer([&channel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    channel.push(Message::token(Label(9)));
  });
  const std::size_t size =
      channel.wait_for_change(0, [] { return false; });
  EXPECT_EQ(size, 1u);
  producer.join();
}

TEST(ChannelTest, WaitForChangeReturnsOnWakePredicate) {
  Channel channel;
  std::atomic<bool> stop{false};
  std::thread kicker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true);
    channel.kick();
  });
  channel.wait_for_change(0, [&] { return stop.load(); });
  kicker.join();
  EXPECT_TRUE(stop.load());
}

TEST(ChannelTest, ZeroCapacityViolatesPrecondition) {
  // Capacity is an explicit policy now; a zero-capacity channel could
  // never deliver anything and must fail construction loudly.
  EXPECT_DEATH(Channel(ChannelConfig{.capacity = 0}), "precondition");
}

TEST(ChannelTest, FailPolicyRefusesWhenFull) {
  Channel channel(
      ChannelConfig{.capacity = 2, .policy = Backpressure::kFail});
  EXPECT_TRUE(channel.push(Message::token(Label(1))));
  EXPECT_TRUE(channel.push(Message::token(Label(2))));
  EXPECT_FALSE(channel.push(Message::token(Label(3))));  // full: refused
  EXPECT_EQ(channel.size(), 2u);
  EXPECT_EQ(channel.pop().label, Label(1));
  EXPECT_TRUE(channel.push(Message::token(Label(4))));  // room again
  EXPECT_EQ(channel.pop().label, Label(2));
  EXPECT_EQ(channel.pop().label, Label(4));
}

TEST(ChannelTest, BlockPolicyParksProducerUntilConsumerDrains) {
  Channel channel(
      ChannelConfig{.capacity = 1, .policy = Backpressure::kBlock});
  ASSERT_TRUE(channel.push(Message::token(Label(1))));
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    // Full channel: this blocks until the consumer pops.
    EXPECT_TRUE(channel.push(Message::token(Label(2))));
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_done.load());  // still parked on the full channel
  EXPECT_EQ(channel.pop().label, Label(1));
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(channel.pop().label, Label(2));
}

TEST(ChannelTest, BlockedPushCanceledByPredicate) {
  Channel channel(
      ChannelConfig{.capacity = 1, .policy = Backpressure::kBlock});
  ASSERT_TRUE(channel.push(Message::token(Label(1))));
  std::atomic<bool> cancel{false};
  std::thread producer([&] {
    // The runtime's shutdown path: a parked producer must observe the
    // cancel flag once kicked and give up without enqueuing.
    EXPECT_FALSE(channel.push(Message::token(Label(2)), [&] {
      return cancel.load(std::memory_order_relaxed);
    }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true, std::memory_order_relaxed);
  channel.kick();
  producer.join();
  EXPECT_EQ(channel.size(), 1u);  // the canceled message never arrived
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel channel;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&channel, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel.push(Message::token(
            Label(static_cast<Label::rep_type>(t * kPerProducer + i))));
      }
    });
  }
  std::size_t received = 0;
  while (received < kPerProducer * kProducers) {
    if (channel.peek().has_value()) {
      channel.pop();
      ++received;
    } else {
      channel.wait_for_change(0, [] { return false; });
    }
  }
  for (auto& p : producers) p.join();
  EXPECT_TRUE(channel.empty());
}

}  // namespace
}  // namespace hring::runtime
