// Flight recorder + stall forensics (telemetry/flight_recorder.hpp,
// runtime/inhost/forensics.hpp).
//
// The FlightRing unit tests pin the overwriting semantics; the forensic
// tests run real elections with the recorder attached — including the
// injected-stall case that wedges one worker (it never beats) and asserts
// the watchdog's dump names exactly that pid while every healthy thread's
// last recorded event is a park.
#include "runtime/inhost/forensics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "ring/labeled_ring.hpp"
#include "runtime/conformance.hpp"
#include "runtime/inhost/inhost_ring.hpp"
#include "support/rng.hpp"
#include "telemetry/flight_recorder.hpp"

// Sanitizer builds slow each thread down enough that the thousand-worker
// overhead measurement stops meaning anything; the default-build suite
// and the CI runtime-smoke job cover it.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HRING_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HRING_TEST_SANITIZED 1
#endif
#endif

namespace hring::runtime {
namespace {

using election::AlgorithmConfig;
using election::AlgorithmId;
using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::FlightRecorder;
using telemetry::FlightRing;

// -- A minimal JSON acceptor --------------------------------------------------
// Enough of RFC 8259 to assert "the dump is valid JSON" without a
// dependency: strings with escapes, numbers, literals, arrays, objects.
class JsonAcceptor {
 public:
  explicit JsonAcceptor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++at_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  [[nodiscard]] bool array() {
    ++at_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  [[nodiscard]] bool string() {
    if (!eat('"')) return false;
    while (at_ < text_.size() && text_[at_] != '"') {
      if (text_[at_] == '\\') {
        ++at_;
        if (at_ >= text_.size()) return false;
      }
      ++at_;
    }
    return eat('"');
  }

  [[nodiscard]] bool number() {
    const std::size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    return at_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  bool eat(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\n' || text_[at_] == '\t' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

[[nodiscard]] bool is_valid_json(const std::string& text) {
  return JsonAcceptor(text).valid();
}

// -- FlightRing ---------------------------------------------------------------

TEST(FlightRingTest, RecordsAndSnapshotsInOrder) {
  FlightRing ring;
  ring.reset(16);
  ring.record(FlightEventKind::kJoin, 7);
  ring.record(FlightEventKind::kStart, 0);
  ring.record(FlightEventKind::kFire, 42);
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kJoin);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kStart);
  EXPECT_EQ(events[2].kind, FlightEventKind::kFire);
  EXPECT_EQ(events[2].arg, 42u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  EXPECT_EQ(ring.recorded(), 3u);
}

TEST(FlightRingTest, OverwritesOldestKeepingTheNewest) {
  FlightRing ring;
  ring.reset(16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ring.record(FlightEventKind::kBeat, i);
  }
  EXPECT_EQ(ring.recorded(), 40u);
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 16u);  // capacity-bounded
  // The retained window is the last 16 records: args 24..39.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 24u + i);
  }
}

TEST(FlightRingTest, CapacityRoundsUpToPowerOfTwoMinimumSixteen) {
  FlightRing ring;
  ring.reset(1);
  EXPECT_EQ(ring.capacity(), 16u);
  ring.reset(17);
  EXPECT_EQ(ring.capacity(), 32u);
  ring.reset(256);
  EXPECT_EQ(ring.capacity(), 256u);
}

TEST(FlightRingTest, ArgsAreTruncatedTo56Bits) {
  FlightRing ring;
  ring.reset(16);
  ring.record(FlightEventKind::kSend, ~std::uint64_t{0});
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kSend);
  EXPECT_EQ(events[0].arg, (std::uint64_t{1} << 56) - 1);
}

TEST(FlightRecorderTest, DetachedUntilResetAndDetachableAgain) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.attached());
  recorder.reset(3, 64);
  EXPECT_TRUE(recorder.attached());
  EXPECT_EQ(recorder.threads(), 3u);
  recorder.ring(2).record(FlightEventKind::kJoin, 2);
  EXPECT_EQ(recorder.ring(2).recorded(), 1u);
  EXPECT_EQ(recorder.ring(0).recorded(), 0u);
  recorder.detach();
  EXPECT_FALSE(recorder.attached());
}

// -- Forensic reports from real runs -----------------------------------------

[[nodiscard]] InHostResult run_with_flight(const ring::LabeledRing& ring,
                                           InHostConfig config) {
  config.flight_recorder = true;
  return run_inhost(
      ring,
      election::make_factory(
          AlgorithmConfig{AlgorithmId::kChangRoberts, 1, false}),
      config);
}

TEST(ForensicsTest, CompletedRunProducesReport) {
  support::Rng rng(0xF11);
  const auto ring = ring::distinct_ring(5, rng);
  const InHostResult result = run_with_flight(ring, {});
  EXPECT_EQ(result.outcome, sim::Outcome::kTerminated);
  ASSERT_TRUE(result.forensics.has_value());
  const ForensicReport& report = *result.forensics;
  EXPECT_EQ(report.verdict, "completed");
  EXPECT_TRUE(report.wedged.empty());
  ASSERT_EQ(report.threads.size(), 5u);
  for (const ForensicThread& thread : report.threads) {
    EXPECT_TRUE(thread.exited) << "p" << thread.pid;
    EXPECT_FALSE(thread.parked) << "p" << thread.pid;
    EXPECT_GT(thread.events_recorded, 0u);
    ASSERT_FALSE(thread.events.empty());
    EXPECT_EQ(thread.events.back().kind, FlightEventKind::kExit);
    EXPECT_EQ(thread.events.front().kind, FlightEventKind::kJoin);
  }
  // The run's counters made it into the snapshot.
  EXPECT_EQ(report.counters.actions, result.actions);
  EXPECT_EQ(report.counters.messages_sent, result.messages_sent);
}

/// Wedges `wedged_pid` after the election starts: the hook spins (with a
/// sleep) until shutdown, never beating, never firing — the "thread
/// stopped making progress outside park/exit" picture the forensics must
/// diagnose.
[[nodiscard]] InHostConfig stall_config(sim::ProcessId wedged_pid) {
  InHostConfig config;
  config.quiet_period_ms = 50;
  config.post_start_hook = [wedged_pid](sim::ProcessId pid,
                                        const std::function<bool()>& stop) {
    if (pid != wedged_pid) return;
    while (!stop()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  return config;
}

TEST(ForensicsTest, InjectedStallNamesWedgedPidAndParksEveryoneElse) {
  support::Rng rng(0xF12);
  const auto ring = ring::distinct_ring(4, rng);
  const sim::ProcessId wedged = 2;
  const InHostResult result = run_with_flight(ring, stall_config(wedged));
  EXPECT_EQ(result.outcome, sim::Outcome::kDeadlock);
  ASSERT_TRUE(result.forensics.has_value());
  const ForensicReport& report = *result.forensics;
  EXPECT_EQ(report.verdict, "stall");
  ASSERT_EQ(report.wedged.size(), 1u);
  EXPECT_EQ(report.wedged[0], wedged);
  ASSERT_EQ(report.threads.size(), 4u);
  for (const ForensicThread& thread : report.threads) {
    if (thread.pid == wedged) {
      // The wedged worker recorded its bootstrap and then went silent
      // inside the hook: no beats, no park, no exit.
      EXPECT_FALSE(thread.parked);
      EXPECT_FALSE(thread.exited);
      EXPECT_EQ(thread.beats, 0u);
      ASSERT_FALSE(thread.events.empty());
      EXPECT_EQ(thread.events.back().kind, FlightEventKind::kStart);
    } else {
      // Every other thread's last event is a park: alive, idle, waiting
      // on a doorbell that never rings.
      EXPECT_TRUE(thread.parked) << "p" << thread.pid;
      ASSERT_FALSE(thread.events.empty());
      EXPECT_EQ(thread.events.back().kind, FlightEventKind::kPark)
          << "p" << thread.pid;
      EXPECT_GT(thread.beats, 0u) << "p" << thread.pid;
    }
  }
  EXPECT_NE(report.summary().find("p2 wedged"), std::string::npos)
      << report.summary();
}

TEST(ForensicsTest, StallDumpIsValidJsonAndNamesTheWedgedPid) {
  support::Rng rng(0xF13);
  const auto ring = ring::distinct_ring(4, rng);
  const InHostResult result = run_with_flight(ring, stall_config(1));
  ASSERT_TRUE(result.forensics.has_value());
  std::ostringstream out;
  write_forensics_json(out, *result.forensics);
  const std::string dump = out.str();
  EXPECT_TRUE(is_valid_json(dump)) << dump.substr(0, 400);
  EXPECT_NE(dump.find("\"schema\":\"hring-forensics/1\""), std::string::npos);
  EXPECT_NE(dump.find("\"verdict\":\"stall\""), std::string::npos);
  EXPECT_NE(dump.find("\"wedged\":[1]"), std::string::npos);
  EXPECT_NE(dump.find("\"last_event\":\"park\""), std::string::npos);
}

TEST(ForensicsTest, FlightTraceIsValidTraceEventJson) {
  support::Rng rng(0xF14);
  const auto ring = ring::distinct_ring(4, rng);
  const InHostResult result = run_with_flight(ring, stall_config(3));
  ASSERT_TRUE(result.forensics.has_value());
  std::ostringstream out;
  write_flight_trace_json(out, *result.forensics);
  const std::string trace = out.str();
  EXPECT_TRUE(is_valid_json(trace)) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // The stalled threads render as parked spans running to the collection
  // edge, and the wedged track is labeled as such.
  EXPECT_NE(trace.find("\"parked\""), std::string::npos);
  EXPECT_NE(trace.find("p3 [WEDGED]"), std::string::npos);
  // Message flows: every flow start has the same id vocabulary as its
  // finish ("<port>:<send_ts_ns>").
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ForensicsTest, CompletedRunTraceMatchesSendAndRecvFlows) {
  support::Rng rng(0xF15);
  const auto ring = ring::distinct_ring(5, rng);
  const InHostResult result = run_with_flight(ring, {});
  ASSERT_TRUE(result.forensics.has_value());
  // Collect flow ids per side from the report itself: every recv's
  // (in-port, send_ts) must have been sent as (out-port, send_ts) by its
  // ring predecessor.
  const std::size_t n = result.forensics->threads.size();
  std::vector<std::string> sends;
  std::vector<std::string> recvs;
  for (const ForensicThread& thread : result.forensics->threads) {
    for (const FlightEvent& event : thread.events) {
      if (event.kind == FlightEventKind::kSend) {
        sends.push_back(std::to_string(thread.pid) + ":" +
                        std::to_string(event.arg));
      } else if (event.kind == FlightEventKind::kRecv) {
        recvs.push_back(std::to_string((thread.pid + n - 1) % n) + ":" +
                        std::to_string(event.arg));
      }
    }
  }
  ASSERT_FALSE(recvs.empty());
  for (const std::string& id : recvs) {
    EXPECT_NE(std::find(sends.begin(), sends.end(), id), sends.end())
        << "recv flow " << id << " has no matching send";
  }
}

TEST(ForensicsTest, ConformanceDivergenceWritesFlightDump) {
  support::Rng rng(0xF16);
  const auto ring = ring::distinct_ring(4, rng);
  const std::string dump_path =
      ::testing::TempDir() + "/hring_divergence_flight.json";
  ConformanceConfig config;
  config.inhost = stall_config(2);  // force a [runtime] divergence
  config.flight_out = dump_path;
  const ConformanceReport report = check_conformance(
      ring, AlgorithmConfig{AlgorithmId::kChangRoberts, 1, false}, config);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.inhost.forensics.has_value());
  EXPECT_EQ(report.inhost.forensics->verdict, "divergence");
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "conformance did not write " << dump_path;
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_TRUE(is_valid_json(contents.str()));
  EXPECT_NE(contents.str().find("\"verdict\":\"divergence\""),
            std::string::npos);
  EXPECT_NE(contents.str().find("\"wedged\":[2]"), std::string::npos);
}

TEST(ForensicsTest, DetachedRunProducesNoReport) {
  support::Rng rng(0xF17);
  const auto ring = ring::distinct_ring(4, rng);
  const InHostResult result = run_inhost(
      ring, election::make_factory(
                AlgorithmConfig{AlgorithmId::kChangRoberts, 1, false}));
  EXPECT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_FALSE(result.forensics.has_value());
}

// -- Recorder overhead (the 1.5× acceptance bound) ----------------------------

TEST(RecorderOverheadTest, AttachedWithinBoundOfDetachedAtScale) {
#ifdef HRING_TEST_SANITIZED
  GTEST_SKIP() << "n=1000 threads is too slow under sanitizers; the "
                  "default build asserts the recorder-overhead bound";
#endif
  support::Rng rng(0xF18);
  const auto ring = ring::distinct_ring(1000, rng);
  const auto factory = election::make_factory(
      AlgorithmConfig{AlgorithmId::kChangRoberts, 1, false});
  // Best-of-two per mode: one scheduler hiccup shouldn't fail the bound.
  const auto best_elapsed = [&](bool attach) {
    std::uint64_t best = ~std::uint64_t{0};
    for (int i = 0; i < 2; ++i) {
      InHostConfig config;
      config.flight_recorder = attach;
      const InHostResult result = run_inhost(ring, factory, config);
      EXPECT_EQ(result.outcome, sim::Outcome::kTerminated);
      best = std::min(best, result.elapsed_ns);
    }
    return best;
  };
  const std::uint64_t detached = best_elapsed(false);
  const std::uint64_t attached = best_elapsed(true);
  EXPECT_LT(static_cast<double>(attached),
            1.5 * static_cast<double>(detached))
      << "attached=" << attached << "ns detached=" << detached << "ns";
}

}  // namespace
}  // namespace hring::runtime
