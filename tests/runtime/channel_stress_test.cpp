// TSan-targeted stress tests for the threaded runtime (`ctest --preset
// tsan` races these under ThreadSanitizer; they also run in the plain
// suite). Channel is hammered from multiple producers against a
// peeking/popping consumer with concurrent kick/size traffic — every
// interleaving of mutex, condition variable and shutdown path gets
// exercised — and run_threaded is repeated at worker counts well above
// the simulator's usual ring sizes.
#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "runtime/threaded_ring.hpp"

namespace hring::runtime {
namespace {

using sim::Label;

TEST(ChannelStressTest, EmptyPopAbortsInsteadOfCorrupting) {
  // The §II consumer contract: pop only what you peeked. Breaking it must
  // fail the precondition loudly (it was silent UB before the check).
  EXPECT_DEATH(Channel().pop(), "precondition");
}

TEST(ChannelStressTest, MultiProducerPushVsPeekPopAndKick) {
  Channel channel;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&channel, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel.push(Message::token(
            Label(static_cast<Label::rep_type>(t * kPerProducer + i))));
      }
    });
  }
  // Antagonist: concurrent kick/size/empty/peek traffic on the same
  // channel — none of these may race with push or pop.
  std::thread antagonist([&channel, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      channel.kick();
      (void)channel.size();
      (void)channel.empty();
      (void)channel.peek();
    }
  });

  std::size_t received = 0;
  while (received < kProducers * kPerProducer) {
    if (channel.peek().has_value()) {
      (void)channel.pop();
      ++received;
    } else {
      channel.wait_for_change(0, [] { return false; });
    }
  }
  done.store(true);
  for (auto& p : producers) p.join();
  antagonist.join();
  EXPECT_TRUE(channel.empty());
}

TEST(ChannelStressTest, ShutdownKickWakesParkedWaiter) {
  // The runtime's shutdown path: a worker parked in wait_for_change must
  // observe the flag flipped by another thread once kicked, with no
  // message traffic at all.
  for (int round = 0; round < 50; ++round) {
    Channel channel;
    std::atomic<bool> shutdown{false};
    std::thread waiter([&] {
      channel.wait_for_change(
          0, [&] { return shutdown.load(std::memory_order_relaxed); });
    });
    shutdown.store(true, std::memory_order_relaxed);
    channel.kick();
    waiter.join();
  }
}

TEST(ChannelStressTest, PushRacesShutdownKick) {
  // Worst-case shutdown: messages still arriving while the consumer is
  // being kicked awake. The waiter may return on either cause; the
  // channel must stay consistent throughout.
  for (int round = 0; round < 25; ++round) {
    Channel channel;
    std::atomic<bool> shutdown{false};
    std::thread producer([&channel] {
      for (int i = 0; i < 100; ++i) {
        channel.push(Message::token(Label(7)));
      }
    });
    std::thread kicker([&] {
      shutdown.store(true, std::memory_order_relaxed);
      channel.kick();
    });
    std::size_t drained = 0;
    while (drained < 100) {
      if (channel.peek().has_value()) {
        (void)channel.pop();
        ++drained;
      } else {
        channel.wait_for_change(0, [&] {
          return shutdown.load(std::memory_order_relaxed);
        });
      }
    }
    producer.join();
    kicker.join();
    EXPECT_TRUE(channel.empty());
  }
}

TEST(ChannelStressTest, RepeatedThreadedElectionsHighWorkerCount) {
  // 24 worker threads per run, repeated: far more concurrency than the
  // ring sizes the simulator tests use, on both algorithms. Every run
  // must terminate cleanly with the true leader.
  support::Rng rng(0x5EED);
  const auto ring = ring::random_asymmetric_ring(24, 2, 14, rng);
  ASSERT_TRUE(ring.has_value());
  const auto expected = ring->true_leader();
  for (int run = 0; run < 4; ++run) {
    const auto result = run_threaded(
        *ring,
        election::make_factory({election::AlgorithmId::kAk, 2, false}));
    ASSERT_EQ(result.outcome, sim::Outcome::kTerminated) << "run " << run;
    EXPECT_EQ(result.leader_pid(), std::optional<sim::ProcessId>(expected));
    EXPECT_EQ(result.messages_sent, result.messages_received);
  }
  for (int run = 0; run < 2; ++run) {
    const auto result = run_threaded(
        *ring,
        election::make_factory({election::AlgorithmId::kBk, 2, false}));
    ASSERT_EQ(result.outcome, sim::Outcome::kTerminated) << "run " << run;
    EXPECT_EQ(result.leader_pid(), std::optional<sim::ProcessId>(expected));
  }
}

}  // namespace
}  // namespace hring::runtime
