// In-host runtime: real threads, SPSC byte links, wire frames.
//
// Correctness here is the conformance harness's job
// (tests/runtime/conformance_test.cpp); these tests cover the runtime's
// own machinery — bootstrap, election results across all five
// algorithms at growing worker counts (the TSan stress matrix), budget
// and deadlock outcomes, telemetry, and the wire-path mutation tests
// that inject corrupted byte streams straight into the links.
#include "runtime/inhost/inhost_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "ring/labeled_ring.hpp"
#include "runtime/inhost/inhost_links.hpp"
#include "runtime/inhost/membership.hpp"
#include "runtime/wire.hpp"
#include "support/rng.hpp"

namespace hring::runtime {
namespace {

using election::AlgorithmConfig;
using election::AlgorithmId;
using sim::Label;
using sim::Message;

TEST(RingMembershipTest, BootstrapSequence) {
  RingMembership membership(3);
  EXPECT_FALSE(membership.all_joined());
  membership.join(0);
  membership.join(1);
  membership.join(2);
  EXPECT_TRUE(membership.all_joined());
  membership.set_next(0, 1);
  membership.set_next(1, 2);
  membership.set_next(2, 0);
  EXPECT_EQ(membership.next_of(0), 1u);
  EXPECT_EQ(membership.next_of(2), 0u);
  membership.start_election();
  EXPECT_TRUE(membership.await_start([] { return false; }));
  membership.beat(1);
  membership.beat(1);
  EXPECT_EQ(membership.beats(1), 2u);
  EXPECT_EQ(membership.beats(0), 0u);
}

TEST(RingMembershipTest, DoubleJoinViolatesPrecondition) {
  RingMembership membership(2);
  membership.join(0);
  EXPECT_DEATH(membership.join(0), "precondition");
}

TEST(InHostRingTest, ElectsTrueLeaderOnSmallRing) {
  const auto ring = ring::LabeledRing::from_values({3, 1, 4, 1, 5});
  const auto result =
      run_inhost(ring, election::make_factory({AlgorithmId::kAk, 2, false}));
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(),
            std::optional<sim::ProcessId>(ring.true_leader()));
  EXPECT_EQ(result.messages_sent, result.messages_received);
  EXPECT_EQ(result.wire_rejects, 0u);
  EXPECT_EQ(result.sends_abandoned, 0u);
  EXPECT_GT(result.actions, 0u);
  EXPECT_GT(result.peak_space_bits, 0u);
}

TEST(InHostRingTest, TraceIsSortedAndComplete) {
  const auto ring = ring::LabeledRing::from_values({2, 7, 1, 8});
  const auto result =
      run_inhost(ring, election::make_factory({AlgorithmId::kAk, 1, false}));
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  ASSERT_EQ(result.trace.size(), result.actions);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace[i - 1].seq, result.trace[i].seq) << "at " << i;
  }
  // Stamps are drawn from one counter starting at 0 with no other users:
  // a terminated run's stamps are exactly 0..actions-1.
  if (!result.trace.empty()) {
    EXPECT_EQ(result.trace.front().seq, 0u);
    EXPECT_EQ(result.trace.back().seq, result.actions - 1);
  }
}

TEST(InHostRingTest, RecordTraceOffLeavesTraceEmpty) {
  const auto ring = ring::LabeledRing::from_values({2, 7, 1, 8});
  InHostConfig config;
  config.record_trace = false;
  const auto result = run_inhost(
      ring, election::make_factory({AlgorithmId::kChangRoberts, 1, false}),
      config);
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_TRUE(result.trace.empty());
}

TEST(InHostRingTest, LatencyTelemetryIsRecorded) {
  const auto ring = ring::LabeledRing::from_values({3, 1, 4, 1, 5});
  const auto result =
      run_inhost(ring, election::make_factory({AlgorithmId::kBk, 2, false}));
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  const auto* latency =
      result.metrics.find_histogram("inhost_message_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), result.messages_received);
  const auto* rejects = result.metrics.find_counter("inhost_wire_rejects");
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->value, 0u);
}

TEST(InHostRingTest, BudgetExhaustionIsReported) {
  const auto ring = ring::LabeledRing::from_values({3, 1, 4, 1, 5});
  InHostConfig config;
  config.max_actions_per_process = 2;  // far below what A_2 needs
  const auto result = run_inhost(
      ring, election::make_factory({AlgorithmId::kAk, 2, false}), config);
  EXPECT_EQ(result.outcome, sim::Outcome::kBudgetExhausted);
}

// -- TSan stress matrix ----------------------------------------------------
// All five algorithms at ring sizes from 3 to 64 workers. Under the tsan
// preset this is the runtime's main race hunt: bootstrap, SPSC traffic,
// backpressure, shutdown — every pairing gets exercised at every size.

struct StressCase {
  AlgorithmId id;
  std::size_t k;
};

class InHostStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(InHostStressTest, ElectionsAcrossRingSizes) {
  const StressCase param = GetParam();
  support::Rng rng(0xC0FFEE);
  for (const std::size_t n : {3u, 8u, 24u, 64u}) {
    // Distinct labels: K_1 ⊆ K_k, so one ring family serves every
    // algorithm, baselines included.
    const auto ring = ring::distinct_ring(n, rng);
    const auto result = run_inhost(
        ring, election::make_factory({param.id, param.k, false}));
    ASSERT_EQ(result.outcome, sim::Outcome::kTerminated)
        << algorithm_name(param.id) << " n=" << n;
    ASSERT_TRUE(result.leader_pid().has_value())
        << algorithm_name(param.id) << " n=" << n;
    EXPECT_EQ(result.messages_sent, result.messages_received);
    EXPECT_EQ(result.wire_rejects, 0u);
    if (election::elects_true_leader(param.id)) {
      EXPECT_EQ(result.leader_pid(),
                std::optional<sim::ProcessId>(ring.true_leader()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, InHostStressTest,
    ::testing::Values(StressCase{AlgorithmId::kAk, 1},
                      StressCase{AlgorithmId::kAk, 3},
                      StressCase{AlgorithmId::kBk, 2},
                      StressCase{AlgorithmId::kChangRoberts, 1},
                      StressCase{AlgorithmId::kLeLann, 1},
                      StressCase{AlgorithmId::kPeterson, 1}),
    [](const ::testing::TestParamInfo<StressCase>& param_info) {
      return std::string(algorithm_name(param_info.param.id)) + "_k" +
             std::to_string(param_info.param.k);
    });

// -- Wire-path mutation tests ----------------------------------------------
// PR 4 hardened the codecs against corrupted streams; these tests turn
// that into runtime behavior: garbage injected into a live link must be
// rejected and contained — the election still terminates correctly.

TEST(InHostLinksMutationTest, CorruptFramesAreDroppedAndCounted) {
  InHostLinks links;
  links.reset(2, /*label_bits=*/8, /*capacity_bytes=*/1024);

  // A valid frame sandwiched between two corrupt ones.
  wire::Frame bad_tag;
  wire::encode(Message::token(Label(1)), 0, bad_tag);
  bad_tag[0] = 0xEE;  // out-of-range kind
  links.poke_raw(0, bad_tag.data(), bad_tag.size());
  links.send(0, Message::token(Label(5)));
  wire::Frame overflow;
  wire::encode(Message::token(Label(3)), 0, overflow);
  overflow[2] = 0xFF;  // label bits far past label_bits=8
  links.poke_raw(0, overflow.data(), overflow.size());

  // peek skips the leading bad frame and serves the valid one.
  const Message* head = links.peek(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, Message::token(Label(5)));
  EXPECT_EQ(links.rejects(0), 1u);
  EXPECT_EQ(links.try_recv(0), std::optional<Message>(Message::token(Label(5))));
  // The trailing bad frame is consumed and rejected by the next scan.
  EXPECT_EQ(links.peek(0), nullptr);
  EXPECT_EQ(links.rejects(0), 2u);
  EXPECT_EQ(links.total_rejects(), 2u);
}

TEST(InHostLinksMutationTest, TruncatedTailWaitsWithoutCrashing) {
  // A partial frame (producer mid-write in a real deployment) is not an
  // error: the consumer simply does not see a message yet.
  InHostLinks links;
  links.reset(1, /*label_bits=*/8, /*capacity_bytes=*/1024);
  wire::Frame frame;
  wire::encode(Message::token(Label(7)), 0, frame);
  links.poke_raw(0, frame.data(), 5);  // first 5 bytes only
  EXPECT_EQ(links.peek(0), nullptr);
  EXPECT_EQ(links.depth(0), 0u);
  EXPECT_EQ(links.pending_bytes(0), 5u);
  EXPECT_EQ(links.rejects(0), 0u);  // incomplete != corrupt
  // The rest of the frame arrives: the message materializes.
  links.poke_raw(0, frame.data() + 5, frame.size() - 5);
  const Message* head = links.peek(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, Message::token(Label(7)));
}

TEST(InHostRingMutationTest, ElectionSurvivesInjectedGarbage) {
  // Corrupted frames seeded into every link of a live ring: the workers'
  // decoders must reject them on arrival while the election elects over
  // the surviving traffic — containment, not just detection.
  const auto ring = ring::LabeledRing::from_values({3, 1, 4, 1, 5});
  InHostConfig config;
  config.pre_start_poke = [&](InHostLinks& links) {
    std::vector<std::uint8_t> garbage(wire::kFrameBytes, 0xEE);
    for (std::size_t port = 0; port < ring.size(); ++port) {
      links.poke_raw(port, garbage.data(), garbage.size());
    }
  };
  const auto result = run_inhost(
      ring, election::make_factory({AlgorithmId::kAk, 2, false}), config);
  ASSERT_EQ(result.outcome, sim::Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(),
            std::optional<sim::ProcessId>(ring.true_leader()));
  EXPECT_EQ(result.wire_rejects, ring.size());  // one garbage frame per link
  EXPECT_EQ(result.messages_sent, result.messages_received);
}

TEST(InHostRingMutationTest, TruncatedStreamInjectionDoesNotWedgeTheRun) {
  // A trailing partial frame on one link (a crashed producer's last
  // write, in deployment terms): the consumer must treat it as
  // not-yet-a-message. The election completes; the run reports dirty
  // links honestly (the orphan bytes never become a message).
  const auto ring = ring::LabeledRing::from_values({2, 7, 1, 8});
  std::vector<std::uint8_t> half(7, 0x55);
  InHostConfig config;
  config.pre_start_poke = [&](InHostLinks& links) {
    links.poke_raw(0, half.data(), half.size());
  };
  const auto result = run_inhost(
      ring, election::make_factory({AlgorithmId::kChangRoberts, 1, false}),
      config);
  // The orphan 7 bytes shift port 0's stream off frame alignment: every
  // later frame on that port decodes as garbage and is dropped. The
  // runtime must neither crash nor hang — it ends via the watchdog (the
  // election cannot complete with a poisoned link) with rejects counted.
  EXPECT_NE(result.outcome, sim::Outcome::kTerminated);
  EXPECT_GT(result.wire_rejects, 0u);
}

}  // namespace
}  // namespace hring::runtime
