#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hring::support {
namespace {

TEST(SplitMix64Test, AdvancesStateDeterministically) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state advanced
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(RngTest, BelowCoversTheWholeRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  const int expected = kDraws / static_cast<int>(kBuckets);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected / 10);  // within 10%
  }
}

TEST(RngTest, InRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.in_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child stream should not mirror the parent's subsequent outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(ShuffleTest, PermutesAllElements) {
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  Rng rng(25);
  shuffle(v, rng);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(ShuffleTest, DeterministicGivenSeed) {
  std::vector<int> a = {1, 2, 3, 4, 5};
  std::vector<int> b = a;
  Rng ra(31);
  Rng rb(31);
  shuffle(a, ra);
  shuffle(b, rb);
  EXPECT_EQ(a, b);
}

TEST(ShuffleTest, EmptyAndSingleton) {
  std::vector<int> empty;
  std::vector<int> one = {9};
  Rng rng(33);
  shuffle(empty, rng);
  shuffle(one, rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, (std::vector<int>{9}));
}

}  // namespace
}  // namespace hring::support
