#include "support/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hring::support {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object().end_object();
  EXPECT_EQ(out.str(), "{}");
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, EmptyArray) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array().end_array();
  EXPECT_EQ(out.str(), "[]");
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, ObjectWithScalars) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name").value("ring");
  json.key("n").value(std::uint64_t{8});
  json.key("neg").value(std::int64_t{-3});
  json.key("ok").value(true);
  json.key("ratio").value(0.5);
  json.key("nothing").null();
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"ring\",\"n\":8,\"neg\":-3,\"ok\":true,"
            "\"ratio\":0.5,\"nothing\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("xs").begin_array().value(1).value(2).value(3).end_array();
  json.key("inner").begin_object().key("a").value(false).end_object();
  json.end_object();
  EXPECT_EQ(out.str(), "{\"xs\":[1,2,3],\"inner\":{\"a\":false}}");
}

TEST(JsonWriterTest, ArrayCommasOnlyBetweenElements) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.begin_object().end_object();
  json.begin_array().end_array();
  json.value("x");
  json.end_array();
  EXPECT_EQ(out.str(), "[{},[],\"x\"]");
}

TEST(JsonWriterTest, StringEscaping) {
  std::ostringstream out;
  JsonWriter json(out);
  json.value("say \"hi\"\\\n\tdone");
  EXPECT_EQ(out.str(), "\"say \\\"hi\\\"\\\\\\n\\tdone\"");
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  std::ostringstream out;
  JsonWriter json(out);
  std::string s = "a";
  s += '\x01';
  s += 'b';
  json.value(s);
  EXPECT_EQ(out.str(), "\"a\\u0001b\"");
}

TEST(JsonWriterTest, DoubleFormatting) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array().value(1.0).value(0.25).value(1e-9).end_array();
  EXPECT_EQ(out.str(), "[1,0.25,1e-09]");
}

TEST(JsonWriterTest, IncompleteUntilClosed) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, ValueWithoutKeyInObjectDies) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  EXPECT_DEATH(json.value(1), "precondition");
}

TEST(JsonWriterTest, KeyOutsideObjectDies) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  EXPECT_DEATH(json.key("k"), "precondition");
}

TEST(JsonWriterTest, TwoTopLevelValuesDie) {
  std::ostringstream out;
  JsonWriter json(out);
  json.value(1);
  EXPECT_DEATH(json.value(2), "precondition");
}

}  // namespace
}  // namespace hring::support
