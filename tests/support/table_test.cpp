#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hring::support {
namespace {

TEST(TableTest, EmptyTablePrintsHeaderAndRule) {
  Table table({"a", "bb"});
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(), "| a | bb |\n|---|----|\n");
}

TEST(TableTest, CellsAreRightAligned) {
  Table table({"n", "value"});
  table.row().cell(std::uint64_t{5}).cell("x");
  table.row().cell(std::uint64_t{123}).cell("yy");
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(),
            "|   n | value |\n"
            "|-----|-------|\n"
            "|   5 |     x |\n"
            "| 123 |    yy |\n");
}

TEST(TableTest, WideCellsStretchColumns) {
  Table table({"h"});
  table.row().cell("wide-cell");
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(),
            "|         h |\n"
            "|-----------|\n"
            "| wide-cell |\n");
}

TEST(TableTest, DoubleFormattingDigits) {
  Table table({"x", "y"});
  table.row().cell(3.14159, 2).cell(2.0, 0);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("3.14"), std::string::npos);
  EXPECT_NE(out.str().find(" 2 "), std::string::npos);
  EXPECT_EQ(out.str().find("3.142"), std::string::npos);
}

TEST(TableTest, RowCount) {
  Table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.row().cell(1);
  table.row().cell(2);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, IntAndUnsignedCells) {
  Table table({"i", "u"});
  table.row().cell(-3).cell(std::uint64_t{7});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("-3"), std::string::npos);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

TEST(TableTest, CsvBasic) {
  Table table({"n", "name"});
  table.row().cell(std::uint64_t{1}).cell("alpha");
  table.row().cell(std::uint64_t{2}).cell("beta");
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "n,name\n1,alpha\n2,beta\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table table({"field"});
  table.row().cell("a,b");
  table.row().cell("say \"hi\"");
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "field\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, OverfilledRowDies) {
  Table table({"only"});
  table.row().cell("one");
  EXPECT_DEATH(table.cell("two"), "precondition");
}

TEST(TableTest, CellWithoutRowDies) {
  Table table({"h"});
  EXPECT_DEATH(table.cell("x"), "precondition");
}

}  // namespace
}  // namespace hring::support
