// Event-engine edge cases: FIFO clamping under decreasing raw delays,
// delay-model contracts, and wake handling.
#include <gtest/gtest.h>

#include <memory>

#include "ring/labeled_ring.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_engine.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

/// Alternates slow/fast delays on the same link: raw arrival times would
/// invert message order; the engine must clamp to FIFO.
class AlternatingDelay final : public DelayModel {
 public:
  [[nodiscard]] double delay(ProcessId) override {
    flip_ = !flip_;
    return flip_ ? 1.0 : 0.05;
  }
  [[nodiscard]] const char* name() const override { return "alternating"; }

 private:
  bool flip_ = false;
};

/// Sends a burst of three tokens at init; the consumer records order.
class BurstSender final : public Process {
 public:
  BurstSender(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message* head) const override {
    return init_ || head != nullptr;
  }

  void fire(const Message* head, Context& ctx) override {
    if (init_) {
      init_ = false;
      if (pid() == 0) {
        ctx.send(Message::token(Label(1)));
        ctx.send(Message::token(Label(2)));
        ctx.send(Message::token(Label(3)));
      }
      set_leader_label(id());
      set_done();
      if (pid() == 0) declare_leader();
      return;
    }
    static_cast<void>(head);
    received_.push_back(ctx.consume().label);
    if (received_.size() == 3) halt_self();
  }

  [[nodiscard]] std::size_t space_bits(std::size_t b) const override {
    return b;
  }
  [[nodiscard]] std::string debug_state() const override { return "B"; }
  [[nodiscard]] const words::LabelSequence& received() const {
    return received_;
  }

 private:
  bool init_ = true;
  words::LabelSequence received_;
};

TEST(DelayEdgeTest, FifoPreservedWhenRawDelaysWouldInvert) {
  // p0 sends 1,2,3 with delays 1.0, 0.05, 1.0: raw arrivals 1.0, 0.05(!),
  // 2.0-ish — clamping must deliver 1, 2, 3 in order anyway.
  const auto ring = ring::LabeledRing::from_values({1, 2});
  AlternatingDelay delay;
  const auto factory = [](ProcessId pid, Label id) {
    return std::make_unique<BurstSender>(pid, id);
  };
  EventEngine engine(ring, factory, delay);
  const auto result = engine.run();
  // p1 consumed all three and halted; p0 never receives (p1 sends none).
  const auto& receiver =
      dynamic_cast<const BurstSender&>(engine.process(1));
  EXPECT_EQ(receiver.received(), words::make_sequence({1, 2, 3}));
  // p0 stays unhalted (no more messages): classified deadlock, honestly.
  EXPECT_EQ(result.outcome, Outcome::kDeadlock);
}

TEST(DelayEdgeTest, ConstantDelayRejectsOutOfRange) {
  EXPECT_DEATH(ConstantDelay(0.0), "precondition");
  EXPECT_DEATH(ConstantDelay(1.5), "precondition");
  EXPECT_DEATH(ConstantDelay(-1.0), "precondition");
}

TEST(DelayEdgeTest, UniformDelayValidatesBounds) {
  EXPECT_DEATH(UniformDelay(support::Rng(1), 0.0, 0.5), "precondition");
  EXPECT_DEATH(UniformDelay(support::Rng(1), 0.6, 0.5), "precondition");
  EXPECT_DEATH(UniformDelay(support::Rng(1), 0.5, 1.5), "precondition");
}

TEST(DelayEdgeTest, UniformDelaySamplesWithinRange) {
  UniformDelay delay(support::Rng(5), 0.25, 0.75);
  for (int i = 0; i < 500; ++i) {
    const double d = delay.delay(0);
    EXPECT_GE(d, 0.25);
    EXPECT_LE(d, 0.75);
  }
}

TEST(DelayEdgeTest, SlowLinkOnlySlowsTheDesignatedLink) {
  SlowLinkDelay delay(2, 0.1);
  EXPECT_DOUBLE_EQ(delay.delay(2), 1.0);
  EXPECT_DOUBLE_EQ(delay.delay(0), 0.1);
  EXPECT_DOUBLE_EQ(delay.delay(1), 0.1);
}

TEST(DelayEdgeTest, DelayModelNames) {
  EXPECT_STREQ(ConstantDelay(1.0).name(), "constant");
  EXPECT_STREQ(UniformDelay(support::Rng(1), 0.1, 1.0).name(), "uniform");
  EXPECT_STREQ(SlowLinkDelay(0, 0.5).name(), "slow-link");
}

}  // namespace
}  // namespace hring::sim
