// FIFO conformance property: on every link, the sequence of messages the
// receiver consumes equals the sequence its left neighbor sent — under
// every scheduler and delay model, for real algorithm traffic. This is
// the reliability half of §II's link model, checked end-to-end through
// the engines rather than assumed.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/election_driver.hpp"
#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "sim/observer.hpp"

namespace hring::sim {
namespace {

/// Records the per-process send and receive sequences.
class FifoObserver final : public Observer {
 public:
  void on_start(const ExecutionView& view) override {
    sent_.assign(view.process_count(), {});
    received_.assign(view.process_count(), {});
  }

  void on_action(const ExecutionView&, const ActionEvent& event) override {
    if (event.consumed.has_value()) {
      received_[event.pid].push_back(*event.consumed);
    }
    for (const Message& m : event.sent) {
      sent_[event.pid].push_back(m);
    }
  }

  /// Receives at the right neighbor must be a prefix of (or equal to) the
  /// sends, in identical order.
  void check(std::size_t n) const {
    for (ProcessId pid = 0; pid < n; ++pid) {
      const auto& s = sent_[pid];
      const auto& r = received_[(pid + 1) % n];
      ASSERT_LE(r.size(), s.size()) << "link " << pid;
      for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_EQ(r[i], s[i]) << "link " << pid << " position " << i;
      }
    }
  }

  /// In a clean terminal configuration everything sent was received.
  void check_complete(std::size_t n) const {
    check(n);
    for (ProcessId pid = 0; pid < n; ++pid) {
      EXPECT_EQ(received_[(pid + 1) % n].size(), sent_[pid].size())
          << "link " << pid;
    }
  }

 private:
  std::vector<std::vector<Message>> sent_;
  std::vector<std::vector<Message>> received_;
};

class FifoSweep
    : public ::testing::TestWithParam<
          std::tuple<election::AlgorithmId, core::SchedulerKind>> {};

TEST_P(FifoSweep, ReceiveOrderEqualsSendOrder) {
  const auto [algo, sched] = GetParam();
  support::Rng rng(0xF1F0 + static_cast<unsigned>(algo) * 31 +
                   static_cast<unsigned>(sched));
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 3 + rng.below(8);
    const std::size_t k = 1 + rng.below(3);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ASSERT_TRUE(ring.has_value());
    FifoObserver fifo;
    core::ElectionConfig config;
    config.algorithm = {algo, k, false};
    config.scheduler = sched;
    config.seed = rng();
    config.extra_observers.push_back(&fifo);
    const auto result = core::run_election(*ring, config);
    ASSERT_EQ(result.outcome, Outcome::kTerminated) << ring->to_string();
    fifo.check_complete(n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FifoSweep,
    ::testing::Combine(
        ::testing::Values(election::AlgorithmId::kAk,
                          election::AlgorithmId::kBk),
        ::testing::Values(core::SchedulerKind::kSynchronous,
                          core::SchedulerKind::kRoundRobin,
                          core::SchedulerKind::kRandomSubset,
                          core::SchedulerKind::kConvoy)),
    [](const auto& pinfo) {
      std::string name = election::algorithm_name(std::get<0>(pinfo.param));
      name += '_';
      for (const char c :
           std::string(core::scheduler_kind_name(std::get<1>(pinfo.param)))) {
        if (c != '-') name += c;
      }
      return name;
    });

TEST(FifoPropertyTest, HoldsUnderRandomDelaysToo) {
  support::Rng rng(0xF1F1);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 3 + rng.below(8);
    const auto ring = ring::random_asymmetric_ring(n, 2, n, rng);
    ASSERT_TRUE(ring.has_value());
    FifoObserver fifo;
    core::ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kBk, 2, false};
    config.engine = core::EngineKind::kEvent;
    config.delay = core::DelayKind::kUniformRandom;
    config.seed = rng();
    config.extra_observers.push_back(&fifo);
    const auto result = core::run_election(*ring, config);
    ASSERT_EQ(result.outcome, Outcome::kTerminated) << ring->to_string();
    fifo.check_complete(n);
  }
}

}  // namespace
}  // namespace hring::sim
