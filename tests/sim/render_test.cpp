#include "sim/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

using testing::TrivialElectProcess;

TEST(RenderTest, ConfigurationListsProcessesAndLinks) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  std::ostringstream out;
  WatchObserver watch(out, 1);
  engine.add_observer(&watch);
  const auto result = engine.run();
  ASSERT_EQ(result.outcome, Outcome::kTerminated);
  const std::string text = out.str();
  EXPECT_NE(text.find("p0 [1]"), std::string::npos);
  EXPECT_NE(text.find("p1 [2]"), std::string::npos);
  EXPECT_NE(text.find("<- leader"), std::string::npos);
  EXPECT_NE(text.find("in flight"), std::string::npos);
  EXPECT_NE(text.find("FINISH_LABEL"), std::string::npos);
}

TEST(RenderTest, WatchThinsOutput) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3, 4});
  SynchronousScheduler sched;

  std::ostringstream every_step;
  {
    StepEngine engine(ring, TrivialElectProcess::make(), sched);
    WatchObserver watch(every_step, 1);
    engine.add_observer(&watch);
    engine.run();
  }
  std::ostringstream every_other;
  {
    SynchronousScheduler sched2;
    StepEngine engine(ring, TrivialElectProcess::make(), sched2);
    WatchObserver watch(every_other, 2);
    engine.add_observer(&watch);
    engine.run();
  }
  EXPECT_GT(every_step.str().size(), every_other.str().size());
}

TEST(RenderTest, SummaryCountsStates) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  std::string last_summary;
  // Use a tiny observer to sample the summary at the end of each step.
  class SummaryProbe final : public Observer {
   public:
    explicit SummaryProbe(std::string& out) : out_(out) {}
    void on_step_end(const ExecutionView& view) override {
      out_ = render_summary(view);
    }

   private:
    std::string& out_;
  };
  SummaryProbe probe(last_summary);
  engine.add_observer(&probe);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  EXPECT_NE(last_summary.find("1 leader(s)"), std::string::npos);
  EXPECT_NE(last_summary.find("3 done"), std::string::npos);
  EXPECT_NE(last_summary.find("3 halted"), std::string::npos);
  EXPECT_NE(last_summary.find("0 in flight"), std::string::npos);
}

}  // namespace
}  // namespace hring::sim
