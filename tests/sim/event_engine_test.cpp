#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include "ring/generator.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

using testing::DeafSenderProcess;
using testing::ForeverForwardProcess;
using testing::TrivialElectProcess;

ring::LabeledRing small_ring() {
  return ring::LabeledRing::from_values({1, 2, 3, 4});
}

TEST(EventEngineTest, TrivialElectionTerminates) {
  ConstantDelay delay(1.0);
  EventEngine engine(small_ring(), TrivialElectProcess::make(), delay);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(), std::optional<ProcessId>(0));
  for (const auto& p : result.processes) {
    EXPECT_TRUE(p.done);
    EXPECT_TRUE(p.halted);
  }
}

TEST(EventEngineTest, UnitDelayTimeEqualsRingTraversal) {
  ConstantDelay delay(1.0);
  EventEngine engine(small_ring(), TrivialElectProcess::make(), delay);
  const RunResult result = engine.run();
  // The announcement makes n hops of one time unit each; the last action
  // (p0 halting) happens at time n.
  EXPECT_DOUBLE_EQ(result.stats.time_units, 4.0);
}

TEST(EventEngineTest, FasterLinksFinishSooner) {
  ConstantDelay slow(1.0);
  ConstantDelay fast(0.25);
  EventEngine e1(small_ring(), TrivialElectProcess::make(), slow);
  EventEngine e2(small_ring(), TrivialElectProcess::make(), fast);
  const double t_slow = e1.run().stats.time_units;
  const double t_fast = e2.run().stats.time_units;
  EXPECT_DOUBLE_EQ(t_fast, 1.0);
  EXPECT_LT(t_fast, t_slow);
}

TEST(EventEngineTest, UniformDelayStillDeliversEverything) {
  UniformDelay delay(support::Rng(21), 0.05, 1.0);
  EventEngine engine(small_ring(), TrivialElectProcess::make(), delay);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_LE(result.stats.time_units, 4.0);
  EXPECT_GT(result.stats.time_units, 0.0);
}

TEST(EventEngineTest, SlowLinkDominatesCompletionTime) {
  SlowLinkDelay delay(/*slow_from=*/2, /*fast=*/0.05);
  EventEngine engine(small_ring(), TrivialElectProcess::make(), delay);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  // Exactly one hop (2 -> 3) pays 1.0; the other three pay 0.05.
  EXPECT_NEAR(result.stats.time_units, 1.0 + 3 * 0.05, 1e-12);
}

TEST(EventEngineTest, DeafSendersDeadlock) {
  ConstantDelay delay(1.0);
  EventEngine engine(small_ring(), DeafSenderProcess::make(), delay);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kDeadlock);
}

TEST(EventEngineTest, ForeverForwardExhaustsBudget) {
  ConstantDelay delay(1.0);
  EventConfig config;
  config.max_actions = 300;
  EventEngine engine(small_ring(), ForeverForwardProcess::make(), delay,
                     config);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kBudgetExhausted);
}

TEST(EventEngineTest, MessageStatsMatchStepEngine) {
  ConstantDelay delay(1.0);
  EventEngine engine(small_ring(), TrivialElectProcess::make(), delay);
  const RunResult result = engine.run();
  EXPECT_EQ(result.stats.messages_sent, 4u);
  EXPECT_EQ(result.stats.messages_received, 4u);
}

TEST(EventEngineTest, StopPredicateHonored) {
  ConstantDelay delay(1.0);
  EventEngine engine(small_ring(), ForeverForwardProcess::make(), delay);
  int called = 0;
  auto stop = [&called] { return ++called >= 5; };
  engine.set_stop_predicate(stop);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kViolation);
}

}  // namespace
}  // namespace hring::sim
