// Miniature algorithms used to exercise the engines in isolation from the
// real election algorithms.
#pragma once

#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace hring::sim::testing {

/// p0 elects itself at init and floods ⟨FINISH_LABEL, id⟩; everyone else
/// learns, forwards and halts. The smallest correct "election" possible —
/// terminates cleanly under every engine and scheduler.
class TrivialElectProcess final : public Process {
 public:
  TrivialElectProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message* head) const override {
    if (init_) return true;
    return head != nullptr;
  }

  void fire(const Message* /*head*/, Context& ctx) override {
    if (init_) {
      ctx.note_action("init");
      init_ = false;
      if (pid() == 0) {
        declare_leader();
        set_leader_label(id());
        set_done();
        ctx.send(Message::finish_label(id()));
      }
      return;
    }
    const Message msg = ctx.consume();
    if (pid() == 0) {
      ctx.note_action("halt");
      halt_self();
    } else {
      ctx.note_action("learn");
      set_leader_label(msg.label);
      set_done();
      ctx.send(msg);
      halt_self();
    }
  }

  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override {
    return 2 * label_bits + 3;
  }

  [[nodiscard]] std::string debug_state() const override {
    return init_ ? "INIT" : "RUN";
  }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<TrivialElectProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

/// Sends one token at init and never receives: the run ends with messages
/// stuck on every link — a deadlock, not a clean termination.
class DeafSenderProcess final : public Process {
 public:
  DeafSenderProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message*) const override { return init_; }

  void fire(const Message*, Context& ctx) override {
    init_ = false;
    ctx.send(Message::token(id()));
  }

  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override {
    return label_bits + 1;
  }

  [[nodiscard]] std::string debug_state() const override {
    return init_ ? "INIT" : "DEAF";
  }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<DeafSenderProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

/// Forwards every token forever: the execution never reaches a terminal
/// configuration, exhausting any step/action budget.
class ForeverForwardProcess final : public Process {
 public:
  ForeverForwardProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message* head) const override {
    return init_ || head != nullptr;
  }

  void fire(const Message* head, Context& ctx) override {
    if (init_) {
      init_ = false;
      ctx.send(Message::token(id()));
      return;
    }
    static_cast<void>(head);
    ctx.send(ctx.consume());
  }

  [[nodiscard]] std::size_t space_bits(std::size_t label_bits) const override {
    return label_bits + 1;
  }

  [[nodiscard]] std::string debug_state() const override { return "FWD"; }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<ForeverForwardProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

}  // namespace hring::sim::testing
