// Engine cross-validation: for the deterministic algorithms of this
// library, the synchronous step engine and the unit-delay event engine
// generate the SAME execution — identical action sequences per process,
// identical final local states, identical statistics (up to the engines'
// different notions of "step"). This pins both engines against each other
// far more tightly than outcome equality.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "sim/engine.hpp"
#include "sim/event_engine.hpp"
#include "sim/observer.hpp"

namespace hring::sim {
namespace {

/// Per-process sequence of (action label, consumed message) pairs.
class ActionLog final : public Observer {
 public:
  void on_start(const ExecutionView& view) override {
    log_.assign(view.process_count(), {});
  }
  void on_action(const ExecutionView&, const ActionEvent& event) override {
    std::string entry(event.action);
    if (event.consumed.has_value()) {
      entry += "/" + to_string(*event.consumed);
    }
    log_[event.pid].push_back(std::move(entry));
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& log() const {
    return log_;
  }

 private:
  std::vector<std::vector<std::string>> log_;
};

class EngineEquivalence
    : public ::testing::TestWithParam<election::AlgorithmId> {};

TEST_P(EngineEquivalence, SyncStepAndUnitDelayEventRunsAreIdentical) {
  support::Rng rng(0xE9 + static_cast<unsigned>(GetParam()));
  for (int rep = 0; rep < 8; ++rep) {
    const std::size_t n = 2 + rng.below(9);
    // Baselines require distinct labels; the paper's algorithms get
    // homonym rings.
    const bool paper_algo = election::elects_true_leader(GetParam());
    const std::size_t k = paper_algo ? 1 + rng.below(3) : 1;
    const auto ring =
        paper_algo
            ? ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng)
            : std::optional<ring::LabeledRing>(ring::distinct_ring(n, rng));
    ASSERT_TRUE(ring.has_value());
    const auto factory =
        election::make_factory({GetParam(), k, false});

    SynchronousScheduler sched;
    StepEngine step(*ring, factory, sched);
    ActionLog step_log;
    step.add_observer(&step_log);
    const auto step_result = step.run();

    ConstantDelay delay(1.0);
    EventEngine event(*ring, factory, delay);
    ActionLog event_log;
    event.add_observer(&event_log);
    const auto event_result = event.run();

    ASSERT_EQ(step_result.outcome, Outcome::kTerminated)
        << ring->to_string();
    ASSERT_EQ(event_result.outcome, Outcome::kTerminated)
        << ring->to_string();
    // Identical per-process action sequences …
    EXPECT_EQ(step_log.log(), event_log.log()) << ring->to_string();
    // … identical final local states …
    for (std::size_t pid = 0; pid < n; ++pid) {
      EXPECT_EQ(step_result.processes[pid].debug,
                event_result.processes[pid].debug)
          << "p" << pid << " on " << ring->to_string();
      EXPECT_EQ(step_result.processes[pid].is_leader,
                event_result.processes[pid].is_leader);
    }
    // … identical message statistics.
    EXPECT_EQ(step_result.stats.messages_sent,
              event_result.stats.messages_sent);
    EXPECT_EQ(step_result.stats.sent_by_process,
              event_result.stats.sent_by_process);
    EXPECT_EQ(step_result.stats.received_by_process,
              event_result.stats.received_by_process);
    EXPECT_EQ(step_result.stats.peak_space_bits,
              event_result.stats.peak_space_bits);
    // Synchronous steps and unit-delay completion time agree up to the
    // off-by-init convention: the event engine fires inits at t = 0.
    EXPECT_NEAR(step_result.stats.time_units,
                event_result.stats.time_units + 1.0, 1.0)
        << ring->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EngineEquivalence,
    ::testing::Values(election::AlgorithmId::kAk, election::AlgorithmId::kBk,
                      election::AlgorithmId::kChangRoberts,
                      election::AlgorithmId::kLeLann,
                      election::AlgorithmId::kPeterson),
    [](const auto& pinfo) {
      return election::algorithm_name(pinfo.param);
    });

}  // namespace
}  // namespace hring::sim
