// The reliability assumptions of §II are load-bearing. We inject faults
// aimed at the election-critical message — the initial token of the true
// leader (the unique minimal label) — and watch the election fail
// *detectably*: deadlock, budget exhaustion (no one can ever decide), or
// a verifier/monitor rejection. A fault can also be harmless (e.g. losing
// a token the elected leader would have swallowed anyway); what the
// checker stack guarantees is that a wrong outcome never verifies.
#include <gtest/gtest.h>

#include "core/verification.hpp"
#include "election/ak.hpp"
#include "election/bk.hpp"
#include "ring/generator.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/invariants.hpp"

namespace hring::sim {
namespace {

// True leader is p1 (unique minimal label 1). Under the synchronous
// daemon the first configuration step fires p0..p4 in pid order, so send
// index i is exactly p_i's initial token: index 1 targets the leader's.
ring::LabeledRing test_ring() {
  return ring::LabeledRing::from_values({2, 1, 3, 2, 4});
}
constexpr std::uint64_t kLeaderTokenIndex = 1;

struct FaultRun {
  RunResult result;
  bool verified;
};

FaultRun run_with_faults(const ProcessFactory& factory, FaultModel* model,
                         std::uint64_t max_steps) {
  const auto ring = test_ring();
  SynchronousScheduler sched;
  StepConfig config;
  config.max_steps = max_steps;
  StepEngine engine(ring, factory, sched, config);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  engine.set_fault_model(model);
  FaultRun out{engine.run(), false};
  out.result.violations = monitor.violations();
  out.verified = core::verify_election(ring, out.result, true).ok &&
                 out.result.violations.empty();
  return out;
}

TEST(FaultTest, BaselineWithoutFaultsVerifies) {
  FaultRun run =
      run_with_faults(election::AkProcess::factory(2), nullptr, 100'000);
  EXPECT_TRUE(run.verified);
  EXPECT_EQ(run.result.stats.faults_injected, 0u);
}

TEST(FaultTest, DroppingTheLeadersTokenBreaksAk) {
  // The label 1 never circulates: either nobody's srp becomes a Lyndon
  // word (no decision) or a wrong process decides — both must be flagged.
  SingleFault fault(kLeaderTokenIndex, FaultDecision::dropped());
  FaultRun run =
      run_with_faults(election::AkProcess::factory(2), &fault, 20'000);
  EXPECT_EQ(run.result.stats.faults_injected, 1u);
  EXPECT_FALSE(run.verified);
}

TEST(FaultTest, DroppingTheLeadersTokenDeadlocksBk) {
  // B_k's phase-1 barrier needs every guest to circulate; without the
  // minimal guest, p1 can never count its own guest k times and stalls in
  // COMPUTE while the first PHASE_SHIFT reaches it — a deadlock.
  SingleFault fault(kLeaderTokenIndex, FaultDecision::dropped());
  FaultRun run =
      run_with_faults(election::BkProcess::factory(2), &fault, 50'000);
  EXPECT_EQ(run.result.stats.faults_injected, 1u);
  EXPECT_FALSE(run.verified);
  EXPECT_NE(run.result.outcome, Outcome::kTerminated);
}

TEST(FaultTest, DuplicatingTheLeadersTokenStallsAk) {
  // The duplicate rides right behind the original: every process sees the
  // 6-label cycle (…,1,1,…) whose Lyndon rotation starts at the duplicate
  // pair — a rotation owned by no process (only p1 has label 1 and its
  // window starts 1,2,…). Nobody can ever satisfy Leader(σ).
  SingleFault fault(kLeaderTokenIndex, FaultDecision::duplicated());
  FaultRun run =
      run_with_faults(election::AkProcess::factory(2), &fault, 4'000);
  EXPECT_EQ(run.result.stats.faults_injected, 1u);
  EXPECT_FALSE(run.verified);
  EXPECT_EQ(run.result.outcome, Outcome::kBudgetExhausted);
}

TEST(FaultTest, CorruptingTheLeadersTokenBreaksAk) {
  // The minimal label is rewritten on the wire: p1 still holds it locally
  // (its string starts with the now-globally-unique 1 and stays a Lyndon
  // word), so p1 elects itself on a garbage view while everyone else
  // derives a different leader label — monitor and verifier must object.
  SingleFault fault(kLeaderTokenIndex,
                    FaultDecision::corrupted(Label(9)));
  FaultRun run =
      run_with_faults(election::AkProcess::factory(2), &fault, 100'000);
  EXPECT_EQ(run.result.stats.faults_injected, 1u);
  EXPECT_FALSE(run.verified);
}

TEST(FaultTest, ProbabilisticFaultsNeverYieldAVerifiedWrongWinner) {
  // Random fault mixes: some runs break detectably, a lucky few may be
  // harmless — but a run that verifies must have elected the true leader
  // (p1), and at least one seed must demonstrate a detectable failure.
  std::size_t flagged = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ProbabilisticFaults faults(
        support::Rng(seed),
        ProbabilisticFaults::Rates{.drop = 0.02, .duplicate = 0.02,
                                   .reorder = 0.02, .corrupt = 0.02},
        /*max_faults=*/3);
    FaultRun run =
        run_with_faults(election::AkProcess::factory(2), &faults, 4'000);
    if (!run.verified) {
      ++flagged;
    } else {
      const auto leader = run.result.leader_pid();
      ASSERT_TRUE(leader.has_value()) << "seed " << seed;
      EXPECT_EQ(*leader, 1u) << "seed " << seed;
    }
  }
  EXPECT_GE(flagged, 1u);
}

TEST(FaultTest, ReorderSwapsPayloads) {
  Link link;
  link.push(Message::token(Label(1)));
  link.push(Message::token(Label(2)));
  link.swap_last_two_payloads();
  EXPECT_EQ(link.pop().label, Label(2));
  EXPECT_EQ(link.pop().label, Label(1));
}

TEST(FaultTest, FaultDecisionFaultyFlag) {
  EXPECT_FALSE(FaultDecision{}.faulty());
  EXPECT_TRUE((FaultDecision::dropped()).faulty());
  EXPECT_TRUE((FaultDecision::duplicated()).faulty());
  EXPECT_TRUE((FaultDecision::reordered()).faulty());
  EXPECT_TRUE((FaultDecision::corrupted(Label(1))).faulty());
}

TEST(FaultTest, SingleFaultTargetsExactSendIndex) {
  SingleFault fault(2, FaultDecision::dropped());
  EXPECT_FALSE(fault.on_send(0, 0, Message::finish()).faulty());
  EXPECT_FALSE(fault.on_send(1, 0, Message::finish()).faulty());
  EXPECT_TRUE(fault.on_send(2, 0, Message::finish()).drop);
  EXPECT_FALSE(fault.on_send(3, 0, Message::finish()).faulty());
}

TEST(FaultTest, ProbabilisticRespectsCap) {
  ProbabilisticFaults faults(
      support::Rng(3),
      ProbabilisticFaults::Rates{.drop = 1.0, .duplicate = 0, .reorder = 0,
                                 .corrupt = 0},
      /*max_faults=*/2);
  std::uint64_t injected = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (faults.on_send(i, 0, Message::token(Label(1))).faulty()) ++injected;
  }
  EXPECT_EQ(injected, 2u);
  EXPECT_EQ(faults.injected(), 2u);
}

}  // namespace
}  // namespace hring::sim
