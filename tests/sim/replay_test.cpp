#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "sim/engine.hpp"

namespace hring::sim {
namespace {

struct Recorded {
  RunResult result;
  Schedule schedule;
};

Recorded record_run(const ring::LabeledRing& ring,
                    const election::AlgorithmConfig& algo,
                    std::uint64_t seed) {
  const auto factory = election::make_factory(algo);
  RandomSubsetScheduler sched{support::Rng(seed), 0.4};
  StepEngine engine(ring, factory, sched);
  TraceRecorder trace(/*max_entries=*/1 << 22);
  engine.add_observer(&trace);
  Recorded out{engine.run(), {}};
  out.schedule = schedule_from_trace(trace);
  return out;
}

TEST(ReplayTest, ReplayReproducesARandomizedRunExactly) {
  support::Rng rng(0x8e91a4);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t n = 3 + rng.below(7);
    const std::size_t k = 1 + rng.below(2);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ASSERT_TRUE(ring.has_value());
    const election::AlgorithmConfig algo{election::AlgorithmId::kBk, k,
                                         false};
    const auto recorded = record_run(*ring, algo, rng());
    ASSERT_EQ(recorded.result.outcome, Outcome::kTerminated);

    ReplayScheduler replay(recorded.schedule);
    StepEngine engine(*ring, election::make_factory(algo), replay);
    const auto replayed = engine.run();

    EXPECT_TRUE(replay.faithful());
    EXPECT_EQ(replayed.outcome, recorded.result.outcome);
    EXPECT_EQ(replayed.stats.steps, recorded.result.stats.steps);
    EXPECT_EQ(replayed.stats.actions, recorded.result.stats.actions);
    EXPECT_EQ(replayed.stats.messages_sent,
              recorded.result.stats.messages_sent);
    EXPECT_EQ(replayed.stats.sent_by_process,
              recorded.result.stats.sent_by_process);
    for (std::size_t pid = 0; pid < n; ++pid) {
      EXPECT_EQ(replayed.processes[pid].debug,
                recorded.result.processes[pid].debug)
          << "p" << pid;
    }
  }
}

TEST(ReplayTest, ScheduleFromTraceGroupsByStep) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 2});
  SynchronousScheduler sched;
  StepEngine engine(ring, election::make_factory(
                              {election::AlgorithmId::kAk, 2, false}),
                    sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  const auto schedule = schedule_from_trace(trace);
  ASSERT_FALSE(schedule.empty());
  // Synchronous step 0 fires everyone.
  EXPECT_EQ(schedule[0], (std::vector<ProcessId>{0, 1, 2}));
}

TEST(ReplayTest, RunsPastTheRecordingFallBackToAllEnabled) {
  // Replay a truncated schedule; the run must still terminate, flagged as
  // unfaithful.
  const auto ring = ring::LabeledRing::from_values({1, 2, 2});
  const election::AlgorithmConfig algo{election::AlgorithmId::kAk, 2,
                                       false};
  const auto recorded = record_run(ring, algo, 77);
  Schedule truncated(recorded.schedule.begin(),
                     recorded.schedule.begin() + 2);
  ReplayScheduler replay(std::move(truncated));
  StepEngine engine(ring, election::make_factory(algo), replay);
  const auto result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_FALSE(replay.faithful());
}

TEST(ReplayTest, DivergentScheduleIsFlagged) {
  Schedule schedule = {{5}};  // pid 5 will not be enabled
  ReplayScheduler replay(schedule);
  std::vector<ProcessId> out;
  replay.select({0, 1}, out);
  EXPECT_FALSE(replay.faithful());
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace hring::sim
