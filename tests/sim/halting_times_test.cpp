// Theorem 2's closing claim, measured: once the leader decides, the
// ⟨FINISH⟩ wave halts every process within one ring traversal — under
// unit delays, last-halt <= decision + n.
#include <gtest/gtest.h>

#include "core/election_driver.hpp"
#include "election/algorithm.hpp"
#include "ring/generator.hpp"
#include "sim/delay_model.hpp"
#include "sim/engine.hpp"
#include "sim/event_engine.hpp"
#include "sim/halting_times.hpp"

namespace hring::sim {
namespace {

TEST(HaltingTimesTest, FinishWaveHaltsEveryoneWithinNTimeUnits) {
  support::Rng rng(0x8a17);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 3 + rng.below(12);
    const std::size_t k = 1 + rng.below(3);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ASSERT_TRUE(ring.has_value());
    for (const auto algo :
         {election::AlgorithmId::kAk, election::AlgorithmId::kBk}) {
      HaltingTimes times;
      ConstantDelay delay(1.0);
      EventEngine engine(*ring,
                         election::make_factory({algo, k, false}), delay);
      engine.add_observer(&times);
      ASSERT_EQ(engine.run().outcome, Outcome::kTerminated)
          << ring->to_string();
      const auto decision = times.first_decision();
      const auto quiescent = times.last_halt();
      ASSERT_TRUE(decision.has_value());
      ASSERT_TRUE(quiescent.has_value());
      EXPECT_LE(*quiescent, *decision + static_cast<double>(n))
          << election::algorithm_name(algo) << " on " << ring->to_string();
    }
  }
}

TEST(HaltingTimesTest, LeaderDecidesFirstInAk) {
  // In A_k the leader's A3 is the first done-setting action.
  support::Rng rng(0x8a18);
  const auto ring = ring::random_asymmetric_ring(9, 2, 7, rng);
  ASSERT_TRUE(ring.has_value());
  HaltingTimes times;
  ConstantDelay delay(1.0);
  EventEngine engine(
      *ring,
      election::make_factory({election::AlgorithmId::kAk, 2, false}),
      delay);
  engine.add_observer(&times);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  const auto leader = ring->true_leader();
  const auto& records = times.records();
  ASSERT_TRUE(records[leader].done_time.has_value());
  for (std::size_t pid = 0; pid < ring->size(); ++pid) {
    ASSERT_TRUE(records[pid].done_time.has_value()) << "p" << pid;
    EXPECT_LE(*records[leader].done_time, *records[pid].done_time)
        << "p" << pid;
    // Halting follows deciding.
    ASSERT_TRUE(records[pid].halt_time.has_value());
    EXPECT_LE(*records[pid].done_time, *records[pid].halt_time);
  }
}

TEST(HaltingTimesTest, EmptyOnUndecidedRun) {
  // A budget-limited run that never elects: no decision, no quiescence.
  const auto ring = ring::LabeledRing::from_values({1, 2, 2});
  HaltingTimes times;
  ConstantDelay delay(1.0);
  EventConfig config;
  config.max_actions = 5;
  EventEngine engine(
      ring, election::make_factory({election::AlgorithmId::kBk, 2, false}),
      delay, config);
  engine.add_observer(&times);
  EXPECT_EQ(engine.run().outcome, Outcome::kBudgetExhausted);
  EXPECT_FALSE(times.first_decision().has_value());
  EXPECT_FALSE(times.last_halt().has_value());
}

}  // namespace
}  // namespace hring::sim
