#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "ring/generator.hpp"
#include "sim/trace.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

using testing::DeafSenderProcess;
using testing::ForeverForwardProcess;
using testing::TrivialElectProcess;

ring::LabeledRing small_ring() {
  return ring::LabeledRing::from_values({1, 2, 3, 4});
}

TEST(StepEngineTest, TrivialElectionTerminatesCleanly) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  ASSERT_EQ(result.processes.size(), 4u);
  EXPECT_TRUE(result.processes[0].is_leader);
  for (const auto& p : result.processes) {
    EXPECT_TRUE(p.done);
    EXPECT_TRUE(p.halted);
    ASSERT_TRUE(p.leader.has_value());
    EXPECT_EQ(*p.leader, Label(1));
  }
  EXPECT_EQ(result.leader_pid(), std::optional<ProcessId>(0));
}

TEST(StepEngineTest, MessageCountsBalance) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  const RunResult result = engine.run();
  // One FINISH_LABEL traverses the ring exactly once: n messages.
  EXPECT_EQ(result.stats.messages_sent, 4u);
  EXPECT_EQ(result.stats.messages_received, 4u);
  EXPECT_EQ(result.stats.sent_by_kind[kind_index(MsgKind::kFinishLabel)],
            4u);
  EXPECT_GT(result.stats.message_bits_sent, 0u);
}

TEST(StepEngineTest, SynchronousStepCountIsRingDiameterPlusInit) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  const RunResult result = engine.run();
  // Step 1: all init (p0 sends). Steps 2..4: announcement hops to p1..p3.
  // Step 5: returns to p0 which halts.
  EXPECT_EQ(result.stats.steps, 5u);
}

TEST(StepEngineTest, DeafSendersDeadlock) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), DeafSenderProcess::make(), sched);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kDeadlock);
  EXPECT_EQ(result.stats.messages_sent, 4u);
  EXPECT_EQ(result.stats.messages_received, 0u);
}

TEST(StepEngineTest, ForeverForwardExhaustsBudget) {
  SynchronousScheduler sched;
  StepConfig config;
  config.max_steps = 500;
  StepEngine engine(small_ring(), ForeverForwardProcess::make(), sched,
                    config);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kBudgetExhausted);
  EXPECT_EQ(result.stats.steps, 500u);
}

TEST(StepEngineTest, StopPredicateShortCircuits) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), ForeverForwardProcess::make(), sched);
  int steps_seen = 0;
  auto stop = [&steps_seen] { return ++steps_seen >= 3; };
  engine.set_stop_predicate(stop);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kViolation);
  EXPECT_EQ(result.stats.steps, 3u);
}

class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, TrivialElectionTerminatesUnderEveryScheduler) {
  std::unique_ptr<Scheduler> sched;
  switch (GetParam()) {
    case 0:
      sched = std::make_unique<SynchronousScheduler>();
      break;
    case 1:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case 2:
      sched = std::make_unique<RandomSingleScheduler>(support::Rng(5));
      break;
    case 3:
      sched = std::make_unique<RandomSubsetScheduler>(support::Rng(5), 0.3);
      break;
    default:
      sched = std::make_unique<ConvoyScheduler>();
      break;
  }
  StepEngine engine(small_ring(), TrivialElectProcess::make(), *sched);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_EQ(result.leader_pid(), std::optional<ProcessId>(0));
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Range(0, 5));

TEST(StepEngineTest, TraceRecordsActions) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  engine.run();
  const auto census = trace.action_census();
  // 4 init actions, 3 learn, 1 halt.
  ASSERT_EQ(census.size(), 3u);
  EXPECT_EQ(census[0].first, "halt");
  EXPECT_EQ(census[0].second, 1u);
  EXPECT_EQ(census[1].first, "init");
  EXPECT_EQ(census[1].second, 4u);
  EXPECT_EQ(census[2].first, "learn");
  EXPECT_EQ(census[2].second, 3u);
}

TEST(StepEngineTest, PeakSpaceTracked) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  const RunResult result = engine.run();
  // 2 labels * 3 bits (labels 1..4) + 3 flag bits.
  EXPECT_EQ(result.stats.peak_space_bits, 2u * 3u + 3u);
}

TEST(StepEngineTest, FairnessForcesStarvedProcess) {
  // The convoy scheduler always picks the smallest pid; without the
  // fairness bound the announcement would still progress (each firing
  // shifts enablement), so use forever-forwarders: p0 stays enabled
  // forever and convoy would starve everyone else. The aging bound must
  // still let every process fire.
  ConvoyScheduler sched;
  StepConfig config;
  config.max_steps = 2000;
  config.fairness_bound = 16;
  StepEngine engine(small_ring(), ForeverForwardProcess::make(), sched,
                    config);
  TraceRecorder trace;
  engine.add_observer(&trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kBudgetExhausted);
  std::array<bool, 4> fired{};
  for (const auto& entry : trace.entries()) {
    fired[entry.event.pid] = true;
  }
  for (std::size_t pid = 0; pid < 4; ++pid) {
    EXPECT_TRUE(fired[pid]) << "p" << pid << " starved";
  }
}

TEST(StepEngineTest, LabelComparisonsAccounted) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), TrivialElectProcess::make(), sched);
  const RunResult result = engine.run();
  // TrivialElect performs no label comparisons at all.
  EXPECT_EQ(result.stats.label_comparisons, 0u);
}

}  // namespace
}  // namespace hring::sim
