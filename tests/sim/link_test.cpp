#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace hring::sim {
namespace {

TEST(LinkTest, StartsEmpty) {
  Link link;
  EXPECT_TRUE(link.empty());
  EXPECT_EQ(link.size(), 0u);
  EXPECT_EQ(link.head(), nullptr);
  EXPECT_EQ(link.high_water(), 0u);
}

TEST(LinkTest, FifoOrder) {
  Link link;
  link.push(Message::token(Label(1)));
  link.push(Message::token(Label(2)));
  link.push(Message::finish());
  ASSERT_NE(link.head(), nullptr);
  EXPECT_EQ(link.head()->label, Label(1));
  EXPECT_EQ(link.pop().label, Label(1));
  EXPECT_EQ(link.pop().label, Label(2));
  EXPECT_EQ(link.pop().kind, MsgKind::kFinish);
  EXPECT_TRUE(link.empty());
}

TEST(LinkTest, HighWaterTracksPeak) {
  Link link;
  link.push(Message::token(Label(1)));
  link.push(Message::token(Label(2)));
  link.pop();
  link.pop();
  link.push(Message::token(Label(3)));
  EXPECT_EQ(link.high_water(), 2u);
}

TEST(LinkTest, InTransitMessagesAreInvisible) {
  Link link;
  link.push(Message::token(Label(7)), /*ready_time=*/2.0);
  EXPECT_EQ(link.head(1.0), nullptr);     // still in transit at t=1
  ASSERT_NE(link.head(2.0), nullptr);     // delivered at t=2
  EXPECT_EQ(link.head(2.0)->label, Label(7));
  EXPECT_NE(link.head(), nullptr);        // default now = infinity
}

TEST(LinkTest, HeadReadyTime) {
  Link link;
  link.push(Message::token(Label(1)), 0.5);
  link.push(Message::token(Label(2)), 1.5);
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 0.5);
  link.pop();
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 1.5);
  EXPECT_DOUBLE_EQ(link.last_ready_time(), 1.5);
}

TEST(LinkTest, RejectsDecreasingReadyTimes) {
  Link link;
  link.push(Message::token(Label(1)), 2.0);
  EXPECT_DEATH(link.push(Message::token(Label(2)), 1.0), "precondition");
}

TEST(LinkTest, OnlyReadyHeadIsVisibleEvenIfLaterOnesQueued) {
  Link link;
  link.push(Message::token(Label(1)), 3.0);
  link.push(Message::token(Label(2)), 3.0);
  EXPECT_EQ(link.head(2.9), nullptr);
  EXPECT_EQ(link.head(3.0)->label, Label(1));
}

// -- ring-buffer storage -----------------------------------------------------

TEST(LinkTest, FifoOrderAcrossBufferWraparound) {
  // Interleave pushes and pops so the ring's head walks all the way around
  // the initial capacity several times; order must stay FIFO throughout.
  Link link;
  Label::rep_type next_in = 0;
  Label::rep_type next_out = 0;
  for (int round = 0; round < 100; ++round) {
    link.push(Message::token(Label(next_in++)));
    link.push(Message::token(Label(next_in++)));
    link.push(Message::token(Label(next_in++)));
    ASSERT_EQ(link.pop().label.value(), next_out++);
    ASSERT_EQ(link.pop().label.value(), next_out++);
  }
  while (!link.empty()) {
    ASSERT_EQ(link.pop().label.value(), next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(LinkTest, GrowthPreservesOrderAndMonotoneReadyTimes) {
  // Force several capacity doublings from a rotated head position, then
  // check both payload order and the non-decreasing delivery times.
  Link link;
  link.push(Message::token(Label(1000)), 0.0);
  link.pop();  // head_ is now rotated off slot 0
  for (Label::rep_type i = 0; i < 100; ++i) {
    link.push(Message::token(Label(i)), static_cast<double>(i));
  }
  double last_ready = 0.0;
  for (Label::rep_type i = 0; i < 100; ++i) {
    ASSERT_GE(link.head_ready_time(), last_ready);
    last_ready = link.head_ready_time();
    ASSERT_EQ(link.pop().label.value(), i);
  }
  EXPECT_TRUE(link.empty());
}

TEST(LinkTest, SwapLastTwoPayloadsAcrossWraparound) {
  Link link;
  // Rotate the head so the last two slots straddle the wrap boundary.
  for (int i = 0; i < 7; ++i) link.push(Message::token(Label(99)));
  for (int i = 0; i < 7; ++i) link.pop();
  link.push(Message::token(Label(1)), 1.0);
  link.push(Message::token(Label(2)), 2.0);
  link.push(Message::token(Label(3)), 3.0);
  link.swap_last_two_payloads();
  // Payloads of the last two swapped; delivery times stay in place.
  EXPECT_EQ(link.pop().label, Label(1));
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 2.0);
  EXPECT_EQ(link.pop().label, Label(3));
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 3.0);
  EXPECT_EQ(link.pop().label, Label(2));
}

TEST(LinkTest, ResetRewindsStateForReuse) {
  Link link;
  link.push(Message::token(Label(1)), 1.0);
  link.push(Message::token(Label(2)), 2.0);
  link.push(Message::token(Label(3)), 3.0);
  EXPECT_EQ(link.high_water(), 3u);

  link.reset();
  EXPECT_TRUE(link.empty());
  EXPECT_EQ(link.size(), 0u);
  EXPECT_EQ(link.head(), nullptr);
  EXPECT_EQ(link.high_water(), 0u);
  EXPECT_DOUBLE_EQ(link.last_ready_time(), 0.0);

  // The recycled link accepts early delivery times again (the clock was
  // rewound, not just the queue) and re-tracks its own high water.
  link.push(Message::token(Label(7)), 0.5);
  EXPECT_EQ(link.high_water(), 1u);
  EXPECT_EQ(link.pop().label, Label(7));
}

TEST(LinkTest, ResetReuseKeepsFifoAndHighWaterExact) {
  Link link;
  for (int run = 0; run < 5; ++run) {
    // Each recycled run must behave exactly like a fresh link.
    for (Label::rep_type i = 0; i < 20; ++i) {
      link.push(Message::token(Label(i)), static_cast<double>(i));
    }
    EXPECT_EQ(link.high_water(), 20u);
    for (Label::rep_type i = 0; i < 20; ++i) {
      ASSERT_EQ(link.pop().label.value(), i);
    }
    EXPECT_EQ(link.high_water(), 20u);  // popping never lowers the peak
    link.reset();
    EXPECT_EQ(link.high_water(), 0u);
  }
}

}  // namespace
}  // namespace hring::sim
