#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace hring::sim {
namespace {

TEST(LinkTest, StartsEmpty) {
  Link link;
  EXPECT_TRUE(link.empty());
  EXPECT_EQ(link.size(), 0u);
  EXPECT_EQ(link.head(), nullptr);
  EXPECT_EQ(link.high_water(), 0u);
}

TEST(LinkTest, FifoOrder) {
  Link link;
  link.push(Message::token(Label(1)));
  link.push(Message::token(Label(2)));
  link.push(Message::finish());
  ASSERT_NE(link.head(), nullptr);
  EXPECT_EQ(link.head()->label, Label(1));
  EXPECT_EQ(link.pop().label, Label(1));
  EXPECT_EQ(link.pop().label, Label(2));
  EXPECT_EQ(link.pop().kind, MsgKind::kFinish);
  EXPECT_TRUE(link.empty());
}

TEST(LinkTest, HighWaterTracksPeak) {
  Link link;
  link.push(Message::token(Label(1)));
  link.push(Message::token(Label(2)));
  link.pop();
  link.pop();
  link.push(Message::token(Label(3)));
  EXPECT_EQ(link.high_water(), 2u);
}

TEST(LinkTest, InTransitMessagesAreInvisible) {
  Link link;
  link.push(Message::token(Label(7)), /*ready_time=*/2.0);
  EXPECT_EQ(link.head(1.0), nullptr);     // still in transit at t=1
  ASSERT_NE(link.head(2.0), nullptr);     // delivered at t=2
  EXPECT_EQ(link.head(2.0)->label, Label(7));
  EXPECT_NE(link.head(), nullptr);        // default now = infinity
}

TEST(LinkTest, HeadReadyTime) {
  Link link;
  link.push(Message::token(Label(1)), 0.5);
  link.push(Message::token(Label(2)), 1.5);
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 0.5);
  link.pop();
  EXPECT_DOUBLE_EQ(link.head_ready_time(), 1.5);
  EXPECT_DOUBLE_EQ(link.last_ready_time(), 1.5);
}

TEST(LinkTest, RejectsDecreasingReadyTimes) {
  Link link;
  link.push(Message::token(Label(1)), 2.0);
  EXPECT_DEATH(link.push(Message::token(Label(2)), 1.0), "precondition");
}

TEST(LinkTest, OnlyReadyHeadIsVisibleEvenIfLaterOnesQueued) {
  Link link;
  link.push(Message::token(Label(1)), 3.0);
  link.push(Message::token(Label(2)), 3.0);
  EXPECT_EQ(link.head(2.9), nullptr);
  EXPECT_EQ(link.head(3.0)->label, Label(1));
}

}  // namespace
}  // namespace hring::sim
