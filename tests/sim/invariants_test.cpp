#include "sim/invariants.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

/// Every process declares itself leader at init: violates uniqueness.
class EveryoneLeadsProcess final : public Process {
 public:
  EveryoneLeadsProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message* head) const override {
    return init_ || head != nullptr;
  }

  void fire(const Message*, Context& ctx) override {
    if (init_) {
      init_ = false;
      declare_leader();
      set_leader_label(id());
      set_done();
      ctx.send(Message::finish_label(id()));
      return;
    }
    ctx.consume();
    halt_self();
  }

  [[nodiscard]] std::size_t space_bits(std::size_t b) const override {
    return 2 * b + 3;
  }
  [[nodiscard]] std::string debug_state() const override { return "X"; }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<EveryoneLeadsProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

/// Halts at init without ever setting done: violates bullet 4.
class HaltsEarlyProcess final : public Process {
 public:
  HaltsEarlyProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message*) const override { return init_; }

  void fire(const Message*, Context&) override {
    init_ = false;
    halt_self();
  }

  [[nodiscard]] std::size_t space_bits(std::size_t b) const override {
    return b + 1;
  }
  [[nodiscard]] std::string debug_state() const override { return "H"; }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<HaltsEarlyProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

/// Declares done without any leader existing: violates bullet 3.
class DoneWithoutLeaderProcess final : public Process {
 public:
  DoneWithoutLeaderProcess(ProcessId pid, Label id) : Process(pid, id) {}

  [[nodiscard]] bool enabled(const Message*) const override { return init_; }

  void fire(const Message*, Context&) override {
    init_ = false;
    set_leader_label(id());
    set_done();
    halt_self();
  }

  [[nodiscard]] std::size_t space_bits(std::size_t b) const override {
    return b + 1;
  }
  [[nodiscard]] std::string debug_state() const override { return "D"; }

  [[nodiscard]] static ProcessFactory make() {
    return [](ProcessId pid, Label id) {
      return std::make_unique<DoneWithoutLeaderProcess>(pid, id);
    };
  }

 private:
  bool init_ = true;
};

ring::LabeledRing small_ring() {
  return ring::LabeledRing::from_values({1, 2, 3});
}

TEST(SpecMonitorTest, CleanElectionHasNoViolations) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), testing::TrivialElectProcess::make(),
                    sched);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_FALSE(monitor.violated());
  EXPECT_TRUE(monitor.violations().empty());
  EXPECT_FALSE(monitor.first_violation_step().has_value());
}

TEST(SpecMonitorTest, DetectsMultipleLeaders) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), EveryoneLeadsProcess::make(), sched);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  engine.run();
  ASSERT_TRUE(monitor.violated());
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("simultaneous leaders") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(monitor.first_violation_step().has_value());
  EXPECT_EQ(*monitor.first_violation_step(), 1u);
}

TEST(SpecMonitorTest, DetectsHaltBeforeDone) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), HaltsEarlyProcess::make(), sched);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  engine.run();
  ASSERT_TRUE(monitor.violated());
  EXPECT_NE(monitor.violations()[0].find("halted before done"),
            std::string::npos);
}

TEST(SpecMonitorTest, DetectsDoneWithoutLeader) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), DoneWithoutLeaderProcess::make(), sched);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  engine.run();
  ASSERT_TRUE(monitor.violated());
  bool found = false;
  for (const auto& v : monitor.violations()) {
    if (v.find("no leader carries label") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SpecMonitorTest, StopPredicateIntegration) {
  SynchronousScheduler sched;
  StepEngine engine(small_ring(), EveryoneLeadsProcess::make(), sched);
  SpecMonitor monitor;
  engine.add_observer(&monitor);
  auto stop = [&monitor] { return monitor.violated(); };
  engine.set_stop_predicate(stop);
  const RunResult result = engine.run();
  EXPECT_EQ(result.outcome, Outcome::kViolation);
  // Stopped at the first violating step, not at termination.
  EXPECT_EQ(result.stats.steps, 1u);
}

}  // namespace
}  // namespace hring::sim
