#include "sim/message.hpp"

#include <gtest/gtest.h>

namespace hring::sim {
namespace {

TEST(MessageTest, FactoryKinds) {
  EXPECT_EQ(Message::token(Label(3)).kind, MsgKind::kToken);
  EXPECT_EQ(Message::finish().kind, MsgKind::kFinish);
  EXPECT_EQ(Message::phase_shift(Label(1)).kind, MsgKind::kPhaseShift);
  EXPECT_EQ(Message::finish_label(Label(2)).kind, MsgKind::kFinishLabel);
  EXPECT_EQ(Message::probe_one(Label(4)).kind, MsgKind::kProbeOne);
  EXPECT_EQ(Message::probe_two(Label(5)).kind, MsgKind::kProbeTwo);
}

TEST(MessageTest, PayloadRoundTrip) {
  EXPECT_EQ(Message::token(Label(42)).label, Label(42));
  EXPECT_EQ(Message::phase_shift(Label(7)).label, Label(7));
}

TEST(MessageTest, Equality) {
  EXPECT_EQ(Message::token(Label(1)), Message::token(Label(1)));
  EXPECT_NE(Message::token(Label(1)), Message::token(Label(2)));
  EXPECT_NE(Message::token(Label(1)), Message::phase_shift(Label(1)));
}

TEST(MessageTest, KindNames) {
  EXPECT_STREQ(kind_name(MsgKind::kToken), "TOKEN");
  EXPECT_STREQ(kind_name(MsgKind::kFinish), "FINISH");
  EXPECT_STREQ(kind_name(MsgKind::kPhaseShift), "PHASE_SHIFT");
  EXPECT_STREQ(kind_name(MsgKind::kFinishLabel), "FINISH_LABEL");
}

TEST(MessageTest, KindIndexIsDense) {
  EXPECT_EQ(kind_index(MsgKind::kToken), 0u);
  EXPECT_LT(kind_index(MsgKind::kProbeTwo), kNumMsgKinds);
}

TEST(MessageTest, BitsChargeTagPlusLabel) {
  const std::size_t b = 5;
  EXPECT_EQ(message_bits(Message::token(Label(1)), b), 3u + 5u);
  EXPECT_EQ(message_bits(Message::finish(), b), 3u);  // no payload
  EXPECT_EQ(message_bits(Message::phase_shift(Label(1)), b), 3u + 5u);
}

TEST(MessageTest, ToStringRendering) {
  EXPECT_EQ(to_string(Message::token(Label(9))), "<TOKEN,9>");
  EXPECT_EQ(to_string(Message::finish()), "<FINISH>");
  EXPECT_EQ(to_string(Message::phase_shift(Label(2))), "<PHASE_SHIFT,2>");
}

}  // namespace
}  // namespace hring::sim
