#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hring::sim {
namespace {

const std::vector<ProcessId> kEnabled = {0, 2, 5, 7};

TEST(SynchronousSchedulerTest, SelectsEveryone) {
  SynchronousScheduler sched;
  std::vector<ProcessId> out;
  sched.select(kEnabled, out);
  EXPECT_EQ(out, kEnabled);
}

TEST(RoundRobinSchedulerTest, RotatesThroughEnabled) {
  RoundRobinScheduler sched;
  std::vector<ProcessId> picks;
  for (int i = 0; i < 8; ++i) {
    std::vector<ProcessId> out;
    sched.select(kEnabled, out);
    ASSERT_EQ(out.size(), 1u);
    picks.push_back(out[0]);
  }
  // Two full rotations over {0,2,5,7}.
  const std::vector<ProcessId> expected = {0, 2, 5, 7, 0, 2, 5, 7};
  EXPECT_EQ(picks, expected);
}

TEST(RoundRobinSchedulerTest, SkipsDisabled) {
  RoundRobinScheduler sched;
  std::vector<ProcessId> out;
  sched.select({3, 9}, out);
  EXPECT_EQ(out, (std::vector<ProcessId>{3}));
  out.clear();
  sched.select({0, 1, 9}, out);  // next_=4: first enabled >= 4 is 9
  EXPECT_EQ(out, (std::vector<ProcessId>{9}));
  out.clear();
  sched.select({0, 1}, out);  // wraps
  EXPECT_EQ(out, (std::vector<ProcessId>{0}));
}

TEST(RandomSingleSchedulerTest, AlwaysExactlyOneEnabledPick) {
  RandomSingleScheduler sched{support::Rng(42)};
  for (int i = 0; i < 100; ++i) {
    std::vector<ProcessId> out;
    sched.select(kEnabled, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(std::binary_search(kEnabled.begin(), kEnabled.end(), out[0]));
  }
}

TEST(RandomSingleSchedulerTest, EventuallyPicksEveryone) {
  RandomSingleScheduler sched{support::Rng(7)};
  std::set<ProcessId> seen;
  for (int i = 0; i < 200; ++i) {
    std::vector<ProcessId> out;
    sched.select(kEnabled, out);
    seen.insert(out[0]);
  }
  EXPECT_EQ(seen.size(), kEnabled.size());
}

TEST(RandomSubsetSchedulerTest, NeverEmptyAndAlwaysSubset) {
  RandomSubsetScheduler sched{support::Rng(99), 0.5};
  for (int i = 0; i < 200; ++i) {
    std::vector<ProcessId> out;
    sched.select(kEnabled, out);
    ASSERT_FALSE(out.empty());
    for (const ProcessId pid : out) {
      EXPECT_TRUE(
          std::binary_search(kEnabled.begin(), kEnabled.end(), pid));
    }
  }
}

TEST(RandomSubsetSchedulerTest, ExtremeProbabilities) {
  RandomSubsetScheduler never{support::Rng(1), 0.0};
  std::vector<ProcessId> out;
  never.select(kEnabled, out);
  EXPECT_EQ(out.size(), 1u);  // forced non-empty

  RandomSubsetScheduler always{support::Rng(1), 1.0};
  out.clear();
  always.select(kEnabled, out);
  EXPECT_EQ(out, kEnabled);
}

TEST(ConvoySchedulerTest, AlwaysPicksSmallestPid) {
  ConvoyScheduler sched;
  std::vector<ProcessId> out;
  sched.select(kEnabled, out);
  EXPECT_EQ(out, (std::vector<ProcessId>{0}));
}

TEST(SchedulerTest, Names) {
  EXPECT_STREQ(SynchronousScheduler{}.name(), "synchronous");
  EXPECT_STREQ(RoundRobinScheduler{}.name(), "round-robin");
  EXPECT_STREQ(ConvoyScheduler{}.name(), "convoy");
}

}  // namespace
}  // namespace hring::sim
