// SpecMonitor negative paths that no real Process can produce through the
// protected mutators (declare_leader/set_done/halt_self only ever move
// forward): isLeader and done reverts, resuming after halt, and leader
// re-targeting after done. A ScriptedProcess overrides the virtual spec
// getters to present arbitrary trajectories, and a minimal ExecutionView
// drives the monitor directly — no engine in the loop, so each check is
// exercised in isolation.
#include "sim/invariants.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/link.hpp"
#include "sim/process.hpp"

namespace hring::sim {
namespace {

/// Spec variables presented to the monitor for one process at one step.
struct SpecState {
  bool is_leader = false;
  bool done = false;
  bool halted = false;
  std::optional<Label> leader;
};

class ScriptedProcess final : public Process {
 public:
  ScriptedProcess(ProcessId pid, Label id) : Process(pid, id) {}

  SpecState now;

  [[nodiscard]] bool is_leader() const override { return now.is_leader; }
  [[nodiscard]] bool done() const override { return now.done; }
  [[nodiscard]] bool halted() const override { return now.halted; }
  [[nodiscard]] std::optional<Label> leader() const override {
    return now.leader;
  }

  // Never fired: the monitor only reads spec variables.
  [[nodiscard]] bool enabled(const Message*) const override { return false; }
  void fire(const Message*, Context&) override {}
  [[nodiscard]] std::size_t space_bits(std::size_t b) const override {
    return b;
  }
  [[nodiscard]] std::string debug_state() const override { return "S"; }
};

/// Hand-cranked execution: the test mutates the scripted processes and
/// advances the step counter between on_step_end calls.
class ScriptedView final : public ExecutionView {
 public:
  explicit ScriptedView(std::size_t n) {
    for (ProcessId pid = 0; pid < n; ++pid) {
      procs_.push_back(std::make_unique<ScriptedProcess>(
          pid, Label(pid + 1)));
    }
    links_.resize(n);
  }

  [[nodiscard]] std::size_t process_count() const override {
    return procs_.size();
  }
  [[nodiscard]] const Process& process(ProcessId pid) const override {
    return *procs_[pid];
  }
  [[nodiscard]] const Link& out_link(ProcessId pid) const override {
    return links_[pid];
  }
  [[nodiscard]] std::uint64_t current_step() const override { return step_; }
  [[nodiscard]] double current_time() const override {
    return static_cast<double>(step_);
  }

  [[nodiscard]] ScriptedProcess& at(ProcessId pid) { return *procs_[pid]; }
  void advance() { ++step_; }

 private:
  std::vector<std::unique_ptr<ScriptedProcess>> procs_;
  std::vector<Link> links_;
  std::uint64_t step_ = 0;
};

bool mentions(const SpecMonitor& monitor, const std::string& needle) {
  for (const auto& v : monitor.violations()) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SpecMonitorViolationTest, LeaderRevertReported) {
  ScriptedView view(3);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(1).now.is_leader = true;
  view.advance();
  monitor.on_step_end(view);
  EXPECT_FALSE(monitor.violated());

  view.at(1).now.is_leader = false;  // irrevocability broken
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p1.isLeader reverted TRUE->FALSE"));
  ASSERT_TRUE(monitor.first_violation_step().has_value());
  EXPECT_EQ(*monitor.first_violation_step(), 2u);
}

TEST(SpecMonitorViolationTest, DoneRevertReported) {
  ScriptedView view(2);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(0).now.is_leader = true;
  view.at(0).now.leader = Label(1);
  view.at(0).now.done = true;
  view.advance();
  monitor.on_step_end(view);
  EXPECT_FALSE(monitor.violated());

  view.at(0).now.done = false;  // done must be stable
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p0.done reverted TRUE->FALSE"));
}

TEST(SpecMonitorViolationTest, ResumeAfterHaltReported) {
  ScriptedView view(2);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(1).now.is_leader = true;
  view.at(1).now.leader = Label(2);
  view.at(1).now.done = true;
  view.at(1).now.halted = true;
  view.advance();
  monitor.on_step_end(view);
  EXPECT_FALSE(monitor.violated());

  view.at(1).now.halted = false;  // (halt) means *never* another action
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p1 resumed after halting"));
}

TEST(SpecMonitorViolationTest, HaltWithoutDoneReported) {
  ScriptedView view(2);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(0).now.halted = true;  // bullet 4: done must precede halt
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p0 halted before done"));
}

TEST(SpecMonitorViolationTest, LeaderRetargetAfterDoneReported) {
  ScriptedView view(3);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(0).now.is_leader = true;
  view.at(2).now.done = true;
  view.at(2).now.leader = Label(1);  // p0's label: consistent
  view.advance();
  monitor.on_step_end(view);
  EXPECT_FALSE(monitor.violated());

  view.at(2).now.leader = Label(2);  // belief changed after done
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p2.leader changed after done"));
}

TEST(SpecMonitorViolationTest, LeaderLabelMismatchReported) {
  ScriptedView view(3);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(0).now.is_leader = true;   // p0 leads with label 1
  view.at(2).now.done = true;
  view.at(2).now.leader = Label(3);  // …but p2 believes in label 3
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p2.done but no leader carries label 3"));
}

TEST(SpecMonitorViolationTest, DoneWithoutLeaderVariableReported) {
  ScriptedView view(2);
  SpecMonitor monitor;
  monitor.on_start(view);
  view.at(1).now.done = true;  // done but p.leader never assigned
  view.advance();
  monitor.on_step_end(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p1.done without p.leader set"));
}

TEST(SpecMonitorViolationTest, InitialStateViolationsReported) {
  ScriptedView view(2);
  view.at(0).now.is_leader = true;
  view.at(1).now.done = true;
  SpecMonitor monitor;
  monitor.on_start(view);
  ASSERT_TRUE(monitor.violated());
  EXPECT_TRUE(mentions(monitor, "p0.isLeader TRUE initially"));
  EXPECT_TRUE(mentions(monitor, "p1.done TRUE initially"));
}

}  // namespace
}  // namespace hring::sim
