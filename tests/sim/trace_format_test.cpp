#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "support/json.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

using testing::TrivialElectProcess;

TEST(TraceFormatTest, PrintShowsActionsAndMessages) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  std::ostringstream out;
  trace.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("p0 init"), std::string::npos);
  EXPECT_NE(text.find("rcv <FINISH_LABEL,1>"), std::string::npos);
  EXPECT_NE(text.find("[step 0"), std::string::npos);
  EXPECT_EQ(text.find("dropped"), std::string::npos);
}

// Golden rendering: the synchronous TrivialElect run on (1,2,3) is fully
// deterministic, so the trace text is an exact artifact. Any formatting
// change to TraceRecorder::print must update this expectation knowingly.
TEST(TraceFormatTest, PrintGoldenOutput) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  std::ostringstream out;
  trace.print(out);
  EXPECT_EQ(out.str(),
            "[step 0 t=0] p0 init -> RUN\n"
            "[step 0 t=0] p1 init -> RUN\n"
            "[step 0 t=0] p2 init -> RUN\n"
            "[step 1 t=1] p1 learn rcv <FINISH_LABEL,1> -> RUN\n"
            "[step 2 t=2] p2 learn rcv <FINISH_LABEL,1> -> RUN\n"
            "[step 3 t=3] p0 halt rcv <FINISH_LABEL,1> -> RUN\n");
}

TEST(TraceFormatTest, BoundedRecorderCountsDrops) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace(/*max_entries=*/2);
  engine.add_observer(&trace);
  const auto result = engine.run();
  ASSERT_EQ(result.outcome, Outcome::kTerminated);
  EXPECT_EQ(trace.entries().size(), 2u);
  // Every action past the cap is dropped — exactly, not approximately.
  EXPECT_EQ(trace.dropped(), result.stats.actions - 2);
  std::ostringstream out;
  trace.print(out);
  EXPECT_NE(out.str().find("(4 actions dropped)"), std::string::npos);
}

TEST(TraceFormatTest, EntriesCarrySentMessages) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  // p0's init sends exactly the announcement.
  const auto& first = trace.entries().front();
  EXPECT_EQ(first.event.pid, 0u);
  ASSERT_EQ(first.event.sent.size(), 1u);
  EXPECT_EQ(first.event.sent[0].kind, MsgKind::kFinishLabel);
}

TEST(StatsSummaryTest, MentionsCoreCounters) {
  Stats stats;
  stats.steps = 7;
  stats.messages_sent = 12;
  stats.peak_space_bits = 33;
  const std::string summary = stats.summary();
  EXPECT_NE(summary.find("steps=7"), std::string::npos);
  EXPECT_NE(summary.find("sent=12"), std::string::npos);
  EXPECT_NE(summary.find("peak_space_bits=33"), std::string::npos);
}

// Stats::to_json is the single serialization the run report, the sweep
// rows and the telemetry documents all share.
TEST(StatsJsonTest, EmitsEveryCounter) {
  Stats stats;
  stats.reset(2);
  stats.steps = 7;
  stats.actions = 9;
  stats.time_units = 3.5;
  stats.messages_sent = 12;
  stats.messages_received = 11;
  stats.sent_by_process = {8, 4};
  stats.received_by_process = {6, 5};
  stats.sent_by_kind[kind_index(MsgKind::kToken)] = 12;
  stats.message_bits_sent = 96;
  stats.peak_space_bits = 33;
  stats.peak_link_occupancy = 2;
  stats.label_comparisons = 40;

  std::ostringstream out;
  {
    support::JsonWriter json(out);
    stats.to_json(json);
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"steps\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"actions\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"messages_sent\":12"), std::string::npos);
  EXPECT_NE(doc.find("\"peak_space_bits\":33"), std::string::npos);
  EXPECT_NE(doc.find("\"label_comparisons\":40"), std::string::npos);
  // Zero-suppressed kind map: only TOKEN appears.
  EXPECT_NE(doc.find("\"TOKEN\":12"), std::string::npos);
  EXPECT_EQ(doc.find("\"PHASE_SHIFT\""), std::string::npos);
  EXPECT_NE(doc.find("\"sent_by_process\":[8,4]"), std::string::npos);
  EXPECT_NE(doc.find("\"received_by_process\":[6,5]"), std::string::npos);
}

}  // namespace
}  // namespace hring::sim
