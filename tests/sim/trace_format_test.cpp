#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ring/labeled_ring.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "tests/sim/test_processes.hpp"

namespace hring::sim {
namespace {

using testing::TrivialElectProcess;

TEST(TraceFormatTest, PrintShowsActionsAndMessages) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  std::ostringstream out;
  trace.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("p0 init"), std::string::npos);
  EXPECT_NE(text.find("rcv <FINISH_LABEL,1>"), std::string::npos);
  EXPECT_NE(text.find("[step 0"), std::string::npos);
  EXPECT_EQ(text.find("dropped"), std::string::npos);
}

TEST(TraceFormatTest, BoundedRecorderCountsDrops) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace(/*max_entries=*/2);
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  EXPECT_EQ(trace.entries().size(), 2u);
  EXPECT_GT(trace.dropped(), 0u);
  std::ostringstream out;
  trace.print(out);
  EXPECT_NE(out.str().find("actions dropped"), std::string::npos);
}

TEST(TraceFormatTest, EntriesCarrySentMessages) {
  const auto ring = ring::LabeledRing::from_values({1, 2, 3});
  SynchronousScheduler sched;
  StepEngine engine(ring, TrivialElectProcess::make(), sched);
  TraceRecorder trace;
  engine.add_observer(&trace);
  ASSERT_EQ(engine.run().outcome, Outcome::kTerminated);
  // p0's init sends exactly the announcement.
  const auto& first = trace.entries().front();
  EXPECT_EQ(first.event.pid, 0u);
  ASSERT_EQ(first.event.sent.size(), 1u);
  EXPECT_EQ(first.event.sent[0].kind, MsgKind::kFinishLabel);
}

TEST(StatsSummaryTest, MentionsCoreCounters) {
  Stats stats;
  stats.steps = 7;
  stats.messages_sent = 12;
  stats.peak_space_bits = 33;
  const std::string summary = stats.summary();
  EXPECT_NE(summary.find("steps=7"), std::string::npos);
  EXPECT_NE(summary.find("sent=12"), std::string::npos);
  EXPECT_NE(summary.find("peak_space_bits=33"), std::string::npos);
}

}  // namespace
}  // namespace hring::sim
