#include "core/ringspec.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace hring::core {
namespace {

TEST(RingSpecTest, MinimalSpec) {
  const auto result = parse_ringspec("ring = 1,2,2\n");
  ASSERT_TRUE(result.spec.has_value())
      << result.error->to_string();
  EXPECT_EQ(result.spec->ring.to_string(), "1.2.2");
  EXPECT_EQ(result.spec->config.algorithm.id, election::AlgorithmId::kAk);
  // k defaults to the ring's actual multiplicity.
  EXPECT_EQ(result.spec->config.algorithm.k, 2u);
}

TEST(RingSpecTest, FullSpec) {
  const auto result = parse_ringspec(
      "# full example\n"
      "ring   = 1,3,1,3,2,2,1,2\n"
      "algo   = Bk\n"
      "k      = 3\n"
      "engine = event\n"
      "delay  = uniform\n"
      "sched  = convoy\n"
      "seed   = 99\n"
      "budget = 123456\n");
  ASSERT_TRUE(result.spec.has_value()) << result.error->to_string();
  const auto& spec = *result.spec;
  EXPECT_EQ(spec.ring.size(), 8u);
  EXPECT_EQ(spec.config.algorithm.id, election::AlgorithmId::kBk);
  EXPECT_EQ(spec.config.algorithm.k, 3u);
  EXPECT_EQ(spec.config.engine, EngineKind::kEvent);
  EXPECT_EQ(spec.config.delay, DelayKind::kUniformRandom);
  EXPECT_EQ(spec.config.scheduler, SchedulerKind::kConvoy);
  EXPECT_EQ(spec.config.seed, 99u);
  EXPECT_EQ(spec.config.budget, 123456u);
}

TEST(RingSpecTest, CommentsAndBlankLinesIgnored) {
  const auto result = parse_ringspec(
      "\n# comment\n   \nring = 2,1\n# trailing comment\n");
  ASSERT_TRUE(result.spec.has_value());
  EXPECT_EQ(result.spec->ring.size(), 2u);
}

TEST(RingSpecTest, WhitespaceTolerant) {
  const auto result =
      parse_ringspec("  ring =  1 , 2 , 3  \r\n  algo=Peterson\r\n");
  ASSERT_TRUE(result.spec.has_value()) << result.error->to_string();
  EXPECT_EQ(result.spec->ring.to_string(), "1.2.3");
  EXPECT_EQ(result.spec->config.algorithm.id,
            election::AlgorithmId::kPeterson);
}

TEST(RingSpecTest, MissingRingIsAnError) {
  const auto result = parse_ringspec("algo = Ak\n");
  ASSERT_TRUE(result.error.has_value());
  EXPECT_NE(result.error->to_string().find("missing required key"),
            std::string::npos);
}

TEST(RingSpecTest, ErrorsCarryLineNumbers) {
  const auto result = parse_ringspec("ring = 1,2\nalgo = NoSuch\n");
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->line, 2u);
  EXPECT_NE(result.error->message.find("unknown algorithm"),
            std::string::npos);
}

TEST(RingSpecTest, RejectsBadLabels) {
  EXPECT_TRUE(parse_ringspec("ring = 1,x,3\n").error.has_value());
  EXPECT_TRUE(parse_ringspec("ring = 1\n").error.has_value());
  EXPECT_TRUE(parse_ringspec("ring = \n").error.has_value());
}

TEST(RingSpecTest, RejectsMalformedLines) {
  EXPECT_TRUE(parse_ringspec("ring 1,2\n").error.has_value());
  EXPECT_TRUE(parse_ringspec("ring = 1,2\nwhat = ever\n").error
                  .has_value());
  EXPECT_TRUE(parse_ringspec("ring = 1,2\nk = 0\n").error.has_value());
  EXPECT_TRUE(parse_ringspec("ring = 1,2\nseed = -4\n").error.has_value());
  EXPECT_TRUE(
      parse_ringspec("ring = 1,2\nengine = quantum\n").error.has_value());
}

TEST(RingSpecTest, ParsedSpecActuallyRuns) {
  const auto result = parse_ringspec(
      "ring = 1,2,2\nalgo = Bk\nk = 2\nsched = round-robin\n");
  ASSERT_TRUE(result.spec.has_value());
  const auto m = measure(result.spec->ring, result.spec->config);
  EXPECT_TRUE(m.ok()) << m.verification.to_string();
  EXPECT_EQ(m.result.leader_pid(), std::optional<sim::ProcessId>(0));
}

}  // namespace
}  // namespace hring::core
