#include "core/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "core/experiment.hpp"
#include "ring/generator.hpp"

namespace hring::core {
namespace {

TEST(ParallelMapTest, EmptyTaskSet) {
  const auto out = parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMapTest, ResultsIndexedByTask) {
  const auto out = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMapTest, IndependentOfWorkerCount) {
  const auto task = [](std::size_t i) {
    // Deterministic per-index randomness, as the library prescribes.
    support::Rng rng(i);
    return rng();
  };
  const auto serial = parallel_map<std::uint64_t>(64, task, 1);
  for (const std::size_t workers : {2u, 3u, 8u, 17u}) {
    EXPECT_EQ(parallel_map<std::uint64_t>(64, task, workers), serial)
        << workers << " workers";
  }
}

TEST(ParallelMapTest, PropagatesFirstException) {
  EXPECT_THROW(parallel_map<int>(
                   50,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                     return 0;
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelMapTest, PropagatesExceptionOnSingleWorkerPath) {
  // The workers == 1 fallback runs inline; its errors must surface the
  // same way the pool's do.
  EXPECT_THROW(parallel_map<int>(
                   5,
                   [](std::size_t i) {
                     if (i == 2) throw std::runtime_error("inline boom");
                     return 0;
                   },
                   1),
               std::runtime_error);
}

TEST(ParallelMapTest, PropagatesExactlyOneOfManyExceptions) {
  // Every task throws on every worker; exactly one exception (some task's)
  // must reach the caller, with its message intact.
  try {
    parallel_map<int>(
        32,
        [](std::size_t i) -> int {
          throw std::runtime_error("task " + std::to_string(i));
        },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
  }
}

TEST(ParallelMapTest, MoveOnlyTaskCompiles) {
  // Task is a deduced template parameter: move-only callables (e.g. ones
  // capturing a unique_ptr) are accepted, which std::function would reject.
  auto state = std::make_unique<int>(41);
  auto task = [state = std::move(state)](std::size_t i) {
    return *state + static_cast<int>(i);
  };
  const auto out = parallel_map<int>(3, std::move(task), 2);
  EXPECT_EQ(out, (std::vector<int>{41, 42, 43}));
}

TEST(ParallelMapTest, SingleWorkerFallback) {
  const auto out =
      parallel_map<int>(5, [](std::size_t i) { return static_cast<int>(i); },
                        1);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelMapTest, ElectionGridMatchesSerial) {
  // A realistic grid: 24 elections across n/k/seed cells. Statistics must
  // be identical however many workers compute them — engine state is
  // thread-confined and all randomness is per-cell.
  struct Cell {
    std::uint64_t messages;
    std::optional<sim::ProcessId> leader;
    bool ok;
  };
  const auto task = [](std::size_t i) {
    const std::size_t n = 4 + (i % 6) * 3;
    const std::size_t k = 1 + (i % 3);
    support::Rng rng(1000 + i);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kAk, k, false};
    const auto m = measure(*ring, config);
    return Cell{m.result.stats.messages_sent, m.result.leader_pid(),
                m.ok()};
  };
  const auto serial = parallel_map<Cell>(24, task, 1);
  const auto parallel = parallel_map<Cell>(24, task, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << i;
    EXPECT_EQ(serial[i].messages, parallel[i].messages) << i;
    EXPECT_EQ(serial[i].leader, parallel[i].leader) << i;
    EXPECT_TRUE(parallel[i].ok) << i;
  }
}

TEST(ParallelMapTest, LabelComparisonCountsAreThreadConfined) {
  // Each task's run_election resets/reads the thread-local comparison
  // counter; parallel execution must report the same per-run counts.
  const auto task = [](std::size_t i) {
    support::Rng rng(i + 7);
    const auto ring = ring::distinct_ring(8, rng);
    ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kBk, 1, false};
    return run_election(ring, config).stats.label_comparisons;
  };
  const auto serial = parallel_map<std::uint64_t>(12, task, 1);
  const auto parallel = parallel_map<std::uint64_t>(12, task, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMapTest, RecycledEnginesInvariantUnderWorkerCount) {
  // run_election recycles a thread_local engine, so within one worker
  // consecutive cells reuse links/stats buffers. Results must not depend
  // on which cells shared a worker — i.e. on the worker count at all.
  const auto task = [](std::size_t i) {
    support::Rng rng(31 + i);
    const std::size_t n = 3 + i % 7;
    const auto ring = ring::distinct_ring(n, rng);
    ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kAk, 1, false};
    config.seed = 90 + i;
    const auto result = run_election(ring, config);
    return std::make_tuple(result.stats.messages_sent, result.stats.steps,
                           result.stats.label_comparisons,
                           result.leader_pid());
  };
  using Cell = decltype(task(0));
  const auto serial = parallel_map<Cell>(28, task, 1);
  for (const std::size_t workers : {2u, 5u}) {
    EXPECT_EQ(parallel_map<Cell>(28, task, workers), serial)
        << workers << " workers";
  }
}

TEST(ParallelMapTest, DefaultWorkerCountPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

}  // namespace
}  // namespace hring::core
