#include "core/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/experiment.hpp"
#include "ring/generator.hpp"

namespace hring::core {
namespace {

TEST(ParallelMapTest, EmptyTaskSet) {
  const auto out = parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMapTest, ResultsIndexedByTask) {
  const auto out = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMapTest, IndependentOfWorkerCount) {
  const auto task = [](std::size_t i) {
    // Deterministic per-index randomness, as the library prescribes.
    support::Rng rng(i);
    return rng();
  };
  const auto serial = parallel_map<std::uint64_t>(64, task, 1);
  for (const std::size_t workers : {2u, 3u, 8u, 17u}) {
    EXPECT_EQ(parallel_map<std::uint64_t>(64, task, workers), serial)
        << workers << " workers";
  }
}

TEST(ParallelMapTest, PropagatesFirstException) {
  EXPECT_THROW(parallel_map<int>(
                   50,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                     return 0;
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelMapTest, SingleWorkerFallback) {
  const auto out =
      parallel_map<int>(5, [](std::size_t i) { return static_cast<int>(i); },
                        1);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelMapTest, ElectionGridMatchesSerial) {
  // A realistic grid: 24 elections across n/k/seed cells. Statistics must
  // be identical however many workers compute them — engine state is
  // thread-confined and all randomness is per-cell.
  struct Cell {
    std::uint64_t messages;
    std::optional<sim::ProcessId> leader;
    bool ok;
  };
  const auto task = [](std::size_t i) {
    const std::size_t n = 4 + (i % 6) * 3;
    const std::size_t k = 1 + (i % 3);
    support::Rng rng(1000 + i);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kAk, k, false};
    const auto m = measure(*ring, config);
    return Cell{m.result.stats.messages_sent, m.result.leader_pid(),
                m.ok()};
  };
  const auto serial = parallel_map<Cell>(24, task, 1);
  const auto parallel = parallel_map<Cell>(24, task, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << i;
    EXPECT_EQ(serial[i].messages, parallel[i].messages) << i;
    EXPECT_EQ(serial[i].leader, parallel[i].leader) << i;
    EXPECT_TRUE(parallel[i].ok) << i;
  }
}

TEST(ParallelMapTest, LabelComparisonCountsAreThreadConfined) {
  // Each task's run_election resets/reads the thread-local comparison
  // counter; parallel execution must report the same per-run counts.
  const auto task = [](std::size_t i) {
    support::Rng rng(i + 7);
    const auto ring = ring::distinct_ring(8, rng);
    ElectionConfig config;
    config.algorithm = {election::AlgorithmId::kBk, 1, false};
    return run_election(ring, config).stats.label_comparisons;
  };
  const auto serial = parallel_map<std::uint64_t>(12, task, 1);
  const auto parallel = parallel_map<std::uint64_t>(12, task, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMapTest, DefaultWorkerCountPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

}  // namespace
}  // namespace hring::core
