// Experiment E1: the Ω(kn) lower bound (Lemma 1, Corollaries 2 and 4).
//
// Lemma 1: any algorithm correct for U* ∩ K_k runs for at least
// 1 + (k-2)·n synchronous steps on every K_1 ring of n processes. A_k and
// B_k are correct for the larger class A ∩ K_k, so their synchronous
// executions on distinct-label rings must respect the bound — and they do,
// with measured step counts tracking k·n (asymptotic optimality of A_k,
// the paper's central positive claim).
#include <gtest/gtest.h>

#include <tuple>

#include "core/election_driver.hpp"
#include "core/experiment.hpp"
#include "ring/generator.hpp"

namespace hring {
namespace {

using core::ElectionConfig;
using election::AlgorithmId;

class LowerBoundSweep
    : public ::testing::TestWithParam<
          std::tuple<AlgorithmId, std::size_t, std::size_t>> {};

TEST_P(LowerBoundSweep, SynchronousStepsRespectLemma1) {
  const auto [algo, n, k] = GetParam();
  const auto ring = ring::sequential_ring(n);
  ElectionConfig config;
  config.algorithm = {algo, k, false};
  config.scheduler = core::SchedulerKind::kSynchronous;
  const auto m = core::measure(ring, config);
  ASSERT_TRUE(m.ok()) << m.verification.to_string();
  EXPECT_GE(m.result.stats.steps, core::lower_bound_steps(n, k))
      << election::algorithm_name(algo) << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LowerBoundSweep,
    ::testing::Combine(::testing::Values(AlgorithmId::kAk, AlgorithmId::kBk),
                       ::testing::Values<std::size_t>(4, 8, 16, 32),
                       ::testing::Values<std::size_t>(2, 3, 5, 8)),
    [](const auto& pinfo) {
      return std::string(election::algorithm_name(std::get<0>(pinfo.param))) +
             "_n" + std::to_string(std::get<1>(pinfo.param)) + "_k" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(LowerBoundTest, AkTimeIsThetaKn) {
  // Upper bound (2k+2)n and lower bound 1+(k-2)n sandwich A_k's
  // synchronous step count: the measured value must scale linearly in k.
  const std::size_t n = 16;
  const auto ring = ring::sequential_ring(n);
  std::uint64_t prev = 0;
  for (const std::size_t k : {2u, 4u, 8u}) {
    ElectionConfig config;
    config.algorithm = {AlgorithmId::kAk, k, false};
    const auto m = core::measure(ring, config);
    ASSERT_TRUE(m.ok());
    const std::uint64_t steps = m.result.stats.steps;
    EXPECT_GE(steps, core::lower_bound_steps(n, k));
    EXPECT_LE(static_cast<double>(steps), core::ak_time_bound(n, k));
    if (prev != 0) {
      // Doubling k should roughly double the time (within 3x slack).
      EXPECT_GT(steps, prev);
      EXPECT_LT(steps, 3 * prev);
    }
    prev = steps;
  }
}

TEST(LowerBoundTest, BoundFormulaSpotChecks) {
  EXPECT_EQ(core::lower_bound_steps(10, 2), 1u);
  EXPECT_EQ(core::lower_bound_steps(10, 3), 11u);
  EXPECT_EQ(core::lower_bound_steps(5, 6), 21u);
}

TEST(LowerBoundTest, LabelPermutationDoesNotBreakTheBound) {
  support::Rng rng(0x10eb);
  for (int rep = 0; rep < 10; ++rep) {
    const auto ring = ring::distinct_ring(12, rng);
    for (const auto algo : {AlgorithmId::kAk, AlgorithmId::kBk}) {
      ElectionConfig config;
      config.algorithm = {algo, 4, false};
      const auto m = core::measure(ring, config);
      ASSERT_TRUE(m.ok()) << ring.to_string();
      EXPECT_GE(m.result.stats.steps, core::lower_bound_steps(12, 4))
          << election::algorithm_name(algo) << " on " << ring.to_string();
    }
  }
}

}  // namespace
}  // namespace hring
