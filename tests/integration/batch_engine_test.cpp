// The batch engine's correctness obligation: byte-identical per-cell
// Stats against the scalar StepEngine for every covered configuration.
//
// A campaign is run twice over the same cell grid — once on the batch
// backend (several rings interleaved per arena, to exercise slot
// recycling) and once on the scalar backend — and every per-cell field
// is compared, including the full sim::Stats (defaulted operator==, so
// any divergence in steps, actions, message/bit accounting, space peaks
// or label-comparison counts fails the grid cell that produced it).
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "election/algorithm.hpp"
#include "sim/run_result.hpp"

namespace hring {
namespace {

using core::CampaignBackend;
using core::SweepConfig;
using election::AlgorithmId;

struct CellRecord {
  std::uint64_t election_seed = 0;
  sim::Outcome outcome = sim::Outcome::kDeadlock;
  std::optional<sim::ProcessId> leader;
  bool verified = false;
  sim::Stats stats;
};

std::vector<CellRecord> run_cells(SweepConfig config, CampaignBackend backend,
                                  std::size_t workers) {
  config.backend = backend;
  config.workers = workers;
  std::vector<CellRecord> out(config.cells);
  config.cell_sink = [&out](const core::CellView& view) {
    out[view.cell] = CellRecord{view.election_seed, view.outcome, view.leader,
                                view.verified, view.stats};
  };
  const auto result = core::run_campaign(config);
  EXPECT_EQ(result.backend, backend);
  EXPECT_EQ(result.cells, config.cells);
  return out;
}

void expect_identical(const std::vector<CellRecord>& batch,
                      const std::vector<CellRecord>& scalar,
                      const std::string& where) {
  ASSERT_EQ(batch.size(), scalar.size()) << where;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::string at = where + " cell " + std::to_string(i);
    EXPECT_EQ(batch[i].election_seed, scalar[i].election_seed) << at;
    EXPECT_EQ(batch[i].outcome, scalar[i].outcome) << at;
    EXPECT_EQ(batch[i].leader, scalar[i].leader) << at;
    EXPECT_EQ(batch[i].verified, scalar[i].verified) << at;
    EXPECT_EQ(batch[i].stats, scalar[i].stats) << at << " (Stats diverged)";
  }
}

constexpr core::SchedulerKind kAllSchedulers[] = {
    core::SchedulerKind::kSynchronous,  core::SchedulerKind::kRoundRobin,
    core::SchedulerKind::kRandomSingle, core::SchedulerKind::kRandomSubset,
    core::SchedulerKind::kConvoy,
};

TEST(BatchEngineCrossCheck, AkGridMatchesScalarEngine) {
  for (std::size_t k = 1; k <= 3; ++k) {
    for (std::size_t n = 2; n <= 7; ++n) {
      for (const auto scheduler : kAllSchedulers) {
        SweepConfig config;
        config.election.algorithm = {AlgorithmId::kAk, k, false};
        config.election.scheduler = scheduler;
        config.source = core::RingSource::random_asymmetric(n);
        config.cells = 5;
        config.seed = 0xA5EED + 1000 * k + 10 * n +
                      static_cast<std::uint64_t>(scheduler);
        config.batch_slots = 3;  // fewer slots than cells: recycle slots
        config.check_true_leader = true;

        const auto batch = run_cells(config, CampaignBackend::kBatch, 2);
        const auto scalar = run_cells(config, CampaignBackend::kScalar, 1);
        expect_identical(batch, scalar,
                         "Ak k=" + std::to_string(k) + " n=" +
                             std::to_string(n) + " sched=" +
                             core::scheduler_kind_name(scheduler));
        for (const auto& cell : batch) {
          EXPECT_EQ(cell.outcome, sim::Outcome::kTerminated);
          EXPECT_TRUE(cell.verified);
        }
      }
    }
  }
}

TEST(BatchEngineCrossCheck, ChangRobertsGridMatchesScalarEngine) {
  for (std::size_t n = 2; n <= 7; ++n) {
    for (const auto scheduler : kAllSchedulers) {
      SweepConfig config;
      config.election.algorithm = {AlgorithmId::kChangRoberts, 1, false};
      config.election.scheduler = scheduler;
      config.source = core::RingSource::distinct(n);
      config.cells = 5;
      config.seed = 0xC5EED + 10 * n + static_cast<std::uint64_t>(scheduler);
      config.batch_slots = 2;

      const auto batch = run_cells(config, CampaignBackend::kBatch, 2);
      const auto scalar = run_cells(config, CampaignBackend::kScalar, 1);
      expect_identical(batch, scalar,
                       "CR n=" + std::to_string(n) + " sched=" +
                           core::scheduler_kind_name(scheduler));
      for (const auto& cell : batch) {
        EXPECT_EQ(cell.outcome, sim::Outcome::kTerminated);
        EXPECT_TRUE(cell.verified);
      }
    }
  }
}

TEST(BatchEngineCrossCheck, BudgetExhaustionMatchesScalarEngine) {
  // A budget that truncates mid-election must cut both engines at the
  // same step with the same partial Stats.
  SweepConfig config;
  config.election.algorithm = {AlgorithmId::kChangRoberts, 1, false};
  config.election.scheduler = core::SchedulerKind::kRandomSingle;
  config.election.budget = 3;
  config.source = core::RingSource::distinct(6);
  config.cells = 8;
  config.seed = 0xB0D9ED;
  config.verify = false;  // truncated runs have no terminal state to check

  const auto batch = run_cells(config, CampaignBackend::kBatch, 1);
  const auto scalar = run_cells(config, CampaignBackend::kScalar, 1);
  expect_identical(batch, scalar, "budget=3");
  for (const auto& cell : batch) {
    EXPECT_EQ(cell.outcome, sim::Outcome::kBudgetExhausted);
    EXPECT_EQ(cell.stats.steps, 3u);
  }
}

TEST(BatchEngineCrossCheck, FixedRingSourceMatchesScalarEngine) {
  const auto ring = ring::LabeledRing::from_values({2, 1, 3, 1, 2, 1});
  SweepConfig config;
  config.election.algorithm = {AlgorithmId::kAk, 3, false};
  config.election.scheduler = core::SchedulerKind::kRandomSubset;
  config.source = core::RingSource::fixed(ring);
  config.cells = 12;
  config.seed = 0xF15ED;
  config.batch_slots = 4;
  config.check_true_leader = true;

  const auto batch = run_cells(config, CampaignBackend::kBatch, 2);
  const auto scalar = run_cells(config, CampaignBackend::kScalar, 2);
  expect_identical(batch, scalar, "fixed ring");
}

}  // namespace
}  // namespace hring
