// Cross-validation: A_k and B_k must agree on the elected process — both
// elect the true leader — across rings, engines, schedulers and delay
// models; and the identity of the winner must be independent of the
// daemon (determinism of the specification, not of the execution).
#include <gtest/gtest.h>

#include "core/election_driver.hpp"
#include "core/experiment.hpp"
#include "ring/generator.hpp"

namespace hring {
namespace {

using core::DelayKind;
using core::ElectionConfig;
using core::EngineKind;
using core::SchedulerKind;
using election::AlgorithmId;

TEST(CrossAlgorithmTest, AkAndBkElectTheSameProcess) {
  support::Rng rng(0xC405);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 2 + rng.below(14);
    const std::size_t k = 1 + rng.below(3);
    const std::size_t alphabet = (n + k - 1) / k + 2;
    const auto ring = ring::random_asymmetric_ring(n, k, alphabet, rng);
    ASSERT_TRUE(ring.has_value());

    ElectionConfig ak;
    ak.algorithm = {AlgorithmId::kAk, k, false};
    ElectionConfig bk;
    bk.algorithm = {AlgorithmId::kBk, k, false};

    const auto ma = core::measure(*ring, ak);
    const auto mb = core::measure(*ring, bk);
    ASSERT_TRUE(ma.ok()) << ring->to_string();
    ASSERT_TRUE(mb.ok()) << ring->to_string();
    EXPECT_EQ(ma.result.leader_pid(), mb.result.leader_pid())
        << ring->to_string();
    EXPECT_EQ(ma.result.leader_pid(),
              std::optional<sim::ProcessId>(ring->true_leader()));
  }
}

TEST(CrossAlgorithmTest, WinnerIndependentOfScheduler) {
  support::Rng rng(0x1dd);
  const auto ring = ring::random_asymmetric_ring(11, 2, 8, rng);
  ASSERT_TRUE(ring.has_value());
  const auto expected = ring->true_leader();
  for (const auto algo : {AlgorithmId::kAk, AlgorithmId::kBk}) {
    for (const auto sched :
         {SchedulerKind::kSynchronous, SchedulerKind::kRoundRobin,
          SchedulerKind::kRandomSingle, SchedulerKind::kRandomSubset,
          SchedulerKind::kConvoy}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        ElectionConfig config;
        config.algorithm = {algo, 2, false};
        config.scheduler = sched;
        config.seed = seed;
        const auto m = core::measure(*ring, config);
        ASSERT_TRUE(m.ok())
            << election::algorithm_name(algo) << "/"
            << core::scheduler_kind_name(sched) << " seed " << seed;
        EXPECT_EQ(m.result.leader_pid(),
                  std::optional<sim::ProcessId>(expected));
      }
    }
  }
}

TEST(CrossAlgorithmTest, WinnerIndependentOfDelayModel) {
  support::Rng rng(0xde1a);
  const auto ring = ring::random_asymmetric_ring(9, 3, 6, rng);
  ASSERT_TRUE(ring.has_value());
  const auto expected = ring->true_leader();
  for (const auto algo : {AlgorithmId::kAk, AlgorithmId::kBk}) {
    for (const auto delay :
         {DelayKind::kWorstCase, DelayKind::kUniformRandom,
          DelayKind::kSlowLink}) {
      ElectionConfig config;
      config.algorithm = {algo, 3, false};
      config.engine = EngineKind::kEvent;
      config.delay = delay;
      config.seed = 7;
      const auto m = core::measure(*ring, config);
      ASSERT_TRUE(m.ok()) << election::algorithm_name(algo) << "/"
                          << core::delay_kind_name(delay);
      EXPECT_EQ(m.result.leader_pid(),
                std::optional<sim::ProcessId>(expected));
    }
  }
}

TEST(CrossAlgorithmTest, StepAndEventEnginesAgree) {
  support::Rng rng(0xe2e);
  for (int rep = 0; rep < 15; ++rep) {
    const std::size_t n = 2 + rng.below(10);
    const std::size_t k = 1 + rng.below(3);
    const auto ring =
        ring::random_asymmetric_ring(n, k, (n + k - 1) / k + 2, rng);
    ASSERT_TRUE(ring.has_value());
    for (const auto algo : {AlgorithmId::kAk, AlgorithmId::kBk}) {
      ElectionConfig step;
      step.algorithm = {algo, k, false};
      step.engine = EngineKind::kStep;
      ElectionConfig event = step;
      event.engine = EngineKind::kEvent;
      const auto ms = core::measure(*ring, step);
      const auto me = core::measure(*ring, event);
      ASSERT_TRUE(ms.ok() && me.ok()) << ring->to_string();
      EXPECT_EQ(ms.result.leader_pid(), me.result.leader_pid());
      // Message behaviour is delay-independent for these algorithms under
      // the synchronous daemon vs unit delays: both equal the worst case.
      EXPECT_EQ(ms.result.stats.messages_sent,
                me.result.stats.messages_sent)
          << election::algorithm_name(algo) << " on " << ring->to_string();
    }
  }
}

TEST(CrossAlgorithmTest, TradeoffHoldsAkFasterBkSmaller) {
  // The headline trade-off (abstract): A_k is asymptotically faster; B_k
  // uses asymptotically less space. Check the direction on a mid-size ring.
  support::Rng rng(0x7a0f);
  const auto ring = ring::random_asymmetric_ring(24, 3, 11, rng);
  ASSERT_TRUE(ring.has_value());
  ElectionConfig ak;
  ak.algorithm = {AlgorithmId::kAk, 3, false};
  ak.engine = EngineKind::kEvent;
  ElectionConfig bk = ak;
  bk.algorithm = {AlgorithmId::kBk, 3, false};
  const auto ma = core::measure(*ring, ak);
  const auto mb = core::measure(*ring, bk);
  ASSERT_TRUE(ma.ok() && mb.ok());
  EXPECT_LT(ma.result.stats.time_units, mb.result.stats.time_units);
  EXPECT_LT(mb.result.stats.peak_space_bits,
            ma.result.stats.peak_space_bits);
}

}  // namespace
}  // namespace hring
